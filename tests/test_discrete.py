"""Tests for the discrete-tools baseline workflow (paper Figure 2).

These spawn real subprocesses, so counts are kept small.
"""

import pytest

from repro.fuzz import (DiscreteConfig, FuzzConfig, FuzzDriver,
                        run_discrete_workflow)
from repro.mutate import MutatorConfig
from repro.tv import RefinementConfig

from helpers import parsed

CLAMP = """define i32 @clamp(i32 %x) {
  %c = icmp ult i32 %x, 100
  %r = select i1 %c, i32 %x, i32 100
  ret i32 %r
}
"""


@pytest.fixture
def clamp_file(tmp_path):
    path = tmp_path / "clamp.ll"
    path.write_text(CLAMP)
    return str(path)


class TestDiscreteWorkflow:
    def test_clean_run(self, clamp_file):
        report = run_discrete_workflow(clamp_file, iterations=3,
                                       config=DiscreteConfig())
        assert report.iterations == 3
        assert report.findings == []
        assert report.elapsed > 0

    def test_finds_seeded_bug(self, clamp_file):
        config = DiscreteConfig(enabled_bugs=("53252",), base_seed=0)
        report = run_discrete_workflow(clamp_file, iterations=25, config=config)
        assert report.findings

    def test_matches_in_process_findings(self, clamp_file):
        """Both workflows perform the same seeded work (paper §V-B:
        'We ensured that the actual work performed under both conditions
        were exactly the same by seeding the PRNG appropriately')."""
        iterations = 20
        discrete = run_discrete_workflow(
            clamp_file, iterations,
            DiscreteConfig(enabled_bugs=("53252",), base_seed=100,
                           max_mutations=3, max_inputs=24))
        driver = FuzzDriver(
            parsed(CLAMP),
            FuzzConfig(pipeline="O2", enabled_bugs=("53252",),
                       base_seed=100,
                       mutator=MutatorConfig(max_mutations=3),
                       tv=RefinementConfig(max_inputs=24)),
            file_name="clamp.ll")
        in_process = driver.run(iterations=iterations)
        discrete_seeds = {f.seed for f in discrete.findings}
        in_process_seeds = {f.seed for f in in_process.findings}
        assert discrete_seeds == in_process_seeds
