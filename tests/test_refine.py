"""Tests for the refinement checker: ordering, counterexamples, memory,
nondeterminism handling, and input generation."""


from repro.tv import (Outcome, POISON, RefinementConfig, Verdict,
                      check_function_supported, check_module_refinement,
                      check_refinement, generate_inputs, outcome_refines,
                      value_refines)
from repro.tv.refine import PointerInput, memory_refines
from repro.tv.memory import UNDEF_BYTE
from repro.tv.memory import POISON as POISON_BYTE

from helpers import parsed


def check(src_text, tgt_text, fn="f", max_inputs=48, seed=0):
    src = parsed(src_text)
    tgt = parsed(tgt_text)
    return check_refinement(src.get_function(fn), tgt.get_function(fn),
                            src, tgt,
                            RefinementConfig(max_inputs=max_inputs, seed=seed))


class TestValueRefinement:
    def test_poison_refined_by_anything(self):
        assert value_refines(42, POISON)
        assert value_refines(POISON, POISON)

    def test_concrete_needs_equality(self):
        assert value_refines(42, 42)
        assert not value_refines(41, 42)
        assert not value_refines(POISON, 42)

    def test_outcome_ub_accepts_all(self):
        ub = Outcome("ub")
        assert outcome_refines(Outcome("ok", value=1), ub)
        assert outcome_refines(Outcome("ub"), ub)

    def test_tgt_ub_rejected_when_src_defined(self):
        assert not outcome_refines(Outcome("ub"), Outcome("ok", value=1))

    def test_memory_byte_refinement(self):
        src = (("blk", (1, POISON_BYTE, UNDEF_BYTE)),)
        good = (("blk", (1, 99, 5)),)
        bad = (("blk", (2, 99, 5)),)
        poisoned = (("blk", (POISON_BYTE, 99, 5)),)
        assert memory_refines(good, src)
        assert not memory_refines(bad, src)
        assert not memory_refines(poisoned, src)


class TestEndToEnd:
    def test_identity_refines(self):
        text = """
define i32 @f(i32 %x) {
  %r = add i32 %x, 1
  ret i32 %r
}
"""
        assert check(text, text).verdict == Verdict.CORRECT

    def test_wrong_constant_detected(self):
        src = """
define i32 @f(i32 %x) {
  %r = add i32 %x, 1
  ret i32 %r
}
"""
        tgt = src.replace("add i32 %x, 1", "add i32 %x, 2")
        result = check(src, tgt)
        assert result.verdict == Verdict.UNSOUND
        assert result.counterexample is not None
        assert "@f" in str(result.counterexample)

    def test_poison_weakening_is_refinement(self):
        # Removing nsw makes the target strictly more defined.
        src = """
define i8 @f(i8 %x) {
  %r = add nsw i8 %x, 1
  ret i8 %r
}
"""
        tgt = src.replace("add nsw", "add")
        assert check(src, tgt).verdict == Verdict.CORRECT

    def test_poison_strengthening_is_flagged(self):
        src = """
define i8 @f(i8 %x) {
  %r = add i8 %x, 1
  ret i8 %r
}
"""
        tgt = src.replace("add i8", "add nsw i8")
        assert check(src, tgt).verdict == Verdict.UNSOUND

    def test_ub_introduction_is_flagged(self):
        src = """
define i8 @f(i8 %x) {
  ret i8 %x
}
"""
        tgt = """
define i8 @f(i8 %x) {
  %r = udiv i8 1, %x
  ret i8 %x
}
"""
        assert check(src, tgt).verdict == Verdict.UNSOUND

    def test_figure1_bug(self):
        """The paper's Figure 1: Listing 3 does not refine Listing 2."""
        src = """
define i32 @f(i32 %x, i32 %low, i32 %high) {
  %t0 = icmp slt i32 %x, 0
  %t1 = select i1 %t0, i32 %low, i32 %high
  %t2 = icmp ult i32 %x, 65536
  %1 = xor i1 %t2, true
  %r = select i1 %1, i32 %x, i32 %t1
  ret i32 %r
}
"""
        tgt = """
define i32 @f(i32 %x, i32 %low, i32 %high) {
  %1 = icmp slt i32 %x, 0
  %2 = icmp sgt i32 %x, 65535
  %3 = select i1 %1, i32 %low, i32 %x
  %4 = select i1 %2, i32 %high, i32 %3
  ret i32 %4
}
"""
        assert check(src, tgt).verdict == Verdict.UNSOUND

    def test_memory_effects_compared(self):
        src = """
define void @f(ptr %p) {
  store i8 1, ptr %p
  ret void
}
"""
        tgt = src.replace("store i8 1", "store i8 2")
        assert check(src, tgt).verdict == Verdict.UNSOUND

    def test_store_removal_detected(self):
        src = """
define void @f(ptr %p) {
  store i8 9, ptr %p
  ret void
}
"""
        tgt = """
define void @f(ptr %p) {
  ret void
}
"""
        assert check(src, tgt).verdict == Verdict.UNSOUND

    def test_aliasing_inputs_generated(self):
        # Forwarding the first load to the second is wrong when p == q.
        src = """
define i8 @f(ptr %p, ptr %q) {
  %a = load i8, ptr %q
  store i8 77, ptr %p
  %b = load i8, ptr %q
  ret i8 %b
}
"""
        tgt = """
define i8 @f(ptr %p, ptr %q) {
  %a = load i8, ptr %q
  store i8 77, ptr %p
  ret i8 %a
}
"""
        assert check(src, tgt).verdict == Verdict.UNSOUND

    def test_noalias_licenses_forwarding(self):
        src = """
define i8 @f(ptr noalias %p, ptr noalias %q) {
  %a = load i8, ptr %q
  store i8 77, ptr %p
  %b = load i8, ptr %q
  ret i8 %b
}
"""
        tgt = src.replace("%b = load i8, ptr %q\n  ret i8 %b",
                          "ret i8 %a")
        assert check(src, tgt).verdict == Verdict.CORRECT

    def test_undef_source_never_false_positives(self):
        # Source returns undef; target picks a specific value: a valid
        # refinement, which must not be flagged even under bounded
        # enumeration (it may be inconclusive, never unsound).
        src = """
define i32 @f() {
  ret i32 undef
}
"""
        tgt = """
define i32 @f() {
  ret i32 123456789
}
"""
        result = check(src, tgt)
        assert result.verdict != Verdict.UNSOUND

    def test_signature_change_unsupported(self):
        src = """
define i32 @f(i32 %x) {
  ret i32 %x
}
"""
        tgt = """
define i32 @f(i32 %x, i32 %extra) {
  ret i32 %x
}
"""
        assert check(src, tgt).verdict == Verdict.UNSUPPORTED


class TestModuleRefinement:
    def test_pairs_by_name(self):
        src = parsed("""
define i8 @good(i8 %x) {
  ret i8 %x
}

define i8 @bad(i8 %x) {
  ret i8 %x
}
""")
        tgt = parsed("""
define i8 @good(i8 %x) {
  ret i8 %x
}

define i8 @bad(i8 %x) {
  %r = add i8 %x, 1
  ret i8 %r
}
""")
        results = check_module_refinement(src, tgt)
        assert results["good"].verdict == Verdict.CORRECT
        assert results["bad"].verdict == Verdict.UNSOUND

    def test_missing_function(self):
        src = parsed("""
define i8 @f(i8 %x) {
  ret i8 %x
}
""")
        tgt = parsed("declare i8 @f(i8)")
        results = check_module_refinement(src, tgt)
        assert results["f"].verdict == Verdict.UNSUPPORTED


class TestSupportCheck:
    def test_wide_int_unsupported(self):
        fn = parsed("""
define i128 @f(i128 %x) {
  ret i128 %x
}
""").get_function("f")
        assert check_function_supported(fn) is not None

    def test_normal_function_supported(self):
        fn = parsed("""
define i32 @f(i32 %x, ptr %p) {
  ret i32 %x
}
""").get_function("f")
        assert check_function_supported(fn) is None


class TestInputGeneration:
    def test_exhaustive_when_small(self):
        fn = parsed("""
define i1 @f(i2 %a, i2 %b) {
  %r = icmp eq i2 %a, %b
  ret i1 %r
}
""").get_function("f")
        inputs = generate_inputs(fn, RefinementConfig(max_inputs=64))
        assert len(inputs) == 16  # full 4x4 cross product

    def test_corner_values_present(self):
        fn = parsed("""
define i32 @f(i32 %x) {
  %r = add i32 %x, 74
  ret i32 %r
}
""").get_function("f")
        inputs = generate_inputs(fn, RefinementConfig(max_inputs=64))
        values = {i.args[0] for i in inputs}
        assert 0 in values
        assert 0xFFFFFFFF in values
        assert 0x80000000 in values
        # Constant-pool neighborhood of 74:
        assert {73, 74, 75} <= values

    def test_pointer_inputs_include_null_and_alias(self):
        fn = parsed("""
define i8 @f(ptr %p, ptr %q) {
  %v = load i8, ptr %q
  ret i8 %v
}
""").get_function("f")
        inputs = generate_inputs(fn, RefinementConfig(max_inputs=64))
        has_null = any(isinstance(a, PointerInput) and a.is_null()
                       for i in inputs for a in i.args)
        has_alias = any(isinstance(i.args[1], PointerInput)
                        and not i.args[1].is_null()
                        and i.args[1].block == "arg:p"
                        for i in inputs)
        assert has_null and has_alias

    def test_nonnull_respected(self):
        fn = parsed("""
define i8 @f(ptr nonnull %p) {
  %v = load i8, ptr %p
  ret i8 %v
}
""").get_function("f")
        inputs = generate_inputs(fn, RefinementConfig(max_inputs=64))
        assert not any(a.is_null() for i in inputs for a in i.args
                       if isinstance(a, PointerInput))

    def test_deterministic_in_seed(self):
        fn = parsed("""
define i32 @f(i32 %x) {
  ret i32 %x
}
""").get_function("f")
        a = generate_inputs(fn, RefinementConfig(seed=5))
        b = generate_inputs(fn, RefinementConfig(seed=5))
        assert a == b
