"""Unit tests for the throughput-experiment harness (report format,
ratios, file discarding) without spawning the full subprocess workflow."""

import pytest

from repro.fuzz.throughput import (FileTiming, ThroughputConfig,
                                   ThroughputReport)


class TestFileTiming:
    def test_perf_ratio(self):
        timing = FileTiming("t.ll", alive_mutate_seconds=2.0,
                            discrete_seconds=24.0)
        assert timing.perf == 12.0

    def test_zero_time_guard(self):
        timing = FileTiming("t.ll", 0.0, 1.0)
        assert timing.perf == float("inf")


class TestReport:
    def _report(self):
        report = ThroughputReport()
        report.timings.append(FileTiming("a.ll", 1.0, 12.0))
        report.timings.append(FileTiming("b.ll", 2.0, 8.0))
        report.timings.append(FileTiming("c.ll", 1.0, 786.0))
        return report

    def test_aggregates(self):
        report = self._report()
        assert report.average_perf == pytest.approx((12 + 4 + 786) / 3)
        assert report.best_perf == 786.0
        assert report.worst_perf == 4.0

    def test_empty_report(self):
        report = ThroughputReport()
        assert report.average_perf == 0.0
        assert report.best_perf == 0.0

    def test_res_txt_matches_listing_20_format(self):
        """The paper's Listing 20 fields, in order."""
        report = self._report()
        report.not_verified.append("bad.ll")
        report.invalid.append("junk.ll")
        text = report.render_res_txt()
        lines = text.splitlines()
        assert lines[0] == "Total: 3"
        assert lines[1].startswith("Alive-mutate lst:[(")
        assert lines[2].startswith("Discrete tools lst:[(")
        assert lines[3].startswith("perf lst:[(")
        assert lines[4].startswith("Avg perf:")
        assert lines[5] == "Total not-verified:1"
        assert lines[6] == "Not-verified files:['bad.ll']"
        assert lines[7] == "Total invalid file:1"
        assert lines[8] == "Invalid files:['junk.ll']"

    def test_res_txt_pairs_time_with_name(self):
        report = self._report()
        text = report.render_res_txt()
        assert "(1.0, 'a.ll')" in text
        assert "(12.0, 'a.ll')" in text


class TestExperimentDiscardsBadFiles:
    def test_unparseable_file_listed_invalid(self):
        from repro.fuzz.throughput import run_throughput_experiment

        report = run_throughput_experiment(
            [("junk.ll", "this is not IR")],
            ThroughputConfig(count=1))
        assert report.invalid == ["junk.ll"]
        assert report.timings == []

    def test_validator_rejected_file_discarded(self):
        """A function the validator cannot handle is discarded, like the
        paper's 6-of-200."""
        from repro.fuzz.throughput import run_throughput_experiment

        text = """define i128 @wide(i128 %x) {
  ret i128 %x
}
"""
        report = run_throughput_experiment(
            [("wide.ll", text)], ThroughputConfig(count=1))
        assert report.invalid == ["wide.ll"]
