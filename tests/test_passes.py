"""Tests for the scalar optimization passes, each validated against the
translation validator (the optimizer must never fail refinement)."""

import pytest

from repro.ir import BinaryOperator, verify_module
from repro.opt import available_passes, create_pass
from repro.opt.pipelines import available_pipelines, expand

from helpers import assert_sound, optimize, parsed


class TestPassManager:
    def test_registry_has_all_passes(self):
        expected = {"adce", "align-from-assumptions", "codegen", "constfold",
                    "dce", "early-cse", "gvn", "instcombine", "instsimplify",
                    "mem2reg", "reassociate", "simplifycfg"}
        assert expected <= set(available_passes())

    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError):
            create_pass("loop-unswitch")

    def test_pipeline_expansion(self):
        assert expand("O0") == []
        assert "instcombine" in expand("O2")
        assert expand("dce,gvn") == ["dce", "gvn"]
        assert expand("-O2") == expand("O2")
        assert "codegen" in expand("O2+backend")

    def test_pipelines_listed(self):
        assert {"O0", "O1", "O2", "backend", "O2+backend"} <= \
            set(available_pipelines())


class TestDCE:
    def test_removes_dead_chain(self):
        module = parsed("""
define i32 @f(i32 %x) {
  %dead1 = add i32 %x, 1
  %dead2 = mul i32 %dead1, 2
  ret i32 %x
}
""")
        optimized, ctx = optimize(module, "dce")
        fn = optimized.get_function("f")
        assert fn.num_instructions() == 1
        assert ctx.stats["dce.removed"] == 2

    def test_keeps_side_effects(self):
        module = parsed("""
declare void @effect(ptr)

define void @f(ptr %p) {
  call void @effect(ptr %p)
  store i8 1, ptr %p
  ret void
}
""")
        optimized, _ = optimize(module, "dce")
        assert optimized.get_function("f").num_instructions() == 3

    def test_removes_unused_readnone_call(self):
        module = parsed("""
declare i32 @pure(i32) readnone

define void @f(i32 %x) {
  %unused = call i32 @pure(i32 %x)
  ret void
}
""")
        optimized, _ = optimize(module, "dce")
        assert optimized.get_function("f").num_instructions() == 1

    def test_sound(self):
        assert_sound(parsed("""
define i32 @f(i32 %x) {
  %dead = udiv i32 1, %x
  ret i32 %x
}
"""), "dce")


class TestADCE:
    def test_removes_dead_keeps_live(self):
        module = parsed("""
define i32 @f(i32 %x, ptr %p) {
  %live = add i32 %x, 1
  %dead = mul i32 %x, 3
  store i32 %live, ptr %p
  ret i32 %live
}
""")
        optimized, _ = optimize(module, "adce")
        names = [i.name for i in optimized.get_function("f").instructions()]
        assert "dead" not in names
        assert "live" in names


class TestEarlyCSE:
    def test_cses_identical_pure_ops(self):
        module = parsed("""
define i32 @f(i32 %x, i32 %y) {
  %a = add i32 %x, %y
  %b = add i32 %x, %y
  %r = mul i32 %a, %b
  ret i32 %r
}
""")
        optimized, ctx = optimize(module, "early-cse")
        assert ctx.stats["early-cse.cse"] == 1
        assert_sound_text(module)

    def test_commutative_operands_unify(self):
        module = parsed("""
define i32 @f(i32 %x, i32 %y) {
  %a = add i32 %x, %y
  %b = add i32 %y, %x
  %r = sub i32 %a, %b
  ret i32 %r
}
""")
        optimized, ctx = optimize(module, "early-cse")
        assert ctx.stats["early-cse.cse"] == 1

    def test_flag_differing_duplicates_left_for_gvn(self):
        module = parsed("""
define i32 @f(i32 %x, i32 %y) {
  %a = add nsw i32 %x, %y
  %b = add i32 %x, %y
  %r = sub i32 %a, %b
  ret i32 %r
}
""")
        optimized, ctx = optimize(module, "early-cse")
        assert ctx.stats["early-cse.cse"] == 0

    def test_load_forwarding_blocked_by_call(self):
        module = parsed("""
declare void @clobber(ptr)

define i32 @f(ptr %p, ptr %q) {
  %a = load i32, ptr %q
  call void @clobber(ptr %p)
  %b = load i32, ptr %q
  %r = sub i32 %a, %b
  ret i32 %r
}
""")
        optimized, ctx = optimize(module, "early-cse")
        assert ctx.stats["early-cse.load"] == 0
        assert_sound(module, "early-cse", function="f")

    def test_redundant_load_removed(self):
        module = parsed("""
define i32 @f(ptr %q) {
  %a = load i32, ptr %q
  %b = load i32, ptr %q
  %r = sub i32 %a, %b
  ret i32 %r
}
""")
        optimized, ctx = optimize(module, "early-cse")
        assert ctx.stats["early-cse.load"] == 1
        assert_sound(module, "early-cse")

    def test_store_to_load_forwarding(self):
        module = parsed("""
define i32 @f(ptr %q, i32 %v) {
  store i32 %v, ptr %q
  %a = load i32, ptr %q
  ret i32 %a
}
""")
        optimized, ctx = optimize(module, "early-cse")
        assert ctx.stats["early-cse.load"] == 1
        assert_sound(module, "early-cse")

    def test_dominator_scoping(self):
        # The CSE'd value in `left` must not leak into `right`.
        module = parsed("""
define i32 @f(i1 %c, i32 %x) {
entry:
  br i1 %c, label %left, label %right
left:
  %a = add i32 %x, 5
  ret i32 %a
right:
  %b = add i32 %x, 5
  ret i32 %b
}
""")
        optimized, ctx = optimize(module, "early-cse")
        assert ctx.stats["early-cse.cse"] == 0
        assert_sound(module, "early-cse")

    def test_entry_value_reused_in_dominated_block(self):
        module = parsed("""
define i32 @f(i1 %c, i32 %x) {
entry:
  %a = add i32 %x, 5
  br i1 %c, label %left, label %right
left:
  %b = add i32 %x, 5
  ret i32 %b
right:
  ret i32 %a
}
""")
        optimized, ctx = optimize(module, "early-cse")
        assert ctx.stats["early-cse.cse"] == 1
        assert_sound(module, "early-cse")


class TestGVN:
    def test_flag_intersection_on_merge(self):
        module = parsed("""
define i32 @f(i32 %x, i32 %y, ptr %p) {
  %a = add nsw i32 %x, %y
  store i32 %a, ptr %p
  %b = add i32 %x, %y
  ret i32 %b
}
""")
        optimized, ctx = optimize(module, "gvn")
        assert ctx.stats["gvn.cse"] == 1
        fn = optimized.get_function("f")
        survivors = [i for i in fn.instructions()
                     if isinstance(i, BinaryOperator)]
        assert len(survivors) == 1
        assert not survivors[0].nsw  # intersected away
        assert_sound(module, "gvn")

    def test_phi_dedup(self):
        module = parsed("""
define i32 @f(i1 %c, i32 %x, i32 %y) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %p1 = phi i32 [ %x, %a ], [ %y, %b ]
  %p2 = phi i32 [ %x, %a ], [ %y, %b ]
  %r = add i32 %p1, %p2
  ret i32 %r
}
""")
        optimized, ctx = optimize(module, "gvn")
        assert ctx.stats["gvn.phi"] == 1
        assert_sound(module, "gvn")


class TestSimplifyCFG:
    def test_constant_branch_folded(self):
        module = parsed("""
define i32 @f() {
entry:
  br i1 true, label %a, label %b
a:
  ret i32 1
b:
  ret i32 2
}
""")
        optimized, _ = optimize(module, "simplifycfg")
        fn = optimized.get_function("f")
        assert len(fn.blocks) == 1
        assert_sound(module, "simplifycfg")

    def test_same_target_branch(self):
        module = parsed("""
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %next, label %next
next:
  ret i32 7
}
""")
        optimized, _ = optimize(module, "simplifycfg")
        assert len(optimized.get_function("f").blocks) == 1
        assert_sound(module, "simplifycfg")

    def test_straight_line_merge_resolves_phis(self):
        module = parsed("""
define i32 @f(i32 %x) {
entry:
  br label %next
next:
  %p = phi i32 [ %x, %entry ]
  %r = add i32 %p, 1
  ret i32 %r
}
""")
        optimized, _ = optimize(module, "simplifycfg")
        fn = optimized.get_function("f")
        assert len(fn.blocks) == 1
        assert_sound(module, "simplifycfg")

    def test_unreachable_blocks_removed(self):
        module = parsed("""
define i32 @f() {
entry:
  ret i32 0
dead:
  %x = add i32 1, 2
  br label %dead
}
""")
        optimized, _ = optimize(module, "simplifycfg")
        assert len(optimized.get_function("f").blocks) == 1

    def test_constant_switch_folded(self):
        module = parsed("""
define i32 @f() {
entry:
  switch i8 1, label %d [ i8 0, label %a i8 1, label %b ]
a:
  ret i32 10
b:
  ret i32 11
d:
  ret i32 12
}
""")
        optimized, _ = optimize(module, "simplifycfg")
        assert len(optimized.get_function("f").blocks) == 1
        assert_sound(module, "simplifycfg")

    def test_phi_edges_updated_when_branch_folds(self):
        module = parsed("""
define i32 @f(i32 %x) {
entry:
  br i1 false, label %a, label %join
a:
  br label %join
join:
  %p = phi i32 [ 1, %entry ], [ 2, %a ]
  ret i32 %p
}
""")
        optimized, _ = optimize(module, "simplifycfg")
        verify_module(optimized)
        assert_sound(module, "simplifycfg")


class TestMem2Reg:
    def test_single_block_promotion(self):
        module = parsed("""
define i32 @f(i32 %x) {
  %slot = alloca i32
  store i32 %x, ptr %slot
  %v = load i32, ptr %slot
  %r = add i32 %v, 1
  store i32 %r, ptr %slot
  %out = load i32, ptr %slot
  ret i32 %out
}
""")
        optimized, ctx = optimize(module, "mem2reg")
        fn = optimized.get_function("f")
        assert not any(i.opcode == "alloca" for i in fn.instructions())
        assert ctx.stats["mem2reg.single-block"] == 1
        assert_sound(module, "mem2reg")

    def test_single_store_cross_block(self):
        module = parsed("""
define i32 @f(i1 %c, i32 %x) {
entry:
  %slot = alloca i32
  store i32 %x, ptr %slot
  br i1 %c, label %a, label %b
a:
  %v1 = load i32, ptr %slot
  ret i32 %v1
b:
  %v2 = load i32, ptr %slot
  ret i32 %v2
}
""")
        optimized, ctx = optimize(module, "mem2reg")
        assert ctx.stats["mem2reg.single-store"] == 1
        assert_sound(module, "mem2reg")

    def test_escaping_alloca_not_promoted(self):
        module = parsed("""
declare void @escape(ptr)

define i32 @f(i32 %x) {
  %slot = alloca i32
  store i32 %x, ptr %slot
  call void @escape(ptr %slot)
  %v = load i32, ptr %slot
  ret i32 %v
}
""")
        optimized, _ = optimize(module, "mem2reg")
        fn = optimized.get_function("f")
        assert any(i.opcode == "alloca" for i in fn.instructions())
        assert_sound(module, "mem2reg", function="f")

    def test_type_punned_not_promoted(self):
        module = parsed("""
define i8 @f(i32 %x) {
  %slot = alloca i32
  store i32 %x, ptr %slot
  %v = load i8, ptr %slot
  ret i8 %v
}
""")
        optimized, _ = optimize(module, "mem2reg")
        fn = optimized.get_function("f")
        assert any(i.opcode == "alloca" for i in fn.instructions())


class TestReassociate:
    def test_constant_moves_right(self):
        module = parsed("""
define i32 @f(i32 %x) {
  %r = add i32 7, %x
  ret i32 %r
}
""")
        optimized, ctx = optimize(module, "reassociate")
        inst = optimized.get_function("f").blocks[0].instructions[0]
        assert inst.rhs.value == 7
        assert_sound(module, "reassociate")

    def test_chained_constants_fold(self):
        module = parsed("""
define i32 @f(i32 %x) {
  %a = add i32 %x, 10
  %b = add i32 %a, 20
  ret i32 %b
}
""")
        optimized, ctx = optimize(module, "reassociate")
        assert ctx.stats["reassociate.folded"] == 1
        fn = optimized.get_function("f")
        add = fn.blocks[0].instructions[-2]
        assert add.rhs.value == 30
        assert_sound(module, "reassociate")

    def test_flags_dropped_on_regroup(self):
        module = parsed("""
define i8 @f(i8 %x) {
  %a = add nsw i8 %x, 100
  %b = add nsw i8 %a, 100
  ret i8 %b
}
""")
        optimized, _ = optimize(module, "reassociate")
        add = optimized.get_function("f").blocks[0].instructions[-2]
        assert not add.nsw
        assert_sound(module, "reassociate")


def assert_sound_text(module):
    assert_sound(module, "early-cse")


class TestSkipEmptyBlocks:
    def test_forwarding_block_bypassed(self):
        module = parsed("""
define i32 @f(i1 %c, i32 %x, i32 %y) {
entry:
  br i1 %c, label %fwd, label %other
fwd:
  br label %join
other:
  br label %join
join:
  %p = phi i32 [ %x, %fwd ], [ %y, %other ]
  ret i32 %p
}
""")
        optimized, ctx = optimize(module, "simplifycfg")
        verify_module(optimized)
        fn = optimized.get_function("f")
        assert fn.block_named("fwd") is None
        assert_sound(module, "simplifycfg")

    def test_duplicate_edge_hazard_skipped(self):
        # pred already branches to succ directly on the other edge;
        # retargeting would create conflicting phi entries.
        module = parsed("""
define i32 @f(i1 %c, i32 %x, i32 %y) {
entry:
  br i1 %c, label %fwd, label %join
fwd:
  br label %join
join:
  %p = phi i32 [ %x, %fwd ], [ %y, %entry ]
  ret i32 %p
}
""")
        optimized, _ = optimize(module, "simplifycfg")
        verify_module(optimized)
        assert_sound(module, "simplifycfg")

    def test_loop_latch_forwarding(self):
        module = parsed("""
define i32 @f(i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %next, %latch ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %next = add i32 %i, 1
  br label %latch
latch:
  br label %header
exit:
  ret i32 %i
}
""")
        optimized, _ = optimize(module, "simplifycfg")
        verify_module(optimized)
        assert_sound(module, "simplifycfg")

    def test_o2_on_forwarding_chains_sound(self):
        module = parsed("""
define i32 @f(i1 %a, i1 %b, i32 %x) {
entry:
  br i1 %a, label %f1, label %f2
f1:
  br label %mid
f2:
  br label %mid
mid:
  %m = phi i32 [ 1, %f1 ], [ 2, %f2 ]
  br i1 %b, label %f3, label %f4
f3:
  br label %join
f4:
  br label %join
join:
  %p = phi i32 [ %m, %f3 ], [ %x, %f4 ]
  ret i32 %p
}
""")
        assert_sound(module, "O2")
