"""Tests for the textual printer."""

from repro.ir import print_function, print_module

from helpers import parsed, single_function


class TestFormatting:
    def test_paper_listing_shapes(self):
        fn = single_function("""
define i32 @test9(ptr %p, ptr %q) {
  %a = load i32, ptr %q, align 4
  %c = sub i32 %a, %a
  ret i32 %c
}
""")
        text = print_function(fn)
        assert "%a = load i32, ptr %q, align 4" in text
        assert "%c = sub i32 %a, %a" in text
        assert "ret i32 %c" in text

    def test_flags_printed(self):
        fn = single_function("""
define i8 @f(i8 %x) {
  %a = add nuw nsw i8 %x, 1
  %b = udiv exact i8 %a, 1
  ret i8 %b
}
""")
        text = print_function(fn)
        assert "add nuw nsw i8" in text
        assert "udiv exact i8" in text

    def test_booleans_and_special_constants(self):
        fn = single_function("""
define i8 @f(ptr %p) {
  %c = icmp eq ptr %p, null
  %r = select i1 %c, i8 undef, i8 poison
  %s = select i1 true, i8 %r, i8 0
  ret i8 %s
}
""")
        text = print_function(fn)
        assert "null" in text and "undef" in text and "poison" in text
        assert "select i1 true" in text

    def test_negative_constants_signed(self):
        fn = single_function("""
define i8 @f(i8 %x) {
  %r = add i8 %x, -16
  ret i8 %r
}
""")
        assert "-16" in print_function(fn)

    def test_unnamed_values_numbered(self):
        from repro.ir import BinaryOperator, ConstantInt, I32

        fn = single_function("""
define i32 @f(i32 %x) {
  %named = add i32 %x, 1
  ret i32 %named
}
""")
        block = fn.blocks[0]
        fresh = BinaryOperator("mul", fn.arguments[0], ConstantInt(I32, 2))
        block.insert(1, fresh)
        text = print_function(fn)
        assert "%0 = mul" in text

    def test_attributes_printed(self):
        module = parsed("""
define i32 @f(ptr nocapture dereferenceable(8) %p, i32 %x) nofree nounwind {
  ret i32 %x
}
""")
        text = print_module(module)
        assert "dereferenceable(8)" in text
        assert "nocapture" in text
        assert "nofree" in text and "nounwind" in text

    def test_bundles_printed(self):
        module = parsed("""
declare void @llvm.assume(i1)

define void @f(ptr %p) {
  call void @llvm.assume(i1 true) [ "align"(ptr %p, i64 32) ]
  ret void
}
""")
        text = print_module(module)
        assert '[ "align"(ptr %p, i64 32) ]' in text

    def test_declarations_first(self):
        module = parsed("""
define void @f() {
  call void @later()
  ret void
}
""")
        text = print_module(module)
        assert text.index("declare") < text.index("define")

    def test_entry_label_only_when_referenced(self):
        plain = single_function("""
define i32 @f(i32 %x) {
  ret i32 %x
}
""")
        assert "entry:" not in print_function(plain)
        looped = single_function("""
define i32 @f(i32 %x) {
entry:
  br label %next
next:
  %p = phi i32 [ %x, %entry ]
  ret i32 %p
}
""")
        assert "entry:" in print_function(looped)
