"""The socket transport: broker protocol, crash recovery, campaign parity.

Protocol tests drive :class:`QueueBroker` + :class:`SocketQueue` over a
real loopback socket under a fake broker clock (lease expiry and backoff
are simulated by advancing the clock, not by sleeping).  Campaign tests
prove the tentpole invariant — findings and ``deterministic()`` metrics
over the socket transport (either payload format, with or without
injected chaos, across a broker kill/restart) are identical to a
single-host run.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.fuzz import CampaignConfig, run_campaign
from repro.fuzz.checkpoint import jobs_fingerprint
from repro.fuzz.dist import DistConfig, NodeRunner, QueueMismatch
from repro.fuzz.driver import FuzzConfig
from repro.fuzz.faults import ChaosSocketQueue, damage_journal
from repro.fuzz.net import QueueBroker, SocketQueue, parse_address
from repro.fuzz.parallel import ShardJob
from repro.ir.parser import parse_module
from repro.ir.printer import print_module

from .test_dist import (FakeClock, IR, SMALL, make_jobs, make_result,
                        report_key)


@pytest.fixture()
def broker():
    broker = QueueBroker()
    broker.start()
    yield broker
    broker.stop()


def client(broker, node="n1", **kwargs):
    kwargs.setdefault("connect_timeout", 10.0)
    kwargs.setdefault("retry_interval", 0.05)
    return SocketQueue(broker.address, node=node, **kwargs)


def published(broker, node="n1", jobs=None, **manifest):
    jobs = make_jobs() if jobs is None else jobs
    fingerprint = jobs_fingerprint(jobs)
    coordinator = client(broker, node="coordinator")
    coordinator.publish(jobs, fingerprint, **manifest)
    coordinator.close()
    return client(broker, node=node), fingerprint


# ---------------------------------------------------------------------------
# The lease protocol over the wire (fake broker clock).
# ---------------------------------------------------------------------------


class TestSocketProtocol:
    def test_publish_then_manifest_and_claim(self, broker):
        queue, fingerprint = published(broker)
        manifest = queue.manifest()
        assert manifest["fingerprint"] == fingerprint
        assert manifest["total_jobs"] == 3
        claims = queue.claim_next(limit=2)
        assert [job.job_index for job, _lease in claims] == [0, 1]
        # The payload crossed as bitcode; the reconstructed text is the
        # canonical print of the original.
        assert claims[0][0].text == print_module(parse_module(IR))
        assert claims[0][0].config.base_seed == 0
        assert claims[1][0].config.base_seed == 100
        queue.close()

    def test_claims_are_exclusive_across_clients(self, broker):
        queue, _ = published(broker)
        other = client(broker, node="n2")
        taken = queue.claim_next(limit=1)
        assert len(taken) == 1
        stolen = [j for j, _ in other.claim_next(limit=3)]
        assert all(job.job_index != taken[0][0].job_index for job in stolen)
        queue.close()
        other.close()

    def test_heartbeat_renews_only_for_owner(self, broker):
        clock = FakeClock()
        broker.clock = clock
        queue, _ = published(broker, lease_duration=10.0)
        (job, _lease), = queue.claim_next()
        assert queue.heartbeat(job.job_index, 10.0) is True
        thief = client(broker, node="n2")
        assert thief.heartbeat(job.job_index, 10.0) is False
        queue.close()
        thief.close()

    def test_expired_lease_reclaims_with_bumped_attempt(self, broker):
        clock = FakeClock()
        broker.clock = clock
        queue, _ = published(broker, lease_duration=10.0,
                             retry_backoff=1.0)
        queue.claim_next(limit=1)
        other = client(broker, node="n2")
        clock.advance(10.5)            # expired, but inside backoff
        assert not [j for j, _ in other.claim_next(limit=1)
                    if j.job_index == 0]
        clock.advance(1.0)             # past expiry + backoff
        (job, lease), = other.claim_next(limit=1)
        assert job.job_index == 0
        assert lease.attempt == 2
        queue.close()
        other.close()

    def test_release_for_retry_feeds_reclaim(self, broker):
        clock = FakeClock()
        broker.clock = clock
        queue, _ = published(broker, retry_backoff=0.5)
        (job, lease), = queue.claim_next()
        queue.release_for_retry(job.job_index, lease, "hang", "stuck")
        clock.advance(1.0)
        (again, lease2), = queue.claim_next()
        assert again.job_index == job.job_index
        assert lease2.attempt == 2
        queue.close()

    def test_exhausted_attempts_retire_with_quarantine(self, broker):
        clock = FakeClock()
        broker.clock = clock
        queue, _ = published(broker, max_attempts=1, retry_backoff=0.1)
        (job, lease), = queue.claim_next()
        queue.release_for_retry(job.job_index, lease, "crash", "boom")
        clock.advance(1.0)
        queue.claim_next()  # attempt exhausted: retires instead
        stones = queue.collect_tombstones()
        assert stones[job.job_index]["reason"] == "quarantine"
        assert stones[job.job_index]["failure_kind"] == "crash"
        queue.close()

    def test_result_dedup_is_first_writer_wins(self, broker):
        queue, fingerprint = published(broker)
        queue.claim_next()
        result = make_result(0)
        assert queue.publish_result(result, fingerprint) is True
        assert queue.publish_result(result, fingerprint) is False
        collected = queue.collect_results(fingerprint)
        assert set(collected) == {0}
        queue.close()

    def test_foreign_fingerprint_publish_mismatches(self, broker):
        _queue, _ = published(broker)
        other_jobs = [ShardJob(job_index=0, file_name="g.ll", text=IR,
                               config=FuzzConfig(base_seed=7),
                               iterations=1)]
        stranger = client(broker, node="x")
        with pytest.raises(QueueMismatch):
            stranger.publish(other_jobs, jobs_fingerprint(other_jobs))
        stranger.close()

    def test_drained_and_sweep(self, broker):
        clock = FakeClock()
        broker.clock = clock
        queue, fingerprint = published(broker, lease_duration=5.0,
                                       max_attempts=1)
        assert queue.drained() is False
        for index in range(3):
            claims = queue.claim_next()
            assert claims
            queue.publish_result(make_result(index), fingerprint)
        assert queue.drained() is True
        assert queue.sweep() == 0
        queue.close()

    def test_sweep_retires_lost_nodes(self, broker):
        clock = FakeClock()
        broker.clock = clock
        queue, _ = published(broker, lease_duration=5.0, max_attempts=1)
        queue.claim_next(limit=3)
        clock.advance(6.0)  # all leases silently expired
        assert queue.sweep() == 3
        stones = queue.collect_tombstones()
        assert all(s["reason"] == "node_lost" for s in stones.values())
        queue.close()

    def test_corpus_delta_round_trips(self, broker, tmp_path):
        queue, _ = published(broker)
        delta = tmp_path / "job-0.corpus.jsonl"
        delta.write_text('{"kind": "header", "version": 1}\n')
        assert queue.publish_corpus(0, str(delta)) is True
        paths = queue.corpus_paths()
        assert [index for index, _ in paths] == [0]
        assert open(paths[0][1]).read() == delta.read_text()
        queue.close()

    def test_blob_cache_hits_on_repeat_claims(self, broker):
        # All three jobs share one module: after the first claim pulls
        # the blob, later claims hit the per-node cache.
        queue, _ = published(broker)
        queue.claim_next(limit=3)
        assert queue.metrics.counter("wire.blob_cache.hit") == 2
        assert queue.metrics.counter("wire.blob_cache.miss") == 1
        assert queue.metrics.counter("bitcode.decode_cache.hit") == 2
        queue.close()

    def test_parse_address_rejects_garbage(self):
        from repro.fuzz.dist import QueueError
        assert parse_address("127.0.0.1:99") == ("127.0.0.1", 99)
        for bad in ("nope", ":80", "host:", "host:notaport"):
            with pytest.raises(QueueError):
                parse_address(bad)


# ---------------------------------------------------------------------------
# Reconnects and lease expiry on disconnect.
# ---------------------------------------------------------------------------


def wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


class TestDisconnects:
    def test_request_survives_connection_drop(self, broker):
        queue, _ = published(broker)
        queue._drop()  # simulate a broken connection between verbs
        assert queue.manifest() is not None
        queue.close()

    def test_disconnect_expires_leases_immediately(self, broker):
        clock = FakeClock()
        broker.clock = clock
        queue, _ = published(broker, lease_duration=3600.0,
                             retry_backoff=0.5)
        (job, _lease), = queue.claim_next()
        queue.close()  # the node vanishes without releasing
        assert wait_for(lambda: all(
            lease.expires_at <= clock()
            for lease in broker.leases().values()))
        # The hour-long lease is reclaimable after just the backoff,
        # not after the hour.
        clock.advance(1.0)
        other = client(broker, node="n2")
        (again, lease2), = other.claim_next()
        assert again.job_index == job.job_index
        assert lease2.attempt == 2
        other.close()

    def test_reconnected_node_keeps_its_leases(self, broker):
        clock = FakeClock()
        broker.clock = clock
        queue, _ = published(broker, lease_duration=3600.0)
        (job, _lease), = queue.claim_next()
        # A second connection from the same node, then the first dies:
        # the node is still connected, so nothing expires.
        second = client(broker, node="n1")
        assert second.manifest() is not None
        queue.close()
        time.sleep(0.2)
        lease = broker.leases()[job.job_index]
        assert lease.expires_at > clock()
        assert second.heartbeat(job.job_index, 10.0) is True
        second.close()

    def test_broker_restart_resets_leases_but_keeps_results(self, tmp_path):
        journal_dir = str(tmp_path / "broker")
        broker = QueueBroker(journal_dir=journal_dir)
        broker.start()
        try:
            queue, fingerprint = published(broker)
            queue.claim_next()
            queue.publish_result(make_result(0), fingerprint)
            queue.close()
        finally:
            broker.stop()
        revived = QueueBroker(journal_dir=journal_dir)
        revived.start()
        try:
            queue = client(revived)
            assert queue.manifest()["fingerprint"] == fingerprint
            assert set(queue.collect_results(fingerprint)) == {0}
            # Leases are soft state: job 1 is immediately claimable.
            claimed = [j.job_index for j, _ in queue.claim_next(limit=3)]
            assert claimed == [1, 2]
            queue.close()
        finally:
            revived.stop()


# ---------------------------------------------------------------------------
# Broker journal crash consistency.
# ---------------------------------------------------------------------------


class TestBrokerJournal:
    def test_torn_final_record_is_dropped(self, tmp_path):
        journal_dir = str(tmp_path / "broker")
        broker = QueueBroker(journal_dir=journal_dir)
        broker.start()
        try:
            queue, fingerprint = published(broker)
            queue.claim_next()
            queue.publish_result(make_result(0), fingerprint)
            queue.claim_next()
            queue.publish_result(make_result(1), fingerprint)
            queue.close()
        finally:
            broker.stop()
        # A crash mid-append tears the final journal record (result 1).
        damage_journal(os.path.join(journal_dir, "broker.jsonl"))
        revived = QueueBroker(journal_dir=journal_dir)
        revived.start()
        try:
            queue = client(revived)
            # Result 0 survived; result 1's record was torn away, so
            # the job is simply open again — at-least-once semantics.
            assert set(queue.collect_results(fingerprint)) == {0}
            claimed = [j.job_index for j, _ in queue.claim_next(limit=3)]
            assert 1 in claimed
            assert revived.metrics.counter("net.journal.torn_tail") == 1
            queue.close()
        finally:
            revived.stop()

    def test_in_memory_broker_needs_no_journal(self):
        broker = QueueBroker()  # no journal_dir: pure in-memory
        broker.start()
        try:
            queue, fingerprint = published(broker)
            queue.claim_next()
            assert queue.publish_result(make_result(0), fingerprint)
            assert set(queue.collect_results(fingerprint)) == {0}
            queue.close()
        finally:
            broker.stop()


# ---------------------------------------------------------------------------
# Campaign parity: socket transport == single host.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def reference():
    return run_campaign(CampaignConfig(workers=1, **SMALL))


def socket_config(address, **extra):
    return CampaignConfig(
        workers=1,
        dist=DistConfig(queue_addr=address, wait_timeout=120.0,
                        **extra.pop("dist", {})),
        **extra, **SMALL)


def run_socket_campaign(config, node_queues):
    box = {}

    def coordinate():
        box["report"] = run_campaign(config)

    coordinator = threading.Thread(target=coordinate)
    coordinator.start()
    reports = []
    try:
        for queue in node_queues:
            runner = NodeRunner(queue, workers=1)
            try:
                reports.append(runner.run(time_budget=120,
                                          wait_for_manifest=60))
            finally:
                queue.close()
    finally:
        coordinator.join(timeout=180)
    assert not coordinator.is_alive(), "coordinator did not finish"
    return box["report"], reports


class TestSocketCampaignParity:
    def test_bitcode_payloads_match_single_host(self, reference):
        broker = QueueBroker()
        broker.start()
        try:
            config = socket_config(broker.address)
            report, (node_report,) = run_socket_campaign(
                config, [client(broker)])
        finally:
            broker.stop()
        assert node_report.jobs_run > 0
        assert report_key(report) == report_key(reference)
        assert report.metrics.deterministic() == \
            reference.metrics.deterministic()
        # The payloads really did travel as bitcode.
        assert report.metrics.counter("bitcode.encode.count") > 0

    def test_text_payloads_match_single_host(self, reference):
        broker = QueueBroker()
        broker.start()
        try:
            config = socket_config(broker.address,
                                   dist=dict(payload_format="text"))
            report, _nodes = run_socket_campaign(
                config, [client(broker)])
        finally:
            broker.stop()
        assert report_key(report) == report_key(reference)
        assert report.metrics.deterministic() == \
            reference.metrics.deterministic()
        assert report.metrics.counter("bitcode.encode.count") == 0

    def test_wire_chaos_preserves_findings(self, reference):
        broker = QueueBroker()
        broker.start()
        try:
            config = socket_config(broker.address)
            chaos = ChaosSocketQueue(
                broker.address, node="n1", drop_every=5, torn_every=7,
                duplicate_results=2, connect_timeout=30.0,
                retry_interval=0.05)
            report, (node_report,) = run_socket_campaign(config, [chaos])
            assert chaos.metrics.counter(
                "chaos.net.dropped_connections") > 0
            assert chaos.metrics.counter("chaos.net.torn_frames") > 0
            assert chaos.metrics.counter("chaos.net.duplicate_results") > 0
        finally:
            broker.stop()
        assert report_key(report) == report_key(reference)
        assert report.metrics.deterministic() == \
            reference.metrics.deterministic()

    def test_broker_kill_and_recovery_mid_campaign(self, reference,
                                                   tmp_path):
        journal_dir = str(tmp_path / "broker")
        broker = QueueBroker(journal_dir=journal_dir)
        host, port = broker.start()
        address = f"{host}:{port}"
        config = socket_config(address)

        killed = threading.Event()
        revived_box = {}

        def assassin():
            # Wait for real progress, then kill the broker cold and
            # restart it from its journal on the same port.
            if wait_for(lambda: len(broker._results) >= 1, timeout=60):
                broker.stop()
                # The port needs a beat to shake off dying connection
                # sockets — retry the bind like a supervisor would.
                deadline = time.monotonic() + 30
                while True:
                    revived = QueueBroker(host=host, port=port,
                                          journal_dir=journal_dir)
                    try:
                        revived.start()
                        break
                    except OSError:
                        if time.monotonic() > deadline:
                            raise
                        time.sleep(0.1)
                revived_box["broker"] = revived
                killed.set()

        hitman = threading.Thread(target=assassin)
        hitman.start()
        try:
            report, _nodes = run_socket_campaign(
                config, [client(broker, connect_timeout=60.0)])
        finally:
            hitman.join(timeout=90)
            if "broker" in revived_box:
                revived_box["broker"].stop()
            else:
                broker.stop()
        assert killed.is_set(), "broker was never killed (no results?)"
        assert report_key(report) == report_key(reference)
        assert report.metrics.deterministic() == \
            reference.metrics.deterministic()
