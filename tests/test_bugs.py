"""Tests for the seeded-bug registry: every Table-I bug must

1. leave the optimizer *sound* when disabled (clean pipeline passes
   translation validation on the trigger program), and
2. produce a detectable finding when enabled (an optimizer crash for
   crash bugs, a refinement failure for miscompilation bugs).

Each trigger program below is the distilled IR shape from the registry's
``trigger`` column.
"""

import pytest

from repro.ir import verify_module
from repro.opt import (OptContext, OptimizerCrash, PassManager, all_bugs,
                       crash_bugs, get_bug, miscompilation_bugs)
from repro.tv import RefinementConfig, Verdict, check_refinement

from helpers import parsed

# bug id -> (trigger .ll, pipeline). The function under test must be @f.
TRIGGERS = {
    # -- miscompilations ------------------------------------------------
    "53252": ("""
define i32 @f(i32 %x) {
  %c = icmp ult i32 %x, 100
  %r = select i1 %c, i32 %x, i32 100
  ret i32 %r
}
""", "instcombine"),
    "50693": ("""
define i8 @f(i8 %n, i8 %x) {
  %m = shl i8 -1, %n
  %r = lshr i8 %m, %n
  %k = and i8 %r, %x
  ret i8 %k
}
""", "instcombine"),
    "53218": ("""
define i16 @f(i16 %x, i16 %y, ptr %p) {
  %a = add nsw i16 %x, %y
  store i16 %a, ptr %p
  %b = add i16 %x, %y
  ret i16 %b
}
""", "gvn"),
    "55003": ("""
define i8 @f(i8 %x) {
  %a = shl i8 %x, 5
  %b = shl i8 %a, 5
  %c = or i8 %b, 1
  ret i8 %c
}
""", "backend"),
    "55201": ("""
define i16 @f(i16 %x) {
  %t = and i16 %x, 255
  %hi = shl i16 %t, 3
  %lo = lshr i16 %x, 13
  %r = or i16 %hi, %lo
  ret i16 %r
}
""", "backend"),
    "55129": ("""
define i64 @f(i1 %b) {
  %1 = zext i1 %b to i64
  %2 = lshr i64 %1, 1
  ret i64 %2
}
""", "backend"),
    "55271": ("""
declare i8 @llvm.abs.i8(i8, i1)

define i8 @f(i8 %x) {
  %r = call i8 @llvm.abs.i8(i8 %x, i1 false)
  ret i8 %r
}
""", "backend"),
    "55284": ("""
define i8 @f(i8 %x, i8 %y) {
  %lo = and i8 %x, 15
  %hi = and i8 %y, -16
  %r = or i8 %lo, %hi
  ret i8 %r
}
""", "backend"),
    "55287": ("""
define i8 @f(i8 %x) {
  %r = urem i8 %x, 16
  ret i8 %r
}
""", "backend"),
    "55296": ("""
define i7 @f(i7 %x, i7 %y) {
  %r = urem i7 %x, %y
  ret i7 %r
}
""", "backend"),
    "55342": ("""
define i7 @f(i7 %x) {
  %r = sdiv i7 %x, -3
  ret i7 %r
}
""", "backend"),
    "55484": ("""
define i16 @f(i16 %x) {
  %hi = shl i16 %x, 12
  %lo = lshr i16 %x, 4
  %r = or i16 %hi, %lo
  ret i16 %r
}
""", "backend"),
    "55490": ("""
define i7 @f(i7 %x, i7 %y) {
  %r = srem i7 %x, %y
  ret i7 %r
}
""", "backend"),
    "55627": ("""
define i7 @f(i7 %x, i7 %y) {
  %r = sdiv i7 %x, %y
  ret i7 %r
}
""", "backend"),
    "55833": ("""
define i8 @f(i8 %x) {
  %s = lshr i8 %x, 3
  %r = and i8 %s, 15
  ret i8 %r
}
""", "backend"),
    "58109": ("""
declare i8 @llvm.usub.sat.i8(i8, i8)

define i8 @f(i8 %x, i8 %y) {
  %r = call i8 @llvm.usub.sat.i8(i8 %x, i8 %y)
  ret i8 %r
}
""", "backend"),
    "58321": ("""
define void @f(ptr %q) {
  %p = freeze i3 poison
  store i3 %p, ptr %q
  ret void
}
""", "backend"),
    "58431": ("""
define i8 @f(i1 %b) {
  %r = zext i1 %b to i8
  ret i8 %r
}
""", "backend"),
    "59836": ("""
define i1 @f(i32 %x) {
  %r = zext i32 %x to i64
  %t = trunc i64 %r to i34
  %m = mul i34 %t, %t
  %e = zext i34 %m to i64
  %res = icmp ule i64 %e, 4294967295
  ret i1 %res
}
""", "instcombine"),
    # -- crashes -----------------------------------------------------------
    "52884": ("""
declare i8 @llvm.smax.i8(i8, i8)

define i8 @f(i8 %x) {
  %1 = add nuw nsw i8 50, %x
  %m = call i8 @llvm.smax.i8(i8 %1, i8 -124)
  ret i8 %m
}
""", "instcombine"),
    "51618": ("""
define i8 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %join
a:
  br label %join
join:
  %p = phi i8 [ undef, %entry ], [ 3, %a ]
  ret i8 %p
}
""", "gvn"),
    "56377": ("""
declare i8 @llvm.fshl.i8(i8, i8, i8)

define i8 @f(i8 %x, i8 %y, i8 %z) {
  %r = call i8 @llvm.fshl.i8(i8 %x, i8 %y, i8 %z)
  ret i8 %r
}
""", "backend"),
    "56463": ("""
declare void @sink(i32)

define void @f() {
  call void @sink(i32 undef)
  ret void
}
""", "instcombine"),
    "56945": ("""
declare i8 @llvm.smax.i8(i8, i8)

define i8 @f() {
  %m = call i8 @llvm.smax.i8(i8 poison, i8 4)
  ret i8 %m
}
""", "constfold"),
    "56968": ("""
define i8 @f(i8 %x) {
  %r = shl i8 %x, 9
  ret i8 %r
}
""", "instsimplify"),
    "56981": ("""
define i8 @f() {
  %r = select i1 poison, i8 1, i8 2
  ret i8 %r
}
""", "constfold"),
    "58423": ("""
declare i8 @llvm.abs.i8(i8, i1)

define i8 @f(i8 %x) {
  %a = call i8 @llvm.abs.i8(i8 %x, i1 false)
  %b = call i8 @llvm.abs.i8(i8 %x, i1 false)
  %r = add i8 %a, %b
  ret i8 %r
}
""", "backend"),
    "58425": ("""
define i26 @f(i26 %x, i26 %y) {
  %r = udiv i26 %x, %y
  ret i26 %r
}
""", "backend"),
    "59757": ("""
declare i64 @printf(ptr)

define i64 @f(ptr %fmt) {
  %r = call i64 @printf(ptr %fmt)
  ret i64 %r
}
""", "backend"),
    "64687": ("""
declare void @llvm.assume(i1)

define i8 @f(ptr %p) {
  call void @llvm.assume(i1 true) [ "align"(ptr %p, i64 123) ]
  %v = load i8, ptr %p
  ret i8 %v
}
""", "align-from-assumptions"),
    "64661": ("""
define i8 @f(i8 %x) {
  %slot = alloca i8
  %v = load i8, ptr %slot
  %r = add i8 %v, %x
  ret i8 %r
}
""", "mem2reg"),
    "72035": ("""
define i8 @f(i32 %x) {
  %slot = alloca i32
  store i32 %x, ptr %slot
  %v = load i8, ptr %slot
  ret i8 %v
}
""", "mem2reg"),
    "72034": ("""
declare i8 @llvm.sadd.sat.i8(i8, i8)

define i8 @f(i8 %x) {
  %r = call i8 @llvm.sadd.sat.i8(i8 %x, i8 %x)
  ret i8 %r
}
""", "backend"),
}


class TestRegistryIntegrity:
    def test_33_bugs_total(self):
        assert len(all_bugs()) == 33

    def test_19_miscompilations_14_crashes(self):
        assert len(miscompilation_bugs()) == 19
        assert len(crash_bugs()) == 14

    def test_unique_ids(self):
        ids = [b.issue_id for b in all_bugs()]
        assert len(set(ids)) == 33

    def test_every_bug_has_trigger_program(self):
        assert set(TRIGGERS) == {b.issue_id for b in all_bugs()}

    def test_host_passes_exist(self):
        from repro.opt import available_passes

        passes = set(available_passes())
        for bug in all_bugs():
            assert bug.host_pass in passes, bug.issue_id

    def test_get_bug(self):
        assert get_bug("53252").component == "InstCombine"
        with pytest.raises(KeyError):
            get_bug("00000")

    def test_paper_components_preserved(self):
        components = {b.component for b in all_bugs()}
        assert "InstCombine" in components
        assert "AArch64 backend" in components
        assert "AlignmentFromAssumptions" in components


def _run(module, pipeline, bugs):
    optimized = module.clone()
    ctx = OptContext(bugs)
    PassManager([pipeline], ctx).run(optimized)
    verify_module(optimized)
    return optimized, ctx


@pytest.mark.parametrize("bug_id", sorted(TRIGGERS))
def test_clean_pipeline_is_sound_on_trigger(bug_id):
    text, pipeline = TRIGGERS[bug_id]
    module = parsed(text)
    optimized, ctx = _run(module, pipeline, set())
    result = check_refinement(
        module.get_function("f"), optimized.get_function("f"),
        module, optimized, RefinementConfig(max_inputs=48))
    assert result.verdict != Verdict.UNSOUND, str(result.counterexample)


@pytest.mark.parametrize("bug", sorted(b.issue_id for b in crash_bugs()))
def test_crash_bug_crashes_on_trigger(bug):
    text, pipeline = TRIGGERS[bug]
    module = parsed(text)
    with pytest.raises(OptimizerCrash) as exc_info:
        _run(module, pipeline, {bug})
    assert exc_info.value.bug_id == bug


@pytest.mark.parametrize("bug",
                         sorted(b.issue_id for b in miscompilation_bugs()))
def test_miscompilation_bug_fails_refinement_on_trigger(bug):
    text, pipeline = TRIGGERS[bug]
    module = parsed(text)
    optimized, ctx = _run(module, pipeline, {bug})
    assert bug in ctx.triggered_bugs, "buggy path did not execute"
    result = check_refinement(
        module.get_function("f"), optimized.get_function("f"),
        module, optimized, RefinementConfig(max_inputs=64))
    assert result.verdict == Verdict.UNSOUND
