"""Tests for structural function fingerprints (memoization keys)."""

from repro.ir import (called_definitions, fingerprint_closure,
                      fingerprint_function, references_definitions)

from helpers import parsed


def fp(text: str, name: str) -> str:
    return fingerprint_function(parsed(text).get_function(name))


BASE = """
define i32 @f(i32 %x, i32 %y) {
entry:
  %a = add nsw i32 %x, %y
  %c = icmp slt i32 %a, 7
  br i1 %c, label %then, label %done

then:
  br label %done

done:
  %r = phi i32 [ %a, %entry ], [ 42, %then ]
  ret i32 %r
}
"""

# Alpha-renamed twin of BASE: every value, block, argument, and the
# function itself renamed; structure untouched.
RENAMED = """
define i32 @g(i32 %left, i32 %right) {
start:
  %sum = add nsw i32 %left, %right
  %cmp = icmp slt i32 %sum, 7
  br i1 %cmp, label %yes, label %exit

yes:
  br label %exit

exit:
  %out = phi i32 [ %sum, %start ], [ 42, %yes ]
  ret i32 %out
}
"""


class TestAlphaEquivalence:
    def test_renamed_everything_collides(self):
        assert fp(BASE, "f") == fp(RENAMED, "g")

    def test_fingerprint_is_stable(self):
        assert fp(BASE, "f") == fp(BASE, "f")
        assert parsed(BASE).get_function("f").fingerprint() == fp(BASE, "f")

    def test_recursive_function_rename_collides(self):
        recur = """
define i32 @fact(i32 %n) {
  %c = icmp eq i32 %n, 0
  br i1 %c, label %base, label %rec

base:
  ret i32 1

rec:
  %m = sub i32 %n, 1
  %r = call i32 @fact(i32 %m)
  %p = mul i32 %r, %n
  ret i32 %p
}
"""
        assert fp(recur, "fact") == fp(recur.replace("fact", "factorial"),
                                       "factorial")


class TestSemanticSeparation:
    def test_constant_value_separates(self):
        assert fp(BASE, "f") != fp(BASE.replace("i32 %a, 7", "i32 %a, 8"),
                                   "f")

    def test_poison_flags_separate(self):
        assert fp(BASE, "f") != fp(BASE.replace("add nsw", "add"), "f")
        assert fp(BASE, "f") != fp(BASE.replace("add nsw", "add nuw"), "f")

    def test_icmp_predicate_separates(self):
        assert fp(BASE, "f") != fp(BASE.replace("icmp slt", "icmp sgt"), "f")

    def test_opcode_separates(self):
        assert fp(BASE, "f") != fp(BASE.replace("%a = add nsw", "%a = sub nsw"),
                                   "f")

    def test_operand_order_separates(self):
        swapped = BASE.replace("add nsw i32 %x, %y", "add nsw i32 %y, %x")
        assert fp(BASE, "f") != fp(swapped, "f")

    def test_function_attributes_separate(self):
        module = parsed(BASE)
        function = module.get_function("f")
        before = fingerprint_function(function)
        from repro.ir import Attribute

        function.attributes.add(Attribute("nofree"))
        assert fingerprint_function(function) != before

    def test_argument_attributes_separate(self):
        module = parsed(BASE)
        function = module.get_function("f")
        before = fingerprint_function(function)
        from repro.ir import Attribute

        function.arguments[0].attributes.add(Attribute("noundef"))
        assert fingerprint_function(function) != before

    def test_alignment_separates(self):
        mem = """
define void @s(ptr %p) {
  store i32 1, ptr %p, align 4
  ret void
}
"""
        assert fp(mem, "s") != fp(mem.replace("align 4", "align 8"), "s")

    def test_callee_name_separates(self):
        call = """
declare i32 @a(i32)
declare i32 @b(i32)

define i32 @f(i32 %x) {
  %r = call i32 @a(i32 %x)
  ret i32 %r
}
"""
        assert fp(call, "f") != fp(call.replace("call i32 @a", "call i32 @b"),
                                   "f")


CALLS = """
define i32 @leaf(i32 %x) {
  %r = add i32 %x, 1
  ret i32 %r
}

define i32 @caller(i32 %x) {
  %r = call i32 @leaf(i32 %x)
  ret i32 %r
}

declare void @ext(i32)

define void @decl_only(i32 %x) {
  call void @ext(i32 %x)
  ret void
}
"""


class TestClosure:
    def test_called_definitions(self):
        module = parsed(CALLS)
        callees = called_definitions(module.get_function("caller"))
        assert [f.name for f in callees] == ["leaf"]
        assert called_definitions(module.get_function("decl_only")) == []

    def test_references_definitions(self):
        module = parsed(CALLS)
        assert references_definitions(module.get_function("caller"))
        assert not references_definitions(module.get_function("leaf"))
        assert not references_definitions(module.get_function("decl_only"))

    def test_self_recursion_is_not_a_reference(self):
        recur = parsed("""
define i32 @f(i32 %n) {
  %r = call i32 @f(i32 %n)
  ret i32 %r
}
""")
        assert not references_definitions(recur.get_function("f"))
        function = recur.get_function("f")
        assert fingerprint_closure(function) == fingerprint_function(function)

    def test_closure_tracks_callee_bodies(self):
        module = parsed(CALLS)
        caller = module.get_function("caller")
        plain = fingerprint_function(caller)
        closed = fingerprint_closure(caller)
        assert closed != plain  # the closure folds @leaf in

        changed = parsed(CALLS.replace("add i32 %x, 1", "add i32 %x, 2"))
        caller2 = changed.get_function("caller")
        # Same body => same plain fingerprint, but the callee changed, so
        # the closures must separate (verify verdicts may differ).
        assert fingerprint_function(caller2) == plain
        assert fingerprint_closure(caller2) != closed

    def test_leaf_closure_is_plain_fingerprint(self):
        module = parsed(CALLS)
        leaf = module.get_function("leaf")
        assert fingerprint_closure(leaf) == fingerprint_function(leaf)
