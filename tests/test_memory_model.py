"""Tests for the byte-granular memory model."""

import pytest

from repro.tv.domain import POISON, Pointer
from repro.tv.memory import (Memory, MemoryFault, UNDEF_BYTE,
                             byte_size_of_width, bytes_to_int, int_to_bytes)


class TestByteCodecs:
    def test_little_endian(self):
        assert int_to_bytes(0x1234, 2) == [0x34, 0x12]
        assert bytes_to_int([0x34, 0x12]) == 0x1234

    def test_round_trip(self):
        for value in (0, 1, 0xFF, 0xDEADBEEF):
            size = max(1, (value.bit_length() + 7) // 8)
            assert bytes_to_int(int_to_bytes(value, size)) == value

    def test_width_to_bytes(self):
        assert byte_size_of_width(1) == 1
        assert byte_size_of_width(8) == 1
        assert byte_size_of_width(9) == 2
        assert byte_size_of_width(26) == 4
        assert byte_size_of_width(64) == 8


class TestMemory:
    def test_block_lifecycle(self):
        memory = Memory()
        pointer = memory.add_block("b", 4, [1, 2, 3, 4])
        assert memory.has_block("b")
        assert memory.block_size("b") == 4
        assert memory.load_bytes(pointer, 4) == [1, 2, 3, 4]

    def test_uninitialized_is_undef(self):
        memory = Memory()
        pointer = memory.add_block("b", 2)
        assert memory.load_bytes(pointer, 2) == [UNDEF_BYTE, UNDEF_BYTE]

    def test_store_and_offsets(self):
        memory = Memory()
        memory.add_block("b", 4, [0, 0, 0, 0])
        memory.store_bytes(Pointer("b", 1), [7, 8])
        assert memory.load_bytes(Pointer("b", 0), 4) == [0, 7, 8, 0]

    def test_poison_bytes(self):
        memory = Memory()
        memory.add_block("b", 2, [0, 0])
        memory.store_bytes(Pointer("b", 0), [POISON, 5])
        loaded = memory.load_bytes(Pointer("b", 0), 2)
        assert loaded[0] is POISON and loaded[1] == 5

    def test_null_access_faults(self):
        memory = Memory()
        with pytest.raises(MemoryFault):
            memory.load_bytes(Pointer("null", 0), 1)

    def test_oob_faults(self):
        memory = Memory()
        memory.add_block("b", 2)
        with pytest.raises(MemoryFault):
            memory.load_bytes(Pointer("b", 1), 2)
        with pytest.raises(MemoryFault):
            memory.load_bytes(Pointer("b", -1), 1)

    def test_dead_block_faults(self):
        memory = Memory()
        with pytest.raises(MemoryFault):
            memory.store_bytes(Pointer("ghost", 0), [1])

    def test_duplicate_block_rejected(self):
        memory = Memory()
        memory.add_block("b", 1)
        with pytest.raises(ValueError):
            memory.add_block("b", 1)

    def test_snapshot_is_immutable_copy(self):
        memory = Memory()
        memory.add_block("b", 2, [1, 2])
        snapshot = memory.snapshot(["b", "missing"])
        memory.store_bytes(Pointer("b", 0), [9, 9])
        assert snapshot == {"b": (1, 2)}

    def test_fill(self):
        memory = Memory()
        memory.add_block("b", 3)
        memory.fill("b", [4, 5, 6])
        assert memory.observable_digest("b") == (4, 5, 6)
        with pytest.raises(ValueError):
            memory.fill("b", [1])
