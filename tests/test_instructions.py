"""Tests for instruction classes and opcode metadata."""

import pytest

from repro.ir import (Argument, BasicBlock, BINARY_OPCODES, BinaryOperator,
                      BrInst, CastInst, COMMUTATIVE_OPCODES, ConstantInt,
                      EXACT_FLAG_OPCODES, FreezeInst, Function, FunctionType,
                      I1, I8, I16, I32, ICMP_PREDICATES, ICmpInst, LoadInst,
                      Module, PhiNode, PTR, RetInst, SelectInst, StoreInst,
                      SwitchInst, UnreachableInst, WRAPPING_FLAG_OPCODES)
from repro.ir.instructions import INVERTED_PREDICATE, SWAPPED_PREDICATE


def arg(t=I32, name="a"):
    return Argument(t, name)


class TestBinaryOperator:
    def test_result_type_follows_lhs(self):
        add = BinaryOperator("add", arg(), arg(I32, "b"))
        assert add.type is I32

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            BinaryOperator("fadd", arg(), arg())

    def test_flags_default_off(self):
        add = BinaryOperator("add", arg(), arg())
        assert not (add.nuw or add.nsw or add.exact)

    def test_flags_repr(self):
        add = BinaryOperator("add", arg(), arg(), nuw=True, nsw=True)
        assert add.flags_repr() == "nuw nsw "
        div = BinaryOperator("udiv", arg(), arg(), exact=True)
        assert div.flags_repr() == "exact "

    def test_commutativity_table(self):
        assert COMMUTATIVE_OPCODES == {"add", "mul", "and", "or", "xor"}
        assert BinaryOperator("add", arg(), arg()).is_commutative()
        assert not BinaryOperator("sub", arg(), arg()).is_commutative()

    def test_flag_support_tables(self):
        assert WRAPPING_FLAG_OPCODES == {"add", "sub", "mul", "shl"}
        assert EXACT_FLAG_OPCODES == {"udiv", "sdiv", "lshr", "ashr"}

    def test_clone_preserves_flags(self):
        add = BinaryOperator("shl", arg(), arg(), nuw=True)
        cloned = add.clone()
        assert cloned.opcode == "shl" and cloned.nuw and not cloned.nsw
        assert cloned is not add

    def test_all_binary_opcodes_constructible(self):
        for opcode in BINARY_OPCODES:
            inst = BinaryOperator(opcode, arg(), arg())
            assert inst.opcode == opcode


class TestICmp:
    def test_result_is_i1(self):
        cmp = ICmpInst("slt", arg(), arg())
        assert cmp.type is I1

    def test_predicate_tables_complete(self):
        assert set(SWAPPED_PREDICATE) == set(ICMP_PREDICATES)
        assert set(INVERTED_PREDICATE) == set(ICMP_PREDICATES)

    def test_swapped_is_involution(self):
        for pred in ICMP_PREDICATES:
            assert SWAPPED_PREDICATE[SWAPPED_PREDICATE[pred]] == pred

    def test_inverted_is_involution(self):
        for pred in ICMP_PREDICATES:
            assert INVERTED_PREDICATE[INVERTED_PREDICATE[pred]] == pred

    def test_classification(self):
        assert ICmpInst("slt", arg(), arg()).is_signed()
        assert ICmpInst("ult", arg(), arg()).is_unsigned()
        assert ICmpInst("eq", arg(), arg()).is_equality()

    def test_bad_predicate(self):
        with pytest.raises(ValueError):
            ICmpInst("lt", arg(), arg())


class TestCasts:
    def test_cast_types(self):
        z = CastInst("zext", arg(I8), I32)
        assert z.src_type is I8 and z.type is I32

    def test_bad_opcode(self):
        with pytest.raises(ValueError):
            CastInst("bitcast", arg(), I32)


class TestSelectFreeze:
    def test_select_type(self):
        s = SelectInst(arg(I1, "c"), arg(), arg(I32, "b"))
        assert s.type is I32

    def test_freeze_type(self):
        f = FreezeInst(arg(I16))
        assert f.type is I16


class TestMemoryOps:
    def test_load(self):
        load = LoadInst(I32, arg(PTR, "p"), align=4)
        assert load.type is I32 and load.align == 4
        assert load.may_read_memory() and not load.may_write_memory()

    def test_store(self):
        store = StoreInst(arg(I32), arg(PTR, "p"))
        assert store.type.is_void()
        assert store.may_write_memory() and store.has_side_effects()


class TestTerminators:
    def test_ret_void(self):
        ret = RetInst()
        assert ret.return_value is None and ret.is_terminator()

    def test_ret_value(self):
        value = arg()
        assert RetInst(value).return_value is value

    def test_unconditional_br(self):
        block = BasicBlock("bb")
        br = BrInst(block)
        assert not br.is_conditional()
        assert br.successors() == [block]

    def test_conditional_br(self):
        t, f = BasicBlock("t"), BasicBlock("f")
        br = BrInst(arg(I1, "c"), t, f)
        assert br.is_conditional()
        assert br.successors() == [t, f]

    def test_br_arity(self):
        with pytest.raises(ValueError):
            BrInst(arg(I1, "c"), BasicBlock("x"))

    def test_switch(self):
        d, a = BasicBlock("d"), BasicBlock("a")
        sw = SwitchInst(arg(I8, "v"), d, [(ConstantInt(I8, 3), a)])
        assert sw.default is d
        assert sw.cases() == [(sw.operands[2], a)]
        assert sw.successors() == [d, a]

    def test_unreachable(self):
        assert UnreachableInst().is_terminator()


class TestPhi:
    def test_incoming(self):
        a, b = BasicBlock("a"), BasicBlock("b")
        x, y = arg(I32, "x"), arg(I32, "y")
        phi = PhiNode(I32, [(x, a), (y, b)])
        assert phi.incoming() == [(x, a), (y, b)]
        assert phi.incoming_value_for(a) is x
        assert phi.incoming_value_for(b) is y
        assert phi.incoming_value_for(BasicBlock("c")) is None

    def test_add_incoming(self):
        a = BasicBlock("a")
        phi = PhiNode(I32)
        phi.add_incoming(arg(), a)
        assert len(phi.incoming()) == 1
        assert a.num_uses() == 1

    def test_remove_incoming(self):
        a, b = BasicBlock("a"), BasicBlock("b")
        x, y = arg(I32, "x"), arg(I32, "y")
        phi = PhiNode(I32, [(x, a), (y, b)])
        phi.remove_incoming(a)
        assert phi.incoming() == [(y, b)]
        assert x.num_uses() == 0
        assert a.num_uses() == 0

    def test_set_incoming_value(self):
        a = BasicBlock("a")
        x, z = arg(I32, "x"), arg(I32, "z")
        phi = PhiNode(I32, [(x, a)])
        phi.set_incoming_value_for(a, z)
        assert phi.incoming_value_for(a) is z


class TestCallIntrinsicNames:
    def _call(self, name, args=()):
        from repro.ir.instructions import CallInst

        module = Module()
        ft = FunctionType(I32, tuple(a.type for a in args))
        callee = Function(ft, name, module)
        return CallInst(callee, list(args))

    def test_intrinsic_detection(self):
        call = self._call("llvm.smax.i32", (arg(), arg()))
        assert call.is_intrinsic()
        assert call.intrinsic_name() == "llvm.smax"

    def test_non_intrinsic(self):
        call = self._call("foo")
        assert not call.is_intrinsic()
        assert call.intrinsic_name() == ""

    def test_erase_from_parent(self):
        block = BasicBlock("bb")
        value = arg()
        add = BinaryOperator("add", value, value)
        block.append(add)
        add.erase_from_parent()
        assert add.parent is None
        assert value.num_uses() == 0
        assert len(block) == 0
