"""Fault-injection tests for the watchdog/quarantine runtime.

Uses :mod:`repro.fuzz.faults` to deterministically inject raises,
hangs, and worker deaths by job index, and asserts the campaign
contains each failure mode exactly as documented: hangs are detected
within deadline × grace, poison jobs are quarantined after bounded
retries without failing the campaign, and transient faults heal on
retry with results identical to a fault-free run.

Also home to the on-disk crash-consistency matrix: every fsync'd
journal (checkpoint, corpus, findings) and every single-record queue
file survives a torn write or a truncated multi-byte UTF-8 tail — the
reader drops exactly the damaged record, never raises, and never
parses half a record as state.
"""

import json
import os
import time

import pytest

from repro.fuzz import (CampaignConfig, CampaignExecutor, DeadlineExceeded,
                        FaultSpec, FaultyRunner, FuzzDriver, ShardJob,
                        run_campaign, run_jobs)
from repro.fuzz.parallel import execute_job

SMALL = dict(corpus_size=6, mutants_per_file=10, max_inputs=8,
             pipelines=("O2",))


def report_key(report):
    return (
        report.total_iterations,
        report.total_findings,
        {bug_id: (o.found, o.first_file, o.first_seed, o.findings)
         for bug_id, o in report.outcomes.items()},
    )


@pytest.fixture(scope="module")
def reference():
    return run_campaign(CampaignConfig(workers=1, **SMALL))


class TestCooperativeDeadline:
    def test_driver_raises_at_stage_boundary(self):
        driver = FuzzDriver.from_text(
            "define i8 @f(i8 %x) {\n  %r = add i8 %x, 1\n  ret i8 %r\n}\n")
        driver.set_deadline(0.0)
        with pytest.raises(DeadlineExceeded):
            driver.run(iterations=5)

    def test_execute_job_converts_overrun_to_hang_shard(self):
        job = ShardJob(job_index=0, file_name="f.ll",
                       text="define i8 @f(i8 %x) {\n"
                            "  %r = add i8 %x, 1\n  ret i8 %r\n}\n",
                       config=CampaignConfig(**SMALL).job_config(0, "O2"),
                       iterations=10, deadline=1e-9)
        result = execute_job(job)
        assert result.failure_kind == "hang"
        assert "deadline" in result.error
        assert not result.findings

    def test_generous_deadline_changes_nothing(self, reference):
        report = run_campaign(CampaignConfig(
            workers=1, job_deadline=300.0, **SMALL))
        assert report_key(report) == report_key(reference)
        assert not report.failed_shards

    def test_sequential_hang_recorded_not_raised(self):
        report = run_campaign(CampaignConfig(
            workers=1, job_deadline=1e-9, grace_factor=1.0, **SMALL))
        assert len(report.failed_shards) == 6
        assert all(f.kind == "hang" for f in report.failed_shards)
        assert report.total_iterations == 0


class TestWatchdog:
    def test_hung_worker_is_killed_within_grace(self, reference):
        """An in-worker sleep never reaches a cooperative check; only
        the supervisor-side timer can end it — within deadline×grace
        plus scheduling slack, not the 60s the sleep asks for."""
        runner = FaultyRunner({1: FaultSpec("hang", seconds=60.0)})
        started = time.perf_counter()
        report = CampaignExecutor(
            CampaignConfig(workers=2, job_deadline=0.3, grace_factor=1.5,
                           **SMALL),
            job_runner=runner).execute()
        elapsed = time.perf_counter() - started
        assert [f.job_index for f in report.failed_shards] == [1]
        assert report.failed_shards[0].kind == "hang"
        assert "deadline" in report.failed_shards[0].error
        assert elapsed < 30.0
        # Everyone else still ran and merged.
        assert report.total_iterations == 5 * SMALL["mutants_per_file"]

    def test_hang_then_quarantine_after_retries(self):
        runner = FaultyRunner({1: FaultSpec("hang", seconds=60.0)})
        report = CampaignExecutor(
            CampaignConfig(workers=2, job_deadline=0.2, grace_factor=1.5,
                           max_job_retries=1, retry_backoff=0.01, **SMALL),
            job_runner=runner).execute()
        assert not report.failed_shards
        assert [q.job_index for q in report.quarantined] == [1]
        assert report.quarantined[0].attempts == 2
        assert "hang" in report.quarantined[0].error


class TestQuarantine:
    def test_poison_job_quarantined_without_failing_campaign(self):
        runner = FaultyRunner({2: FaultSpec("exit")})
        report = CampaignExecutor(
            CampaignConfig(workers=2, max_job_retries=2, retry_backoff=0.01,
                           **SMALL),
            job_runner=runner).execute()
        assert [q.job_index for q in report.quarantined] == [2]
        quarantined = report.quarantined[0]
        assert quarantined.attempts == 3  # first try + 2 retries
        assert quarantined.file
        assert quarantined.pipeline == "O2"
        assert quarantined.seed >= 0  # the poison seed is reproducible
        assert not report.failed_shards
        assert report.total_iterations == 5 * SMALL["mutants_per_file"]

    def test_transient_crash_heals_on_retry(self, tmp_path, reference):
        runner = FaultyRunner({2: FaultSpec("exit", times=1)},
                              state_dir=str(tmp_path))
        report = CampaignExecutor(
            CampaignConfig(workers=2, max_job_retries=1, retry_backoff=0.01,
                           **SMALL),
            job_runner=runner).execute()
        assert not report.quarantined
        assert not report.failed_shards
        assert report_key(report) == report_key(reference)

    def test_raising_job_is_not_retried(self, tmp_path):
        """Only hangs and worker deaths are retried: a deterministic
        in-worker exception is recorded first time, every time."""
        runner = FaultyRunner({0: FaultSpec("raise")})
        report = CampaignExecutor(
            CampaignConfig(workers=2, max_job_retries=3, retry_backoff=0.01,
                           **SMALL),
            job_runner=runner).execute()
        assert [f.job_index for f in report.failed_shards] == [0]
        assert report.failed_shards[0].kind == "error"
        assert "injected fault" in report.failed_shards[0].error
        assert not report.quarantined

    def test_times_needs_state_dir(self):
        with pytest.raises(ValueError):
            FaultyRunner({0: FaultSpec("exit", times=1)})


class TestSupervisedScheduler:
    def test_results_ordered_and_complete_without_faults(self, reference):
        """The supervised path (engaged by max_job_retries) must match
        the pool and sequential paths bit-for-bit when nothing fails."""
        report = run_campaign(CampaignConfig(
            workers=3, max_job_retries=2, **SMALL))
        assert report_key(report) == report_key(reference)
        assert not report.failed_shards and not report.quarantined

    def test_deadline_routes_to_supervised_scheduler(self, reference):
        report = run_campaign(CampaignConfig(
            workers=3, job_deadline=300.0, **SMALL))
        assert report_key(report) == report_key(reference)

    def test_time_budget_skips_unstarted_jobs(self):
        jobs = CampaignExecutor(CampaignConfig(**SMALL)).build_jobs()
        for job in jobs:
            job.deadline = 300.0
        results = run_jobs(jobs, workers=2, time_budget=1e-9,
                           max_retries=1)
        assert results == []

    def test_table_footer_reports_health(self):
        runner = FaultyRunner({2: FaultSpec("exit")})
        report = CampaignExecutor(
            CampaignConfig(workers=2, max_job_retries=1, retry_backoff=0.01,
                           **SMALL),
            job_runner=runner).execute()
        table = report.table()
        assert "quarantined" in table


class TestRetryJitter:
    """CampaignConfig.retry_jitter: decorrelated but reproducible backoff."""

    def test_default_off_preserves_exact_delays(self):
        from repro.fuzz.parallel import retry_delay
        assert retry_delay(0.5, 1) == 0.5
        assert retry_delay(0.5, 3) == 2.0
        assert retry_delay(0.5, 3, jitter=0.0, jitter_seed="abc") == 2.0

    def test_jitter_is_seeded_and_bounded(self):
        from repro.fuzz.parallel import retry_delay
        base = retry_delay(0.5, 2)
        jittered = retry_delay(0.5, 2, jitter=0.5, jitter_seed="fp", job_index=3)
        assert base <= jittered < base * 1.5
        # Pure function of (seed, job, attempt): reproducible...
        assert jittered == retry_delay(0.5, 2, jitter=0.5,
                                       jitter_seed="fp", job_index=3)
        # ...and decorrelated across jobs and attempts.
        delays = {retry_delay(0.5, 2, jitter=0.5, jitter_seed="fp",
                              job_index=j) for j in range(8)}
        assert len(delays) > 1

    def test_jittered_campaign_matches_reference(self, tmp_path, reference):
        """Jitter changes retry *timing* only, never findings."""
        runner = FaultyRunner({1: FaultSpec("exit", times=1)},
                              state_dir=str(tmp_path))
        report = CampaignExecutor(
            CampaignConfig(workers=2, max_job_retries=2, retry_backoff=0.01,
                           retry_jitter=0.5, **SMALL),
            job_runner=runner).execute()
        assert report_key(report) == report_key(reference)
        assert not report.quarantined

    def test_negative_jitter_rejected(self):
        from repro.fuzz.campaign import ConfigError
        with pytest.raises(ConfigError):
            CampaignConfig(retry_jitter=-0.1, **SMALL).validate()


# ---------------------------------------------------------------------------
# Crash consistency of every fsync'd journal and queue file.
# ---------------------------------------------------------------------------

# A detail string whose JSON encoding ends in multi-byte UTF-8, so a
# byte-level truncation of the final record splits a sequence.
MULTIBYTE = "péché λόγος ✓"


def truncate_tail_bytes(path, count=2):
    """Cut the last ``count`` bytes — mid-UTF-8-sequence by design."""
    size = os.path.getsize(path)
    with open(path, "rb+") as stream:
        stream.truncate(size - count)


class TestJournalCrashConsistency:
    def test_buglog_tolerates_truncated_multibyte_tail(self, tmp_path):
        from repro.fuzz import BugLog, Finding
        path = str(tmp_path / "bugs.jsonl")
        log = BugLog(path, fsync=True)
        log.record(Finding(kind="crash", seed=1, detail="plain"))
        log.record(Finding(kind="miscompilation", seed=2, detail=MULTIBYTE))
        truncate_tail_bytes(path)
        loaded = BugLog.load(path)
        assert [f.seed for f in loaded.findings] == [1]

    def test_buglog_tolerates_torn_write_tail(self, tmp_path):
        from repro.fuzz import BugLog, Finding, torn_write
        path = str(tmp_path / "bugs.jsonl")
        log = BugLog(path, fsync=True)
        log.record(Finding(kind="crash", seed=1))
        with open(path, "rb") as stream:
            good = stream.read()
        partial = Finding(kind="crash", seed=2,
                          detail=MULTIBYTE).to_json().encode("utf-8")
        torn_write(path, good + partial, fraction=0.9)
        loaded = BugLog.load(path)
        assert [f.seed for f in loaded.findings] == [1]

    def test_corpus_journal_tolerates_truncated_multibyte_tail(
            self, tmp_path):
        from repro.fuzz import Corpus, CorpusEntry, CorpusJournal
        path = str(tmp_path / "corpus.jsonl")
        journal = CorpusJournal(path)
        corpus = Corpus(max_size=8, journal=journal)
        corpus.consider(CorpusEntry(text="a", fingerprint="fa",
                                    features=frozenset(("x",))))
        corpus.consider(CorpusEntry(text=MULTIBYTE, fingerprint="fb",
                                    features=frozenset(("y",))))
        journal.close()
        truncate_tail_bytes(path)
        loaded = Corpus.load(path, max_size=8)
        assert [e.fingerprint for e in loaded.entries()] == ["fa"]

    def test_checkpoint_journal_tolerates_truncated_multibyte_tail(
            self, tmp_path, reference):
        from repro.fuzz.checkpoint import JOURNAL_NAME
        config = CampaignConfig(workers=1, checkpoint_dir=str(tmp_path),
                                **SMALL)
        run_campaign(config)
        path = os.path.join(str(tmp_path), JOURNAL_NAME)
        # Graft a record whose tail is a split multi-byte sequence.
        with open(path, "ab") as stream:
            stream.write(json.dumps({"kind": "shard", "job_index": 99,
                                     "error": MULTIBYTE}).encode()[:-2])
        resumed = run_campaign(config, resume=True)
        assert report_key(resumed) == report_key(reference)

    def test_damage_journal_on_corpus_journal(self, tmp_path):
        from repro.fuzz import (Corpus, CorpusEntry, CorpusJournal,
                                damage_journal)
        path = str(tmp_path / "corpus.jsonl")
        journal = CorpusJournal(path)
        corpus = Corpus(max_size=8, journal=journal)
        corpus.consider(CorpusEntry(text="a", fingerprint="fa",
                                    features=frozenset(("x",))))
        corpus.consider(CorpusEntry(text="b", fingerprint="fb",
                                    features=frozenset(("y",))))
        journal.close()
        damage_journal(path)
        loaded = Corpus.load(path, max_size=8)
        assert [e.fingerprint for e in loaded.entries()] == ["fa"]

    def test_damage_journal_on_single_record_queue_file(self, tmp_path):
        from repro.fuzz import damage_journal
        from repro.fuzz.dist import WorkQueue
        queue = WorkQueue(str(tmp_path), node="n1")
        queue._write_atomic(queue.lease_path(0),
                            {"kind": "lease", "node": "n1", "attempt": 1,
                             "claimed_at": 0.0, "expires_at": 9.0})
        with pytest.raises(ValueError):
            damage_journal(queue.lease_path(0))  # journal contract kept
        damage_journal(queue.lease_path(0), allow_single=True)
        assert queue.read_lease(0) is None  # damaged == absent

    def test_torn_queue_files_read_as_absent(self, tmp_path):
        from repro.fuzz import torn_write
        from repro.fuzz.dist import WorkQueue
        queue = WorkQueue(str(tmp_path), node="n1")
        payload = json.dumps({"kind": "manifest", "fingerprint": "f" * 64,
                              "detail": MULTIBYTE}).encode("utf-8")
        torn_write(queue.manifest_path(), payload, fraction=0.6)
        assert queue.manifest() is None
        os.makedirs(os.path.dirname(queue.tombstone_path(0)), exist_ok=True)
        torn_write(queue.tombstone_path(0), payload, fraction=0.3)
        assert not queue.has_tombstone(0)
