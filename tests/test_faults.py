"""Fault-injection tests for the watchdog/quarantine runtime.

Uses :mod:`repro.fuzz.faults` to deterministically inject raises,
hangs, and worker deaths by job index, and asserts the campaign
contains each failure mode exactly as documented: hangs are detected
within deadline × grace, poison jobs are quarantined after bounded
retries without failing the campaign, and transient faults heal on
retry with results identical to a fault-free run.
"""

import time

import pytest

from repro.fuzz import (CampaignConfig, CampaignExecutor, DeadlineExceeded,
                        FaultSpec, FaultyRunner, FuzzDriver, ShardJob,
                        run_campaign, run_jobs)
from repro.fuzz.parallel import execute_job

SMALL = dict(corpus_size=6, mutants_per_file=10, max_inputs=8,
             pipelines=("O2",))


def report_key(report):
    return (
        report.total_iterations,
        report.total_findings,
        {bug_id: (o.found, o.first_file, o.first_seed, o.findings)
         for bug_id, o in report.outcomes.items()},
    )


@pytest.fixture(scope="module")
def reference():
    return run_campaign(CampaignConfig(workers=1, **SMALL))


class TestCooperativeDeadline:
    def test_driver_raises_at_stage_boundary(self):
        driver = FuzzDriver.from_text(
            "define i8 @f(i8 %x) {\n  %r = add i8 %x, 1\n  ret i8 %r\n}\n")
        driver.set_deadline(0.0)
        with pytest.raises(DeadlineExceeded):
            driver.run(iterations=5)

    def test_execute_job_converts_overrun_to_hang_shard(self):
        job = ShardJob(job_index=0, file_name="f.ll",
                       text="define i8 @f(i8 %x) {\n"
                            "  %r = add i8 %x, 1\n  ret i8 %r\n}\n",
                       config=CampaignConfig(**SMALL).job_config(0, "O2"),
                       iterations=10, deadline=1e-9)
        result = execute_job(job)
        assert result.failure_kind == "hang"
        assert "deadline" in result.error
        assert not result.findings

    def test_generous_deadline_changes_nothing(self, reference):
        report = run_campaign(CampaignConfig(
            workers=1, job_deadline=300.0, **SMALL))
        assert report_key(report) == report_key(reference)
        assert not report.failed_shards

    def test_sequential_hang_recorded_not_raised(self):
        report = run_campaign(CampaignConfig(
            workers=1, job_deadline=1e-9, grace_factor=1.0, **SMALL))
        assert len(report.failed_shards) == 6
        assert all(f.kind == "hang" for f in report.failed_shards)
        assert report.total_iterations == 0


class TestWatchdog:
    def test_hung_worker_is_killed_within_grace(self, reference):
        """An in-worker sleep never reaches a cooperative check; only
        the supervisor-side timer can end it — within deadline×grace
        plus scheduling slack, not the 60s the sleep asks for."""
        runner = FaultyRunner({1: FaultSpec("hang", seconds=60.0)})
        started = time.perf_counter()
        report = CampaignExecutor(
            CampaignConfig(workers=2, job_deadline=0.3, grace_factor=1.5,
                           **SMALL),
            job_runner=runner).execute()
        elapsed = time.perf_counter() - started
        assert [f.job_index for f in report.failed_shards] == [1]
        assert report.failed_shards[0].kind == "hang"
        assert "deadline" in report.failed_shards[0].error
        assert elapsed < 30.0
        # Everyone else still ran and merged.
        assert report.total_iterations == 5 * SMALL["mutants_per_file"]

    def test_hang_then_quarantine_after_retries(self):
        runner = FaultyRunner({1: FaultSpec("hang", seconds=60.0)})
        report = CampaignExecutor(
            CampaignConfig(workers=2, job_deadline=0.2, grace_factor=1.5,
                           max_job_retries=1, retry_backoff=0.01, **SMALL),
            job_runner=runner).execute()
        assert not report.failed_shards
        assert [q.job_index for q in report.quarantined] == [1]
        assert report.quarantined[0].attempts == 2
        assert "hang" in report.quarantined[0].error


class TestQuarantine:
    def test_poison_job_quarantined_without_failing_campaign(self):
        runner = FaultyRunner({2: FaultSpec("exit")})
        report = CampaignExecutor(
            CampaignConfig(workers=2, max_job_retries=2, retry_backoff=0.01,
                           **SMALL),
            job_runner=runner).execute()
        assert [q.job_index for q in report.quarantined] == [2]
        quarantined = report.quarantined[0]
        assert quarantined.attempts == 3  # first try + 2 retries
        assert quarantined.file
        assert quarantined.pipeline == "O2"
        assert quarantined.seed >= 0  # the poison seed is reproducible
        assert not report.failed_shards
        assert report.total_iterations == 5 * SMALL["mutants_per_file"]

    def test_transient_crash_heals_on_retry(self, tmp_path, reference):
        runner = FaultyRunner({2: FaultSpec("exit", times=1)},
                              state_dir=str(tmp_path))
        report = CampaignExecutor(
            CampaignConfig(workers=2, max_job_retries=1, retry_backoff=0.01,
                           **SMALL),
            job_runner=runner).execute()
        assert not report.quarantined
        assert not report.failed_shards
        assert report_key(report) == report_key(reference)

    def test_raising_job_is_not_retried(self, tmp_path):
        """Only hangs and worker deaths are retried: a deterministic
        in-worker exception is recorded first time, every time."""
        runner = FaultyRunner({0: FaultSpec("raise")})
        report = CampaignExecutor(
            CampaignConfig(workers=2, max_job_retries=3, retry_backoff=0.01,
                           **SMALL),
            job_runner=runner).execute()
        assert [f.job_index for f in report.failed_shards] == [0]
        assert report.failed_shards[0].kind == "error"
        assert "injected fault" in report.failed_shards[0].error
        assert not report.quarantined

    def test_times_needs_state_dir(self):
        with pytest.raises(ValueError):
            FaultyRunner({0: FaultSpec("exit", times=1)})


class TestSupervisedScheduler:
    def test_results_ordered_and_complete_without_faults(self, reference):
        """The supervised path (engaged by max_job_retries) must match
        the pool and sequential paths bit-for-bit when nothing fails."""
        report = run_campaign(CampaignConfig(
            workers=3, max_job_retries=2, **SMALL))
        assert report_key(report) == report_key(reference)
        assert not report.failed_shards and not report.quarantined

    def test_deadline_routes_to_supervised_scheduler(self, reference):
        report = run_campaign(CampaignConfig(
            workers=3, job_deadline=300.0, **SMALL))
        assert report_key(report) == report_key(reference)

    def test_time_budget_skips_unstarted_jobs(self):
        jobs = CampaignExecutor(CampaignConfig(**SMALL)).build_jobs()
        for job in jobs:
            job.deadline = 300.0
        results = run_jobs(jobs, workers=2, time_budget=1e-9,
                           max_retries=1)
        assert results == []

    def test_table_footer_reports_health(self):
        runner = FaultyRunner({2: FaultSpec("exit")})
        report = CampaignExecutor(
            CampaignConfig(workers=2, max_job_retries=1, retry_backoff=0.01,
                           **SMALL),
            job_runner=runner).execute()
        table = report.table()
        assert "quarantined" in table
