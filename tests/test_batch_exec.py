"""Differential tests for batched (struct-of-arrays) execution.

The batched runner must be a pure performance layer: for every lane it
has to reproduce the scalar interpreter's results *bit for bit* —
status, return value (including poison), observable memory, UB detail
strings, and exact step counts — across the whole nondeterminism tree.
These tests drive arbitrary compiled plans and input batches through
both paths and compare lane by lane, then check the refinement- and
driver-level invariance contracts (`RefinementConfig.batched` /
``--no-batched-exec`` may change speed, never findings or metrics).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz import FuzzConfig, FuzzDriver, corpus_modules
from repro.ir import parse_module
from repro.mutate import Mutator, MutatorConfig
from repro.opt import OptContext, PassManager
from repro.tv import (
    ExecutionLimits,
    Interpreter,
    PathOracle,
    RefinementConfig,
    StepLimitExceeded,
    UBError,
    check_function_supported,
    check_refinement,
    reset_global_plan_cache,
)
from repro.tv.batch import (
    BatchRunner,
    BatchUnsupported,
    batch_program_for,
    global_batch_stats,
)
from repro.tv.oracle import advance_path
from repro.tv.refine import _inputs_for, _prepare_input

from helpers import parsed


# ---------------------------------------------------------------------------
# Lane-by-lane comparison harness.
# ---------------------------------------------------------------------------


def _scalar_reference(module, function, lanes, limits):
    """Per-lane (status, value, memory, detail, steps) via the scalar
    arena — the ground truth ``run_batch`` must reproduce exactly."""
    interp = Interpreter(module, None, limits, compiled=True)
    results = []
    for runtime_args, blocks, observable, oracle in lanes:
        interp.reset(oracle)
        for block_id, size, contents in blocks:
            interp.memory.add_block(block_id, size, list(contents))
        try:
            value = interp.run(function, runtime_args)
        except UBError as ub:
            results.append(("ub", None, (), ub.reason, interp._steps))
            continue
        except StepLimitExceeded:
            results.append(("timeout", None, (), "", interp._steps))
            continue
        snapshot = interp.memory.snapshot(observable)
        memory = tuple(sorted(snapshot.items()))
        results.append(("ok", value, memory, "", interp._steps))
    return results


def assert_lanes_match(module, function, inputs, limits=None, max_rounds=8):
    """Drive ``inputs`` through both executors across the whole
    nondeterminism tree (one batched run per round, scalar lanes as the
    oracle) and require bit-identical 5-tuples plus identical oracle
    bookkeeping.  Returns the number of compared lanes (0 when the
    batch compiler declined the function)."""
    limits = limits or ExecutionLimits()
    interp = Interpreter(module, None, limits, compiled=True)
    program = batch_program_for(interp.prepare(function))
    if program is None:
        return 0
    runner = BatchRunner(module, limits)
    prepared = [_prepare_input(function, test_input) for test_input in inputs]
    paths = [[] for _ in inputs]
    pending = list(range(len(inputs)))
    compared = 0
    for _ in range(max_rounds):
        if not pending:
            break
        scalar_oracles = [PathOracle(list(paths[i])) for i in pending]
        batch_oracles = [PathOracle(list(paths[i])) for i in pending]
        scalar = _scalar_reference(
            module,
            function,
            [prepared[i] + (o,) for i, o in zip(pending, scalar_oracles)],
            limits,
        )
        batched = runner.run_batch(
            function,
            program,
            [prepared[i] + (o,) for i, o in zip(pending, batch_oracles)],
        )
        for position, lane in enumerate(pending):
            assert batched[position] == scalar[position], (
                f"@{function.name} lane {lane} path {paths[lane]}: "
                f"batched={batched[position]!r} scalar={scalar[position]!r}"
            )
            s_oracle = scalar_oracles[position]
            b_oracle = batch_oracles[position]
            assert b_oracle.taken == s_oracle.taken
            assert b_oracle.domain_sizes == s_oracle.domain_sizes
            assert b_oracle.domain_truncated == s_oracle.domain_truncated
        compared += len(pending)
        next_pending = []
        for position, lane in enumerate(pending):
            oracle = scalar_oracles[position]
            path = advance_path(oracle.taken, oracle.domain_sizes)
            if path is not None:
                paths[lane] = path
                next_pending.append(lane)
        pending = next_pending
    return compared


def check_text(text, limits=None, max_inputs=12):
    """Run every supported definition of an IR snippet through the
    harness; the batch compiler must accept at least one function."""
    module = parsed(text)
    config = RefinementConfig(max_inputs=max_inputs)
    total = 0
    for function in module.definitions():
        if check_function_supported(function) is not None:
            continue
        inputs = _inputs_for(function, config)
        total += assert_lanes_match(module, function, inputs, limits=limits)
    assert total > 0, "batch compiler declined every function"
    return total


# ---------------------------------------------------------------------------
# Targeted edge cases: UB details, poison, divergence, steps.
# ---------------------------------------------------------------------------


class TestLaneBitEquality:
    def test_division_ub_details(self):
        # Division UB carries a reason string; lanes that trap must
        # report the same detail (and step count) as scalar runs.
        check_text("""
        define i32 @div(i32 %x, i32 %y) {
          %q = sdiv i32 %x, %y
          %r = srem i32 %q, %y
          %u = udiv i32 %r, %x
          ret i32 %u
        }
        """)

    def test_shift_poison_flows_to_return(self):
        check_text("""
        define i32 @shifty(i32 %x) {
          %wide = shl i32 %x, 33
          %mix = add i32 %wide, 1
          ret i32 %mix
        }
        """)

    def test_branch_divergence_regroups_lanes(self):
        # Lanes split by sign at the branch, re-merge at the join, and
        # the phi must pick per-lane values from the right predecessor.
        splits_before = global_batch_stats().divergence_splits
        check_text("""
        define i32 @abs(i32 %x) {
        entry:
          %neg = icmp slt i32 %x, 0
          br i1 %neg, label %flip, label %join
        flip:
          %flipped = sub i32 0, %x
          br label %join
        join:
          %r = phi i32 [ %flipped, %flip ], [ %x, %entry ]
          ret i32 %r
        }
        """)
        assert global_batch_stats().divergence_splits > splits_before

    def test_loop_step_counts(self):
        # A data-dependent loop: per-lane step counts differ and must
        # match the scalar interpreter exactly.
        check_text("""
        define i32 @count(i32 %n) {
        entry:
          br label %loop
        loop:
          %i = phi i32 [ 0, %entry ], [ %next, %loop ]
          %next = add i32 %i, 1
          %done = icmp uge i32 %next, %n
          br i1 %done, label %exit, label %loop
        exit:
          ret i32 %i
        }
        """)

    def test_step_limit_timeout_counts(self):
        # With a tiny budget some lanes time out; the recorded step
        # count at the trap point must equal the scalar one.
        check_text(
            """
        define i32 @spin(i32 %n) {
        entry:
          br label %loop
        loop:
          %i = phi i32 [ 0, %entry ], [ %next, %loop ]
          %next = add i32 %i, 1
          %done = icmp uge i32 %next, %n
          br i1 %done, label %exit, label %loop
        exit:
          ret i32 %i
        }
        """,
            limits=ExecutionLimits(max_steps=9),
        )

    def test_memory_store_load_and_null(self):
        # Pointer inputs include null and aliasing candidates; faults
        # become UB with the same detail, stores stay observable.
        check_text("""
        define i32 @rw(ptr %p, ptr %q) {
          %a = load i32, ptr %p
          store i32 %a, ptr %q
          %b = load i32, ptr %q
          ret i32 %b
        }
        """)

    def test_undef_and_freeze_nondeterminism(self):
        # undef fans out through the per-lane oracles; every path of
        # the tree is compared, including truncated-domain accounting.
        check_text("""
        define i32 @fr(i32 %x) {
          %u = add i32 undef, %x
          %f = freeze i32 %u
          %r = add i32 %f, %f
          ret i32 %r
        }
        """)

    def test_intrinsics_and_alloca(self):
        check_text("""
        declare i32 @llvm.ctpop.i32(i32)
        declare i32 @llvm.smax.i32(i32, i32)

        define i32 @mix(i32 %x, i32 %y) {
          %slot = alloca i32
          store i32 %x, ptr %slot
          %v = load i32, ptr %slot
          %pop = call i32 @llvm.ctpop.i32(i32 %v)
          %m = call i32 @llvm.smax.i32(i32 %pop, i32 %y)
          ret i32 %m
        }
        """)

    def test_nested_calls_use_scalar_lane_interp(self):
        # Calls leave the columnar fast path; the per-lane scalar
        # interpreters must keep call counters and steps in sync.
        check_text("""
        define i32 @double(i32 %x) {
          %d = add i32 %x, %x
          ret i32 %d
        }

        define i32 @outer(i32 %x) {
          %a = call i32 @double(i32 %x)
          %b = call i32 @double(i32 %a)
          ret i32 %b
        }
        """)

    def test_switch_multiway_divergence(self):
        check_text("""
        define i32 @pick(i32 %x) {
        entry:
          switch i32 %x, label %other [
            i32 0, label %zero
            i32 1, label %one
          ]
        zero:
          ret i32 100
        one:
          ret i32 200
        other:
          %r = add i32 %x, 7
          ret i32 %r
        }
        """)


# ---------------------------------------------------------------------------
# Property test: arbitrary plans x input batches.
# ---------------------------------------------------------------------------


class TestArbitraryPlans:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_corpus_mutants_bit_identical(self, seed):
        # Arbitrary programs: corpus archetypes run through the
        # mutation engine, so plans cover the whole op inventory in
        # random combinations.  Every supported function must agree
        # lane-for-lane with the scalar interpreter.
        pairs = corpus_modules(4, seed=seed % 1000 + 1)
        module = pairs[seed % len(pairs)][1]
        mutant, _record = Mutator(module, MutatorConfig(max_mutations=3)).create_mutant(
            seed
        )
        config = RefinementConfig(max_inputs=6, seed=seed % 7)
        for function in mutant.definitions():
            if check_function_supported(function) is not None:
                continue
            inputs = _inputs_for(function, config)
            assert_lanes_match(mutant, function, inputs)


# ---------------------------------------------------------------------------
# Refinement-level invariance: batched on/off is unobservable.
# ---------------------------------------------------------------------------


def _result_key(result):
    return (
        result.verdict.value,
        result.inputs_checked,
        result.inconclusive_inputs,
        str(result.counterexample),
    )


class TestRefinementInvariance:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_verdicts_identical_across_modes(self, seed):
        pairs = corpus_modules(3, seed=seed % 500 + 1)
        module = pairs[seed % len(pairs)][1]
        optimized = module.clone()
        PassManager(["O2"], OptContext(("53252",))).run(optimized)
        for function in module.definitions():
            tgt = optimized.get_function(function.name)
            if tgt is None:
                continue
            results = {}
            for batched in (True, False):
                config = RefinementConfig(max_inputs=8, batched=batched)
                results[batched] = check_refinement(
                    function, tgt, module, optimized, config
                )
            assert _result_key(results[True]) == _result_key(results[False])

    def test_nondet_budget_zero_matches_scalar(self):
        # max_nondet_runs=0 exhausts the budget before the first run in
        # both modes: zero outcomes, marked non-exhaustive.
        module = parsed("""
        define i32 @f(i32 %x) {
          %r = add i32 %x, 1
          ret i32 %r
        }
        """)
        function = module.get_function("f")
        results = {}
        for batched in (True, False):
            config = RefinementConfig(max_inputs=4, max_nondet_runs=0, batched=batched)
            results[batched] = check_refinement(
                function, function, module, module, config
            )
        assert _result_key(results[True]) == _result_key(results[False])

    def test_batched_requires_compiled(self):
        # compiled=False forces the scalar path even with batched=True;
        # verdicts still agree and no batches run.
        module = parsed("""
        define i32 @f(i32 %x) {
          %r = mul i32 %x, 3
          ret i32 %r
        }
        """)
        function = module.get_function("f")
        batches_before = global_batch_stats().batches
        config = RefinementConfig(max_inputs=4, compiled=False, batched=True)
        result = check_refinement(function, function, module, module, config)
        assert result.verdict.value == "correct"
        assert global_batch_stats().batches == batches_before

    def test_unsupported_side_falls_back_to_scalar(self, monkeypatch):
        # If the batch compiler declines either side the whole check
        # silently drops to per-input scalar enumeration (counted as a
        # scalar fallback) with identical results.
        module = parsed("""
        define i32 @f(i32 %x) {
          %r = xor i32 %x, 9
          ret i32 %r
        }
        """)
        function = module.get_function("f")
        config = RefinementConfig(max_inputs=4)
        baseline = check_refinement(function, function, module, module, config)

        def refuse(_function):
            raise BatchUnsupported("forced by test")

        reset_global_plan_cache()
        monkeypatch.setattr("repro.tv.batch.compile_batch_program", refuse)
        fallbacks_before = global_batch_stats().scalar_fallbacks
        fallback = check_refinement(function, function, module, module, config)
        assert global_batch_stats().scalar_fallbacks == fallbacks_before + 1
        assert _result_key(fallback) == _result_key(baseline)
        reset_global_plan_cache()


# ---------------------------------------------------------------------------
# Driver-level invariance and the exec.batch.* counters.
# ---------------------------------------------------------------------------

DRIVER_SEED = """
define i32 @clamp(i32 %x, i32 %y) {
  %c = icmp ult i32 %x, 100
  %r = select i1 %c, i32 %x, i32 100
  %s = add i32 %r, %y
  ret i32 %s
}
"""


class TestDriverParity:
    def _run(self, batched):
        config = FuzzConfig(
            mutator=MutatorConfig(max_mutations=2),
            tv=RefinementConfig(max_inputs=8, batched=batched),
            enabled_bugs=("53252",),
        )
        driver = FuzzDriver(parse_module(DRIVER_SEED), config, file_name="batch.ll")
        report = driver.run(iterations=40)
        return driver, report

    def test_findings_and_metrics_identical(self):
        reset_global_plan_cache()
        batched_driver, batched_report = self._run(True)
        scalar_driver, scalar_report = self._run(False)

        def keys(report):
            return [
                (f.seed, f.kind, f.function, tuple(f.bug_ids))
                for f in report.findings
            ]

        assert keys(batched_report) == keys(scalar_report)
        assert (
            batched_driver.metrics.deterministic()
            == scalar_driver.metrics.deterministic()
        )

    def test_batch_counters_track_modes(self):
        reset_global_plan_cache()
        batched_driver, _ = self._run(True)
        scalar_driver, _ = self._run(False)
        assert batched_driver.metrics.counter("exec.batch.batches") > 0
        assert batched_driver.metrics.counter("exec.batch.lanes") > 0
        assert scalar_driver.metrics.counter("exec.batch.batches") == 0
        assert scalar_driver.metrics.counter("exec.batch.lanes") == 0


# ---------------------------------------------------------------------------
# CLI wiring.
# ---------------------------------------------------------------------------


class TestCliFlag:
    def test_alive_tv_flag_parses(self):
        from repro.cli.alive_tv import build_parser

        args = build_parser().parse_args(["a.ll", "b.ll", "--no-batched-exec"])
        assert args.no_batched_exec is True
        args = build_parser().parse_args(["a.ll", "b.ll"])
        assert args.no_batched_exec is False

    def test_alive_mutate_flag_parses(self):
        from repro.cli.alive_mutate import build_parser

        args = build_parser().parse_args(["seed.ll", "--no-batched-exec"])
        assert args.no_batched_exec is True


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
