"""Tests for the synthetic seed-corpus generator."""

import pytest

from repro.fuzz.seeds import (ARCHETYPES, corpus_modules,
                              generate_corpus)
from repro.ir import is_valid_module, parse_module
from repro.tv import check_function_supported


class TestGeneration:
    def test_deterministic(self):
        assert generate_corpus(20, seed=3) == generate_corpus(20, seed=3)

    def test_different_seeds_differ(self):
        assert generate_corpus(20, seed=3) != generate_corpus(20, seed=4)

    def test_all_archetypes_cycled(self):
        files = generate_corpus(len(ARCHETYPES), seed=0)
        prefixes = {name.rsplit("_", 1)[0] for name, _ in files}
        assert len(prefixes) == len(ARCHETYPES)

    @pytest.mark.parametrize("seed", [0, 1, 99])
    def test_every_file_parses_and_verifies(self, seed):
        for name, module in corpus_modules(2 * len(ARCHETYPES), seed=seed):
            assert is_valid_module(module), name

    def test_files_are_small_like_the_papers(self):
        # The paper used files < 2 KB from the InstCombine suite.
        for name, text in generate_corpus(60, seed=5):
            assert len(text.encode()) < 2048, name

    def test_most_functions_supported_by_validator(self):
        unsupported = 0
        total = 0
        for name, module in corpus_modules(len(ARCHETYPES), seed=0):
            for fn in module.definitions():
                total += 1
                if check_function_supported(fn) is not None:
                    unsupported += 1
        assert unsupported <= total // 10

    def test_multi_function_archetype_has_inlinable_helpers(self):
        files = [m for n, m in corpus_modules(len(ARCHETYPES), seed=0)
                 if n.startswith("multi")]
        assert files
        assert len(files[0].definitions()) >= 3


class TestLargeCorpus:
    def test_sizes_exceed_threshold(self):
        from repro.fuzz.seeds import generate_large_corpus

        for name, text in generate_large_corpus(4, seed=1):
            assert len(text.encode()) >= 2048, name

    def test_all_parse_and_verify(self):
        from repro.fuzz.seeds import generate_large_corpus

        for name, text in generate_large_corpus(4, seed=2):
            assert is_valid_module(parse_module(text, name)), name

    def test_deterministic(self):
        from repro.fuzz.seeds import generate_large_corpus

        assert generate_large_corpus(3, seed=9) == \
            generate_large_corpus(3, seed=9)

    def test_mutable_and_fuzzable(self):
        from repro.fuzz.seeds import generate_large_corpus
        from repro.mutate import Mutator, MutatorConfig

        name, text = generate_large_corpus(1, seed=5)[0]
        mutator = Mutator(parse_module(text, name),
                          MutatorConfig(max_mutations=2))
        for seed in range(5):
            mutant, _ = mutator.create_mutant(seed)
            assert is_valid_module(mutant)
