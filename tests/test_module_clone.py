"""Tests for deep module cloning — the heart of the per-mutant copy."""

from repro.ir import (BasicBlock, CallInst, Instruction, PhiNode, print_module,
                      verify_module)

from helpers import parsed

COMPLEX = """
declare void @clobber(ptr)

define void @helper(ptr %ptr) {
  store i32 1, ptr %ptr
  ret void
}

define i32 @f(i1 %c, i32 %n, ptr %p) {
entry:
  call void @helper(ptr %p)
  br i1 %c, label %loop, label %exit

loop:
  %i = phi i32 [ 0, %entry ], [ %next, %loop ]
  %next = add nuw i32 %i, 1
  call void @clobber(ptr %p)
  %done = icmp uge i32 %next, %n
  br i1 %done, label %exit, label %loop

exit:
  %r = phi i32 [ 0, %entry ], [ %next, %loop ]
  ret i32 %r
}
"""


class TestClone:
    def test_clone_verifies_and_prints_identically(self):
        module = parsed(COMPLEX)
        clone = module.clone()
        verify_module(clone)
        assert print_module(clone) == print_module(module)

    def test_clone_is_fully_detached(self):
        module = parsed(COMPLEX)
        clone = module.clone()
        original_ids = {id(i) for f in module.definitions()
                        for i in f.instructions()}
        for fn in clone.definitions():
            for inst in fn.instructions():
                assert id(inst) not in original_ids
                for operand in inst.operands:
                    if isinstance(operand, (Instruction, BasicBlock)):
                        assert id(operand) not in original_ids

    def test_mutating_clone_leaves_original_alone(self):
        module = parsed(COMPLEX)
        before = print_module(module)
        clone = module.clone()
        fn = clone.get_function("f")
        for inst in list(fn.instructions()):
            if inst.opcode == "add":
                inst.nuw = False
        assert print_module(module) == before

    def test_calls_remap_to_cloned_callees(self):
        module = parsed(COMPLEX)
        clone = module.clone()
        fn = clone.get_function("f")
        calls = [i for i in fn.instructions() if isinstance(i, CallInst)]
        helper_call = [c for c in calls if c.callee.name == "helper"][0]
        assert helper_call.callee is clone.get_function("helper")
        assert helper_call.callee is not module.get_function("helper")

    def test_phi_forward_references_remap(self):
        module = parsed(COMPLEX)
        clone = module.clone()
        fn = clone.get_function("f")
        loop = fn.block_named("loop")
        phi = loop.instructions[0]
        assert isinstance(phi, PhiNode)
        incoming_next = phi.incoming_value_for(loop)
        assert incoming_next is loop.instructions[1]

    def test_attributes_copied_not_shared(self):
        from repro.ir import Attribute

        module = parsed(COMPLEX)
        clone = module.clone()
        clone.get_function("f").attributes.add(Attribute("nofree"))
        assert not module.get_function("f").attributes.has("nofree")

    def test_clone_of_clone(self):
        module = parsed(COMPLEX)
        second = module.clone().clone()
        verify_module(second)
        assert print_module(second) == print_module(module)


class TestCowClone:
    """Copy-on-write cloning: shared views must be indistinguishable."""

    def test_cow_clone_prints_like_deep_clone(self):
        module = parsed(COMPLEX)
        for mutable in (set(), {"f"}, {"helper"}, {"f", "helper"}):
            cow = module.clone(mutable_only=mutable)
            assert print_module(cow) == print_module(module.clone())

    def test_shared_functions_are_views_not_copies(self):
        module = parsed(COMPLEX)
        cow = module.clone(mutable_only={"f"})
        assert cow.get_function("helper") is module.get_function("helper")
        assert cow.get_function("clobber") is module.get_function("clobber")
        assert cow.get_function("f") is not module.get_function("f")
        assert cow.shared_names() == {"helper", "clobber"}

    def test_shared_functions_keep_their_parent(self):
        module = parsed(COMPLEX)
        cow = module.clone(mutable_only={"f"})
        assert module.get_function("helper").parent is module
        # Dropping the view from the CoW clone must not orphan the
        # original's function.
        cow.remove_function("helper")
        assert cow.get_function("helper") is None
        assert module.get_function("helper").parent is module

    def test_mutable_calls_do_not_alias_into_original(self):
        module = parsed(COMPLEX)
        cow = module.clone(mutable_only={"f"})
        fn = cow.get_function("f")
        calls = [i for i in fn.instructions() if isinstance(i, CallInst)]
        helper_call = [c for c in calls if c.callee.name == "helper"][0]
        # The copied caller may point at the shared view (same object as
        # the original's helper) — that is the whole point of CoW — but
        # mutating the copied body must never touch the original.
        assert helper_call.callee is cow.get_function("helper")

    def test_mutating_cow_mutants_never_corrupts_seed(self):
        from repro.mutate import Mutator, MutatorConfig

        module = parsed(COMPLEX)
        before = print_module(module)
        mutator = Mutator(module, MutatorConfig(max_mutations=3))
        for seed in range(25):
            mutant, record = mutator.create_mutant(seed)
            assert print_module(module) == before, (
                f"seed {seed} ({record.applied}) leaked into the original"
            )
            verify_module(mutant)

    def test_cow_mutant_matches_deep_mutant(self):
        from repro.mutate import Mutator, MutatorConfig

        for seed in range(25):
            cow_mutator = Mutator(
                parsed(COMPLEX), MutatorConfig(max_mutations=3)
            )
            deep_mutator = Mutator(
                parsed(COMPLEX),
                MutatorConfig(max_mutations=3, cow_clone=False),
            )
            cow_mutant, cow_record = cow_mutator.create_mutant(seed)
            deep_mutant, deep_record = deep_mutator.create_mutant(seed)
            assert print_module(cow_mutant) == print_module(deep_mutant)
            assert cow_record.applied == deep_record.applied
            assert cow_record.functions_copied <= deep_record.functions_copied

    def test_clone_functions_into_renames(self):
        from repro.ir import clone_functions_into

        module = parsed(COMPLEX)
        dest = module.clone(mutable_only=set())
        dest.remove_function("helper")
        copies = clone_functions_into(
            {"helper": module.get_function("helper"),
             "helper2": module.get_function("helper")},
            dest,
        )
        assert set(copies) == {"helper", "helper2"}
        assert dest.get_function("helper2").name == "helper2"
        verify_module(dest)
        # Both splices are detached copies of the same source.
        source = module.get_function("helper")
        for name in ("helper", "helper2"):
            spliced = dest.get_function(name)
            assert spliced is not source
            assert spliced.arguments[0] is not source.arguments[0]
