"""Tests for deep module cloning — the heart of the per-mutant copy."""

from repro.ir import (BasicBlock, CallInst, Instruction, PhiNode, print_module,
                      verify_module)

from helpers import parsed

COMPLEX = """
declare void @clobber(ptr)

define void @helper(ptr %ptr) {
  store i32 1, ptr %ptr
  ret void
}

define i32 @f(i1 %c, i32 %n, ptr %p) {
entry:
  call void @helper(ptr %p)
  br i1 %c, label %loop, label %exit

loop:
  %i = phi i32 [ 0, %entry ], [ %next, %loop ]
  %next = add nuw i32 %i, 1
  call void @clobber(ptr %p)
  %done = icmp uge i32 %next, %n
  br i1 %done, label %exit, label %loop

exit:
  %r = phi i32 [ 0, %entry ], [ %next, %loop ]
  ret i32 %r
}
"""


class TestClone:
    def test_clone_verifies_and_prints_identically(self):
        module = parsed(COMPLEX)
        clone = module.clone()
        verify_module(clone)
        assert print_module(clone) == print_module(module)

    def test_clone_is_fully_detached(self):
        module = parsed(COMPLEX)
        clone = module.clone()
        original_ids = {id(i) for f in module.definitions()
                        for i in f.instructions()}
        for fn in clone.definitions():
            for inst in fn.instructions():
                assert id(inst) not in original_ids
                for operand in inst.operands:
                    if isinstance(operand, (Instruction, BasicBlock)):
                        assert id(operand) not in original_ids

    def test_mutating_clone_leaves_original_alone(self):
        module = parsed(COMPLEX)
        before = print_module(module)
        clone = module.clone()
        fn = clone.get_function("f")
        for inst in list(fn.instructions()):
            if inst.opcode == "add":
                inst.nuw = False
        assert print_module(module) == before

    def test_calls_remap_to_cloned_callees(self):
        module = parsed(COMPLEX)
        clone = module.clone()
        fn = clone.get_function("f")
        calls = [i for i in fn.instructions() if isinstance(i, CallInst)]
        helper_call = [c for c in calls if c.callee.name == "helper"][0]
        assert helper_call.callee is clone.get_function("helper")
        assert helper_call.callee is not module.get_function("helper")

    def test_phi_forward_references_remap(self):
        module = parsed(COMPLEX)
        clone = module.clone()
        fn = clone.get_function("f")
        loop = fn.block_named("loop")
        phi = loop.instructions[0]
        assert isinstance(phi, PhiNode)
        incoming_next = phi.incoming_value_for(loop)
        assert incoming_next is loop.instructions[1]

    def test_attributes_copied_not_shared(self):
        from repro.ir import Attribute

        module = parsed(COMPLEX)
        clone = module.clone()
        clone.get_function("f").attributes.add(Attribute("nofree"))
        assert not module.get_function("f").attributes.has("nofree")

    def test_clone_of_clone(self):
        module = parsed(COMPLEX)
        second = module.clone().clone()
        verify_module(second)
        assert print_module(second) == print_module(module)
