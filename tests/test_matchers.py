"""Unit tests for the PatternMatch-style matcher library."""

from repro.ir import (Argument, BinaryOperator, ConstantInt, I8, I32,
                      ICmpInst, PoisonValue, SelectInst, UndefValue)
from repro.opt.matchers import (Capture, ConstCapture, is_one_use, m_add,
                                m_all_ones, m_and, m_any, m_c_binop,
                                m_constant_int, m_icmp, m_neg, m_not, m_one,
                                m_power_of_two, m_select, m_specific,
                                m_specific_int, m_undef, m_zero, m_poison)


def arg(name="x", t=I32):
    return Argument(t, name)


class TestLeafMatchers:
    def test_m_any_and_capture(self):
        value = arg()
        slot = Capture()
        assert m_any(slot)(value)
        assert slot.value is value
        assert m_any()(value)

    def test_m_specific(self):
        value = arg()
        assert m_specific(value)(value)
        assert not m_specific(value)(arg("y"))

    def test_const_capture(self):
        slot = ConstCapture()
        constant = ConstantInt(I8, 250)
        assert m_constant_int(slot)(constant)
        assert slot.value == 250
        assert slot.signed == -6
        assert slot.width == 8
        assert not m_constant_int()(arg())

    def test_specific_ints(self):
        assert m_specific_int(5)(ConstantInt(I32, 5))
        assert not m_specific_int(5)(ConstantInt(I32, 6))
        assert m_specific_int(-1)(ConstantInt(I8, 255))
        assert m_zero()(ConstantInt(I32, 0))
        assert m_one()(ConstantInt(I32, 1))
        assert m_all_ones()(ConstantInt(I8, 255))

    def test_power_of_two(self):
        slot = ConstCapture()
        assert m_power_of_two(slot)(ConstantInt(I32, 64))
        assert slot.value == 64
        assert not m_power_of_two()(ConstantInt(I32, 0))
        assert not m_power_of_two()(ConstantInt(I32, 12))

    def test_undef_poison(self):
        assert m_undef()(UndefValue(I32))
        assert not m_undef()(PoisonValue(I32))
        assert m_poison()(PoisonValue(I32))


class TestCompositeMatchers:
    def test_binop_shapes(self):
        x, y = arg(), arg("y")
        add = BinaryOperator("add", x, y)
        assert m_add(m_specific(x), m_specific(y))(add)
        assert not m_add(m_specific(y), m_specific(x))(add)
        assert not m_and(m_any(), m_any())(add)

    def test_commutative_match(self):
        x = arg()
        add = BinaryOperator("add", ConstantInt(I32, 3), x)
        assert m_c_binop("add", m_specific(x), m_specific_int(3))(add)

    def test_m_not(self):
        x = arg()
        inverted = BinaryOperator("xor", x, ConstantInt(I32, -1))
        slot = Capture()
        assert m_not(m_any(slot))(inverted)
        assert slot.value is x
        flipped = BinaryOperator("xor", ConstantInt(I32, -1), x)
        assert m_not(m_specific(x))(flipped)
        plain = BinaryOperator("xor", x, ConstantInt(I32, 1))
        assert not m_not(m_any())(plain)

    def test_m_neg(self):
        x = arg()
        negated = BinaryOperator("sub", ConstantInt(I32, 0), x)
        assert m_neg(m_specific(x))(negated)
        assert not m_neg(m_any())(BinaryOperator("sub", x, x))

    def test_icmp_matcher(self):
        x = arg()
        compare = ICmpInst("ult", x, ConstantInt(I32, 7))
        assert m_icmp("ult", m_specific(x), m_specific_int(7))(compare)
        assert m_icmp(None, m_any(), m_any())(compare)
        assert not m_icmp("eq", m_any(), m_any())(compare)

    def test_select_matcher(self):
        from repro.ir import I1

        c = arg("c", I1)
        x, y = arg(), arg("y")
        select = SelectInst(c, x, y)
        assert m_select(m_specific(c), m_specific(x), m_specific(y))(select)
        assert not m_select(m_any(), m_specific(y), m_any())(select)

    def test_is_one_use(self):
        x = arg()
        single = BinaryOperator("add", x, x)
        BinaryOperator("mul", single, single)
        assert not is_one_use(single)   # two uses by the mul
        fresh = BinaryOperator("add", x, x)
        BinaryOperator("mul", fresh, x)
        assert is_one_use(fresh)
