"""Tests for the mutant reducer."""

import pytest

from repro.fuzz.reduce import reduce_module
from repro.ir import is_valid_module, print_module
from repro.opt import OptContext, OptimizerCrash, PassManager
from repro.tv import RefinementConfig, Verdict, check_refinement

from helpers import parsed


class TestMechanics:
    def test_uninteresting_input_rejected(self):
        module = parsed("""
define i32 @f(i32 %x) {
  ret i32 %x
}
""")
        with pytest.raises(ValueError):
            reduce_module(module, lambda m: False)

    def test_dead_code_removed_under_trivial_oracle(self):
        module = parsed("""
define i32 @f(i32 %x) {
  %dead1 = add i32 %x, 1
  %dead2 = mul i32 %dead1, 2
  %live = xor i32 %x, 7
  ret i32 %live
}
""")

        def still_has_xor(candidate):
            fn = candidate.get_function("f")
            return fn is not None and any(
                i.opcode == "xor" for i in fn.instructions())

        result = reduce_module(module, still_has_xor)
        assert result.reduced_instructions == 2
        assert is_valid_module(result.module)
        assert result.original_instructions == 4

    def test_unused_helper_function_dropped(self):
        module = parsed("""
define void @unused(ptr %p) {
  store i8 1, ptr %p
  ret void
}

define i8 @f(i8 %x) {
  %r = add i8 %x, 1
  ret i8 %r
}
""")

        def f_has_add(candidate):
            fn = candidate.get_function("f")
            return fn is not None and any(
                i.opcode == "add" for i in fn.instructions())

        result = reduce_module(module, f_has_add)
        assert result.module.get_function("unused") is None

    def test_called_function_kept(self):
        module = parsed("""
define void @helper(ptr %p) {
  store i8 1, ptr %p
  ret void
}

define void @f(ptr %p) {
  call void @helper(ptr %p)
  ret void
}
""")

        def has_call(candidate):
            fn = candidate.get_function("f")
            return fn is not None and any(
                i.opcode == "call" for i in fn.instructions())

        result = reduce_module(module, has_call)
        assert result.module.get_function("helper") is not None

    def test_branch_folding(self):
        module = parsed("""
define i8 @f(i1 %c, i8 %x) {
entry:
  br i1 %c, label %a, label %b
a:
  %r1 = add i8 %x, 1
  ret i8 %r1
b:
  %r2 = add i8 %x, 2
  ret i8 %r2
}
""")

        def has_plus_one(candidate):
            fn = candidate.get_function("f")
            return fn is not None and any(
                i.opcode == "add" and getattr(i.rhs, "value", 0) == 1
                for i in fn.instructions())

        result = reduce_module(module, has_plus_one)
        fn = result.module.get_function("f")
        # The %b side is irrelevant and should be folded away.
        assert all(getattr(i.rhs, "value", 1) != 2
                   for i in fn.instructions() if i.opcode == "add")

    def test_attributes_stripped(self):
        module = parsed("""
define i8 @f(i8 noundef %x) nofree nounwind {
  %r = add i8 %x, 1
  ret i8 %r
}
""")

        def has_add(candidate):
            fn = candidate.get_function("f")
            return fn is not None and any(
                i.opcode == "add" for i in fn.instructions())

        result = reduce_module(module, has_add)
        fn = result.module.get_function("f")
        assert not fn.attributes
        assert not fn.arguments[0].attributes

    def test_result_summary(self):
        module = parsed("""
define i8 @f(i8 %x) {
  %dead = add i8 %x, 1
  ret i8 %x
}
""")
        result = reduce_module(module, lambda m: True)
        assert "reduced" in result.summary()


class TestRealisticReduction:
    def test_reduces_crash_reproducer(self):
        """Shrink a module that crashes the optimizer (seeded 56968)."""
        module = parsed("""
define i8 @f(i8 %x, i8 %y) {
  %noise1 = mul i8 %x, %y
  %noise2 = xor i8 %noise1, 5
  %crashy = shl i8 %y, 9
  %noise3 = and i8 %noise2, %crashy
  ret i8 %noise3
}
""")

        def crashes(candidate):
            ctx = OptContext({"56968"})
            try:
                PassManager(["instsimplify"], ctx).run(candidate.clone())
            except OptimizerCrash:
                return True
            return False

        result = reduce_module(module, crashes)
        assert crashes(result.module)
        # Everything except the crashing shift (and the ret) can go.
        assert result.reduced_instructions <= 3, \
            print_module(result.module)

    def test_reduces_miscompilation_reproducer(self):
        """Shrink a module miscompiled by the seeded clamp bug (53252)."""
        module = parsed("""
define i32 @f(i32 %x, i32 %y) {
  %noise = add i32 %y, 3
  %c = icmp ult i32 %x, 100
  %r = select i1 %c, i32 %x, i32 100
  %mix = xor i32 %r, %noise
  %out = xor i32 %mix, %noise
  ret i32 %out
}
""")

        def miscompiled(candidate):
            optimized = candidate.clone()
            ctx = OptContext({"53252"})
            try:
                PassManager(["instcombine"], ctx).run(optimized)
            except OptimizerCrash:
                return False
            source = candidate.get_function("f")
            target = optimized.get_function("f")
            if source is None or target is None:
                return False
            result = check_refinement(source, target, candidate, optimized,
                                      RefinementConfig(max_inputs=16))
            return result.verdict == Verdict.UNSOUND

        result = reduce_module(module, miscompiled)
        assert miscompiled(result.module)
        assert result.reduced_instructions < result.original_instructions
        assert result.reduced_instructions <= 4, \
            print_module(result.module)
