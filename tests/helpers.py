"""Shared test utilities."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.ir import (Function, Module, parse_module, print_module,
                      verify_module)
from repro.opt import OptContext, PassManager
from repro.tv import (RefinementConfig, TVResult, Verdict, check_refinement)


def parsed(text: str) -> Module:
    """Parse and verify a module."""
    module = parse_module(text)
    verify_module(module)
    return module


def single_function(text: str) -> Function:
    module = parsed(text)
    definitions = module.definitions()
    assert len(definitions) == 1
    return definitions[0]


def optimize(module: Module, pipeline: str = "O2",
             bugs: Tuple[str, ...] = ()) -> Tuple[Module, OptContext]:
    """Optimize a clone; returns (optimized module, context)."""
    optimized = module.clone()
    ctx = OptContext(bugs)
    PassManager([pipeline], ctx).run(optimized)
    return optimized, ctx


def refine_after(module: Module, pipeline: str = "O2",
                 bugs: Tuple[str, ...] = (),
                 max_inputs: int = 32,
                 function: Optional[str] = None) -> TVResult:
    """Optimize and validate a module's (sole or named) function."""
    optimized, _ = optimize(module, pipeline, bugs)
    verify_module(optimized)
    definitions = module.definitions()
    if function is None:
        assert len(definitions) == 1
        function = definitions[0].name
    return check_refinement(
        module.get_function(function), optimized.get_function(function),
        module, optimized, RefinementConfig(max_inputs=max_inputs))


def assert_sound(module: Module, pipeline: str = "O2",
                 function: Optional[str] = None) -> None:
    result = refine_after(module, pipeline, function=function)
    assert result.verdict == Verdict.CORRECT, str(result.counterexample)


def round_trips(module: Module) -> bool:
    text = print_module(module)
    reparsed = parse_module(text)
    verify_module(reparsed)
    return print_module(reparsed) == text
