"""Property: parse/print/bitcode round-trips over random optimized IR.

Complements test_properties.py by round-tripping *optimizer output*
(which exercises printer paths mutants alone may not hit: intrinsic
declarations added by rules, promoted widths, expanded idioms).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fuzz.seeds import ARCHETYPES, generate_corpus
from repro.ir import parse_module, print_module, verify_module
from repro.ir.bitcode import read_bitcode, write_bitcode
from repro.mutate import Mutator, MutatorConfig
from repro.opt import OptContext, PassManager

CORPUS = generate_corpus(len(ARCHETYPES), seed=808)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(file_index=st.integers(0, len(CORPUS) - 1),
       seed=st.integers(0, 2**31),
       pipeline=st.sampled_from(["O1", "O2", "backend"]))
def test_optimized_mutants_round_trip_text(file_index, seed, pipeline):
    name, text = CORPUS[file_index]
    mutator = Mutator(parse_module(text, name), MutatorConfig())
    mutant, _ = mutator.create_mutant(seed)
    PassManager([pipeline], OptContext()).run(mutant)
    verify_module(mutant)
    printed = print_module(mutant)
    reparsed = parse_module(printed)
    verify_module(reparsed)
    assert print_module(reparsed) == printed


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(file_index=st.integers(0, len(CORPUS) - 1),
       seed=st.integers(0, 2**31))
def test_optimized_mutants_round_trip_bitcode(file_index, seed):
    name, text = CORPUS[file_index]
    mutator = Mutator(parse_module(text, name), MutatorConfig())
    mutant, _ = mutator.create_mutant(seed)
    PassManager(["O2"], OptContext()).run(mutant)
    decoded = read_bitcode(write_bitcode(mutant))
    verify_module(decoded)
    assert print_module(decoded) == print_module(mutant)
