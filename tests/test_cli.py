"""End-to-end tests for the three command-line tools."""

import subprocess
import sys

import pytest

from repro.cli import alive_mutate, alive_tv, opt_tool

CLEAN = """define i32 @f(i32 %x) {
  %r = add i32 %x, 0
  ret i32 %r
}
"""

CLAMP = """define i32 @clamp(i32 %x) {
  %c = icmp ult i32 %x, 100
  %r = select i1 %c, i32 %x, i32 100
  ret i32 %r
}
"""


@pytest.fixture
def input_file(tmp_path):
    path = tmp_path / "input.ll"
    path.write_text(CLEAN)
    return str(path)


class TestOptTool:
    def test_optimizes_to_stdout(self, input_file, capsys):
        assert opt_tool.main([input_file, "-p", "instsimplify"]) == 0
        output = capsys.readouterr().out
        assert "add" not in output
        assert "ret i32 %x" in output

    def test_output_file(self, input_file, tmp_path, capsys):
        out = tmp_path / "out.ll"
        assert opt_tool.main([input_file, "-p", "O2", "-o", str(out)]) == 0
        assert "define" in out.read_text()

    def test_list_passes(self, capsys):
        assert opt_tool.main(["--list-passes", "x"]) == 0
        out = capsys.readouterr().out
        assert "instcombine" in out and "O2" in out

    def test_crash_bug_exit_code(self, tmp_path, capsys):
        path = tmp_path / "shift.ll"
        path.write_text("""define i8 @f(i8 %x) {
  %r = shl i8 %x, 9
  ret i8 %r
}
""")
        code = opt_tool.main([str(path), "-p", "instsimplify",
                              "--enable-bug", "56968"])
        assert code == 134

    def test_parse_error_exit_code(self, tmp_path):
        path = tmp_path / "bad.ll"
        path.write_text("this is not IR")
        assert opt_tool.main([str(path)]) == 2

    def test_missing_file(self):
        assert opt_tool.main(["/nonexistent/x.ll"]) == 2


class TestAliveTV:
    def test_verified(self, tmp_path, capsys):
        src = tmp_path / "src.ll"
        tgt = tmp_path / "tgt.ll"
        src.write_text(CLEAN)
        tgt.write_text(CLEAN.replace("add i32 %x, 0", "add i32 %x, 0"))
        assert alive_tv.main([str(src), str(tgt)]) == 0
        assert "verified" in capsys.readouterr().out

    def test_not_verified(self, tmp_path, capsys):
        src = tmp_path / "src.ll"
        tgt = tmp_path / "tgt.ll"
        src.write_text(CLEAN)
        tgt.write_text(CLEAN.replace("add i32 %x, 0", "add i32 %x, 1"))
        assert alive_tv.main([str(src), str(tgt)]) == 1
        out = capsys.readouterr().out
        assert "NOT verified" in out

    def test_quiet(self, tmp_path, capsys):
        src = tmp_path / "src.ll"
        src.write_text(CLEAN)
        assert alive_tv.main([str(src), str(src), "-q"]) == 0
        assert capsys.readouterr().out == ""


class TestAliveMutate:
    def test_mutate_only_writes_valid_ir(self, input_file, tmp_path):
        out = tmp_path / "mutant.ll"
        code = alive_mutate.main([input_file, "--mutate-only",
                                  "--seed", "3", "-o", str(out)])
        assert code == 0
        from repro.ir import is_valid_module, parse_module

        assert is_valid_module(parse_module(out.read_text()))

    def test_mutate_only_deterministic(self, input_file, tmp_path):
        a = tmp_path / "a.ll"
        b = tmp_path / "b.ll"
        alive_mutate.main([input_file, "--mutate-only", "--seed", "3",
                           "-o", str(a)])
        alive_mutate.main([input_file, "--mutate-only", "--seed", "3",
                           "-o", str(b)])
        assert a.read_text() == b.read_text()

    def test_fuzz_loop_clean(self, input_file, capsys):
        code = alive_mutate.main([input_file, "-n", "10"])
        assert code == 0
        assert "10 iterations" in capsys.readouterr().out

    def test_fuzz_loop_finds_seeded_bug(self, tmp_path, capsys):
        path = tmp_path / "clamp.ll"
        path.write_text(CLAMP)
        code = alive_mutate.main([str(path), "-n", "120",
                                  "--enable-bug", "53252"])
        assert code == 1
        assert "miscompilation" in capsys.readouterr().out

    def test_save_dir(self, input_file, tmp_path):
        save = tmp_path / "mutants"
        alive_mutate.main([input_file, "-n", "5", "--saveAll",
                           "--save-dir", str(save)])
        assert len(list(save.iterdir())) == 5

    def test_stats_prints_throughput_line(self, input_file, capsys):
        code = alive_mutate.main([input_file, "-n", "10", "--stats",
                                  "--stats-interval", "0.001"])
        assert code == 0
        err = capsys.readouterr().err
        assert "mutants" in err and "/s" in err
        assert "valid" in err
        assert "mutate" in err and "verify" in err  # per-stage share

    def test_metrics_out_single_mode(self, input_file, tmp_path, capsys):
        import json

        out = tmp_path / "metrics.json"
        code = alive_mutate.main([input_file, "-n", "8",
                                  "--metrics-out", str(out)])
        assert code == 0
        data = json.loads(out.read_text())
        assert data["counters"]["mutants.created"] == 8
        assert data["counters"]["stage.verify.seconds"] > 0
        assert data["histograms"]["iteration.seconds"]["count"] == 8

    def test_metrics_out_sharded_mode(self, input_file, tmp_path, capsys):
        import json

        out = tmp_path / "metrics.json"
        code = alive_mutate.main([input_file, "-n", "10", "-j", "2",
                                  "--stats", "--metrics-out", str(out)])
        assert code == 0
        data = json.loads(out.read_text())
        assert data["counters"]["mutants.created"] == 10
        assert "total:" in capsys.readouterr().err

    def test_trace_out_single_mode(self, input_file, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.jsonl"
        code = alive_mutate.main([input_file, "-n", "5",
                                  "--trace-out", str(trace)])
        assert code == 0
        names = {json.loads(line)["name"]
                 for line in trace.read_text().splitlines()}
        assert {"mutate", "optimize", "verify"} <= names

    def test_trace_out_sharded_writes_per_shard_files(self, input_file,
                                                      tmp_path, capsys):
        traces = tmp_path / "traces"
        code = alive_mutate.main([input_file, "-n", "10", "-j", "2",
                                  "--trace-out", str(traces)])
        assert code == 0
        assert sorted(p.name for p in traces.iterdir()) == \
            ["job-0000.jsonl", "job-0001.jsonl"]

    def test_trace_sample_validated(self, input_file, capsys):
        assert alive_mutate.main([input_file, "--trace-sample", "2.0"]) == 2
        assert "--trace-sample" in capsys.readouterr().err

    def test_stats_interval_validated(self, input_file, capsys):
        assert alive_mutate.main([input_file, "--stats",
                                  "--stats-interval", "0"]) == 2
        assert "--stats-interval" in capsys.readouterr().err

    def test_feedback_flags_run_and_journal_corpus(self, input_file,
                                                   tmp_path, capsys):
        corpus_dir = tmp_path / "corpus"
        code = alive_mutate.main([input_file, "-n", "20", "--feedback",
                                  "--scheduler", "bandit",
                                  "--corpus-dir", str(corpus_dir),
                                  "--stats", "--stats-interval", "0.001"])
        assert code == 0
        assert "corpus" in capsys.readouterr().err
        journals = list(corpus_dir.glob("*.corpus.jsonl"))
        assert len(journals) == 1

    def test_feedback_flags_require_feedback(self, input_file, capsys):
        assert alive_mutate.main([input_file, "-n", "2",
                                  "--scheduler", "bandit"]) == 2
        assert "feedback.scheduler" in capsys.readouterr().err
        assert alive_mutate.main([input_file, "-n", "2",
                                  "--corpus-dir", "/tmp/x"]) == 2
        assert "feedback.corpus_dir" in capsys.readouterr().err

    def test_stats_survives_empty_target_shard(self, input_file, tmp_path,
                                               capsys):
        """The --stats divide-by-zero regression: a shard whose functions
        are all dropped reports zero optimize calls, and every derived
        rate must render as 0 instead of raising."""
        empty = tmp_path / "wide.ll"
        empty.write_text("define i128 @wide(i128 %x) {\n"
                         "  ret i128 %x\n}\n")
        code = alive_mutate.main([input_file, str(empty), "-n", "5",
                                  "-j", "2", "--stats"])
        assert code == 0
        err = capsys.readouterr().err
        assert "total:" in err

    def test_stats_all_shards_empty_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "wide.ll"
        empty.write_text("define i128 @wide(i128 %x) {\n"
                         "  ret i128 %x\n}\n")
        code = alive_mutate.main([str(empty), "-n", "5", "-j", "2",
                                  "--stats"])
        assert code == 2
        assert "no processable functions" in capsys.readouterr().err

    def test_console_scripts_run_as_modules(self, input_file):
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli.opt_tool", input_file,
             "-p", "O0"],
            capture_output=True)
        assert result.returncode == 0
        assert b"define" in result.stdout
