"""Tests for the select/binop threading rules."""


from repro.ir import BinaryOperator, SelectInst

from helpers import assert_sound, optimize, parsed


def combined(text: str):
    module = parsed(text)
    optimized, ctx = optimize(module, "instcombine")
    assert_sound(module, "instcombine")
    return optimized.definitions()[0], ctx


class TestBinopOfSelectConstants:
    def test_folds_into_arms(self):
        fn, _ = combined("""
define i8 @f(i1 %c) {
  %s = select i1 %c, i8 10, i8 20
  %r = add i8 %s, 5
  ret i8 %r
}
""")
        selects = [i for i in fn.instructions() if isinstance(i, SelectInst)]
        assert len(selects) == 1
        assert selects[0].true_value.value == 15
        assert selects[0].false_value.value == 25
        assert not any(isinstance(i, BinaryOperator)
                       for i in fn.instructions())

    def test_division_by_zero_arm_not_folded(self):
        fn, _ = combined("""
define i8 @f(i1 %c, i8 %x) {
  %s = select i1 %c, i8 0, i8 2
  %r = udiv i8 100, %s
  ret i8 %r
}
""")
        # The select is udiv's RHS (not matched), and folding would hit a
        # division by zero anyway: structure must survive.
        assert any(i.opcode == "udiv" for i in fn.instructions())

    def test_flagged_op_not_folded(self):
        fn, _ = combined("""
define i8 @f(i1 %c) {
  %s = select i1 %c, i8 100, i8 20
  %r = add nsw i8 %s, 50
  ret i8 %r
}
""")
        assert any(i.opcode == "add" for i in fn.instructions())


class TestSelectEqConstArm:
    def test_select_eq_collapses(self):
        fn, _ = combined("""
define i8 @f(i8 %x) {
  %c = icmp eq i8 %x, 7
  %r = select i1 %c, i8 7, i8 %x
  ret i8 %r
}
""")
        assert fn.blocks[0].terminator().return_value is fn.arguments[0]

    def test_different_constant_untouched(self):
        fn, _ = combined("""
define i8 @f(i8 %x) {
  %c = icmp eq i8 %x, 7
  %r = select i1 %c, i8 8, i8 %x
  ret i8 %r
}
""")
        assert any(isinstance(i, SelectInst) for i in fn.instructions())


class TestNegCanonicalization:
    def test_sgt_minus_one_flips(self):
        fn, _ = combined("""
define i8 @f(i8 %x) {
  %c = icmp sgt i8 %x, -1
  %n = sub i8 0, %x
  %r = select i1 %c, i8 %x, i8 %n
  ret i8 %r
}
""")
        compares = [i for i in fn.instructions()
                    if i.opcode == "icmp"]
        assert compares and compares[-1].predicate == "slt"


class TestTwoSelects:
    def test_same_condition_merges(self):
        fn, _ = combined("""
define i8 @f(i1 %c, i8 %x, i8 %y, i8 %a, i8 %b) {
  %s1 = select i1 %c, i8 %x, i8 %y
  %s2 = select i1 %c, i8 %a, i8 %b
  %r = add i8 %s1, %s2
  ret i8 %r
}
""")
        selects = [i for i in fn.instructions() if isinstance(i, SelectInst)]
        assert len(selects) == 1
        adds = [i for i in fn.instructions() if i.opcode == "add"]
        assert len(adds) == 2

    def test_division_never_speculated(self):
        fn, _ = combined("""
define i8 @f(i1 %c, i8 %x, i8 %y, i8 %a, i8 %b) {
  %s1 = select i1 %c, i8 %x, i8 %y
  %s2 = select i1 %c, i8 %a, i8 %b
  %r = udiv i8 %s1, %s2
  ret i8 %r
}
""")
        selects = [i for i in fn.instructions() if isinstance(i, SelectInst)]
        assert len(selects) == 2

    def test_different_conditions_untouched(self):
        fn, _ = combined("""
define i8 @f(i1 %c, i1 %d, i8 %x, i8 %y) {
  %s1 = select i1 %c, i8 %x, i8 %y
  %s2 = select i1 %d, i8 %x, i8 %y
  %r = add i8 %s1, %s2
  ret i8 %r
}
""")
        selects = [i for i in fn.instructions() if isinstance(i, SelectInst)]
        assert len(selects) == 2


def test_exhaustive_semantics_at_i8():
    """Brute-force the binop-select-consts rule over all inputs."""
    from repro.tv import Interpreter

    module = parsed("""
define i8 @f(i1 %c, i8 %x) {
  %s = select i1 %c, i8 3, i8 250
  %r = xor i8 %s, %x
  ret i8 %r
}
""")
    optimized, _ = optimize(module, "instcombine")
    for c in (0, 1):
        for x in range(0, 256, 7):
            before = Interpreter(module).run(module.get_function("f"), [c, x])
            after = Interpreter(optimized).run(
                optimized.get_function("f"), [c, x])
            assert before == after
