"""Tests for the checkpoint journal and campaign resume semantics.

The core resilience contract: a campaign interrupted at any point and
resumed from its checkpoint produces a report identical to the same
campaign run uninterrupted (``workers=1``), because already-journaled
job indexes are skipped and their cached results merged in job-index
order.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.fuzz import (CampaignConfig, CampaignExecutor, CheckpointError,
                        CheckpointJournal, CheckpointMismatch, ShardResult,
                        damage_journal, jobs_fingerprint, run_campaign)
from repro.fuzz.checkpoint import JOURNAL_NAME, result_from_dict, \
    result_to_dict
from repro.fuzz.driver import StageTimings
from repro.fuzz.feedback import FeedbackConfig, FeedbackStats
from repro.fuzz.findings import Finding
from repro.fuzz.parallel import execute_job
from repro.obs import MetricsRegistry

SMALL = dict(corpus_size=6, mutants_per_file=10, max_inputs=8,
             pipelines=("O2",))


def report_key(report):
    """Everything that must be identical across interruption patterns."""
    return (
        report.total_iterations,
        report.total_findings,
        [(f.kind, f.seed, f.file, tuple(f.bug_ids))
         for f in report.unattributed],
        {bug_id: (o.found, o.first_file, o.first_seed, o.findings)
         for bug_id, o in report.outcomes.items()},
    )


def make_result(index, findings=()):
    return ShardResult(job_index=index, file_name=f"file{index}.ll",
                       pipeline="O2", worker="pid-1", seed=index * 7,
                       iterations=5, findings=list(findings),
                       confirmed_bug_ids=[list(f.bug_ids) for f in findings],
                       timings=StageTimings(mutate=0.1, optimize=0.2,
                                            verify=0.3))


class TestJournalUnit:
    def test_roundtrip(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path))
        finding = Finding(kind="crash", seed=9, file="file1.ll",
                          detail="boom", bug_ids=["52884"])
        assert journal.start("fp", total_jobs=2) == {}
        journal.append(make_result(0))
        journal.append(make_result(1, [finding]))
        journal.close()
        reloaded = CheckpointJournal(str(tmp_path))
        cached = reloaded.start("fp", total_jobs=2, resume=True)
        assert sorted(cached) == [0, 1]
        assert cached[1].findings == [finding]
        assert cached[1].confirmed_bug_ids == [["52884"]]
        assert cached[0].timings.optimize == pytest.approx(0.2)
        assert reloaded.dropped_records == 0
        reloaded.close()

    def test_result_dict_roundtrip_preserves_failures(self):
        result = make_result(3)
        result.error = "worker killed"
        result.failure_kind = "hang"
        result.attempts = 2
        back = result_from_dict(json.loads(
            json.dumps(result_to_dict(result))))
        assert back == result

    def test_result_dict_roundtrip_preserves_metrics(self):
        result = make_result(4)
        result.metrics.count("mutants.created", 5)
        result.metrics.observe("iteration.seconds", 0.01)
        back = result_from_dict(json.loads(
            json.dumps(result_to_dict(result))))
        assert back == result

    def test_result_dict_without_metrics_key_loads_empty(self):
        """Journals written before metrics existed must stay resumable."""
        data = result_to_dict(make_result(5))
        del data["metrics"]
        assert result_from_dict(data).metrics == MetricsRegistry()

    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path))
        journal.start("fp-one", total_jobs=1)
        journal.close()
        other = CheckpointJournal(str(tmp_path))
        with pytest.raises(CheckpointMismatch):
            other.start("fp-two", total_jobs=1, resume=True)

    def test_truncated_trailing_record_is_dropped(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path))
        journal.start("fp", total_jobs=3)
        journal.append(make_result(0))
        journal.append(make_result(1))
        journal.close()
        damage_journal(journal.path)
        reloaded = CheckpointJournal(str(tmp_path))
        cached = reloaded.start("fp", total_jobs=3, resume=True)
        assert sorted(cached) == [0]
        assert reloaded.dropped_records == 1
        # Appending after the damaged tail lands on a clean line.
        reloaded.append(make_result(2))
        reloaded.close()
        final = CheckpointJournal(str(tmp_path))
        assert sorted(final.start("fp", total_jobs=3, resume=True)) == [0, 2]
        final.close()

    def test_newline_less_tail_is_dropped_even_if_parsable(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path))
        journal.start("fp", total_jobs=2)
        journal.append(make_result(0))
        journal.close()
        with open(journal.path, "a") as stream:
            stream.write(json.dumps(result_to_dict(make_result(1))))  # no \n
        reloaded = CheckpointJournal(str(tmp_path))
        assert sorted(reloaded.start("fp", 2, resume=True)) == [0]
        assert reloaded.dropped_records == 1
        reloaded.close()

    def test_headerless_journal_refuses_resume(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        path.write_text("garbage that is not json\n")
        with pytest.raises(CheckpointError):
            CheckpointJournal(str(tmp_path)).start("fp", 1, resume=True)

    def test_missing_journal_resumes_empty(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path))
        assert journal.start("fp", total_jobs=2, resume=True) == {}
        journal.close()

    def test_fresh_start_truncates_stale_journal(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path))
        journal.start("fp-old", total_jobs=1)
        journal.append(make_result(0))
        journal.close()
        fresh = CheckpointJournal(str(tmp_path))
        assert fresh.start("fp-new", total_jobs=1, resume=False) == {}
        fresh.close()
        reloaded = CheckpointJournal(str(tmp_path))
        assert reloaded.start("fp-new", 1, resume=True) == {}
        reloaded.close()


class TestFingerprint:
    def test_invariant_to_scheduling_knobs(self):
        base = CampaignConfig(**SMALL)
        tuned = CampaignConfig(workers=8, job_deadline=5.0,
                               max_job_retries=3, global_time_budget=100.0,
                               **SMALL)
        assert jobs_fingerprint(CampaignExecutor(base).build_jobs()) == \
            jobs_fingerprint(CampaignExecutor(tuned).build_jobs())

    def test_sensitive_to_config_and_corpus(self):
        fp = jobs_fingerprint(
            CampaignExecutor(CampaignConfig(**SMALL)).build_jobs())
        reseeded = dict(SMALL, corpus_seed=1)
        assert fp != jobs_fingerprint(CampaignExecutor(
            CampaignConfig(**reseeded)).build_jobs())
        rebudgeted = dict(SMALL, mutants_per_file=11)
        assert fp != jobs_fingerprint(CampaignExecutor(
            CampaignConfig(**rebudgeted)).build_jobs())


class TestCampaignResume:
    @pytest.fixture(scope="class")
    def reference(self):
        return run_campaign(CampaignConfig(workers=1, **SMALL))

    def test_checkpointed_run_matches_plain_run(self, tmp_path, reference):
        report = run_campaign(CampaignConfig(
            workers=1, checkpoint_dir=str(tmp_path), **SMALL))
        assert report_key(report) == report_key(reference)

    def test_resume_of_complete_run_is_all_cached(self, tmp_path, reference):
        config = CampaignConfig(workers=1, checkpoint_dir=str(tmp_path),
                                **SMALL)
        run_campaign(config)
        resumed = run_campaign(config, resume=True)
        assert report_key(resumed) == report_key(reference)
        assert resumed.resumed_jobs == 6
        assert resumed.total_iterations == reference.total_iterations

    @pytest.mark.parametrize("keep", [0, 1, 3, 5])
    def test_killed_campaign_resumes_identically(self, tmp_path, reference,
                                                 keep):
        """Simulate a kill after ``keep`` journaled jobs: truncate the
        journal to that prefix, then resume (with a different worker
        count for good measure) and demand the uninterrupted report."""
        checkpoint = str(tmp_path / f"keep{keep}")
        config = CampaignConfig(workers=1, checkpoint_dir=checkpoint,
                                **SMALL)
        run_campaign(config)
        path = os.path.join(checkpoint, JOURNAL_NAME)
        with open(path) as stream:
            lines = stream.readlines()
        with open(path, "w") as stream:
            stream.writelines(lines[:1 + keep])  # header + keep records
        resumed = run_campaign(
            CampaignConfig(workers=2, checkpoint_dir=checkpoint, **SMALL),
            resume=True)
        assert report_key(resumed) == report_key(reference)
        assert resumed.resumed_jobs == keep

    def test_damaged_record_is_rerun_not_merged(self, tmp_path, reference):
        config = CampaignConfig(workers=1, checkpoint_dir=str(tmp_path),
                                **SMALL)
        run_campaign(config)
        damage_journal(os.path.join(str(tmp_path), JOURNAL_NAME))
        resumed = run_campaign(config, resume=True)
        assert report_key(resumed) == report_key(reference)
        assert resumed.resumed_jobs == 5  # the damaged sixth re-ran

    def test_resume_without_checkpoint_dir_raises(self):
        with pytest.raises(ValueError):
            run_campaign(CampaignConfig(**SMALL), resume=True)

    def test_resume_refuses_foreign_journal(self, tmp_path, reference):
        config = CampaignConfig(workers=1, checkpoint_dir=str(tmp_path),
                                **SMALL)
        run_campaign(config)
        reseeded = dict(SMALL, corpus_seed=3)
        with pytest.raises(CheckpointMismatch):
            run_campaign(CampaignConfig(
                workers=1, checkpoint_dir=str(tmp_path), **reseeded),
                resume=True)

    def test_kill_resume_preserves_aggregate_metrics(self, tmp_path,
                                                     reference):
        """Aggregate metrics (timing-free subset) survive a kill/resume
        cycle bit-for-bit: cached shards contribute their journaled
        registries exactly as live shards contribute fresh ones."""
        checkpoint = str(tmp_path / "ckpt")
        config = CampaignConfig(workers=1, checkpoint_dir=checkpoint,
                                **SMALL)
        run_campaign(config)
        path = os.path.join(checkpoint, JOURNAL_NAME)
        with open(path) as stream:
            lines = stream.readlines()
        with open(path, "w") as stream:
            stream.writelines(lines[:1 + 3])  # header + 3 of 6 records
        resumed = run_campaign(
            CampaignConfig(workers=2, checkpoint_dir=checkpoint, **SMALL),
            resume=True)
        assert resumed.metrics.deterministic() == \
            reference.metrics.deterministic()
        assert resumed.metrics.counter("campaign.jobs.completed") == 6


class TestFeedbackResume:
    """Coverage-guided campaigns must keep the resilience contract: the
    acceptance criterion is findings and ``deterministic()`` metrics
    bit-identical across kill+resume with the corpus journal enabled."""

    def test_result_dict_roundtrip_preserves_feedback(self):
        result = make_result(6)
        result.feedback = FeedbackStats(features_covered=9,
                                        corpus_entries=3, admitted=4,
                                        distilled=1, new_features=11,
                                        draws=10)
        back = result_from_dict(json.loads(
            json.dumps(result_to_dict(result))))
        assert back == result

    def test_fingerprint_ignores_corpus_dir(self, tmp_path):
        """Where the corpus journal lands is an operational knob, like
        trace_dir — moving it must not invalidate completed work."""
        def jobs(corpus_dir):
            feedback = FeedbackConfig(enabled=True, corpus_dir=corpus_dir)
            return CampaignExecutor(CampaignConfig(
                feedback=feedback, **SMALL)).build_jobs()
        assert jobs(None) and \
            jobs_fingerprint(jobs(str(tmp_path))) == \
            jobs_fingerprint(jobs(None))

    def test_fingerprint_sensitive_to_feedback_knobs(self):
        def fp(**feedback_kwargs):
            return jobs_fingerprint(CampaignExecutor(CampaignConfig(
                feedback=FeedbackConfig(**feedback_kwargs),
                **SMALL)).build_jobs())
        assert fp(enabled=True) != fp(enabled=False)
        assert fp(enabled=True, scheduler="round-robin") != fp(enabled=True)

    def test_kill_resume_with_corpus_journal_matches(self, tmp_path):
        feedback = FeedbackConfig(enabled=True,
                                  corpus_dir=str(tmp_path / "corpus"))
        reference = run_campaign(CampaignConfig(
            workers=1, feedback=FeedbackConfig(enabled=True), **SMALL))
        checkpoint = str(tmp_path / "ckpt")
        run_campaign(CampaignConfig(workers=1, checkpoint_dir=checkpoint,
                                    feedback=feedback, **SMALL))
        path = os.path.join(checkpoint, JOURNAL_NAME)
        with open(path) as stream:
            lines = stream.readlines()
        with open(path, "w") as stream:
            stream.writelines(lines[:1 + 3])  # header + 3 of 6 records
        resumed = run_campaign(
            CampaignConfig(workers=2, checkpoint_dir=checkpoint,
                           feedback=feedback, **SMALL),
            resume=True)
        assert resumed.resumed_jobs == 3
        assert report_key(resumed) == report_key(reference)
        assert resumed.metrics.deterministic() == \
            reference.metrics.deterministic()
        assert resumed.feedback == reference.feedback
        assert resumed.feedback is not None and resumed.feedback.draws > 0


class PartialHangRunner:
    """First ``hang_attempts`` attempts of job ``target`` come back as
    cooperative hangs carrying partial progress (``partial`` iterations
    and matching metrics); later attempts run the job for real.

    Picklable (plain data attributes); attempts are counted in files
    because retries run in fresh worker processes.
    """

    def __init__(self, target, partial, state_dir, hang_attempts=1):
        self.target = target
        self.partial = partial
        self.state_dir = state_dir
        self.hang_attempts = hang_attempts

    def _attempt(self, index):
        os.makedirs(self.state_dir, exist_ok=True)
        path = os.path.join(self.state_dir, f"job-{index}.attempts")
        try:
            with open(path) as stream:
                attempt = int(stream.read().strip() or 0) + 1
        except (OSError, ValueError):
            attempt = 1
        with open(path, "w") as stream:
            stream.write(str(attempt))
        return attempt

    def __call__(self, job):
        if job.job_index == self.target \
                and self._attempt(job.job_index) <= self.hang_attempts:
            metrics = MetricsRegistry()
            metrics.count("mutants.created", self.partial)
            metrics.count("mutants.valid", self.partial)
            return ShardResult(
                job_index=job.job_index, file_name=job.file_name,
                pipeline=job.config.pipeline, seed=job.config.base_seed,
                iterations=self.partial, metrics=metrics,
                timings=StageTimings(mutate=0.5),
                error="injected cooperative hang", failure_kind="hang")
        return execute_job(job)


class TestRetryAccounting:
    """CampaignReport totals must count only the final attempt of a
    retried job.  Hang results carry the interrupted attempt's partial
    progress back to the supervisor (for the discarded-work counter);
    merging that partial progress into ``total_iterations`` would
    double-count every retried job."""

    def test_retried_job_counts_final_attempt_only(self, tmp_path):
        reference = run_campaign(CampaignConfig(workers=1, **SMALL))
        runner = PartialHangRunner(target=2, partial=7,
                                   state_dir=str(tmp_path))
        report = CampaignExecutor(
            CampaignConfig(workers=2, max_job_retries=1,
                           retry_backoff=0.01, **SMALL),
            job_runner=runner).execute()
        # The regression: attempt 1's 7 partial iterations must not
        # inflate the totals — the retry re-runs the job from scratch.
        assert report.total_iterations == reference.total_iterations
        assert report_key(report) == report_key(reference)
        assert report.metrics.deterministic() == \
            reference.metrics.deterministic()
        assert report.metrics.counter("campaign.retry.attempts") == 1
        assert not report.failed_shards and not report.quarantined

    def test_persistent_hang_discards_partial_work(self, tmp_path):
        """With retries exhausted the job is quarantined; its partial
        iterations land in the discarded-work counter, not the totals."""
        runner = PartialHangRunner(target=1, partial=5,
                                   state_dir=str(tmp_path),
                                   hang_attempts=99)
        report = CampaignExecutor(
            CampaignConfig(workers=2, max_job_retries=1,
                           retry_backoff=0.01, **SMALL),
            job_runner=runner).execute()
        assert len(report.quarantined) == 1
        assert report.quarantined[0].attempts == 2
        # 5 of 6 jobs completed; the hung job contributes nothing.
        assert report.total_iterations == 5 * SMALL["mutants_per_file"]
        assert report.metrics.counter(
            "campaign.retry.discarded_iterations") == 5
        assert report.metrics.counter("mutants.created") == \
            report.total_iterations

    def test_unretried_hang_still_reports_partial_as_discarded(self,
                                                               tmp_path):
        """max_job_retries=0: the hang is terminal on the first attempt
        and its partial progress is visible only as discarded work."""
        runner = PartialHangRunner(target=0, partial=3,
                                   state_dir=str(tmp_path),
                                   hang_attempts=99)
        report = CampaignExecutor(
            CampaignConfig(workers=1, **SMALL),
            job_runner=runner).execute()
        assert len(report.failed_shards) == 1
        assert report.failed_shards[0].kind == "hang"
        assert report.total_iterations == 5 * SMALL["mutants_per_file"]
        assert report.metrics.counter(
            "campaign.retry.discarded_iterations") == 3


SIGTERM_SCRIPT = textwrap.dedent("""\
    import sys
    from repro.fuzz import CampaignConfig, run_campaign

    report = run_campaign(CampaignConfig(
        corpus_size=8, mutants_per_file=400, max_inputs=8,
        pipelines=("O2",), workers=2, checkpoint_dir=sys.argv[1]))
    print("INTERRUPTED" if report.interrupted else "COMPLETE")
    print("SIGNAL=" + report.interrupt_signal)
""")


class TestGracefulShutdown:
    def test_request_stop_drains_and_reports_partial(self, tmp_path):
        """Programmatic graceful shutdown: an immediate stop request
        yields a valid empty-but-consistent partial report."""
        executor = CampaignExecutor(CampaignConfig(
            workers=1, checkpoint_dir=str(tmp_path), **SMALL))
        executor.request_stop()
        report = executor.execute()
        assert report.interrupted
        assert report.skipped_jobs == 6
        assert report.total_iterations == 0
        # ... and the checkpoint is resumable into the full campaign.
        resumed = run_campaign(CampaignConfig(
            workers=1, checkpoint_dir=str(tmp_path), **SMALL), resume=True)
        assert not resumed.interrupted
        assert report_key(resumed) == report_key(
            run_campaign(CampaignConfig(workers=1, **SMALL)))

    def test_sigterm_kill_and_resume_matches_uninterrupted(self, tmp_path):
        """The acceptance-criteria test: SIGTERM a running campaign
        process mid-run, then resume from its checkpoint and compare
        against the same campaign run uninterrupted with workers=1."""
        checkpoint = str(tmp_path / "ckpt")
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
            env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", SIGTERM_SCRIPT, checkpoint],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
            text=True)
        time.sleep(1.0)  # let the campaign start and journal some jobs
        proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=120)
        # Either the drain handler caught the signal (clean exit,
        # partial journal) or the signal landed before the handler was
        # installed (hard kill, at worst an empty journal) — resume
        # must produce the uninterrupted report either way.
        assert proc.returncode == 0 or proc.returncode < 0, stderr
        if proc.returncode == 0 and "INTERRUPTED" in stdout:
            assert "SIGNAL=SIGTERM" in stdout
        shape = dict(corpus_size=8, mutants_per_file=400, max_inputs=8,
                     pipelines=("O2",), workers=1)
        resumed = run_campaign(
            CampaignConfig(checkpoint_dir=checkpoint, **shape), resume=True)
        reference = run_campaign(CampaignConfig(**shape))
        assert report_key(resumed) == report_key(reference)
