"""Tests for the checkpoint journal and campaign resume semantics.

The core resilience contract: a campaign interrupted at any point and
resumed from its checkpoint produces a report identical to the same
campaign run uninterrupted (``workers=1``), because already-journaled
job indexes are skipped and their cached results merged in job-index
order.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.fuzz import (CampaignConfig, CampaignExecutor, CheckpointError,
                        CheckpointJournal, CheckpointMismatch, ShardResult,
                        damage_journal, jobs_fingerprint, run_campaign)
from repro.fuzz.checkpoint import JOURNAL_NAME, result_from_dict, \
    result_to_dict
from repro.fuzz.driver import StageTimings
from repro.fuzz.findings import Finding

SMALL = dict(corpus_size=6, mutants_per_file=10, max_inputs=8,
             pipelines=("O2",))


def report_key(report):
    """Everything that must be identical across interruption patterns."""
    return (
        report.total_iterations,
        report.total_findings,
        [(f.kind, f.seed, f.file, tuple(f.bug_ids))
         for f in report.unattributed],
        {bug_id: (o.found, o.first_file, o.first_seed, o.findings)
         for bug_id, o in report.outcomes.items()},
    )


def make_result(index, findings=()):
    return ShardResult(job_index=index, file_name=f"file{index}.ll",
                       pipeline="O2", worker="pid-1", seed=index * 7,
                       iterations=5, findings=list(findings),
                       confirmed_bug_ids=[list(f.bug_ids) for f in findings],
                       timings=StageTimings(mutate=0.1, optimize=0.2,
                                            verify=0.3))


class TestJournalUnit:
    def test_roundtrip(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path))
        finding = Finding(kind="crash", seed=9, file="file1.ll",
                          detail="boom", bug_ids=["52884"])
        assert journal.start("fp", total_jobs=2) == {}
        journal.append(make_result(0))
        journal.append(make_result(1, [finding]))
        journal.close()
        reloaded = CheckpointJournal(str(tmp_path))
        cached = reloaded.start("fp", total_jobs=2, resume=True)
        assert sorted(cached) == [0, 1]
        assert cached[1].findings == [finding]
        assert cached[1].confirmed_bug_ids == [["52884"]]
        assert cached[0].timings.optimize == pytest.approx(0.2)
        assert reloaded.dropped_records == 0
        reloaded.close()

    def test_result_dict_roundtrip_preserves_failures(self):
        result = make_result(3)
        result.error = "worker killed"
        result.failure_kind = "hang"
        result.attempts = 2
        back = result_from_dict(json.loads(
            json.dumps(result_to_dict(result))))
        assert back == result

    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path))
        journal.start("fp-one", total_jobs=1)
        journal.close()
        other = CheckpointJournal(str(tmp_path))
        with pytest.raises(CheckpointMismatch):
            other.start("fp-two", total_jobs=1, resume=True)

    def test_truncated_trailing_record_is_dropped(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path))
        journal.start("fp", total_jobs=3)
        journal.append(make_result(0))
        journal.append(make_result(1))
        journal.close()
        damage_journal(journal.path)
        reloaded = CheckpointJournal(str(tmp_path))
        cached = reloaded.start("fp", total_jobs=3, resume=True)
        assert sorted(cached) == [0]
        assert reloaded.dropped_records == 1
        # Appending after the damaged tail lands on a clean line.
        reloaded.append(make_result(2))
        reloaded.close()
        final = CheckpointJournal(str(tmp_path))
        assert sorted(final.start("fp", total_jobs=3, resume=True)) == [0, 2]
        final.close()

    def test_newline_less_tail_is_dropped_even_if_parsable(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path))
        journal.start("fp", total_jobs=2)
        journal.append(make_result(0))
        journal.close()
        with open(journal.path, "a") as stream:
            stream.write(json.dumps(result_to_dict(make_result(1))))  # no \n
        reloaded = CheckpointJournal(str(tmp_path))
        assert sorted(reloaded.start("fp", 2, resume=True)) == [0]
        assert reloaded.dropped_records == 1
        reloaded.close()

    def test_headerless_journal_refuses_resume(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        path.write_text("garbage that is not json\n")
        with pytest.raises(CheckpointError):
            CheckpointJournal(str(tmp_path)).start("fp", 1, resume=True)

    def test_missing_journal_resumes_empty(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path))
        assert journal.start("fp", total_jobs=2, resume=True) == {}
        journal.close()

    def test_fresh_start_truncates_stale_journal(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path))
        journal.start("fp-old", total_jobs=1)
        journal.append(make_result(0))
        journal.close()
        fresh = CheckpointJournal(str(tmp_path))
        assert fresh.start("fp-new", total_jobs=1, resume=False) == {}
        fresh.close()
        reloaded = CheckpointJournal(str(tmp_path))
        assert reloaded.start("fp-new", 1, resume=True) == {}
        reloaded.close()


class TestFingerprint:
    def test_invariant_to_scheduling_knobs(self):
        base = CampaignConfig(**SMALL)
        tuned = CampaignConfig(workers=8, job_deadline=5.0,
                               max_job_retries=3, global_time_budget=100.0,
                               **SMALL)
        assert jobs_fingerprint(CampaignExecutor(base).build_jobs()) == \
            jobs_fingerprint(CampaignExecutor(tuned).build_jobs())

    def test_sensitive_to_config_and_corpus(self):
        fp = jobs_fingerprint(
            CampaignExecutor(CampaignConfig(**SMALL)).build_jobs())
        reseeded = dict(SMALL, corpus_seed=1)
        assert fp != jobs_fingerprint(CampaignExecutor(
            CampaignConfig(**reseeded)).build_jobs())
        rebudgeted = dict(SMALL, mutants_per_file=11)
        assert fp != jobs_fingerprint(CampaignExecutor(
            CampaignConfig(**rebudgeted)).build_jobs())


class TestCampaignResume:
    @pytest.fixture(scope="class")
    def reference(self):
        return run_campaign(CampaignConfig(workers=1, **SMALL))

    def test_checkpointed_run_matches_plain_run(self, tmp_path, reference):
        report = run_campaign(CampaignConfig(
            workers=1, checkpoint_dir=str(tmp_path), **SMALL))
        assert report_key(report) == report_key(reference)

    def test_resume_of_complete_run_is_all_cached(self, tmp_path, reference):
        config = CampaignConfig(workers=1, checkpoint_dir=str(tmp_path),
                                **SMALL)
        run_campaign(config)
        resumed = run_campaign(config, resume=True)
        assert report_key(resumed) == report_key(reference)
        assert resumed.resumed_jobs == 6
        assert resumed.total_iterations == reference.total_iterations

    @pytest.mark.parametrize("keep", [0, 1, 3, 5])
    def test_killed_campaign_resumes_identically(self, tmp_path, reference,
                                                 keep):
        """Simulate a kill after ``keep`` journaled jobs: truncate the
        journal to that prefix, then resume (with a different worker
        count for good measure) and demand the uninterrupted report."""
        checkpoint = str(tmp_path / f"keep{keep}")
        config = CampaignConfig(workers=1, checkpoint_dir=checkpoint,
                                **SMALL)
        run_campaign(config)
        path = os.path.join(checkpoint, JOURNAL_NAME)
        with open(path) as stream:
            lines = stream.readlines()
        with open(path, "w") as stream:
            stream.writelines(lines[:1 + keep])  # header + keep records
        resumed = run_campaign(
            CampaignConfig(workers=2, checkpoint_dir=checkpoint, **SMALL),
            resume=True)
        assert report_key(resumed) == report_key(reference)
        assert resumed.resumed_jobs == keep

    def test_damaged_record_is_rerun_not_merged(self, tmp_path, reference):
        config = CampaignConfig(workers=1, checkpoint_dir=str(tmp_path),
                                **SMALL)
        run_campaign(config)
        damage_journal(os.path.join(str(tmp_path), JOURNAL_NAME))
        resumed = run_campaign(config, resume=True)
        assert report_key(resumed) == report_key(reference)
        assert resumed.resumed_jobs == 5  # the damaged sixth re-ran

    def test_resume_without_checkpoint_dir_raises(self):
        with pytest.raises(ValueError):
            run_campaign(CampaignConfig(**SMALL), resume=True)

    def test_resume_refuses_foreign_journal(self, tmp_path, reference):
        config = CampaignConfig(workers=1, checkpoint_dir=str(tmp_path),
                                **SMALL)
        run_campaign(config)
        reseeded = dict(SMALL, corpus_seed=3)
        with pytest.raises(CheckpointMismatch):
            run_campaign(CampaignConfig(
                workers=1, checkpoint_dir=str(tmp_path), **reseeded),
                resume=True)


SIGTERM_SCRIPT = textwrap.dedent("""\
    import sys
    from repro.fuzz import CampaignConfig, run_campaign

    report = run_campaign(CampaignConfig(
        corpus_size=8, mutants_per_file=400, max_inputs=8,
        pipelines=("O2",), workers=2, checkpoint_dir=sys.argv[1]))
    print("INTERRUPTED" if report.interrupted else "COMPLETE")
    print("SIGNAL=" + report.interrupt_signal)
""")


class TestGracefulShutdown:
    def test_request_stop_drains_and_reports_partial(self, tmp_path):
        """Programmatic graceful shutdown: an immediate stop request
        yields a valid empty-but-consistent partial report."""
        executor = CampaignExecutor(CampaignConfig(
            workers=1, checkpoint_dir=str(tmp_path), **SMALL))
        executor.request_stop()
        report = executor.execute()
        assert report.interrupted
        assert report.skipped_jobs == 6
        assert report.total_iterations == 0
        # ... and the checkpoint is resumable into the full campaign.
        resumed = run_campaign(CampaignConfig(
            workers=1, checkpoint_dir=str(tmp_path), **SMALL), resume=True)
        assert not resumed.interrupted
        assert report_key(resumed) == report_key(
            run_campaign(CampaignConfig(workers=1, **SMALL)))

    def test_sigterm_kill_and_resume_matches_uninterrupted(self, tmp_path):
        """The acceptance-criteria test: SIGTERM a running campaign
        process mid-run, then resume from its checkpoint and compare
        against the same campaign run uninterrupted with workers=1."""
        checkpoint = str(tmp_path / "ckpt")
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
            env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", SIGTERM_SCRIPT, checkpoint],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
            text=True)
        time.sleep(1.0)  # let the campaign start and journal some jobs
        proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=120)
        # Either the drain handler caught the signal (clean exit,
        # partial journal) or the signal landed before the handler was
        # installed (hard kill, at worst an empty journal) — resume
        # must produce the uninterrupted report either way.
        assert proc.returncode == 0 or proc.returncode < 0, stderr
        if proc.returncode == 0 and "INTERRUPTED" in stdout:
            assert "SIGNAL=SIGTERM" in stdout
        shape = dict(corpus_size=8, mutants_per_file=400, max_inputs=8,
                     pipelines=("O2",), workers=1)
        resumed = run_campaign(
            CampaignConfig(checkpoint_dir=checkpoint, **shape), resume=True)
        reference = run_campaign(CampaignConfig(**shape))
        assert report_key(resumed) == report_key(reference)
