"""Tests for the sharded campaign engine (repro.fuzz.parallel)."""

import os
import time

import pytest

from repro.fuzz import (CampaignConfig, CampaignExecutor, ShardJob,
                        ShardResult, execute_job, run_campaign, run_jobs)
from repro.fuzz.campaign import JOB_SEED_STRIDE

SMALL = dict(corpus_size=6, mutants_per_file=10, max_inputs=8,
             pipelines=("O2",))


def report_key(report):
    """Everything that must be identical across worker counts."""
    return (
        report.total_iterations,
        report.total_findings,
        [(f.kind, f.seed, f.file, tuple(f.bug_ids))
         for f in report.unattributed],
        {bug_id: (o.found, o.first_file, o.first_seed, o.findings)
         for bug_id, o in report.outcomes.items()},
    )


# Module-level so they pickle by reference into pool workers.
def poisoned_runner(job):
    if job.job_index == 2:
        raise RuntimeError("poisoned job")
    return execute_job(job)


def dying_runner(job):
    if job.job_index == 1:
        os._exit(17)  # kill the worker process outright
    return execute_job(job)


def slow_runner(job):
    time.sleep(0.25)
    return execute_job(job)


def slow_dying_runner(job):
    time.sleep(0.2)
    os._exit(17)


def parse_error_runner(job):
    if job.job_index == 3:
        return ShardResult(job_index=job.job_index, file_name=job.file_name,
                           pipeline=job.config.pipeline, worker="test",
                           parse_error="expected type at line 1")
    return execute_job(job)


class TestDeterminism:
    @pytest.fixture(scope="class")
    def sequential(self):
        return run_campaign(CampaignConfig(workers=1, **SMALL))

    def test_parallel_report_matches_sequential(self, sequential):
        parallel = run_campaign(CampaignConfig(workers=4, **SMALL))
        assert report_key(parallel) == report_key(sequential)

    def test_two_workers_matches_too(self, sequential):
        parallel = run_campaign(CampaignConfig(workers=2, **SMALL))
        assert report_key(parallel) == report_key(sequential)

    def test_job_seed_derivation_is_index_based(self):
        executor = CampaignExecutor(CampaignConfig(base_seed=7, **SMALL))
        jobs = executor.build_jobs()
        assert [job.job_index for job in jobs] == list(range(len(jobs)))
        for job in jobs:
            assert job.config.base_seed == 7 + job.job_index * JOB_SEED_STRIDE
            assert job.config.tv.seed == 7 + job.job_index

    def test_worker_timings_sum_to_totals(self):
        report = run_campaign(CampaignConfig(workers=3, **SMALL))
        assert report.worker_timings
        total = sum(t.total for t in report.worker_timings.values())
        assert total == pytest.approx(report.timings.total)


class TestCrashContainment:
    def test_raising_job_becomes_failed_shard(self):
        config = CampaignConfig(workers=2, **SMALL)
        report = CampaignExecutor(config, job_runner=poisoned_runner).execute()
        assert len(report.failed_shards) == 1
        failure = report.failed_shards[0]
        assert failure.job_index == 2
        assert "poisoned" in failure.error
        # The rest of the campaign still ran and merged.
        expected_jobs = len(CampaignExecutor(config).build_jobs())
        assert report.total_iterations == \
            (expected_jobs - 1) * SMALL["mutants_per_file"]

    def test_raising_job_contained_sequentially_too(self):
        config = CampaignConfig(workers=1, **SMALL)
        report = CampaignExecutor(config, job_runner=poisoned_runner).execute()
        assert [f.job_index for f in report.failed_shards] == [2]

    def test_worker_process_death_is_contained(self):
        # os._exit kills the worker, breaking the shared pool; the engine
        # must retry the suspects in isolation and record exactly the
        # dying job as failed.
        config = CampaignConfig(workers=2, **SMALL)
        report = CampaignExecutor(config, job_runner=dying_runner).execute()
        assert [f.job_index for f in report.failed_shards] == [1]
        assert "died" in report.failed_shards[0].error
        expected_jobs = len(CampaignExecutor(config).build_jobs())
        assert report.total_iterations == \
            (expected_jobs - 1) * SMALL["mutants_per_file"]


class TestGlobalTimeBudget:
    def test_zero_budget_skips_everything_sequentially(self):
        report = run_campaign(CampaignConfig(
            workers=1, global_time_budget=1e-9, **SMALL))
        total_jobs = SMALL["corpus_size"] * len(SMALL["pipelines"])
        assert report.skipped_jobs == total_jobs
        assert report.total_iterations == 0

    def test_parallel_zero_budget_skips_everything(self):
        # Submission is gated on the budget, so an already-expired budget
        # starts no jobs at all.
        report = run_campaign(CampaignConfig(
            workers=2, global_time_budget=1e-9, **SMALL))
        total_jobs = SMALL["corpus_size"] * len(SMALL["pipelines"])
        assert report.skipped_jobs == total_jobs
        assert report.total_iterations == 0

    def test_parallel_midrun_budget_drains_and_reports_skips(self):
        # A budget that expires mid-campaign: whatever ran was merged,
        # whatever did not start is counted, nothing is lost or orphaned.
        report = run_campaign(CampaignConfig(
            workers=2, global_time_budget=0.05, **SMALL))
        total_jobs = SMALL["corpus_size"] * len(SMALL["pipelines"])
        merged_jobs = (total_jobs - report.skipped_jobs
                       - len(report.failed_shards))
        assert 0 <= merged_jobs <= total_jobs
        assert report.total_iterations <= \
            total_jobs * SMALL["mutants_per_file"]

    def test_pool_budget_expiry_cancels_pending_once(self):
        # Jobs take ~0.25s each and the budget expires at 0.1s, so the
        # first completion already finds it spent and cancels everything
        # still pending.  The pool prefetches a few work items beyond
        # the running ones (uncancellable), so with twelve jobs some run
        # and some are cancelled: results hold an error-free subset, the
        # rest simply have no entry (skipped, not failed).
        wide = dict(SMALL, corpus_size=12)
        jobs = CampaignExecutor(CampaignConfig(**wide)).build_jobs()
        results = run_jobs(jobs, workers=2, runner=slow_runner,
                           time_budget=0.1)
        assert 0 < len(results) < len(jobs)
        assert all(not r.error for r in results)
        assert [r.job_index for r in results] == sorted(
            r.job_index for r in results)

    def test_broken_pool_suspects_skipped_under_expired_budget(self):
        # Every worker dies after the 0.1s budget has already expired.
        # The broken-pool recovery must not spin up isolated retry pools
        # for the suspects once the budget is gone — the run ends fast
        # with no results rather than re-running each dying job alone.
        jobs = CampaignExecutor(CampaignConfig(**SMALL)).build_jobs()
        started = time.perf_counter()
        results = run_jobs(jobs, workers=2, runner=slow_dying_runner,
                           time_budget=0.1)
        elapsed = time.perf_counter() - started
        assert results == []
        assert elapsed < 10.0


class TestParseFailureSurfacing:
    def test_parse_error_shard_lands_in_parse_failures(self):
        config = CampaignConfig(workers=2, **SMALL)
        report = CampaignExecutor(
            config, job_runner=parse_error_runner).execute()
        assert [f.job_index for f in report.parse_failures] == [3]
        failure = report.parse_failures[0]
        assert failure.kind == "parse"
        assert "expected type" in failure.error
        assert not report.failed_shards
        # The rest of the campaign merged normally.
        expected_jobs = len(CampaignExecutor(config).build_jobs())
        assert report.total_iterations == \
            (expected_jobs - 1) * SMALL["mutants_per_file"]
        assert "parse failure" in report.table()


class TestRunJobs:
    def test_results_ordered_by_job_index(self):
        executor = CampaignExecutor(CampaignConfig(**SMALL))
        jobs = executor.build_jobs()[:4]
        results = run_jobs(jobs, workers=3)
        assert [r.job_index for r in results] == [0, 1, 2, 3]
        assert all(isinstance(r, ShardResult) for r in results)

    def test_parse_error_recorded_not_raised(self):
        job = ShardJob(job_index=0, file_name="bad.ll", text="not ir at all",
                       config=CampaignConfig(**SMALL).job_config(0, "O2"),
                       iterations=5)
        result = execute_job(job)
        assert result.parse_error
        assert result.iterations == 0

    def test_empty_module_yields_zero_iteration_shard(self):
        job = ShardJob(job_index=0, file_name="wide.ll",
                       text="define i128 @wide(i128 %x) {\n"
                            "  ret i128 %x\n}\n",
                       config=CampaignConfig(**SMALL).job_config(0, "O2"),
                       iterations=5)
        result = execute_job(job)
        assert result.iterations == 0
        assert not result.error
        assert "wide" in result.dropped_functions
