"""Tests for SSA values, use lists, and constants."""

import pytest

from repro.ir import (Argument, BinaryOperator, ConstantInt,
                      ConstantPointerNull, I1, I8, I32, PoisonValue,
                      UndefValue)
from repro.ir.values import constant_to_key, same_value


def make_add():
    a = Argument(I32, "a")
    b = Argument(I32, "b")
    return a, b, BinaryOperator("add", a, b)


class TestUseLists:
    def test_operands_register_uses(self):
        a, b, add = make_add()
        assert add.operands == [a, b]
        assert [u.user for u in a.uses] == [add]
        assert a.num_uses() == 1

    def test_set_operand_moves_use(self):
        a, b, add = make_add()
        c = Argument(I32, "c")
        add.set_operand(0, c)
        assert a.num_uses() == 0
        assert c.num_uses() == 1
        assert add.lhs is c

    def test_set_operand_same_value_noop(self):
        a, b, add = make_add()
        add.set_operand(0, a)
        assert a.num_uses() == 1

    def test_duplicate_operand_two_uses(self):
        a = Argument(I32, "a")
        add = BinaryOperator("add", a, a)
        assert a.num_uses() == 2
        assert [u.index for u in a.uses] == [0, 1]

    def test_replace_all_uses_with(self):
        a, b, add = make_add()
        mul = BinaryOperator("mul", add, add)
        replacement = Argument(I32, "r")
        add.replace_all_uses_with(replacement)
        assert add.num_uses() == 0
        assert mul.operands == [replacement, replacement]

    def test_replace_all_uses_with_self_noop(self):
        a, b, add = make_add()
        _ = BinaryOperator("mul", add, add)
        add.replace_all_uses_with(add)
        assert add.num_uses() == 2

    def test_drop_all_references(self):
        a, b, add = make_add()
        add.drop_all_references()
        assert a.num_uses() == 0
        assert b.num_uses() == 0
        assert add.operands == []

    def test_users(self):
        a, b, add = make_add()
        mul = BinaryOperator("mul", a, a)
        assert set(map(id, a.users())) == {id(add), id(mul)}


class TestConstantInt:
    def test_canonical_unsigned_storage(self):
        c = ConstantInt(I8, -1)
        assert c.value == 255

    def test_signed_value(self):
        assert ConstantInt(I8, 255).signed_value() == -1
        assert ConstantInt(I8, 127).signed_value() == 127
        assert ConstantInt(I8, 128).signed_value() == -128

    def test_wrapping(self):
        assert ConstantInt(I8, 256).value == 0
        assert ConstantInt(I8, 257).value == 1

    def test_predicates(self):
        assert ConstantInt(I8, 0).is_zero()
        assert ConstantInt(I8, 1).is_one()
        assert ConstantInt(I8, 255).is_all_ones()
        assert not ConstantInt(I8, 254).is_all_ones()

    def test_true_false(self):
        assert ConstantInt.true().value == 1
        assert ConstantInt.false().value == 0
        assert ConstantInt.true().type is I1

    def test_requires_int_type(self):
        from repro.ir import PTR

        with pytest.raises(TypeError):
            ConstantInt(PTR, 0)


class TestSameValue:
    def test_identity(self):
        a = Argument(I32, "a")
        assert same_value(a, a)

    def test_equal_constants(self):
        assert same_value(ConstantInt(I32, 7), ConstantInt(I32, 7))

    def test_different_values(self):
        assert not same_value(ConstantInt(I32, 7), ConstantInt(I32, 8))

    def test_different_widths(self):
        assert not same_value(ConstantInt(I32, 7), ConstantInt(I8, 7))

    def test_null_pointers(self):
        assert same_value(ConstantPointerNull(), ConstantPointerNull())

    def test_undef_not_same(self):
        # undef is per-use nondeterministic; never "the same value".
        assert not same_value(UndefValue(I32), UndefValue(I32))


class TestConstantKeys:
    def test_int_key(self):
        assert constant_to_key(ConstantInt(I32, 5)) == \
            constant_to_key(ConstantInt(I32, 5))
        assert constant_to_key(ConstantInt(I32, 5)) != \
            constant_to_key(ConstantInt(I8, 5))

    def test_undef_poison_distinct(self):
        assert constant_to_key(UndefValue(I32)) != \
            constant_to_key(PoisonValue(I32))

    def test_null_key(self):
        assert constant_to_key(ConstantPointerNull()) == ("null",)
