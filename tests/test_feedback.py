"""Tests for coverage-guided fuzzing (``repro.fuzz.feedback``).

Unit coverage of the feedback value types and the config validation,
plus driver-level integration: the feedback loop must be deterministic
(identical runs give identical corpora, arm statistics, and
``deterministic()`` metrics) and memo-invariant (the optimize cache
replays stored stats, so feedback with memoization on equals feedback
with memoization off, bit for bit).
"""

import os

import pytest

from repro.fuzz import Session
from repro.fuzz.corpus import Corpus
from repro.fuzz.driver import ConfigError, FuzzConfig, FuzzDriver
from repro.fuzz.feedback import (Feedback, FeedbackConfig, FeedbackMap,
                                 FeedbackStats, bug_feature)
from repro.mutate import MutatorConfig
from repro.tv import RefinementConfig

from helpers import parsed

CLAMP = """
define i32 @clamp(i32 %x, i32 %y) {
  %c = icmp ult i32 %x, 100
  %r = select i1 %c, i32 %x, i32 100
  %s = add i32 %r, %y
  ret i32 %s
}
"""


def make_config(**kwargs):
    defaults = dict(
        pipeline="O2",
        mutator=MutatorConfig(max_mutations=2),
        tv=RefinementConfig(max_inputs=12),
        feedback=FeedbackConfig(enabled=True),
    )
    defaults.update(kwargs)
    return FuzzConfig(**defaults)


def make_driver(text=CLAMP, **kwargs):
    return FuzzDriver(parsed(text), make_config(**kwargs), file_name="t.ll")


class TestFeedbackValues:
    def test_map_collects_stats_and_bugs(self):
        feedback = FeedbackMap({"instcombine.rule.foo": 3})
        feedback.add_stats({"pass.gvn.changed": 1,
                            "instcombine.rule.foo": 2})
        feedback.add_bugs(["53252"])
        assert feedback.features() == {"instcombine.rule.foo",
                                       "pass.gvn.changed", "bug:53252"}
        assert feedback.counts["instcombine.rule.foo"] == 5
        assert len(feedback) == 3 and bool(feedback)

    def test_map_merge(self):
        left = FeedbackMap({"a": 1})
        left.merge(FeedbackMap({"a": 2, "b": 1}))
        assert left.counts == {"a": 3, "b": 1}

    def test_bug_feature(self):
        assert bug_feature("49778") == "bug:49778"

    def test_feedback_novelty(self):
        novel = Feedback(features=frozenset({"a"}),
                         new_features=frozenset({"a"}))
        stale = Feedback(features=frozenset({"a"}),
                         new_features=frozenset())
        assert novel.novel and not stale.novel

    def test_stats_merge_and_roundtrip(self):
        total = FeedbackStats()
        total.merge(FeedbackStats(features_covered=3, corpus_entries=1,
                                  admitted=2, distilled=1, new_features=4,
                                  draws=10))
        total.merge(None)
        total.merge(FeedbackStats(draws=5))
        assert total.draws == 15 and total.features_covered == 3
        assert FeedbackStats.from_dict(total.to_dict()) == total


class TestFeedbackConfig:
    def test_defaults_are_off_and_valid(self):
        config = FeedbackConfig()
        assert not config.enabled
        assert config.validate() is config
        assert config.scheduler_name() == "bandit"

    def test_scheduler_requires_enabled(self):
        with pytest.raises(ValueError):
            FeedbackConfig(scheduler="bandit").validate()

    def test_corpus_dir_requires_enabled(self):
        with pytest.raises(ValueError):
            FeedbackConfig(corpus_dir="/tmp/x").validate()

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            FeedbackConfig(enabled=True, scheduler="thompson").validate()

    def test_max_corpus_size_positive(self):
        with pytest.raises(ValueError):
            FeedbackConfig(enabled=True, max_corpus_size=0).validate()

    def test_fuzz_config_surfaces_feedback_errors_as_config_errors(self):
        with pytest.raises(ConfigError):
            FuzzConfig(feedback=FeedbackConfig(scheduler="bandit")) \
                .validate(iterations=1)

    def test_valid_combinations_pass(self):
        FeedbackConfig(enabled=True, scheduler="round-robin",
                       corpus_dir="/tmp/x", max_corpus_size=8).validate()


def run_state(driver, iterations=40):
    """Everything feedback-related that must be reproducible."""
    report = driver.run(iterations=iterations)
    driver.close()
    return (
        report.feedback.to_dict(),
        sorted(driver.corpus.covered),
        [entry.fingerprint for entry in driver.corpus.entries()],
        [(key, stats.plays, stats.reward)
         for key, stats in driver.scheduler.arms()],
        [(f.kind, f.seed, tuple(f.bug_ids)) for f in report.findings],
        report.metrics.deterministic(),
    )


class TestDriverIntegration:
    def test_disabled_by_default(self):
        driver = FuzzDriver(parsed(CLAMP), FuzzConfig(pipeline="O2"))
        report = driver.run(iterations=5)
        assert driver.corpus is None and driver.scheduler is None
        assert report.feedback is None and driver.last_feedback is None

    def test_enabled_driver_builds_a_corpus(self):
        driver = make_driver()
        report = driver.run(iterations=40)
        driver.close()
        assert report.feedback is not None
        assert report.feedback.draws == 40
        assert report.feedback.features_covered > 0
        assert report.feedback.corpus_entries == len(driver.corpus)
        assert report.feedback.admitted == driver.corpus.admitted_count
        assert driver.last_feedback is not None
        assert driver.scheduler.total_plays == 40
        assert report.metrics.counter("feedback.draws") == 40

    def test_baseline_features_are_not_novel(self):
        """The seed module's own behavior is covered before iteration 0,
        so an unmutated-equivalent mutant cannot enter the corpus."""
        driver = make_driver()
        assert driver.corpus.features_covered() > 0
        baseline = set(driver.corpus.covered)
        driver.run(iterations=10)
        driver.close()
        for entry in driver.corpus.entries():
            assert not entry.features <= baseline

    def test_identical_runs_are_identical(self):
        assert run_state(make_driver()) == run_state(make_driver())

    def test_feedback_is_memo_invariant(self):
        """Optimize-cache hits replay stored stats, so coverage, corpus,
        arms, findings, and deterministic metrics are bit-identical with
        memoization on and off."""
        on = run_state(make_driver(
            memo=True, enabled_bugs=("53252",)))
        off = run_state(make_driver(
            memo=False, enabled_bugs=("53252",),
            mutator=MutatorConfig(max_mutations=2, cow_clone=False)))
        assert on == off

    def test_round_robin_scheduler_is_selectable(self):
        driver = make_driver(
            feedback=FeedbackConfig(enabled=True, scheduler="round-robin"))
        driver.run(iterations=10)
        driver.close()
        assert driver.scheduler.name == "round-robin"
        assert driver.scheduler.total_plays == 10

    def test_crash_features_cover_but_never_admit(self):
        """Crash iterations contribute only their bug:<id> feature and
        the crashing mutant stays out of the corpus."""
        driver = make_driver(enabled_bugs=("56968",))
        report = driver.run(iterations=150)
        driver.close()
        crashes = [f for f in report.findings if f.kind == "crash"]
        assert crashes, "seeded crash bug never fired in 150 iterations"
        assert bug_feature("56968") in driver.corpus.covered
        for entry in driver.corpus.entries():
            assert bug_feature("56968") not in entry.features

    def test_corpus_journal_roundtrips_through_driver(self, tmp_path):
        driver = make_driver(feedback=FeedbackConfig(
            enabled=True, corpus_dir=str(tmp_path)))
        driver.run(iterations=40)
        driver.close()
        path = os.path.join(str(tmp_path), "t_0.corpus.jsonl")
        assert os.path.exists(path)
        loaded = Corpus.load(path)
        assert [e.fingerprint for e in loaded.entries()] == \
            [e.fingerprint for e in driver.corpus.entries()]
        # Journal coverage excludes baseline/crash-only features (they
        # have no admissible entry), but every admitted entry is there.
        assert loaded.covered <= driver.corpus.covered

    def test_max_corpus_size_is_respected(self):
        driver = make_driver(feedback=FeedbackConfig(
            enabled=True, max_corpus_size=2))
        report = driver.run(iterations=60)
        driver.close()
        assert len(driver.corpus) <= 2
        assert report.feedback.corpus_entries <= 2


class TestSessionReport:
    def test_session_run_reports_feedback(self):
        session = Session.from_text(CLAMP, make_config())
        report = session.run(iterations=20)
        assert report.feedback is not None
        assert report.feedback.draws == 20

    def test_session_run_without_feedback_reports_none(self):
        session = Session.from_text(CLAMP, FuzzConfig(pipeline="O2"))
        assert session.run(iterations=5).feedback is None
