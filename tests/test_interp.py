"""Tests for the poison/undef-aware concrete interpreter."""

import pytest

from repro.tv import (ExecutionLimits, Interpreter, POISON, StepLimitExceeded,
                      UBError, is_poison)

from helpers import parsed


def run(text: str, args=(), fn_name: str = "f", oracle=None,
        limits=None, setup=None):
    module = parsed(text)
    interp = Interpreter(module, oracle, limits)
    if setup:
        setup(interp)
    return interp.run(module.get_function(fn_name), list(args))


class TestArithmetic:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("add", 200, 100, 44),      # wraps at i8
        ("sub", 5, 10, 251),
        ("mul", 16, 16, 0),
        ("udiv", 200, 3, 66),
        ("urem", 200, 3, 2),
        ("and", 0b1100, 0b1010, 0b1000),
        ("or", 0b1100, 0b1010, 0b1110),
        ("xor", 0b1100, 0b1010, 0b0110),
        ("shl", 1, 7, 128),
        ("lshr", 128, 7, 1),
        ("ashr", 128, 7, 255),      # sign extends
    ])
    def test_binary(self, op, a, b, expected):
        result = run(f"""
define i8 @f(i8 %a, i8 %b) {{
  %r = {op} i8 %a, %b
  ret i8 %r
}}
""", [a, b])
        assert result == expected

    def test_sdiv_truncates_toward_zero(self):
        # -7 / 2 == -3 in C-style division.
        result = run("""
define i8 @f(i8 %a, i8 %b) {
  %r = sdiv i8 %a, %b
  ret i8 %r
}
""", [249, 2])
        assert result == (256 - 3)

    def test_srem_sign_follows_dividend(self):
        result = run("""
define i8 @f(i8 %a, i8 %b) {
  %r = srem i8 %a, %b
  ret i8 %r
}
""", [249, 2])  # -7 rem 2 == -1
        assert result == 255

    @pytest.mark.parametrize("op", ["udiv", "sdiv", "urem", "srem"])
    def test_division_by_zero_is_ub(self, op):
        with pytest.raises(UBError):
            run(f"""
define i8 @f(i8 %a) {{
  %r = {op} i8 %a, 0
  ret i8 %r
}}
""", [1])

    def test_sdiv_overflow_is_ub(self):
        with pytest.raises(UBError):
            run("""
define i8 @f() {
  %r = sdiv i8 -128, -1
  ret i8 %r
}
""")

    def test_shift_out_of_range_is_poison(self):
        result = run("""
define i8 @f(i8 %a) {
  %r = shl i8 %a, 8
  ret i8 %r
}
""", [1])
        assert is_poison(result)

    def test_nsw_overflow_is_poison(self):
        result = run("""
define i8 @f(i8 %a) {
  %r = add nsw i8 %a, 1
  ret i8 %r
}
""", [127])
        assert is_poison(result)

    def test_nsw_no_overflow_is_fine(self):
        assert run("""
define i8 @f(i8 %a) {
  %r = add nsw i8 %a, 1
  ret i8 %r
}
""", [10]) == 11

    def test_nuw_overflow_is_poison(self):
        assert is_poison(run("""
define i8 @f(i8 %a) {
  %r = add nuw i8 %a, 1
  ret i8 %r
}
""", [255]))

    def test_exact_violation_is_poison(self):
        assert is_poison(run("""
define i8 @f() {
  %r = udiv exact i8 7, 2
  ret i8 %r
}
"""))

    def test_poison_propagates(self):
        assert is_poison(run("""
define i8 @f(i8 %a) {
  %p = add nuw i8 %a, 1
  %r = xor i8 %p, 7
  ret i8 %r
}
""", [255]))


class TestCompareSelectCast:
    @pytest.mark.parametrize("pred,a,b,expected", [
        ("eq", 5, 5, 1), ("ne", 5, 5, 0),
        ("ult", 200, 100, 0), ("ugt", 200, 100, 1),
        ("slt", 200, 100, 1),   # -56 < 100 signed
        ("sgt", 200, 100, 0),
        ("ule", 100, 100, 1), ("uge", 99, 100, 0),
        ("sle", 128, 127, 1), ("sge", 128, 127, 0),
    ])
    def test_icmp(self, pred, a, b, expected):
        assert run(f"""
define i1 @f(i8 %a, i8 %b) {{
  %r = icmp {pred} i8 %a, %b
  ret i1 %r
}}
""", [a, b]) == expected

    def test_select(self):
        text = """
define i8 @f(i1 %c) {
  %r = select i1 %c, i8 10, i8 20
  ret i8 %r
}
"""
        assert run(text, [1]) == 10
        assert run(text, [0]) == 20

    def test_select_poison_condition(self):
        assert is_poison(run("""
define i8 @f() {
  %r = select i1 poison, i8 10, i8 20
  ret i8 %r
}
"""))

    def test_select_does_not_propagate_unchosen_poison(self):
        assert run("""
define i8 @f() {
  %r = select i1 true, i8 10, i8 poison
  ret i8 %r
}
""") == 10

    def test_casts(self):
        assert run("""
define i32 @f(i8 %x) {
  %r = zext i8 %x to i32
  ret i32 %r
}
""", [200]) == 200
        assert run("""
define i32 @f(i8 %x) {
  %r = sext i8 %x to i32
  ret i32 %r
}
""", [200]) == 0xFFFFFF00 | 200
        assert run("""
define i8 @f(i32 %x) {
  %r = trunc i32 %x to i8
  ret i8 %r
}
""", [0x1234]) == 0x34

    def test_freeze_of_value_is_identity(self):
        assert run("""
define i8 @f(i8 %x) {
  %r = freeze i8 %x
  ret i8 %r
}
""", [42]) == 42

    def test_freeze_of_poison_is_concrete(self):
        result = run("""
define i8 @f() {
  %p = shl i8 1, 9
  %r = freeze i8 %p
  ret i8 %r
}
""")
        assert not is_poison(result)
        assert isinstance(result, int)


class TestControlFlow:
    def test_branching(self):
        text = """
define i8 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  ret i8 1
b:
  ret i8 2
}
"""
        assert run(text, [1]) == 1
        assert run(text, [0]) == 2

    def test_branch_on_poison_is_ub(self):
        with pytest.raises(UBError):
            run("""
define i8 @f() {
entry:
  br i1 poison, label %a, label %b
a:
  ret i8 1
b:
  ret i8 2
}
""")

    def test_phi_and_loop(self):
        # Sum 0..n-1.
        text = """
define i32 @f(i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %next, %body ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %next = add i32 %i, 1
  %acc2 = add i32 %acc, %i
  br label %header
exit:
  ret i32 %acc
}
"""
        assert run(text, [5]) == 10
        assert run(text, [0]) == 0

    def test_phis_read_atomically(self):
        # The two phis swap values; they must read their inputs from
        # before the edge, not see each other's new values.
        text = """
define i32 @f() {
entry:
  br label %loop
loop:
  %a = phi i32 [ 1, %entry ], [ %b, %loop ]
  %b = phi i32 [ 2, %entry ], [ %a, %loop ]
  %count = phi i32 [ 0, %entry ], [ %inc, %loop ]
  %inc = add i32 %count, 1
  %done = icmp uge i32 %inc, 3
  br i1 %done, label %exit, label %loop
exit:
  %r = mul i32 %a, 10
  %s = add i32 %r, %b
  ret i32 %s
}
"""
        # Swaps happen on each back edge: (1,2) -> (2,1) -> (1,2); a
        # non-atomic evaluation would collapse both phis to the same
        # value and return 22.
        assert run(text) == 12

    def test_switch(self):
        text = """
define i8 @f(i8 %x) {
entry:
  switch i8 %x, label %d [ i8 0, label %a i8 9, label %b ]
a:
  ret i8 100
b:
  ret i8 101
d:
  ret i8 102
}
"""
        assert run(text, [0]) == 100
        assert run(text, [9]) == 101
        assert run(text, [5]) == 102

    def test_unreachable_is_ub(self):
        with pytest.raises(UBError):
            run("""
define void @f() {
  unreachable
}
""")

    def test_step_limit(self):
        with pytest.raises(StepLimitExceeded):
            run("""
define void @f() {
entry:
  br label %spin
spin:
  br label %spin
}
""", limits=ExecutionLimits(max_steps=100))


class TestMemory:
    def test_alloca_store_load(self):
        assert run("""
define i32 @f(i32 %x) {
  %slot = alloca i32
  store i32 %x, ptr %slot
  %v = load i32, ptr %slot
  ret i32 %v
}
""", [12345]) == 12345

    def test_load_of_uninitialized_is_nondeterministic_not_ub(self):
        result = run("""
define i8 @f() {
  %slot = alloca i8
  %v = load i8, ptr %slot
  ret i8 %v
}
""")
        assert isinstance(result, int)

    def test_store_poison_then_load_is_poison(self):
        assert is_poison(run("""
define i8 @f() {
  %slot = alloca i8
  store i8 poison, ptr %slot
  %v = load i8, ptr %slot
  ret i8 %v
}
"""))

    def test_null_load_is_ub(self):
        with pytest.raises(UBError):
            run("""
define i8 @f() {
  %v = load i8, ptr null
  ret i8 %v
}
""")

    def test_out_of_bounds_is_ub(self):
        with pytest.raises(UBError):
            run("""
define i64 @f() {
  %slot = alloca i8
  %v = load i64, ptr %slot
  ret i64 %v
}
""")

    def test_gep_arithmetic(self):
        assert run("""
define i8 @f() {
  %slot = alloca i32
  store i32 305419896, ptr %slot
  %p1 = getelementptr i8, ptr %slot, i64 1
  %v = load i8, ptr %p1
  ret i8 %v
}
""") == 0x56  # 0x12345678 little-endian byte 1

    def test_gep_negative_index(self):
        assert run("""
define i8 @f() {
  %slot = alloca i32
  store i32 -1, ptr %slot
  %p2 = getelementptr i8, ptr %slot, i64 2
  %p1 = getelementptr i8, ptr %p2, i64 -1
  %v = load i8, ptr %p1
  ret i8 %v
}
""") == 0xFF

    def test_inbounds_gep_oob_is_poison(self):
        result = run("""
define ptr @f() {
  %slot = alloca i8
  %p = getelementptr inbounds i8, ptr %slot, i64 100
  ret ptr %p
}
""")
        assert is_poison(result)

    def test_narrow_store_wide_load_mixes_bytes(self):
        assert run("""
define i16 @f() {
  %slot = alloca i16
  store i16 0, ptr %slot
  store i8 -1, ptr %slot
  %v = load i16, ptr %slot
  ret i16 %v
}
""") == 0x00FF


class TestCallsAndIntrinsics:
    def test_internal_call(self):
        assert run("""
define i8 @double(i8 %x) {
  %r = add i8 %x, %x
  ret i8 %r
}

define i8 @f(i8 %x) {
  %r = call i8 @double(i8 %x)
  ret i8 %r
}
""", [21]) == 42

    def test_external_call_is_deterministic(self):
        text = """
declare i32 @opaque(i32)

define i32 @f(i32 %x) {
  %a = call i32 @opaque(i32 %x)
  %b = call i32 @opaque(i32 %x)
  %r = sub i32 %a, %b
  ret i32 %r
}
"""
        first = run(text, [7])
        second = run(text, [7])
        assert first == second  # deterministic per program state

    def test_external_call_clobbers_pointee(self):
        result = run("""
declare void @clobber(ptr)

define i1 @f() {
  %slot = alloca i32
  store i32 7, ptr %slot
  %before = load i32, ptr %slot
  call void @clobber(ptr %slot)
  %after = load i32, ptr %slot
  %r = icmp eq i32 %before, %after
  ret i1 %r
}
""")
        assert result == 0  # clobbered

    def test_readnone_external_does_not_clobber(self):
        assert run("""
declare i32 @pure(ptr) readnone

define i32 @f() {
  %slot = alloca i32
  store i32 7, ptr %slot
  %x = call i32 @pure(ptr %slot)
  %after = load i32, ptr %slot
  ret i32 %after
}
""") == 7

    @pytest.mark.parametrize("name,args,expected", [
        ("llvm.smax.i8(i8 %a, i8 %b)", [250, 3], 3),      # max(-6, 3)
        ("llvm.smin.i8(i8 %a, i8 %b)", [250, 3], 250),
        ("llvm.umax.i8(i8 %a, i8 %b)", [250, 3], 250),
        ("llvm.umin.i8(i8 %a, i8 %b)", [250, 3], 3),
        ("llvm.ctpop.i8(i8 %a)", [0b1011, 0], 3),
        ("llvm.uadd.sat.i8(i8 %a, i8 %b)", [250, 10], 255),
        ("llvm.usub.sat.i8(i8 %a, i8 %b)", [3, 10], 0),
        ("llvm.sadd.sat.i8(i8 %a, i8 %b)", [120, 10], 127),
        ("llvm.ssub.sat.i8(i8 %a, i8 %b)", [136, 10], 128),
    ])
    def test_intrinsics(self, name, args, expected):
        base = name.split("(")[0]
        result = run(f"""
declare i8 @{base}(i8, i8)

define i8 @f(i8 %a, i8 %b) {{
  %r = call i8 @{name}
  ret i8 %r
}}
""".replace("declare i8 @llvm.ctpop.i8(i8, i8)",
            "declare i8 @llvm.ctpop.i8(i8)"), args)
        assert result == expected

    def test_abs_int_min_poison_flag(self):
        text = """
declare i8 @llvm.abs.i8(i8, i1)

define i8 @f(i8 %x) {
  %r = call i8 @llvm.abs.i8(i8 %x, i1 POISONFLAG)
  ret i8 %r
}
"""
        assert is_poison(run(text.replace("POISONFLAG", "true"), [128]))
        assert run(text.replace("POISONFLAG", "false"), [128]) == 128
        assert run(text.replace("POISONFLAG", "true"), [250]) == 6

    def test_bswap(self):
        assert run("""
declare i16 @llvm.bswap.i16(i16)

define i16 @f(i16 %x) {
  %r = call i16 @llvm.bswap.i16(i16 %x)
  ret i16 %r
}
""", [0x1234]) == 0x3412

    def test_ctlz_cttz(self):
        text = """
declare i8 @llvm.ctlz.i8(i8, i1)

define i8 @f(i8 %x) {
  %r = call i8 @llvm.ctlz.i8(i8 %x, i1 false)
  ret i8 %r
}
"""
        assert run(text, [1]) == 7
        assert run(text, [0]) == 8

    def test_fshl(self):
        assert run("""
declare i8 @llvm.fshl.i8(i8, i8, i8)

define i8 @f(i8 %x, i8 %y) {
  %r = call i8 @llvm.fshl.i8(i8 %x, i8 %y, i8 4)
  ret i8 %r
}
""", [0x12, 0x34]) == 0x23

    def test_assume_true_ok_false_ub(self):
        text = """
declare void @llvm.assume(i1)

define i8 @f(i1 %c) {
  call void @llvm.assume(i1 %c)
  ret i8 1
}
"""
        assert run(text, [1]) == 1
        with pytest.raises(UBError):
            run(text, [0])

    def test_assume_align_bundle(self):
        # Alignment 1 always holds; huge alignment usually fails for a
        # crafted offset pointer.
        text = """
declare void @llvm.assume(i1)

define i8 @f(ptr %p) {
  call void @llvm.assume(i1 true) [ "align"(ptr %p, i64 1) ]
  ret i8 1
}
"""
        module = parsed(text)
        interp = Interpreter(module)
        pointer = interp.memory.add_block("arg:p", 8)
        assert interp.run(module.get_function("f"), [pointer]) == 1

    def test_noundef_argument_poison_is_ub(self):
        with pytest.raises(UBError):
            run("""
define i8 @f(i8 noundef %x) {
  ret i8 %x
}
""", [POISON])

    def test_dereferenceable_violation_is_ub(self):
        text = """
define i8 @f(ptr dereferenceable(64) %p) {
  %v = load i8, ptr %p
  ret i8 %v
}
"""
        module = parsed(text)
        interp = Interpreter(module)
        pointer = interp.memory.add_block("arg:p", 8)  # too small
        with pytest.raises(UBError):
            interp.run(module.get_function("f"), [pointer])
