"""Tests for the InstCombine rule library.

Every rewrite is checked both structurally (the expected shape appears)
and semantically (the optimized function refines the original).
"""


from repro.ir import BinaryOperator, CallInst, CastInst, ICmpInst

from helpers import assert_sound, optimize, parsed


def combined(text: str):
    module = parsed(text)
    optimized, ctx = optimize(module, "instcombine")
    assert_sound(module, "instcombine")
    return optimized.definitions()[0], ctx


class TestAddSubRules:
    def test_add_self_becomes_shl(self):
        fn, _ = combined("""
define i32 @f(i32 %x) {
  %r = add i32 %x, %x
  ret i32 %r
}
""")
        assert fn.blocks[0].instructions[0].opcode == "shl"

    def test_not_plus_one_is_neg(self):
        fn, _ = combined("""
define i32 @f(i32 %x) {
  %n = xor i32 %x, -1
  %r = add i32 %n, 1
  ret i32 %r
}
""")
        ret_value = fn.blocks[0].terminator().return_value
        assert isinstance(ret_value, BinaryOperator)
        assert ret_value.opcode == "sub"
        assert ret_value.lhs.value == 0

    def test_add_sub_cancel(self):
        fn, _ = combined("""
define i32 @f(i32 %a, i32 %b) {
  %d = sub i32 %a, %b
  %r = add i32 %d, %b
  ret i32 %r
}
""")
        assert fn.blocks[0].terminator().return_value is fn.arguments[0]

    def test_sub_add_cancel(self):
        fn, _ = combined("""
define i32 @f(i32 %a, i32 %b) {
  %s = add i32 %a, %b
  %r = sub i32 %s, %a
  ret i32 %r
}
""")
        assert fn.blocks[0].terminator().return_value is fn.arguments[1]

    def test_sub_const_canonicalizes_to_add(self):
        fn, _ = combined("""
define i32 @f(i32 %x) {
  %r = sub i32 %x, 5
  ret i32 %r
}
""")
        inst = fn.blocks[0].instructions[0]
        assert inst.opcode == "add"
        assert inst.rhs.signed_value() == -5


class TestMulDivRules:
    def test_mul_pow2_to_shl(self):
        fn, _ = combined("""
define i32 @f(i32 %x) {
  %r = mul i32 %x, 8
  ret i32 %r
}
""")
        inst = fn.blocks[0].instructions[0]
        assert inst.opcode == "shl" and inst.rhs.value == 3

    def test_mul_signed_min_constant_drops_nsw(self):
        # Regression: mul nsw x, 0x80 (i8 signed minimum) must not become
        # shl nsw x, 7 — found by the campaign's differential testing.
        module = parsed("""
define i8 @f(i8 %x) {
  %r = mul nsw i8 %x, -128
  ret i8 %r
}
""")
        optimized, _ = optimize(module, "instcombine")
        inst = optimized.definitions()[0].blocks[0].instructions[0]
        assert inst.opcode == "shl"
        assert not inst.nsw
        assert_sound(module, "instcombine")

    def test_udiv_pow2_to_lshr(self):
        fn, _ = combined("""
define i32 @f(i32 %x) {
  %r = udiv i32 %x, 16
  ret i32 %r
}
""")
        inst = fn.blocks[0].instructions[0]
        assert inst.opcode == "lshr" and inst.rhs.value == 4

    def test_urem_pow2_to_and(self):
        fn, _ = combined("""
define i32 @f(i32 %x) {
  %r = urem i32 %x, 16
  ret i32 %r
}
""")
        inst = fn.blocks[0].instructions[0]
        assert inst.opcode == "and" and inst.rhs.value == 15

    def test_mul_zext_zext_gets_nuw(self):
        fn, _ = combined("""
define i32 @f(i8 %a, i8 %b) {
  %za = zext i8 %a to i32
  %zb = zext i8 %b to i32
  %r = mul i32 %za, %zb
  ret i32 %r
}
""")
        mul = [i for i in fn.instructions() if i.opcode == "mul"][0]
        assert mul.nuw and mul.nsw

    def test_mul_trunc_zext_not_marked_without_bug(self):
        # The Listing 17 shape: sound InstCombine must NOT mark this nuw.
        fn, _ = combined("""
define i64 @f(i32 %x) {
  %r = zext i32 %x to i64
  %t = trunc i64 %r to i34
  %m = mul i34 %t, %t
  %e = zext i34 %m to i64
  ret i64 %e
}
""")
        muls = [i for i in fn.instructions() if i.opcode == "mul"]
        assert muls and not muls[0].nuw


class TestShiftRules:
    def test_shl_shl_combines(self):
        fn, _ = combined("""
define i32 @f(i32 %x) {
  %a = shl i32 %x, 3
  %b = shl i32 %a, 4
  ret i32 %b
}
""")
        shls = [i for i in fn.instructions() if i.opcode == "shl"]
        assert len(shls) == 1 and shls[0].rhs.value == 7

    def test_shl_shl_overflow_becomes_zero(self):
        fn, _ = combined("""
define i8 @f(i8 %x) {
  %a = shl i8 %x, 5
  %b = shl i8 %a, 5
  ret i8 %b
}
""")
        assert fn.blocks[0].terminator().return_value.value == 0

    def test_shl_lshr_to_mask(self):
        fn, _ = combined("""
define i8 @f(i8 %x) {
  %a = shl i8 %x, 3
  %b = lshr i8 %a, 3
  ret i8 %b
}
""")
        inst = [i for i in fn.instructions() if i.opcode == "and"]
        assert inst and inst[0].rhs.value == 0x1F

    def test_opposite_shifts_of_allones(self):
        fn, _ = combined("""
define i8 @f(i8 %n) {
  %m = shl i8 -1, %n
  %r = lshr i8 %m, %n
  ret i8 %r
}
""")
        ret_value = fn.blocks[0].terminator().return_value
        assert isinstance(ret_value, BinaryOperator)
        assert ret_value.opcode == "lshr"
        assert ret_value.lhs.value == 0xFF


class TestBitwiseRules:
    def test_xor_icmp_inverts(self):
        fn, _ = combined("""
define i1 @f(i32 %x) {
  %c = icmp ult i32 %x, 100
  %r = xor i1 %c, true
  ret i1 %r
}
""")
        ret_value = fn.blocks[0].terminator().return_value
        assert isinstance(ret_value, ICmpInst)
        assert ret_value.predicate == "uge" or ret_value.predicate == "ugt"

    def test_demorgan(self):
        fn, _ = combined("""
define i32 @f(i32 %a, i32 %b) {
  %na = xor i32 %a, -1
  %nb = xor i32 %b, -1
  %r = and i32 %na, %nb
  ret i32 %r
}
""")
        ors = [i for i in fn.instructions() if i.opcode == "or"]
        assert ors

    def test_absorption(self):
        fn, _ = combined("""
define i32 @f(i32 %x, i32 %y) {
  %o = or i32 %x, %y
  %r = and i32 %x, %o
  ret i32 %r
}
""")
        assert fn.blocks[0].terminator().return_value is fn.arguments[0]

    def test_disjoint_add_becomes_or(self):
        fn, _ = combined("""
define i8 @f(i8 %x, i8 %y) {
  %lo = and i8 %x, 15
  %hi = and i8 %y, -16
  %r = add i8 %lo, %hi
  ret i8 %r
}
""")
        ret_value = fn.blocks[0].terminator().return_value
        assert ret_value.opcode == "or"


class TestICmpRules:
    def test_nonstrict_to_strict(self):
        fn, _ = combined("""
define i1 @f(i32 %x) {
  %r = icmp uge i32 %x, 10
  ret i1 %r
}
""")
        cmp = fn.blocks[0].instructions[0]
        assert cmp.predicate == "ugt" and cmp.rhs.value == 9

    def test_eq_add_const_shifts(self):
        fn, _ = combined("""
define i1 @f(i32 %x) {
  %a = add i32 %x, 10
  %r = icmp eq i32 %a, 30
  ret i1 %r
}
""")
        cmp = [i for i in fn.instructions() if isinstance(i, ICmpInst)][0]
        assert cmp.rhs.value == 20
        assert cmp.lhs is fn.arguments[0]

    def test_ult_add_nuw_shifts(self):
        fn, _ = combined("""
define i1 @f(i32 %x) {
  %a = add nuw i32 %x, 16
  %r = icmp ult i32 %a, 144
  ret i1 %r
}
""")
        cmp = [i for i in fn.instructions() if isinstance(i, ICmpInst)][0]
        assert cmp.rhs.value == 128

    def test_icmp_zext_narrows(self):
        fn, _ = combined("""
define i1 @f(i8 %x) {
  %z = zext i8 %x to i32
  %r = icmp eq i32 %z, 300
  ret i1 %r
}
""")
        # 300 is out of i8 range: the compare folds to false.
        assert fn.blocks[0].terminator().return_value.value == 0

    def test_signed_compare_of_zext_goes_unsigned(self):
        fn, _ = combined("""
define i1 @f(i8 %x) {
  %z = zext i8 %x to i32
  %r = icmp sgt i32 %z, 10
  ret i1 %r
}
""")
        cmps = [i for i in fn.instructions() if isinstance(i, ICmpInst)]
        assert cmps and cmps[0].is_unsigned()


class TestSelectRules:
    def test_clamp_to_umin(self):
        fn, _ = combined("""
define i32 @f(i32 %x) {
  %c = icmp ult i32 %x, 100
  %r = select i1 %c, i32 %x, i32 100
  ret i32 %r
}
""")
        calls = [i for i in fn.instructions() if isinstance(i, CallInst)]
        assert calls and calls[0].intrinsic_name() == "llvm.umin"

    def test_clamp_to_smax(self):
        fn, _ = combined("""
define i32 @f(i32 %x) {
  %c = icmp sgt i32 %x, -5
  %r = select i1 %c, i32 %x, i32 -5
  ret i32 %r
}
""")
        calls = [i for i in fn.instructions() if isinstance(i, CallInst)]
        assert calls and calls[0].intrinsic_name() == "llvm.smax"

    def test_inverted_condition_swaps_arms(self):
        fn, _ = combined("""
define i32 @f(i1 %c, i32 %a, i32 %b) {
  %n = xor i1 %c, true
  %r = select i1 %n, i32 %a, i32 %b
  ret i32 %r
}
""")
        from repro.ir import SelectInst

        selects = [i for i in fn.instructions() if isinstance(i, SelectInst)]
        assert selects
        sel = selects[0]
        assert sel.condition is fn.arguments[0]
        assert sel.true_value is fn.arguments[2]

    def test_select_zext_arms(self):
        fn, _ = combined("""
define i32 @f(i1 %c) {
  %r = select i1 %c, i32 1, i32 0
  ret i32 %r
}
""")
        ret_value = fn.blocks[0].terminator().return_value
        assert isinstance(ret_value, CastInst) and ret_value.opcode == "zext"


class TestCastRules:
    def test_trunc_of_zext_exact(self):
        fn, _ = combined("""
define i8 @f(i8 %x) {
  %z = zext i8 %x to i32
  %t = trunc i32 %z to i8
  ret i8 %t
}
""")
        assert fn.blocks[0].terminator().return_value is fn.arguments[0]

    def test_zext_zext_collapses(self):
        fn, _ = combined("""
define i64 @f(i8 %x) {
  %a = zext i8 %x to i32
  %b = zext i32 %a to i64
  ret i64 %b
}
""")
        casts = [i for i in fn.instructions() if isinstance(i, CastInst)]
        assert len(casts) == 1
        assert casts[0].src_type.width == 8

    def test_zext_trunc_same_width_to_and(self):
        fn, _ = combined("""
define i32 @f(i32 %x) {
  %t = trunc i32 %x to i8
  %z = zext i8 %t to i32
  ret i32 %z
}
""")
        ret_value = fn.blocks[0].terminator().return_value
        assert ret_value.opcode == "and" and ret_value.rhs.value == 0xFF

    def test_sext_of_nonneg_to_zext(self):
        fn, _ = combined("""
define i64 @f(i16 %x) {
  %n = lshr i16 %x, 1
  %r = sext i16 %n to i64
  ret i64 %r
}
""")
        casts = [i for i in fn.instructions() if isinstance(i, CastInst)]
        assert all(c.opcode != "sext" for c in casts)


class TestIntrinsicRules:
    def test_minmax_identity(self):
        fn, _ = combined("""
declare i8 @llvm.smax.i8(i8, i8)

define i8 @f(i8 %x) {
  %r = call i8 @llvm.smax.i8(i8 %x, i8 -128)
  ret i8 %r
}
""")
        assert fn.blocks[0].terminator().return_value is fn.arguments[0]

    def test_minmax_of_minmax(self):
        fn, _ = combined("""
declare i8 @llvm.umin.i8(i8, i8)

define i8 @f(i8 %x) {
  %a = call i8 @llvm.umin.i8(i8 %x, i8 30)
  %r = call i8 @llvm.umin.i8(i8 %a, i8 20)
  ret i8 %r
}
""")
        calls = [i for i in fn.instructions() if isinstance(i, CallInst)]
        assert len(calls) == 1
        constant = [a for a in calls[0].args if not a is fn.arguments[0]][0]
        assert constant.value == 20

    def test_abs_of_nonneg(self):
        fn, _ = combined("""
declare i16 @llvm.abs.i16(i16, i1)

define i16 @f(i8 %x) {
  %z = zext i8 %x to i16
  %r = call i16 @llvm.abs.i16(i16 %z, i1 true)
  ret i16 %r
}
""")
        calls = [i for i in fn.instructions() if isinstance(i, CallInst)]
        assert not calls


class TestFixpointBehavior:
    def test_chains_of_rules_compose(self):
        # sub x, C -> add; then (x+10)+20 folds through reassociation at
        # the icmp; finally the compare canonicalizes.
        module = parsed("""
define i1 @f(i32 %x) {
  %a = sub i32 %x, -10
  %r = icmp eq i32 %a, 30
  ret i1 %r
}
""")
        optimized, _ = optimize(module, "instcombine")
        fn = optimized.definitions()[0]
        cmps = [i for i in fn.instructions() if isinstance(i, ICmpInst)]
        assert cmps[0].rhs.value == 20
        assert_sound(module, "instcombine")

    def test_terminates_on_fixpoint(self):
        module = parsed("""
define i32 @f(i32 %x, i32 %y) {
  %r = add i32 %x, %y
  ret i32 %r
}
""")
        optimized, ctx = optimize(module, "instcombine")
        assert ctx.stats.get("pass.instcombine.changed", 0) == 0
