"""Tests for the binary module codec."""

import pytest

from repro.fuzz.seeds import ARCHETYPES, generate_corpus
from repro.ir import parse_module, print_module, verify_module
from repro.ir.bitcode import (BitcodeError, load_module_file, read_bitcode,
                              write_bitcode)
from repro.ir.bitcode import _read_varint, _write_varint
import io

from helpers import parsed


def round_trip(module):
    data = write_bitcode(module)
    decoded = read_bitcode(data)
    verify_module(decoded)
    assert print_module(decoded) == print_module(module)
    return data


class TestVarints:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**32, 2**70])
    def test_round_trip(self, value):
        out = io.BytesIO()
        _write_varint(out, value)
        assert _read_varint(io.BytesIO(out.getvalue())) == value

    def test_truncated(self):
        with pytest.raises(BitcodeError):
            _read_varint(io.BytesIO(b"\xFF"))


class TestRoundTrips:
    def test_simple_function(self):
        round_trip(parsed("""
define i32 @f(i32 %x) {
  %r = add nuw nsw i32 %x, -7
  ret i32 %r
}
"""))

    def test_control_flow_and_phis(self):
        round_trip(parsed("""
define i32 @f(i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %next, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %next = add i32 %i, 1
  br label %header
exit:
  ret i32 %i
}
"""))

    def test_memory_and_calls(self):
        round_trip(parsed("""
declare void @clobber(ptr)

define i32 @f(ptr %p, ptr %q) {
  %a = load i32, ptr %q, align 4
  call void @clobber(ptr %p)
  %slot = alloca i32, align 8
  store i32 %a, ptr %slot, align 2
  %g = getelementptr inbounds i8, ptr %slot, i64 1
  %b = load i32, ptr %slot
  %c = sub i32 %a, %b
  ret i32 %c
}
"""))

    def test_bundles_attributes_switch(self):
        round_trip(parsed("""
declare void @llvm.assume(i1)

define i8 @f(ptr nocapture dereferenceable(8) %p, i8 %x) nofree {
entry:
  call void @llvm.assume(i1 true) [ "align"(ptr %p, i64 16) ]
  switch i8 %x, label %d [ i8 0, label %a i8 1, label %b ]
a:
  ret i8 1
b:
  ret i8 2
d:
  %v = load i8, ptr %p
  ret i8 %v
}
"""))

    def test_special_constants(self):
        round_trip(parsed("""
define i8 @f(ptr %p) {
  %c = icmp eq ptr %p, null
  %r = select i1 %c, i8 undef, i8 poison
  %f = freeze i8 %r
  ret i8 %f
}
"""))

    def test_casts_and_odd_widths(self):
        round_trip(parsed("""
define i26 @f(i26 %a) {
  %w = sext i26 %a to i64
  %t = trunc i64 %w to i13
  %z = zext i13 %t to i26
  %r = mul i26 %z, %a
  ret i26 %r
}
"""))

    @pytest.mark.parametrize("index", range(len(ARCHETYPES)))
    def test_whole_corpus_round_trips(self, index):
        name, text = generate_corpus(len(ARCHETYPES), seed=7)[index]
        round_trip(parsed(text))

    def test_mutants_round_trip(self):
        from repro.mutate import Mutator, MutatorConfig

        name, text = generate_corpus(4, seed=3)[2]
        mutator = Mutator(parse_module(text, name),
                          MutatorConfig(max_mutations=3))
        for seed in range(20):
            mutant, _ = mutator.create_mutant(seed)
            round_trip(mutant)


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(BitcodeError):
            read_bitcode(b"NOPE....")

    def test_truncated_body(self):
        module = parsed("""
define i32 @f(i32 %x) {
  ret i32 %x
}
""")
        data = write_bitcode(module)
        with pytest.raises(BitcodeError):
            read_bitcode(data[:len(data) // 2])


class TestFileLoading:
    def test_sniffs_text(self, tmp_path):
        path = tmp_path / "m.ll"
        path.write_text("""define i32 @f(i32 %x) {
  ret i32 %x
}
""")
        module = load_module_file(str(path))
        assert module.get_function("f") is not None

    def test_sniffs_binary(self, tmp_path):
        module = parsed("""
define i32 @f(i32 %x) {
  ret i32 %x
}
""")
        path = tmp_path / "m.bc"
        path.write_bytes(write_bitcode(module))
        loaded = load_module_file(str(path))
        verify_module(loaded)
        assert print_module(loaded) == print_module(module)

    def test_binary_is_compact(self):
        name, text = generate_corpus(2, seed=1)[0]
        module = parse_module(text)
        assert len(write_bitcode(module)) < len(text.encode())


# ---------------------------------------------------------------------------
# Differential: the bitcode codec versus the text path.
# ---------------------------------------------------------------------------

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fuzz.wire import decode_payload, encode_payload
from repro.mutate import Mutator, MutatorConfig

SEEDS_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                         "examples", "seeds")
SEED_FILES = sorted(name for name in os.listdir(SEEDS_DIR)
                    if name.endswith(".ll"))
DIFF_CORPUS = generate_corpus(len(ARCHETYPES), seed=1315)


def differential(text):
    """Both transport representations must reconstruct the same module.

    The text path ships ``text`` verbatim; the bitcode path ships
    ``write_bitcode(parse(text))``.  After one canonicalising print the
    two must be bit-identical — this is the fixpoint the socket
    transport's determinism guarantee rests on.
    """
    via_text = print_module(parse_module(decode_payload(
        *encode_payload(text, "text"))))
    data, fmt = encode_payload(text, "bitcode")
    assert fmt == "bitcode", "seed unexpectedly fell back to text"
    via_bitcode = print_module(parse_module(decode_payload(data, fmt)))
    assert via_bitcode == via_text


class TestPayloadDifferential:
    @pytest.mark.parametrize("name", SEED_FILES)
    def test_every_example_seed(self, name):
        with open(os.path.join(SEEDS_DIR, name)) as stream:
            differential(stream.read())

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(file_index=st.integers(0, len(DIFF_CORPUS) - 1),
           seed=st.integers(0, 2**31))
    def test_generated_mutants(self, file_index, seed):
        name, text = DIFF_CORPUS[file_index]
        mutator = Mutator(parse_module(text, name), MutatorConfig())
        mutant, _ = mutator.create_mutant(seed)
        differential(print_module(mutant))
