"""Tests for constant pool, shufflable ranges, use trees, and the
two-level overlay cache (paper §III-A/B)."""


from repro.analysis.constants_pool import ConstantPool
from repro.analysis.overlay import MutantOverlay, OriginalFunctionInfo
from repro.analysis.shuffle_ranges import (range_is_still_valid,
                                           shufflable_ranges)
from repro.analysis.use_tree import (is_width_polymorphic, polymorphic_users,
                                     use_path_from, width_change_roots)
from repro.ir import IntType

from helpers import parsed


class TestConstantPool:
    def test_collects_literals(self):
        fn = parsed("""
define i32 @f(i32 %x) {
  %a = add i32 %x, 100
  %b = mul i32 %a, 7
  %c = icmp ult i32 %b, 100
  %r = select i1 %c, i32 %a, i32 %b
  ret i32 %r
}
""").get_function("f")
        pool = ConstantPool(fn)
        values = pool.values_for_width(32)
        assert 100 in values and 7 in values
        assert len(pool) >= 2

    def test_no_duplicates(self):
        fn = parsed("""
define i32 @f(i32 %x) {
  %a = add i32 %x, 5
  %b = add i32 %a, 5
  ret i32 %b
}
""").get_function("f")
        pool = ConstantPool(fn)
        assert pool.all_values().count((32, 5)) == 1

    def test_cross_width_truncation(self):
        fn = parsed("""
define i8 @f(i8 %x, i32 %y) {
  %a = add i8 %x, 3
  %w = add i32 %y, 300
  ret i8 %a
}
""").get_function("f")
        pool = ConstantPool(fn)
        assert (300 & 0xFF) in pool.values_for_width(8)

    def test_empty_pool(self):
        fn = parsed("""
define i32 @f(i32 %x) {
  ret i32 %x
}
""").get_function("f")
        assert not ConstantPool(fn)


class TestShuffleRanges:
    def test_independent_run_found(self):
        fn = parsed("""
declare void @clobber(ptr)

define i32 @test9(ptr %p, ptr %q) {
  %a = load i32, ptr %q
  call void @clobber(ptr %p)
  %b = load i32, ptr %q
  %c = sub i32 %a, %b
  ret i32 %c
}
""").get_function("test9")
        ranges = shufflable_ranges(fn)
        assert len(ranges) == 1
        assert (ranges[0].start, ranges[0].end) == (0, 3)

    def test_dependent_chain_has_no_range(self):
        fn = parsed("""
define i32 @f(i32 %x) {
  %a = add i32 %x, 1
  %b = mul i32 %a, 2
  ret i32 %b
}
""").get_function("f")
        assert shufflable_ranges(fn) == []

    def test_phis_and_terminators_excluded(self):
        fn = parsed("""
define i32 @f(i1 %c, i32 %x, i32 %y) {
entry:
  br i1 %c, label %a, label %join
a:
  br label %join
join:
  %p = phi i32 [ %x, %entry ], [ %y, %a ]
  %u = add i32 %x, 1
  %v = add i32 %y, 2
  ret i32 %p
}
""").get_function("f")
        ranges = shufflable_ranges(fn)
        assert len(ranges) == 1
        join_range = ranges[0]
        assert join_range.start == 1  # after the phi
        assert join_range.end == 3    # before the terminator

    def test_revalidation_catches_new_dependency(self):
        module = parsed("""
define i32 @f(i32 %x, i32 %y) {
  %a = add i32 %x, 1
  %b = add i32 %y, 2
  %c = sub i32 %x, %y
  ret i32 %c
}
""")
        fn = module.get_function("f")
        ranges = shufflable_ranges(fn)
        assert ranges and ranges[0].length == 3
        # Introduce a dependency: %b now uses %a.
        block = fn.blocks[0]
        block.instructions[1].set_operand(0, block.instructions[0])
        assert not range_is_still_valid(block, ranges[0])


class TestUseTree:
    CHAIN = """
define i32 @f(i32 %a, i32 %b) {
  %r1 = add i32 %a, %b
  %r2 = mul i32 %r1, %a
  %r3 = xor i32 %r2, %b
  %other = icmp eq i32 %r1, 0
  %z = zext i1 %other to i32
  ret i32 %r3
}
"""

    def test_polymorphic_classification(self):
        fn = parsed(self.CHAIN).get_function("f")
        instructions = {i.name: i for i in fn.instructions() if i.name}
        assert is_width_polymorphic(instructions["r1"])
        assert not is_width_polymorphic(instructions["other"])
        assert not is_width_polymorphic(instructions["z"])

    def test_polymorphic_users(self):
        fn = parsed(self.CHAIN).get_function("f")
        instructions = {i.name: i for i in fn.instructions() if i.name}
        users = polymorphic_users(instructions["r1"])
        assert [u.name for u in users] == ["r2"]  # icmp is excluded

    def test_path_walks_to_leaf(self):
        fn = parsed(self.CHAIN).get_function("f")
        instructions = {i.name: i for i in fn.instructions() if i.name}
        path = use_path_from(instructions["r1"], lambda options: options[0])
        assert [p.name for p in path] == ["r1", "r2", "r3"]

    def test_roots(self):
        fn = parsed(self.CHAIN).get_function("f")
        roots = {r.name for r in width_change_roots(fn)}
        assert roots == {"r1", "r2", "r3"}


class TestOverlay:
    DIAMOND = """
define i32 @f(i1 %c, i32 %x) {
entry:
  %e = add i32 %x, 1
  br i1 %c, label %left, label %right
left:
  %l = mul i32 %e, 2
  br label %join
right:
  br label %join
join:
  %p = phi i32 [ %l, %left ], [ %e, %right ]
  ret i32 %p
}
"""

    def _make(self):
        module = parsed(self.DIAMOND)
        original = module.get_function("f")
        info = OriginalFunctionInfo(original)
        mutant_module = module.clone()
        mutant = mutant_module.get_function("f")
        return MutantOverlay(mutant, info), mutant

    def test_original_level_answers_clean_queries(self):
        overlay, mutant = self._make()
        blocks = {b.name: b for b in mutant.blocks}
        assert overlay.dominates_block(blocks["entry"], blocks["join"])
        assert not overlay.dominates_block(blocks["left"], blocks["join"])
        assert overlay.stats["original_hits"] >= 2
        assert overlay.stats["mutant_computes"] == 0

    def test_cfg_invalidation_switches_to_mutant_level(self):
        overlay, mutant = self._make()
        blocks = {b.name: b for b in mutant.blocks}
        # Mutate the CFG: right now branches straight to a new ret block.
        overlay.invalidate_cfg()
        assert overlay.dominates_block(blocks["entry"], blocks["join"])
        assert overlay.stats["mutant_computes"] == 1
        assert overlay.stats["original_hits"] == 0

    def test_same_block_ordering_read_live(self):
        overlay, mutant = self._make()
        entry = mutant.block_named("entry")
        e = entry.instructions[0]
        assert not overlay.dominates(e, entry, 0)
        assert overlay.dominates(e, entry, 1)

    def test_dominating_values_at(self):
        overlay, mutant = self._make()
        join = mutant.block_named("join")
        values = overlay.dominating_values_at(join, 0, IntType(32))
        names = {getattr(v, "name", "") for v in values}
        assert "x" in names         # argument
        assert "e" in names         # entry-block def dominates join
        assert "l" not in names     # left does not dominate join

    def test_constant_pool_passthrough(self):
        overlay, _ = self._make()
        assert 1 in overlay.constant_pool.values_for_width(32)

    def test_shuffle_ranges_passthrough(self):
        overlay, _ = self._make()
        assert isinstance(overlay.shuffle_ranges, list)


class TestSignatureFreezing:
    def _overlay(self, text, name):
        module = parsed(text)
        info = OriginalFunctionInfo(module.get_function(name))
        mutant_module = module.clone()
        return MutantOverlay(mutant_module.get_function(name), info)

    CALLED = """
define void @helper(ptr %p) {
  store i8 1, ptr %p
  ret void
}

define void @main(ptr %p) {
  call void @helper(ptr %p)
  ret void
}
"""

    def test_called_function_is_frozen(self):
        overlay = self._overlay(self.CALLED, "helper")
        assert overlay.signature_is_frozen()

    def test_top_level_function_is_not_frozen(self):
        overlay = self._overlay(self.CALLED, "main")
        assert not overlay.signature_is_frozen()

    def test_frozen_function_never_gains_parameters(self):
        from repro.ir import is_valid_module
        from repro.mutate import Mutator, MutatorConfig

        module = parsed(self.CALLED)
        mutator = Mutator(module, MutatorConfig(max_mutations=3))
        for seed in range(60):
            mutant, _ = mutator.create_mutant(seed)
            assert is_valid_module(mutant)
            helper = mutant.get_function("helper")
            assert helper.num_args() == 1
