"""Tests for incremental re-optimization (repro.opt.incremental).

The contract under test is absolute: with incremental optimization on,
the optimized IR, the pass stats, the triggered-bug sets, the findings,
and the ``deterministic()`` metrics subset are all bit-identical to a
full (non-incremental) run — skips and worklist sweeps buy time, never
different answers.  The differential tests below drive random mutants
through both paths and demand equality at every layer:

* pass level — a worklist sweep seeded from the mutation's dirty
  closure versus a full ``run_on_function`` sweep;
* pipeline level — ``PassManager.run_function`` with an
  :class:`IncrementalRun` (warm memos, proven sets) versus without;
* driver level — whole fuzzing runs with ``incremental=True`` versus
  ``incremental=False``, including crash bugs and kill+resume.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz import FuzzConfig, FuzzDriver
from repro.ir import print_module, verify_module
from repro.ir.fingerprint import fingerprint_function
from repro.mutate import Mutator, MutatorConfig
from repro.opt import (IncrementalState, OptContext, OptimizerCrash,
                       PassManager, PassMemoEntry, create_pass, expand,
                       initial_dirty)
from repro.tv import RefinementConfig

from helpers import parsed

SEED_MODULE = """
declare void @ext(i32)

define i32 @clamp(i32 %x, i32 %y) {
entry:
  %c = icmp ult i32 %x, 100
  %r = select i1 %c, i32 %x, i32 100
  %s = add i32 %r, %y
  ret i32 %s
}

define i32 @mixed(i32 %x, i32 %y) {
entry:
  %a = add i32 %x, 0
  %b = mul i32 %a, 1
  %c = icmp sgt i32 %b, %y
  br i1 %c, label %big, label %small

big:
  %d = sub i32 %b, %y
  %e = and i32 %d, %d
  ret i32 %e

small:
  %f = xor i32 %y, 0
  %g = or i32 %f, %f
  ret i32 %g
}

define i32 @shifty(i32 %x) {
entry:
  %s = shl i32 %x, 3
  %t = lshr i32 %s, 3
  %u = add i32 %t, %t
  ret i32 %u
}
"""

CRASH_BUGS = ("52884", "56945", "56968")
WORKLIST_PASSES = ("constfold", "instsimplify", "instcombine", "dce")


def run_full(module, pipeline, bugs=()):
    """Optimize a clone the plain (non-incremental) way; returns
    (printed IR, stats, bugs, crash).

    Function-major like the driver: each definition gets the whole
    pipeline before the next starts, and a crash stops the run there.
    (Pass-major ``PassManager.run`` produces identical IR when nothing
    crashes, but aborts every function's remaining passes on a crash —
    an ordering difference the incremental contract does not cover.)"""
    clone = module.clone()
    ctx = OptContext(bugs)
    manager = PassManager([pipeline], ctx)
    crash = None
    for function in clone.definitions():
        fn_ctx = OptContext(bugs)
        try:
            manager.run_function(function, fn_ctx)
        except OptimizerCrash as error:
            crash = (error.bug_id, error.message)
        for stat, amount in fn_ctx.stats.items():
            ctx.stats[stat] += amount
        ctx.triggered_bugs |= fn_ctx.triggered_bugs
        if crash is not None:
            break
    return print_module(clone), dict(ctx.stats), set(
        ctx.triggered_bugs), crash


def run_incremental(module, pipeline, state, record, source_fps, bugs=()):
    """Optimize a clone through IncrementalRun dispatch, mimicking the
    driver's seeding: dirty closure from the mutation record's touched
    blocks, proven set from the source's memoized trajectory."""
    clone = module.clone()
    ctx = OptContext(bugs)
    manager = PassManager([pipeline], ctx)
    crash = None
    dirty_names = record.dirty_functions()
    for function in clone.definitions():
        if function.name not in dirty_names:
            seed_dirty = set()
        else:
            touched = record.touched.get(function.name)
            seed_dirty = (initial_dirty(function, touched)
                          if touched is not None else None)
        proven = state.proven_passes(source_fps.get(function.name),
                                     manager.pass_names)
        run = state.begin(fp=fingerprint_function(function),
                          dirty=seed_dirty, proven=proven)
        fn_ctx = OptContext(bugs)
        try:
            manager.run_function(function, fn_ctx, incremental=run)
        except OptimizerCrash as error:
            crash = (error.bug_id, error.message)
        for stat, amount in fn_ctx.stats.items():
            ctx.stats[stat] += amount
        ctx.triggered_bugs |= fn_ctx.triggered_bugs
        if crash is not None:
            break
    return print_module(clone), dict(ctx.stats), set(
        ctx.triggered_bugs), crash


def warmed_state(module, pipeline, bugs=()):
    """An IncrementalState whose memos hold the sources' trajectories,
    exactly as the driver's baseline optimization records them."""
    state = IncrementalState()
    source_fps = {}
    clone = module.clone()
    manager = PassManager([pipeline])
    for function in clone.definitions():
        source_fps[function.name] = fingerprint_function(function)
        run = state.begin(fp=source_fps[function.name])
        ctx = OptContext(bugs)
        try:
            manager.run_function(function, ctx, incremental=run)
        except OptimizerCrash:
            pass
    return state, source_fps


class TestPassMemo:
    def test_skip_replays_stats_and_bugs(self):
        state = IncrementalState()
        state.record("fp0", "instcombine", PassMemoEntry(
            stats=(("instcombine.rule.add-zero", 2),), bugs=frozenset()))
        run = state.begin(fp="fp0", proven=set())
        fn = parsed(SEED_MODULE).definitions()[0]
        fn_pass = create_pass("instcombine")
        ctx = OptContext(())
        # Force the memoized fingerprint so the lookup hits.
        run.fp = "fp0"
        text_before = print_module(fn.parent)
        assert run.dispatch(fn_pass, fn, ctx) is False
        assert ctx.stats["instcombine.rule.add-zero"] == 2
        assert "instcombine" in run.proven
        assert print_module(fn.parent) == text_before

    def test_crash_entry_reraises(self):
        state = IncrementalState()
        state.record("fp0", "constfold", PassMemoEntry(
            stats=(), bugs=frozenset({"56945"}),
            crash_bug="56945", crash_message="boom"))
        run = state.begin(fp="fp0")
        run.fp = "fp0"
        fn = parsed(SEED_MODULE).definitions()[0]
        with pytest.raises(OptimizerCrash) as error:
            run.dispatch(create_pass("constfold"), fn, OptContext(()))
        assert error.value.bug_id == "56945"
        assert error.value.message == "boom"

    def test_proven_passes_excludes_crash_entries(self):
        state = IncrementalState()
        state.record("fp0", "dce", PassMemoEntry(stats=(), bugs=frozenset()))
        state.record("fp0", "constfold", PassMemoEntry(
            stats=(), bugs=frozenset(), crash_bug="56945"))
        proven = state.proven_passes("fp0", ["dce", "constfold", "gvn"])
        assert proven == {"dce"}
        assert state.proven_passes(None, ["dce"]) == set()

    def test_changed_outcomes_are_not_memoized(self):
        module = parsed(SEED_MODULE)
        state = IncrementalState()
        function = module.get_function("shifty")
        run = state.begin(fp=fingerprint_function(function))
        changed = run.dispatch(create_pass("instcombine"), function,
                               OptContext(()))
        assert changed
        assert run.fp is None  # stale after a change
        fresh = fingerprint_function(function)
        assert state.lookup(fresh, "instcombine") is None

    def test_initial_dirty_degrades_on_missing_block(self):
        function = parsed(SEED_MODULE).get_function("mixed")
        assert initial_dirty(function, ["nope"]) is None
        dirty = initial_dirty(function, ["big"])
        assert dirty is not None and dirty  # %d, %e at least


class TestPassLevelDifferential:
    """Worklist sweep == full sweep, for every worklist-capable pass,
    on random mutants of a pass-fixpointed source."""

    @staticmethod
    def fixpointed(pass_name):
        """SEED_MODULE with ``pass_name`` run to quiescence, reparsed."""
        module = parsed(SEED_MODULE)
        fn_pass = create_pass(pass_name)
        for function in module.definitions():
            ctx = OptContext(())
            while fn_pass.run_on_function(function, ctx):
                pass
        return parsed(print_module(module))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6),
           pass_name=st.sampled_from(WORKLIST_PASSES))
    def test_worklist_matches_full(self, seed, pass_name):
        source = self.fixpointed(pass_name)
        mutator = Mutator(source.clone(), MutatorConfig(max_mutations=3))
        mutant, record = mutator.create_mutant(seed)
        fn_pass = create_pass(pass_name)
        for name in sorted(record.dirty_functions()):
            touched = record.touched.get(name)
            if touched is None:
                continue  # degraded tracking: worklist mode never engages
            full_mod, fast_mod = mutant.clone(), mutant.clone()
            full = full_mod.get_function(name)
            fast = fast_mod.get_function(name)
            full_ctx, fast_ctx = OptContext(()), OptContext(())
            full_changed = fn_pass.run_on_function(full, full_ctx)
            dirty = initial_dirty(fast, touched)
            if dirty is None:
                continue
            fast_changed = fn_pass.run_on_worklist(fast, fast_ctx, dirty)
            assert fast_changed == full_changed
            assert print_module(full_mod) == print_module(fast_mod)
            assert dict(full_ctx.stats) == dict(fast_ctx.stats)
            assert full_ctx.triggered_bugs == fast_ctx.triggered_bugs


class TestPipelineDifferential:
    """IncrementalRun dispatch (memo skips + worklist runs + crash
    replay) == plain pipeline runs, over random mutants."""

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6),
           pipeline=st.sampled_from(
               ["O2", "constfold,instsimplify,instcombine,dce"]))
    def test_mutant_pipeline_matches(self, seed, pipeline):
        source = parsed(SEED_MODULE)
        state, source_fps = warmed_state(source, pipeline)
        mutator = Mutator(source.clone(), MutatorConfig(max_mutations=3))
        mutant, record = mutator.create_mutant(seed)
        want = run_full(mutant, pipeline)
        # Twice through the same state: the first pass both checks parity
        # and warms the memos further; the second replays mostly skips.
        for _ in range(2):
            got = run_incremental(mutant, pipeline, state, record,
                                  source_fps)
            assert got == want

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_crash_bugs_match(self, seed):
        source = parsed(SEED_MODULE)
        pipeline = "O2"
        state, source_fps = warmed_state(source, pipeline, CRASH_BUGS)
        mutator = Mutator(source.clone(), MutatorConfig(max_mutations=3))
        mutant, record = mutator.create_mutant(seed)
        want = run_full(mutant, pipeline, CRASH_BUGS)
        for _ in range(2):
            got = run_incremental(mutant, pipeline, state, record,
                                  source_fps, CRASH_BUGS)
            if want[3] is not None:
                # A crash aborts a pass mid-body; a memoized crash skips
                # the pass entirely.  The half-rewritten IR differs but
                # is never observable — the driver discards a crashed
                # mutant after recording the finding — so the contract
                # covers stats, bug attribution, and the crash itself.
                assert got[1:] == want[1:]
            else:
                assert got == want

    def test_optimized_mutants_verify(self):
        source = parsed(SEED_MODULE)
        state, source_fps = warmed_state(source, "O2")
        mutator = Mutator(source.clone(), MutatorConfig(max_mutations=2))
        for seed in range(20):
            mutant, record = mutator.create_mutant(seed)
            clone = mutant.clone()
            manager = PassManager(["O2"])
            for function in clone.definitions():
                touched = record.touched.get(function.name)
                dirty = (initial_dirty(function, touched)
                         if touched is not None else None)
                run = state.begin(fp=fingerprint_function(function),
                                  dirty=dirty,
                                  proven=state.proven_passes(
                                      source_fps.get(function.name),
                                      manager.pass_names))
                manager.run_function(function, OptContext(()),
                                     incremental=run)
            verify_module(clone)


def run_driver(text, incremental, iterations=150, base_seed=0, **kwargs):
    config = FuzzConfig(
        mutator=MutatorConfig(max_mutations=2),
        tv=RefinementConfig(max_inputs=8),
        incremental=incremental,
        base_seed=base_seed,
        **kwargs,
    )
    driver = FuzzDriver(parsed(text), config, file_name="t.ll")
    report = driver.run(iterations=iterations)
    return driver, report


def finding_keys(report):
    return [(f.seed, f.kind, f.function, tuple(f.bug_ids))
            for f in report.findings]


class TestDriverParity:
    """incremental on == incremental off: the acceptance criterion."""

    def test_miscompilation_findings_identical(self):
        _, on = run_driver(SEED_MODULE, True, enabled_bugs=("53252",))
        _, off = run_driver(SEED_MODULE, False, enabled_bugs=("53252",))
        assert on.findings  # the workload must actually find bugs
        assert finding_keys(on) == finding_keys(off)

    def test_crash_findings_identical(self):
        _, on = run_driver(SEED_MODULE, True, enabled_bugs=CRASH_BUGS)
        _, off = run_driver(SEED_MODULE, False, enabled_bugs=CRASH_BUGS)
        assert any(f.kind == "crash" for f in on.findings)
        assert finding_keys(on) == finding_keys(off)

    def test_deterministic_metrics_identical(self):
        on_driver, _ = run_driver(SEED_MODULE, True,
                                  enabled_bugs=("53252",))
        off_driver, _ = run_driver(SEED_MODULE, False,
                                   enabled_bugs=("53252",))
        assert on_driver.metrics.deterministic() == \
            off_driver.metrics.deterministic()

    def test_incremental_actually_engages(self):
        driver, _ = run_driver(SEED_MODULE, True)
        assert driver.metrics.counter("opt.incremental.memo_skips") > 0
        assert driver.metrics.counter("opt.incremental.worklist_runs") > 0

    def test_off_leaves_no_incremental_counters(self):
        driver, _ = run_driver(SEED_MODULE, False)
        assert not driver.metrics.counters_with_prefix("opt.incremental.")

    def test_kill_and_resume_identical(self):
        """A fresh driver (cold memos) continuing at the kill point
        produces the same findings the uninterrupted run would."""
        _, whole = run_driver(SEED_MODULE, True, iterations=120,
                              enabled_bugs=("53252",) + CRASH_BUGS)
        _, first = run_driver(SEED_MODULE, True, iterations=60,
                              enabled_bugs=("53252",) + CRASH_BUGS)
        _, second = run_driver(SEED_MODULE, True, iterations=60,
                               base_seed=60,
                               enabled_bugs=("53252",) + CRASH_BUGS)
        assert finding_keys(first) + finding_keys(second) == \
            finding_keys(whole)

    def test_tiny_memo_only_costs_speed(self):
        _, tiny = run_driver(SEED_MODULE, True, incremental_cache_size=2,
                             enabled_bugs=("53252",))
        _, off = run_driver(SEED_MODULE, False, enabled_bugs=("53252",))
        assert finding_keys(tiny) == finding_keys(off)

    def test_cache_size_must_be_positive(self):
        from repro.fuzz.driver import ConfigError

        with pytest.raises(ConfigError):
            FuzzConfig(incremental_cache_size=0).validate()
        # Irrelevant when the feature is off.
        FuzzConfig(incremental=False, incremental_cache_size=0).validate()

    def test_per_pass_timings_recorded(self):
        driver, _ = run_driver(SEED_MODULE, True, iterations=5)
        seconds = driver.metrics.counters_with_prefix("optimize.pass.")
        assert any(name.endswith(".seconds") for name in seconds)
        for name in expand("O2"):
            assert driver.metrics.counter(
                f"optimize.pass.{name}.seconds") >= 0.0
