"""Tests for the intrinsic registry and attribute sets."""

import pytest

from repro.ir import Attribute, AttributeSet, Module
from repro.ir.intrinsics import (GENERATABLE_BINARY_INTRINSICS,
                                 INTEGER_INTRINSICS, declare_assume,
                                 declare_intrinsic, intrinsic_base_name,
                                 lookup, overload_width, supports_width)


class TestNames:
    def test_base_name_strips_suffix(self):
        assert intrinsic_base_name("llvm.smax.i32") == "llvm.smax"
        assert intrinsic_base_name("llvm.sadd.sat.i8") == "llvm.sadd.sat"
        assert intrinsic_base_name("llvm.assume") == "llvm.assume"

    def test_overload_width(self):
        assert overload_width("llvm.smax.i32") == 32
        assert overload_width("llvm.assume") is None

    def test_lookup(self):
        assert lookup("llvm.smax.i32").commutative
        assert lookup("llvm.assume") is not None
        assert lookup("llvm.made.up") is None


class TestWidthSupport:
    def test_bswap_restricted(self):
        assert supports_width("llvm.bswap", 16)
        assert supports_width("llvm.bswap", 32)
        assert not supports_width("llvm.bswap", 8)
        assert not supports_width("llvm.bswap", 26)

    def test_polymorphic_any_width(self):
        assert supports_width("llvm.smax", 7)
        assert supports_width("llvm.ctpop", 26)

    def test_generatable_set_valid(self):
        for name in GENERATABLE_BINARY_INTRINSICS:
            info = INTEGER_INTRINSICS[name]
            assert info.num_args == 2


class TestDeclaration:
    def test_declare_creates_function(self):
        module = Module()
        fn = declare_intrinsic(module, "llvm.smax", 32)
        assert fn.name == "llvm.smax.i32"
        assert fn.is_declaration()
        assert fn.attributes.has("readnone")
        assert len(fn.function_type.param_types) == 2

    def test_declare_idempotent(self):
        module = Module()
        a = declare_intrinsic(module, "llvm.umin", 8)
        b = declare_intrinsic(module, "llvm.umin", 8)
        assert a is b

    def test_declare_flag_carrying(self):
        module = Module()
        fn = declare_intrinsic(module, "llvm.abs", 16)
        assert str(fn.function_type.param_types[1]) == "i1"

    def test_declare_rejects_bad_width(self):
        module = Module()
        with pytest.raises(ValueError):
            declare_intrinsic(module, "llvm.bswap", 26)

    def test_declare_assume(self):
        module = Module()
        fn = declare_assume(module)
        assert fn.name == "llvm.assume"
        assert fn.return_type.is_void()


class TestAttributeSet:
    def test_add_remove_toggle(self):
        attrs = AttributeSet()
        attrs.toggle(Attribute("nofree"))
        assert attrs.has("nofree")
        attrs.toggle(Attribute("nofree"))
        assert not attrs.has("nofree")

    def test_int_payload(self):
        attrs = AttributeSet([Attribute("dereferenceable", 8)])
        assert attrs.get_int("dereferenceable") == 8
        assert attrs.get_int("align") is None

    def test_replace_same_name(self):
        attrs = AttributeSet()
        attrs.add(Attribute("dereferenceable", 8))
        attrs.add(Attribute("dereferenceable", 16))
        assert len(attrs) == 1
        assert attrs.get_int("dereferenceable") == 16

    def test_str_forms(self):
        assert str(Attribute("nofree")) == "nofree"
        assert str(Attribute("dereferenceable", 2)) == "dereferenceable(2)"
        assert str(Attribute("align", 4)) == "align 4"

    def test_copy_is_independent(self):
        attrs = AttributeSet([Attribute("nofree")])
        copy = attrs.copy()
        copy.remove("nofree")
        assert attrs.has("nofree")

    def test_equality(self):
        assert AttributeSet([Attribute("a")]) == AttributeSet([Attribute("a")])
        assert AttributeSet([Attribute("a")]) != AttributeSet()

    def test_iteration_sorted(self):
        attrs = AttributeSet([Attribute("z"), Attribute("a")])
        assert [a.name for a in attrs] == ["a", "z"]
