"""Tests for constant folding (repro.opt.fold)."""

import pytest

from repro.ir import ConstantInt, I1, I8, IntType, PoisonValue
from repro.opt.fold import (fold_binary, fold_cast, fold_icmp,
                            fold_instruction, fold_intrinsic)


def c8(value):
    return ConstantInt(I8, value)


class TestFoldBinary:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("add", 200, 100, 44),
        ("sub", 5, 10, 251),
        ("mul", 20, 20, 144),
        ("udiv", 200, 3, 66),
        ("sdiv", 249, 2, 253),
        ("urem", 200, 3, 2),
        ("srem", 249, 2, 255),
        ("shl", 3, 2, 12),
        ("lshr", 128, 3, 16),
        ("ashr", 128, 3, 0xF0),
        ("and", 12, 10, 8),
        ("or", 12, 10, 14),
        ("xor", 12, 10, 6),
    ])
    def test_values(self, op, a, b, expected):
        result = fold_binary(op, c8(a), c8(b), 8)
        assert isinstance(result, ConstantInt)
        assert result.value == expected

    def test_division_by_zero_not_folded(self):
        assert fold_binary("udiv", c8(1), c8(0), 8) is None
        assert fold_binary("srem", c8(1), c8(0), 8) is None

    def test_sdiv_overflow_not_folded(self):
        assert fold_binary("sdiv", c8(128), c8(255), 8) is None

    def test_nsw_overflow_folds_to_poison(self):
        result = fold_binary("add", c8(127), c8(1), 8, nsw=True)
        assert isinstance(result, PoisonValue)

    def test_nuw_ok_folds_normally(self):
        result = fold_binary("add", c8(100), c8(100), 8, nuw=True)
        assert isinstance(result, ConstantInt) and result.value == 200

    def test_shift_amount_oor_is_poison(self):
        assert isinstance(fold_binary("shl", c8(1), c8(8), 8), PoisonValue)

    def test_exact_violation_is_poison(self):
        assert isinstance(fold_binary("lshr", c8(3), c8(1), 8, exact=True),
                          PoisonValue)
        result = fold_binary("lshr", c8(4), c8(1), 8, exact=True)
        assert isinstance(result, ConstantInt) and result.value == 2

    def test_poison_operand_propagates(self):
        result = fold_binary("add", PoisonValue(I8), c8(1), 8)
        assert isinstance(result, PoisonValue)

    def test_poison_divisor_not_folded(self):
        assert fold_binary("udiv", c8(1), PoisonValue(I8), 8) is None


class TestFoldICmp:
    @pytest.mark.parametrize("pred,a,b,expected", [
        ("eq", 5, 5, 1), ("ne", 5, 6, 1),
        ("ult", 200, 100, 0), ("slt", 200, 100, 1),
        ("uge", 200, 200, 1), ("sge", 128, 127, 0),
    ])
    def test_values(self, pred, a, b, expected):
        result = fold_icmp(pred, c8(a), c8(b), 8)
        assert result.value == expected
        assert result.type is I1

    def test_poison(self):
        assert isinstance(fold_icmp("eq", PoisonValue(I8), c8(0), 8),
                          PoisonValue)


class TestFoldCast:
    def test_zext(self):
        result = fold_cast("zext", c8(200), 8, 32)
        assert result.value == 200

    def test_sext(self):
        result = fold_cast("sext", c8(200), 8, 32)
        assert result.value == 0xFFFFFFC8

    def test_trunc(self):
        wide = ConstantInt(IntType(32), 0x12345678)
        result = fold_cast("trunc", wide, 32, 8)
        assert result.value == 0x78

    def test_poison(self):
        assert isinstance(fold_cast("zext", PoisonValue(I8), 8, 32),
                          PoisonValue)


class TestFoldIntrinsic:
    def test_smax(self):
        result = fold_intrinsic("llvm.smax", [c8(250), c8(3)], 8)
        assert result.value == 3

    def test_umin(self):
        result = fold_intrinsic("llvm.umin", [c8(250), c8(3)], 8)
        assert result.value == 3

    def test_abs_poison_flag(self):
        result = fold_intrinsic("llvm.abs", [c8(128), ConstantInt(I1, 1)], 8)
        assert isinstance(result, PoisonValue)
        result = fold_intrinsic("llvm.abs", [c8(128), ConstantInt(I1, 0)], 8)
        assert result.value == 128

    def test_ctpop_ctlz_cttz(self):
        assert fold_intrinsic("llvm.ctpop", [c8(0b1011)], 8).value == 3
        assert fold_intrinsic("llvm.ctlz",
                              [c8(1), ConstantInt(I1, 0)], 8).value == 7
        assert fold_intrinsic("llvm.cttz",
                              [c8(8), ConstantInt(I1, 0)], 8).value == 3
        assert isinstance(
            fold_intrinsic("llvm.ctlz", [c8(0), ConstantInt(I1, 1)], 8),
            PoisonValue)

    def test_saturating(self):
        assert fold_intrinsic("llvm.uadd.sat", [c8(250), c8(10)], 8).value == 255
        assert fold_intrinsic("llvm.usub.sat", [c8(3), c8(10)], 8).value == 0
        assert fold_intrinsic("llvm.sadd.sat", [c8(120), c8(10)], 8).value == 127
        assert fold_intrinsic("llvm.ssub.sat", [c8(136), c8(10)], 8).value == 128

    def test_poison_arg(self):
        assert isinstance(
            fold_intrinsic("llvm.smax", [PoisonValue(I8), c8(0)], 8),
            PoisonValue)


class TestFoldInstruction:
    def test_folds_whole_instruction(self):
        from helpers import single_function

        fn = single_function("""
define i8 @f() {
  %r = add i8 2, 3
  ret i8 %r
}
""")
        inst = fn.blocks[0].instructions[0]
        folded = fold_instruction(inst)
        assert isinstance(folded, ConstantInt) and folded.value == 5

    def test_leaves_non_constant_alone(self):
        from helpers import single_function

        fn = single_function("""
define i8 @f(i8 %x) {
  %r = add i8 %x, 3
  ret i8 %r
}
""")
        assert fold_instruction(fn.blocks[0].instructions[0]) is None

    def test_select_constant_condition(self):
        from helpers import single_function

        fn = single_function("""
define i8 @f() {
  %r = select i1 true, i8 4, i8 5
  ret i8 %r
}
""")
        folded = fold_instruction(fn.blocks[0].instructions[0])
        assert isinstance(folded, ConstantInt) and folded.value == 4
