"""The wire tier: frames, the blob store, and the decode cache."""

from __future__ import annotations

import io
import os

import pytest

from repro.fuzz.wire import (BlobStore, DecodeCache, FrameError, WireError,
                             blob_digest, decode_frame, decode_payload,
                             encode_frame, encode_payload, read_frame,
                             TAG_CLAIM, TAG_PUBLISH)
from repro.obs import MetricsRegistry

IR = """define i32 @f(i32 %a) {
entry:
  %t = add i32 %a, 1
  ret i32 %t
}
"""


# ---------------------------------------------------------------------------
# Frames.
# ---------------------------------------------------------------------------


class TestFrames:
    def test_round_trip(self):
        header = {"fingerprint": "abc", "jobs": [1, 2, 3]}
        blobs = [b"first blob", b"", b"\x00\x80\xff" * 100]
        frame = encode_frame(TAG_PUBLISH, header, blobs)
        tag, got_header, got_blobs = decode_frame(frame)
        assert tag == TAG_PUBLISH
        assert got_header == header
        assert got_blobs == blobs

    def test_empty_header_and_no_blobs(self):
        tag, header, blobs = decode_frame(encode_frame(TAG_CLAIM, {}))
        assert (tag, header, blobs) == (TAG_CLAIM, {}, [])

    def test_back_to_back_frames_on_one_stream(self):
        data = encode_frame(1, {"n": 1}) + encode_frame(2, {"n": 2},
                                                        [b"blob"])
        stream = io.BytesIO(data)
        assert read_frame(stream.read)[1] == {"n": 1}
        tag, header, blobs = read_frame(stream.read)
        assert (tag, header, blobs) == (2, {"n": 2}, [b"blob"])

    @pytest.mark.parametrize("cut", [1, 3, 7, -1])
    def test_torn_frame_raises_never_truncates(self, cut):
        frame = encode_frame(TAG_PUBLISH, {"key": "value"}, [b"payload"])
        torn = frame[:cut] if cut > 0 else frame[:len(frame) // 2]
        with pytest.raises(FrameError):
            read_frame(io.BytesIO(torn).read)

    def test_eof_mid_varint_raises(self):
        with pytest.raises(FrameError):
            read_frame(io.BytesIO(b"").read)

    def test_oversized_length_prefix_rejected(self):
        out = bytearray()
        # varint for 2**40: far past MAX_FRAME_BYTES.
        value = 2 ** 40
        while True:
            byte = value & 0x7F
            value >>= 7
            out.append(byte | 0x80 if value else byte)
            if not value:
                break
        with pytest.raises(FrameError):
            read_frame(io.BytesIO(bytes(out)).read)

    def test_garbage_header_rejected(self):
        frame = bytearray(encode_frame(TAG_CLAIM, {"x": 1}))
        # Corrupt the JSON header region (past the 3 leading varints).
        frame[4] ^= 0xFF
        with pytest.raises(FrameError):
            decode_frame(bytes(frame))


# ---------------------------------------------------------------------------
# The blob store.
# ---------------------------------------------------------------------------


class TestBlobStore:
    def test_memory_put_get_contains(self):
        store = BlobStore()
        digest = store.put(b"module bytes")
        assert digest == blob_digest(b"module bytes")
        assert digest in store
        assert store.get(digest) == b"module bytes"
        assert store.get("0" * 64) is None

    def test_put_is_idempotent(self):
        metrics = MetricsRegistry()
        store = BlobStore(metrics=metrics)
        first = store.put(b"data")
        second = store.put(b"data")
        assert first == second
        assert metrics.counter("wire.blob.stored") == 1

    def test_directory_store_survives_reopen(self, tmp_path):
        directory = str(tmp_path / "blobs")
        digest = BlobStore(directory).put(b"persisted")
        reopened = BlobStore(directory)
        assert digest in reopened
        assert reopened.get(digest) == b"persisted"
        assert reopened.digests() == [digest]

    def test_corrupted_blob_reads_as_absent(self, tmp_path):
        directory = str(tmp_path / "blobs")
        store = BlobStore(directory)
        digest = store.put(b"good bytes")
        with open(os.path.join(directory, digest), "wb") as stream:
            stream.write(b"evil bytes")
        assert store.get(digest) is None


# ---------------------------------------------------------------------------
# The payload codec and decode cache.
# ---------------------------------------------------------------------------


class TestPayloadCodec:
    def test_bitcode_round_trip_is_canonical(self):
        from repro.ir.parser import parse_module
        from repro.ir.printer import print_module
        canonical = print_module(parse_module(IR))
        data, fmt = encode_payload(IR, "bitcode")
        assert fmt == "bitcode"
        assert decode_payload(data, fmt) == canonical

    def test_bitcode_is_smaller_than_text(self):
        data, _fmt = encode_payload(IR, "bitcode")
        assert len(data) < len(IR.encode())

    def test_unparseable_text_falls_back_to_text(self):
        broken = "this is not IR at all {{{"
        data, fmt = encode_payload(broken, "bitcode")
        assert fmt == "text"
        assert decode_payload(data, fmt) == broken

    def test_text_format_ships_verbatim(self):
        data, fmt = encode_payload(IR, "text")
        assert (data, fmt) == (IR.encode(), "text")

    def test_unknown_format_rejected(self):
        with pytest.raises(WireError):
            encode_payload(IR, "carrier-pigeon")
        with pytest.raises(WireError):
            decode_payload(b"x", "carrier-pigeon")

    def test_undecodable_bitcode_raises(self):
        with pytest.raises(WireError):
            decode_payload(b"\xff\xfe not bitcode", "bitcode")


class TestDecodeCache:
    def test_repeat_decodes_hit(self):
        metrics = MetricsRegistry()
        cache = DecodeCache(metrics=metrics)
        data, fmt = encode_payload(IR, "bitcode")
        digest = blob_digest(data)
        first = cache.text(digest, data, fmt)
        second = cache.text(digest, data, fmt)
        assert first == second
        assert metrics.counter("bitcode.decode_cache.miss") == 1
        assert metrics.counter("bitcode.decode_cache.hit") == 1
        assert metrics.counter("bitcode.decode.count") == 1

    def test_lru_eviction_is_bounded(self):
        cache = DecodeCache(capacity=2)
        texts = [f"define i32 @f{i}() {{\n  ret i32 {i}\n}}\n"
                 for i in range(3)]
        digests = []
        for text in texts:
            data, fmt = encode_payload(text, "bitcode")
            digests.append((blob_digest(data), data, fmt))
            cache.text(*digests[-1])
        assert len(cache) == 2
        # The first entry was evicted; re-requesting it re-decodes.
        metrics_free = cache.text(*digests[0])
        assert "@f0" in metrics_free

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            DecodeCache(capacity=0)
