"""Tests for InstSimplify (existing-value simplifications only)."""

import pytest

from repro.ir import ConstantInt, PoisonValue
from repro.opt.passes.instsimplify import simplify_instruction

from helpers import assert_sound, optimize, parsed, single_function


def simplify_first(text: str):
    fn = single_function(text)
    return simplify_instruction(fn.blocks[0].instructions[0]), fn


class TestAlgebraicIdentities:
    @pytest.mark.parametrize("body,expect_arg", [
        ("add i32 %x, 0", True),
        ("sub i32 %x, 0", True),
        ("mul i32 %x, 1", True),
        ("and i32 %x, -1", True),
        ("or i32 %x, 0", True),
        ("xor i32 %x, 0", True),
        ("udiv i32 %x, 1", True),
        ("sdiv i32 %x, 1", True),
        ("shl i32 %x, 0", True),
        ("lshr i32 %x, 0", True),
        ("ashr i32 %x, 0", True),
    ])
    def test_identity_returns_operand(self, body, expect_arg):
        result, fn = simplify_first(f"""
define i32 @f(i32 %x) {{
  %r = {body}
  ret i32 %r
}}
""")
        assert (result is fn.arguments[0]) == expect_arg

    @pytest.mark.parametrize("body,value", [
        ("sub i32 %x, %x", 0),
        ("xor i32 %x, %x", 0),
        ("and i32 %x, 0", 0),
        ("mul i32 %x, 0", 0),
        ("urem i32 %x, 1", 0),
        ("srem i32 %x, 1", 0),
        ("or i32 %x, -1", 0xFFFFFFFF),
    ])
    def test_constant_results(self, body, value):
        result, _ = simplify_first(f"""
define i32 @f(i32 %x) {{
  %r = {body}
  ret i32 %r
}}
""")
        assert isinstance(result, ConstantInt) and result.value == value

    def test_self_ops_idempotent(self):
        result, fn = simplify_first("""
define i32 @f(i32 %x) {
  %r = and i32 %x, %x
  ret i32 %r
}
""")
        assert result is fn.arguments[0]

    def test_shift_by_too_much_is_poison(self):
        result, _ = simplify_first("""
define i8 @f(i8 %x) {
  %r = shl i8 %x, 9
  ret i8 %r
}
""")
        assert isinstance(result, PoisonValue)

    def test_no_simplification_returns_none(self):
        result, _ = simplify_first("""
define i32 @f(i32 %x, i32 %y) {
  %r = add i32 %x, %y
  ret i32 %r
}
""")
        assert result is None


class TestICmpSimplify:
    def test_same_operands(self):
        result, _ = simplify_first("""
define i1 @f(i32 %x) {
  %r = icmp ule i32 %x, %x
  ret i1 %r
}
""")
        assert result.value == 1
        result, _ = simplify_first("""
define i1 @f(i32 %x) {
  %r = icmp slt i32 %x, %x
  ret i1 %r
}
""")
        assert result.value == 0

    def test_knownbits_range(self):
        fn = single_function("""
define i1 @f(i32 %x) {
  %m = and i32 %x, 15
  %r = icmp ult i32 %m, 16
  ret i1 %r
}
""")
        result = simplify_instruction(fn.blocks[0].instructions[1])
        assert isinstance(result, ConstantInt) and result.value == 1

    def test_knownbits_impossible_eq(self):
        fn = single_function("""
define i1 @f(i32 %x) {
  %m = or i32 %x, 1
  %r = icmp eq i32 %m, 4
  ret i1 %r
}
""")
        result = simplify_instruction(fn.blocks[0].instructions[1])
        assert isinstance(result, ConstantInt) and result.value == 0


class TestSelectFreezeSimplify:
    def test_select_same_arms(self):
        result, fn = simplify_first("""
define i32 @f(i1 %c, i32 %x) {
  %r = select i1 %c, i32 %x, i32 %x
  ret i32 %r
}
""")
        assert result is fn.arguments[1]

    def test_freeze_of_constant(self):
        result, _ = simplify_first("""
define i32 @f() {
  %r = freeze i32 7
  ret i32 %r
}
""")
        assert isinstance(result, ConstantInt) and result.value == 7

    def test_freeze_of_poison_not_folded_to_poison(self):
        result, _ = simplify_first("""
define i32 @f() {
  %r = freeze i32 poison
  ret i32 %r
}
""")
        # freeze poison is a concrete unknown value, NOT poison.
        assert not isinstance(result, PoisonValue)


class TestPassSoundness:
    @pytest.mark.parametrize("text", [
        """
define i32 @f(i32 %x) {
  %a = add i32 %x, 0
  %b = mul i32 %a, 1
  %c = xor i32 %b, %b
  %d = or i32 %c, %x
  ret i32 %d
}
""",
        """
define i8 @f(i8 %x) {
  %big = shl i8 %x, 9
  %r = or i8 %big, 1
  ret i8 %r
}
""",
    ])
    def test_sound(self, text):
        assert_sound(parsed(text), "instsimplify")

    def test_fixpoint_chains(self):
        module = parsed("""
define i32 @f(i32 %x) {
  %a = add i32 %x, 0
  %b = add i32 %a, 0
  %c = add i32 %b, 0
  ret i32 %c
}
""")
        optimized, _ = optimize(module, "instsimplify")
        fn = optimized.get_function("f")
        assert fn.num_instructions() == 1
