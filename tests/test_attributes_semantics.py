"""Tests for attribute semantics end to end: mutation toggles them, the
validator enforces them, and the optimizer respects them."""


from repro.ir import parse_module
from repro.tv import RefinementConfig, Verdict, check_refinement

from helpers import parsed


class TestAttributeDrivenValidation:
    def test_noalias_changes_verdict(self):
        """The exact same (illegal-without-noalias) forwarding becomes
        legal once the parameters promise not to alias."""
        body = """
  %a = load i8, ptr %q
  store i8 77, ptr %p
  %b = load i8, ptr %q
  ret i8 %b
"""
        forwarded = """
  %a = load i8, ptr %q
  store i8 77, ptr %p
  ret i8 %a
"""
        for attrs, expected in ((("", ""), Verdict.UNSOUND),
                                (("noalias ", "noalias "), Verdict.CORRECT)):
            src = parsed(f"define i8 @f(ptr {attrs[0]}%p, "
                         f"ptr {attrs[1]}%q) {{{body}}}")
            tgt = parsed(f"define i8 @f(ptr {attrs[0]}%p, "
                         f"ptr {attrs[1]}%q) {{{forwarded}}}")
            result = check_refinement(
                src.get_function("f"), tgt.get_function("f"), src, tgt,
                RefinementConfig(max_inputs=48))
            assert result.verdict == expected, attrs

    def test_nonnull_excludes_null_inputs(self):
        """Dereferencing a nonnull pointer never sees the null-input UB
        that an unannotated pointer would."""
        src = parsed("""
define i8 @f(ptr nonnull %p) {
  %v = load i8, ptr %p
  ret i8 %v
}
""")
        result = check_refinement(src.get_function("f"),
                                  src.clone().get_function("f"),
                                  src, src.clone(),
                                  RefinementConfig(max_inputs=24))
        assert result.verdict == Verdict.CORRECT

    def test_dereferenceable_sizes_input_blocks(self):
        from repro.tv import generate_inputs
        from repro.tv.refine import PointerInput

        fn = parsed("""
define i64 @f(ptr dereferenceable(64) %p) {
  %v = load i64, ptr %p
  ret i64 %v
}
""").get_function("f")
        inputs = generate_inputs(fn, RefinementConfig(max_inputs=16))
        for test_input in inputs:
            pointer = test_input.args[0]
            assert isinstance(pointer, PointerInput)
            assert not pointer.is_null()
            assert pointer.size >= 64


class TestAttributeMutationRoundTrip:
    def test_mutated_attributes_survive_printing(self):
        from repro.analysis.overlay import MutantOverlay, OriginalFunctionInfo
        from repro.ir import print_module
        from repro.mutate import MutationRNG
        from repro.mutate.mutations import attributes

        module = parsed("""
define i32 @f(ptr %p, i32 %x) {
  %v = load i32, ptr %p
  %r = add i32 %v, %x
  ret i32 %r
}
""")
        info = OriginalFunctionInfo(module.get_function("f"))
        toggled = 0
        for seed in range(40):
            clone = module.clone()
            overlay = MutantOverlay(clone.get_function("f"), info)
            if attributes.apply(overlay, MutationRNG(seed)):
                toggled += 1
                text = print_module(clone)
                reparsed = parse_module(text)
                assert print_module(reparsed) == text
        assert toggled >= 30

    def test_fuzzing_with_attribute_mutations_only(self):
        from repro.fuzz import FuzzConfig, FuzzDriver
        from repro.mutate import MutatorConfig
        from repro.tv import RefinementConfig as RC

        module = parsed("""
define i32 @f(ptr %p, i32 %x) {
  %v = load i32, ptr %p
  %r = add i32 %v, %x
  ret i32 %r
}
""")
        driver = FuzzDriver(module, FuzzConfig(
            pipeline="O2",
            mutator=MutatorConfig(enabled_mutations=["attributes"]),
            tv=RC(max_inputs=12)))
        report = driver.run(iterations=30)
        # Attribute toggles alone never make a clean optimizer unsound.
        assert report.findings == []
