"""Unit tests for the seeded RNG wrapper and the optimization context."""

import pytest

from repro.mutate.rng import MutationRNG
from repro.opt import OptContext, OptimizerCrash


class TestMutationRNG:
    def test_determinism(self):
        a = MutationRNG(42)
        b = MutationRNG(42)
        assert [a.randint(0, 100) for _ in range(10)] == \
            [b.randint(0, 100) for _ in range(10)]

    def test_seed_recorded(self):
        assert MutationRNG(7).seed == 7

    def test_spawn_derives_new_seed(self):
        parent = MutationRNG(7)
        child_a = parent.spawn(1)
        child_b = parent.spawn(2)
        assert child_a.seed != child_b.seed
        assert MutationRNG(7).spawn(1).seed == child_a.seed

    def test_choice_and_maybe_choice(self):
        rng = MutationRNG(1)
        assert rng.choice([5]) == 5
        assert rng.maybe_choice([]) is None
        assert rng.maybe_choice([9]) == 9

    def test_shuffled_does_not_mutate_input(self):
        rng = MutationRNG(3)
        original = [1, 2, 3, 4, 5]
        shuffled = rng.shuffled(original)
        assert original == [1, 2, 3, 4, 5]
        assert sorted(shuffled) == original

    def test_sample_caps_at_population(self):
        rng = MutationRNG(3)
        assert sorted(rng.sample([1, 2], 10)) == [1, 2]

    def test_getrandbits_zero(self):
        assert MutationRNG(0).getrandbits(0) == 0

    def test_random_int_value_in_range(self):
        rng = MutationRNG(11)
        for _ in range(100):
            value = rng.random_int_value(8, pool=[300, 5])
            assert 0 <= value <= 255

    def test_chance_extremes(self):
        rng = MutationRNG(2)
        assert not rng.chance(0.0)
        assert rng.chance(1.0)


class TestOptContext:
    def test_bug_gating(self):
        ctx = OptContext(["53252"])
        assert ctx.bug_enabled("53252")
        assert not ctx.bug_enabled("50693")

    def test_trigger_recording(self):
        ctx = OptContext(["53252"])
        ctx.note_bug_trigger("53252")
        assert ctx.triggered_bugs == {"53252"}

    def test_crash_records_and_raises(self):
        ctx = OptContext(["56968"])
        with pytest.raises(OptimizerCrash) as info:
            ctx.crash("56968", "boom")
        assert info.value.bug_id == "56968"
        assert "56968" in str(info.value)
        assert "56968" in ctx.triggered_bugs

    def test_stats_counter(self):
        ctx = OptContext()
        ctx.count("x")
        ctx.count("x", 2)
        assert ctx.stats["x"] == 3
