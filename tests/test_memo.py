"""Tests for CoW + fingerprint memoization: caches never change findings."""

import pytest

from repro.fuzz import FuzzConfig, FuzzDriver
from repro.fuzz.memo import LRUCache
from repro.mutate import MutatorConfig
from repro.tv import RefinementConfig

from helpers import parsed

CLAMP = """
define i32 @clamp(i32 %x, i32 %y) {
  %c = icmp ult i32 %x, 100
  %r = select i1 %c, i32 %x, i32 100
  %s = add i32 %r, %y
  ret i32 %s
}
"""

# A module with repeated structure: an unsupported-but-optimizable wide
# function (dropped from targeting, yet cloned and optimized every
# iteration without memoization) next to two supported targets.
MIXED = """
declare void @ext(i32)

define i128 @wide(i128 %x) {
  %a = add i128 %x, 0
  %b = mul i128 %a, 1
  ret i128 %b
}

define i32 @clamp(i32 %x, i32 %y) {
  %c = icmp ult i32 %x, 100
  %r = select i1 %c, i32 %x, i32 100
  %s = add i32 %r, %y
  ret i32 %s
}

define i32 @shifty(i32 %x) {
  %s = shl i32 %x, 3
  %t = lshr i32 %s, 3
  ret i32 %t
}
"""


def run_driver(text, memo, iterations=30, **kwargs):
    config = FuzzConfig(
        mutator=MutatorConfig(max_mutations=2, cow_clone=memo),
        tv=RefinementConfig(max_inputs=12),
        memo=memo,
        **kwargs,
    )
    driver = FuzzDriver(parsed(text), config, file_name="t.ll")
    report = driver.run(iterations=iterations)
    return driver, report


def finding_keys(report):
    return [(f.seed, f.kind, f.function, tuple(f.bug_ids))
            for f in report.findings]


class TestLRUCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)           # evicts b
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2

    def test_overwrite_same_key(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert len(cache) == 1


class TestFindingParity:
    """Memo on == memo off: the acceptance determinism criterion."""

    def test_miscompilation_findings_identical(self):
        _, with_memo = run_driver(CLAMP, memo=True,
                                  enabled_bugs=("53252",))
        _, without = run_driver(CLAMP, memo=False,
                                enabled_bugs=("53252",))
        assert with_memo.findings  # the workload must actually find bugs
        assert finding_keys(with_memo) == finding_keys(without)

    def test_crash_findings_identical(self):
        _, with_memo = run_driver(MIXED, memo=True,
                                  enabled_bugs=("56968",))
        _, without = run_driver(MIXED, memo=False,
                                enabled_bugs=("56968",))
        assert any(f.kind == "crash" for f in with_memo.findings)
        assert finding_keys(with_memo) == finding_keys(without)

    def test_deterministic_metrics_identical(self):
        on_driver, _ = run_driver(MIXED, memo=True, enabled_bugs=("53252",))
        off_driver, _ = run_driver(MIXED, memo=False, enabled_bugs=("53252",))
        assert on_driver.metrics.deterministic() == \
            off_driver.metrics.deterministic()

    def test_clean_module_stays_clean(self):
        _, with_memo = run_driver(MIXED, memo=True)
        _, without = run_driver(MIXED, memo=False)
        assert finding_keys(with_memo) == finding_keys(without)

    def test_targets_identical(self):
        on_driver, _ = run_driver(MIXED, memo=True, iterations=0)
        off_driver, _ = run_driver(MIXED, memo=False, iterations=0)
        assert on_driver.target_functions == off_driver.target_functions
        assert on_driver.report.dropped_functions == \
            off_driver.report.dropped_functions


class TestCacheBehavior:
    def test_untouched_functions_hit_the_optimize_cache(self):
        driver, _ = run_driver(MIXED, memo=True)
        hits = driver.metrics.counter("cache.optimize.hit")
        assert hits > 0  # @wide is never mutated: every iteration hits

    def test_replaying_a_seed_hits_both_caches(self):
        driver, _ = run_driver(CLAMP, memo=True, iterations=1)
        first = driver.run_one(7)
        opt_misses = driver.metrics.counter("cache.optimize.miss")
        tv_misses = driver.metrics.counter("cache.verify.miss")
        second = driver.run_one(7)
        assert driver.metrics.counter("cache.optimize.miss") == opt_misses
        assert driver.metrics.counter("cache.verify.miss") == tv_misses
        assert [f.kind for f in first] == [f.kind for f in second]

    def test_cached_unsound_verdict_is_replayed(self):
        driver, report = run_driver(CLAMP, memo=True, iterations=40,
                                    enabled_bugs=("53252",))
        miscompiles = [f for f in report.findings
                       if f.kind == "miscompilation"]
        assert miscompiles
        replay = driver.run_one(miscompiles[0].seed)
        assert [f.kind for f in replay] == ["miscompilation"]
        assert replay[0].bug_ids == miscompiles[0].bug_ids

    def test_cached_crash_is_replayed(self):
        driver, report = run_driver(MIXED, memo=True, iterations=40,
                                    enabled_bugs=("56968",))
        crashes = [f for f in report.findings if f.kind == "crash"]
        assert crashes
        replay = driver.run_one(crashes[0].seed)
        assert [f.kind for f in replay] == ["crash"]
        assert replay[0].bug_ids == crashes[0].bug_ids

    def test_clone_copies_fewer_functions_under_cow(self):
        on_driver, _ = run_driver(MIXED, memo=True)
        off_driver, _ = run_driver(MIXED, memo=False)
        assert on_driver.metrics.counter("clone.functions_copied") < \
            off_driver.metrics.counter("clone.functions_copied")

    def test_memo_requires_positive_cache_sizes(self):
        from repro.fuzz.driver import ConfigError

        with pytest.raises(ConfigError):
            FuzzConfig(optimize_cache_size=0).validate()
        with pytest.raises(ConfigError):
            FuzzConfig(verify_cache_size=-1).validate()
        # With memoization off the sizes are irrelevant.
        FuzzConfig(memo=False, optimize_cache_size=0).validate()

    def test_tiny_caches_only_cost_speed(self):
        _, tiny = run_driver(CLAMP, memo=True, enabled_bugs=("53252",),
                             optimize_cache_size=1, verify_cache_size=1)
        _, without = run_driver(CLAMP, memo=False, enabled_bugs=("53252",))
        assert finding_keys(tiny) == finding_keys(without)


class TestEngineHoist:
    def test_unknown_mutation_rejected_at_construction(self):
        from repro.mutate import Mutator

        with pytest.raises(ValueError, match="unknown mutations"):
            Mutator(parsed(CLAMP),
                    MutatorConfig(enabled_mutations=["nope"]))
