"""Tests for the Session facade and the redesigned config surface."""

import pytest

from repro import (CampaignConfig, ConfigError, FuzzConfig, FuzzReport,
                   Session, run_campaign)
from repro.mutate import MutatorConfig
from repro.tv import RefinementConfig

CLAMP = """
define i32 @clamp(i32 %x, i32 %y) {
  %c = icmp ult i32 %x, 100
  %r = select i1 %c, i32 %x, i32 100
  %s = add i32 %r, %y
  ret i32 %s
}
"""


class TestSessionSingleSource:
    def test_from_text_run_round_trip(self):
        session = Session.from_text(CLAMP, FuzzConfig(
            mutator=MutatorConfig(max_mutations=2),
            tv=RefinementConfig(max_inputs=10)))
        report = session.run(iterations=15)
        assert isinstance(report, FuzzReport)
        assert report.iterations == 15
        assert report.findings == []

    def test_session_finds_seeded_bug_and_replays_it(self):
        session = Session.from_text(CLAMP, FuzzConfig(
            enabled_bugs=("53252",),
            mutator=MutatorConfig(max_mutations=2),
            tv=RefinementConfig(max_inputs=12)))
        report = session.run(iterations=120)
        failing = [f for f in report.findings if "53252" in f.bug_ids]
        assert failing
        # replay() re-creates the exact mutant the seed denotes.
        from repro.ir import print_module
        mutant_a = session.replay(failing[0].seed)
        mutant_b = session.replay(failing[0].seed)
        assert print_module(mutant_a) == print_module(mutant_b)

    def test_from_file(self, tmp_path):
        path = tmp_path / "clamp.ll"
        path.write_text(CLAMP)
        report = Session.from_file(str(path)).run(iterations=5)
        assert report.iterations == 5

    def test_matches_direct_driver(self):
        config = FuzzConfig(mutator=MutatorConfig(max_mutations=2),
                            tv=RefinementConfig(max_inputs=10))
        from repro import FuzzDriver
        direct = FuzzDriver.from_text(CLAMP, config).run(iterations=20)
        facade = Session.from_text(CLAMP, config).run(iterations=20)
        assert facade.iterations == direct.iterations
        assert [f.seed for f in facade.findings] == \
            [f.seed for f in direct.findings]


class TestSessionCorpus:
    def test_from_corpus_campaign_equals_run_campaign(self):
        campaign = CampaignConfig(mutants_per_file=8, max_inputs=8,
                                  pipelines=("O2",))
        via_session = Session.from_corpus(
            size=5, seed=0, campaign=campaign).run_campaign()
        from dataclasses import replace
        direct = run_campaign(replace(campaign, corpus_size=5, corpus_seed=0))
        assert via_session.total_iterations == direct.total_iterations
        assert {b: o.first_seed for b, o in via_session.outcomes.items()} == \
            {b: o.first_seed for b, o in direct.outcomes.items()}

    def test_run_campaign_workers_override(self):
        campaign = CampaignConfig(mutants_per_file=6, max_inputs=6,
                                  pipelines=("O2",))
        report = Session.from_corpus(size=3, campaign=campaign) \
            .run_campaign(workers=2)
        assert report.workers == 2
        assert report.total_iterations == 3 * 6

    def test_multi_source_run_merges(self):
        session = Session.from_corpus(size=3, fuzz=FuzzConfig(
            tv=RefinementConfig(max_inputs=6)))
        report = session.run(iterations=4)
        assert report.iterations <= 3 * 4
        assert report.mutation_counts


class TestConfigValidation:
    def test_unknown_pipeline_rejected(self):
        with pytest.raises(ConfigError, match="unknown pipeline"):
            FuzzConfig(pipeline="O3").validate()

    def test_unknown_pass_in_list_rejected(self):
        with pytest.raises(ConfigError, match="unknown pipeline"):
            FuzzConfig(pipeline="instcombine,no-such-pass").validate()

    def test_negative_base_seed_rejected(self):
        with pytest.raises(ConfigError, match="base_seed"):
            FuzzConfig(base_seed=-1).validate()

    def test_negative_tv_seed_rejected(self):
        with pytest.raises(ConfigError, match="tv.seed"):
            FuzzConfig(tv=RefinementConfig(seed=-3)).validate()

    def test_bad_mutation_range_rejected(self):
        with pytest.raises(ConfigError, match="max_mutations"):
            FuzzConfig(mutator=MutatorConfig(min_mutations=4,
                                             max_mutations=2)).validate()

    def test_budget_required(self):
        with pytest.raises(ConfigError, match="iterations"):
            FuzzConfig().validate(require_budget=True)

    def test_driver_constructor_validates(self):
        from repro import FuzzDriver
        with pytest.raises(ConfigError):
            FuzzDriver.from_text(CLAMP, FuzzConfig(pipeline="nope"))

    def test_config_error_is_value_error(self):
        assert issubclass(ConfigError, ValueError)

    def test_campaign_workers_rejected(self):
        with pytest.raises(ConfigError, match="workers"):
            CampaignConfig(workers=0).validate()

    def test_campaign_unknown_pipeline_rejected(self):
        with pytest.raises(ConfigError, match="unknown pipeline"):
            CampaignConfig(pipelines=("O2", "O9")).validate()

    def test_campaign_no_budget_rejected(self):
        with pytest.raises(ConfigError):
            CampaignConfig(mutants_per_file=None).validate()

    def test_campaign_template_max_inputs_flows_through(self):
        config = CampaignConfig(fuzz=FuzzConfig(
            tv=RefinementConfig(max_inputs=5)))
        assert config.job_config(0, "O2").tv.max_inputs == 5
        shorthand = CampaignConfig(max_inputs=9)
        assert shorthand.job_config(0, "O2").tv.max_inputs == 9
        assert CampaignConfig().job_config(0, "O2").tv.max_inputs == 16


class TestEmptyTargetReport:
    ALL_DROPPED = """
define i128 @wide(i128 %x) {
  ret i128 %x
}
"""

    def test_run_returns_structured_report(self):
        from repro import FuzzDriver
        driver = FuzzDriver.from_text(self.ALL_DROPPED)
        report = driver.run(iterations=10)
        assert report.iterations == 0
        assert report.findings == []
        assert "wide" in report.dropped_functions

    def test_strict_mode_still_raises(self):
        from repro import FuzzDriver
        driver = FuzzDriver.from_text(self.ALL_DROPPED)
        with pytest.raises(ValueError, match="no processable"):
            driver.run(iterations=10, strict=True)
