"""Further interpreter edge cases: recursion, switch-on-poison, GEP
corner cases, and multi-function execution."""

import pytest

from repro.tv import (ExecutionLimits, Interpreter, StepLimitExceeded,
                      UBError, is_poison)

from helpers import parsed


class TestRecursion:
    def test_bounded_recursion_works(self):
        module = parsed("""
define i32 @fact(i32 %n) {
entry:
  %base = icmp ule i32 %n, 1
  br i1 %base, label %one, label %rec
one:
  ret i32 1
rec:
  %m = sub i32 %n, 1
  %sub = call i32 @fact(i32 %m)
  %r = mul i32 %n, %sub
  ret i32 %r
}
""")
        interp = Interpreter(module)
        assert interp.run(module.get_function("fact"), [5]) == 120

    def test_deep_recursion_hits_depth_limit(self):
        module = parsed("""
define i32 @down(i32 %n) {
entry:
  %z = icmp eq i32 %n, 0
  br i1 %z, label %done, label %rec
done:
  ret i32 0
rec:
  %m = sub i32 %n, 1
  %r = call i32 @down(i32 %m)
  ret i32 %r
}
""")
        interp = Interpreter(module, limits=ExecutionLimits(max_call_depth=4))
        with pytest.raises(StepLimitExceeded):
            interp.run(module.get_function("down"), [100])


class TestSwitchEdges:
    def test_switch_on_poison_is_ub(self):
        module = parsed("""
define i8 @f() {
entry:
  %p = shl i8 1, 9
  switch i8 %p, label %d [ i8 0, label %a ]
a:
  ret i8 1
d:
  ret i8 2
}
""")
        with pytest.raises(UBError):
            Interpreter(module).run(module.get_function("f"), [])

    def test_switch_no_cases(self):
        module = parsed("""
define i8 @f(i8 %x) {
entry:
  switch i8 %x, label %d [ ]
d:
  ret i8 9
}
""")
        assert Interpreter(module).run(module.get_function("f"), [3]) == 9


class TestGEPEdges:
    def test_gep_on_null_defined_deref_ub(self):
        module = parsed("""
define i8 @f() {
  %g = getelementptr i8, ptr null, i64 4
  %v = load i8, ptr %g
  ret i8 %v
}
""")
        with pytest.raises(UBError):
            Interpreter(module).run(module.get_function("f"), [])

    def test_gep_scaling_by_element_size(self):
        module = parsed("""
define i16 @f() {
  %slot = alloca i64
  store i64 -281474976710656, ptr %slot
  %g = getelementptr i16, ptr %slot, i64 3
  %v = load i16, ptr %g
  ret i16 %v
}
""")
        # 0xFFFF000000000000 little-endian: halfword 3 is 0xFFFF.
        assert Interpreter(module).run(module.get_function("f"), []) == 0xFFFF

    def test_gep_poison_index(self):
        module = parsed("""
define ptr @f(ptr %p) {
  %g = getelementptr i8, ptr %p, i64 poison
  ret ptr %g
}
""")
        interp = Interpreter(module)
        pointer = interp.memory.add_block("arg:p", 8)
        assert is_poison(interp.run(module.get_function("f"), [pointer]))


class TestMultiFunctionDriver:
    def test_all_definitions_fuzzed(self):
        from repro.fuzz import FuzzConfig, FuzzDriver
        from repro.mutate import MutatorConfig
        from repro.tv import RefinementConfig

        module = parsed("""
define i8 @first(i8 %x) {
  %r = add i8 %x, 1
  ret i8 %r
}

define i8 @second(i8 %x) {
  %r = mul i8 %x, 3
  ret i8 %r
}
""")
        driver = FuzzDriver(module, FuzzConfig(
            pipeline="O2", mutator=MutatorConfig(max_mutations=1),
            tv=RefinementConfig(max_inputs=8)))
        assert driver.target_functions == ["first", "second"]
        report = driver.run(iterations=10)
        assert report.findings == []
