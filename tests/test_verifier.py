"""Tests for the IR verifier — every invariant class it enforces."""

import pytest

from repro.ir import (BasicBlock, BinaryOperator, BrInst, CastInst,
                      ConstantInt, Function, FunctionType, I8, I32, LoadInst,
                      Module, RetInst, SelectInst, VerificationError,
                      collect_function_errors, is_valid_module, parse_module,
                      verify_function, verify_module)

from helpers import parsed


def empty_fn(return_type=I32, params=(I32,)):
    module = Module()
    fn = Function(FunctionType(return_type, tuple(params)), "f", module)
    for i, arg in enumerate(fn.arguments):
        arg.name = f"a{i}"
    return fn


def test_valid_module_passes():
    assert is_valid_module(parsed("""
define i32 @f(i32 %x) {
  %r = add i32 %x, 1
  ret i32 %r
}
"""))


def test_no_blocks():
    fn = empty_fn()
    assert "no blocks" in collect_function_errors(fn)[0]


def test_empty_block():
    fn = empty_fn()
    BasicBlock("entry", fn)
    errors = collect_function_errors(fn)
    assert any("empty block" in e for e in errors)


def test_missing_terminator():
    fn = empty_fn()
    block = BasicBlock("entry", fn)
    block.append(BinaryOperator("add", fn.arguments[0], fn.arguments[0]))
    errors = collect_function_errors(fn)
    assert any("missing terminator" in e for e in errors)


def test_terminator_mid_block():
    fn = empty_fn()
    block = BasicBlock("entry", fn)
    block.append(RetInst(fn.arguments[0]))
    block.append(RetInst(fn.arguments[0]))
    errors = collect_function_errors(fn)
    assert any("terminator mid-block" in e for e in errors)


def test_use_not_dominated():
    fn = empty_fn()
    block = BasicBlock("entry", fn)
    x = fn.arguments[0]
    first = BinaryOperator("add", x, x)
    second = BinaryOperator("mul", x, x)
    block.append(first)
    block.append(second)
    block.append(RetInst(first))
    # Make `first` use `second`, which is defined after it.
    first.set_operand(1, second)
    errors = collect_function_errors(fn)
    assert any("not dominated" in e for e in errors)


def test_cross_block_dominance():
    module = parse_module("""
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  %x = add i32 1, 2
  br label %b
b:
  ret i32 0
}
""")
    fn = module.get_function("f")
    # Rewrite the ret to use %x, which does not dominate %b.
    x = fn.block_named("a").instructions[0]
    fn.block_named("b").terminator().erase_from_parent()
    fn.block_named("b").append(RetInst(x))
    errors = collect_function_errors(fn)
    assert any("not dominated" in e for e in errors)


def test_entry_with_predecessors():
    module = parse_module("""
define void @f() {
entry:
  br label %entry2
entry2:
  ret void
}
""")
    fn = module.get_function("f")
    # Redirect the branch back at the entry block.
    entry = fn.blocks[0]
    fn.blocks[1].terminator().erase_from_parent()
    fn.blocks[1].append(BrInst(entry))
    errors = collect_function_errors(fn)
    assert any("entry block has predecessors" in e for e in errors)


class TestTypeRules:
    def test_binop_operand_mismatch(self):
        fn = empty_fn(params=(I32, I8))
        block = BasicBlock("entry", fn)
        bad = BinaryOperator("add", fn.arguments[0], fn.arguments[0])
        bad.set_operand(1, fn.arguments[1])
        block.append(bad)
        block.append(RetInst(bad))
        errors = collect_function_errors(fn)
        assert any("operand types" in e for e in errors)

    def test_flag_on_wrong_opcode(self):
        fn = empty_fn()
        block = BasicBlock("entry", fn)
        bad = BinaryOperator("and", fn.arguments[0], fn.arguments[0])
        bad.nsw = True  # set behind the constructor's back
        block.append(bad)
        block.append(RetInst(bad))
        errors = collect_function_errors(fn)
        assert any("nuw/nsw" in e for e in errors)

    def test_select_condition_not_i1(self):
        fn = empty_fn()
        block = BasicBlock("entry", fn)
        x = fn.arguments[0]
        bad = SelectInst(x, x, x)  # condition is i32
        block.append(bad)
        block.append(RetInst(bad))
        errors = collect_function_errors(fn)
        assert any("condition is not i1" in e for e in errors)

    def test_trunc_must_narrow(self):
        fn = empty_fn()
        block = BasicBlock("entry", fn)
        bad = CastInst("trunc", fn.arguments[0], I32)  # i32 -> i32
        block.append(bad)
        block.append(RetInst(bad))
        errors = collect_function_errors(fn)
        assert any("trunc must narrow" in e for e in errors)

    def test_zext_must_widen(self):
        fn = empty_fn()
        block = BasicBlock("entry", fn)
        bad = CastInst("zext", fn.arguments[0], I8)
        block.append(bad)
        block.append(RetInst(fn.arguments[0]))
        errors = collect_function_errors(fn)
        assert any("zext must widen" in e for e in errors)

    def test_ret_type_mismatch(self):
        fn = empty_fn(return_type=I32)
        block = BasicBlock("entry", fn)
        block.append(RetInst(ConstantInt(I8, 0)))
        errors = collect_function_errors(fn)
        assert any("ret value type" in e for e in errors)

    def test_ret_void_in_value_function(self):
        fn = empty_fn(return_type=I32)
        block = BasicBlock("entry", fn)
        block.append(RetInst())
        errors = collect_function_errors(fn)
        assert any("ret void in non-void" in e for e in errors)

    def test_load_from_non_pointer(self):
        fn = empty_fn()
        block = BasicBlock("entry", fn)
        bad = LoadInst(I32, fn.arguments[0])  # i32 pointer operand
        block.append(bad)
        block.append(RetInst(bad))
        errors = collect_function_errors(fn)
        assert any("not a pointer" in e for e in errors)

    def test_br_condition_not_i1(self):
        module = parse_module("""
define void @f(i32 %x, i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  ret void
b:
  ret void
}
""")
        fn = module.get_function("f")
        br = fn.blocks[0].terminator()
        br.set_operand(0, fn.arguments[0])
        errors = collect_function_errors(fn)
        assert any("br condition is not i1" in e for e in errors)


class TestPhiRules:
    def test_phi_incoming_must_match_predecessors(self):
        module = parse_module("""
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %join
a:
  br label %join
join:
  %r = phi i32 [ 1, %entry ], [ 2, %a ]
  ret i32 %r
}
""")
        fn = module.get_function("f")
        phi = fn.block_named("join").instructions[0]
        phi.remove_incoming(fn.block_named("a"))
        errors = collect_function_errors(fn)
        assert any("do not match predecessors" in e for e in errors)

    def test_phi_after_non_phi(self):
        module = parse_module("""
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %join
a:
  br label %join
join:
  %x = add i32 1, 2
  %r = phi i32 [ 1, %entry ], [ 2, %a ]
  ret i32 %r
}
""")
        errors = collect_function_errors(module.get_function("f"))
        assert any("phi after non-phi" in e for e in errors)


class TestCallRules:
    def test_arity_mismatch(self):
        module = parsed("""
declare void @g(i32)

define void @f(i32 %x) {
  call void @g(i32 %x)
  ret void
}
""")
        fn = module.get_function("f")
        call = fn.blocks[0].instructions[0]
        call.drop_all_references()
        fn.blocks[0].remove(call)
        from repro.ir.instructions import CallInst

        bad = CallInst(module.get_function("g"), [])
        fn.blocks[0].insert(0, bad)
        errors = collect_function_errors(fn)
        assert any("expects 1 args" in e for e in errors)

    def test_unknown_intrinsic(self):
        module = parse_module("""
define void @f() {
  call void @llvm.not.a.thing()
  ret void
}
""")
        errors = collect_function_errors(module.get_function("f"))
        assert any("unknown intrinsic" in e for e in errors)


def test_verify_function_raises():
    fn = empty_fn()
    with pytest.raises(VerificationError):
        verify_function(fn)


def test_verify_module_aggregates():
    module = parsed("""
define i32 @good(i32 %x) {
  ret i32 %x
}
""")
    verify_module(module)  # no raise
