"""Tests for the nondeterminism oracle and decision-tree enumeration."""

from repro.tv.oracle import (DeterministicOracle, PathOracle, advance_path,
                             enumerate_paths)


class TestPathOracle:
    def test_default_path_is_zeros(self):
        oracle = PathOracle([])
        assert oracle.choose("a", [10, 20, 30]) == 10
        assert oracle.choose("b", [1, 2]) == 1
        assert oracle.taken == [0, 0]
        assert oracle.domain_sizes == [3, 2]

    def test_replay(self):
        oracle = PathOracle([2, 1])
        assert oracle.choose("a", [10, 20, 30]) == 30
        assert oracle.choose("b", [1, 2]) == 2

    def test_path_clamped_to_domain(self):
        oracle = PathOracle([5])
        assert oracle.choose("a", [1, 2]) == 2

    def test_truncation_flag(self):
        oracle = PathOracle([])
        assert not oracle.domain_truncated
        oracle.note_truncated_domain()
        assert oracle.domain_truncated


class TestAdvancePath:
    def test_simple_increment(self):
        assert advance_path([0, 0], [2, 2]) == [0, 1]
        assert advance_path([0, 1], [2, 2]) == [1]
        assert advance_path([1, 1], [2, 2]) is None

    def test_mixed_domains(self):
        assert advance_path([0, 2], [3, 3]) == [1]
        assert advance_path([2, 2], [3, 3]) is None

    def test_empty(self):
        assert advance_path([], []) is None


class TestEnumeratePaths:
    def test_full_tree(self):
        def run(oracle):
            a = oracle.choose("a", [0, 1])
            b = oracle.choose("b", [0, 1, 2])
            return (a, b)

        results = [r for r, _ in enumerate_paths(run, max_runs=100)]
        assert len(results) == 6
        assert set(results) == {(a, b) for a in range(2) for b in range(3)}

    def test_budget_cuts_enumeration(self):
        def run(oracle):
            return oracle.choose("x", list(range(10)))

        results = list(enumerate_paths(run, max_runs=3))
        assert len(results) == 3
        # The last yielded flag says whether the tree was exhausted.
        assert results[-1][1] is False

    def test_data_dependent_tree(self):
        def run(oracle):
            first = oracle.choose("a", [0, 1])
            if first:
                return (first, oracle.choose("b", [0, 1]))
            return (first, None)

        results = [r for r, _ in enumerate_paths(run, max_runs=100)]
        assert set(results) == {(0, None), (1, 0), (1, 1)}

    def test_deterministic_oracle(self):
        oracle = DeterministicOracle()
        assert oracle.choose("x", [7, 8]) == 7
        assert oracle.choices_seen == 1
