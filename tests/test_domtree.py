"""Tests for the dominator tree, including a check against a naive
dataflow computation of dominance."""

from typing import Dict, Set

from repro.analysis import DominatorTree, reverse_postorder
from repro.analysis.cfg import predecessor_map

from helpers import parsed

DIAMOND = """
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %left, label %right
left:
  %x = add i32 1, 2
  br label %join
right:
  br label %join
join:
  %r = phi i32 [ %x, %left ], [ 0, %right ]
  ret i32 %r
}
"""

LOOP = """
define i32 @f(i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %next, %latch ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  br label %latch
latch:
  %next = add i32 %i, 1
  br label %header
exit:
  ret i32 %i
}
"""

UNREACHABLE = """
define i32 @f() {
entry:
  ret i32 0
dead:
  br label %dead2
dead2:
  br label %dead
}
"""


def blocks_by_name(fn):
    return {b.name: b for b in fn.blocks}


def naive_dominators(fn) -> Dict[str, Set[str]]:
    """Classic iterative all-dominators dataflow, for cross-checking."""
    order = reverse_postorder(fn)
    names = [b.name for b in order]
    preds = predecessor_map(fn)
    dom = {b.name: set(names) for b in order}
    dom[order[0].name] = {order[0].name}
    changed = True
    while changed:
        changed = False
        for block in order[1:]:
            reachable_preds = [p for p in preds[id(block)]
                               if p.name in dom and any(q is p for q in order)]
            incoming = [dom[p.name] for p in reachable_preds if p in order]
            if not incoming:
                continue
            new = set.intersection(*incoming) | {block.name}
            if new != dom[block.name]:
                dom[block.name] = new
                changed = True
    return dom


class TestDomTreeStructure:
    def test_diamond_idoms(self):
        fn = parsed(DIAMOND).get_function("f")
        tree = DominatorTree(fn)
        blocks = blocks_by_name(fn)
        assert tree.immediate_dominator(blocks["entry"]) is None
        assert tree.immediate_dominator(blocks["left"]) is blocks["entry"]
        assert tree.immediate_dominator(blocks["right"]) is blocks["entry"]
        assert tree.immediate_dominator(blocks["join"]) is blocks["entry"]

    def test_loop_idoms(self):
        fn = parsed(LOOP).get_function("f")
        tree = DominatorTree(fn)
        blocks = blocks_by_name(fn)
        assert tree.immediate_dominator(blocks["header"]) is blocks["entry"]
        assert tree.immediate_dominator(blocks["body"]) is blocks["header"]
        assert tree.immediate_dominator(blocks["latch"]) is blocks["body"]
        assert tree.immediate_dominator(blocks["exit"]) is blocks["header"]

    def test_dominates_block_reflexive(self):
        fn = parsed(DIAMOND).get_function("f")
        tree = DominatorTree(fn)
        for block in fn.blocks:
            assert tree.dominates_block(block, block)
            assert not tree.strictly_dominates_block(block, block)

    def test_siblings_do_not_dominate(self):
        fn = parsed(DIAMOND).get_function("f")
        tree = DominatorTree(fn)
        blocks = blocks_by_name(fn)
        assert not tree.dominates_block(blocks["left"], blocks["right"])
        assert not tree.dominates_block(blocks["left"], blocks["join"])

    def test_unreachable_blocks(self):
        fn = parsed(UNREACHABLE).get_function("f")
        tree = DominatorTree(fn)
        blocks = blocks_by_name(fn)
        assert tree.is_reachable(blocks["entry"])
        assert not tree.is_reachable(blocks["dead"])
        assert not tree.dominates_block(blocks["dead"], blocks["entry"])

    def test_children(self):
        fn = parsed(LOOP).get_function("f")
        tree = DominatorTree(fn)
        blocks = blocks_by_name(fn)
        children = {b.name for b in tree.children(blocks["header"])}
        assert children == {"body", "exit"}

    def test_depth(self):
        fn = parsed(LOOP).get_function("f")
        tree = DominatorTree(fn)
        blocks = blocks_by_name(fn)
        assert tree.dominance_depth(blocks["entry"]) == 0
        assert tree.dominance_depth(blocks["latch"]) == 3

    def test_matches_naive_dataflow(self):
        for text in (DIAMOND, LOOP):
            fn = parsed(text).get_function("f")
            tree = DominatorTree(fn)
            expected = naive_dominators(fn)
            blocks = blocks_by_name(fn)
            for a in blocks.values():
                for b in blocks.values():
                    assert tree.dominates_block(a, b) == \
                        (a.name in expected[b.name]), (a.name, b.name)


class TestValueDominance:
    def test_constants_and_arguments_dominate_everything(self):
        fn = parsed(DIAMOND).get_function("f")
        tree = DominatorTree(fn)
        blocks = blocks_by_name(fn)
        arg = fn.arguments[0]
        assert tree.dominates(arg, blocks["join"], 0)
        from repro.ir import ConstantInt, I32

        assert tree.dominates(ConstantInt(I32, 1), blocks["entry"], 0)

    def test_same_block_ordering(self):
        fn = parsed(DIAMOND).get_function("f")
        tree = DominatorTree(fn)
        blocks = blocks_by_name(fn)
        x = blocks["left"].instructions[0]
        assert not tree.dominates(x, blocks["left"], 0)
        assert tree.dominates(x, blocks["left"], 1)

    def test_cross_block_value_dominance(self):
        fn = parsed(DIAMOND).get_function("f")
        tree = DominatorTree(fn)
        blocks = blocks_by_name(fn)
        x = blocks["left"].instructions[0]
        assert not tree.dominates(x, blocks["join"], 0)
        assert not tree.dominates(x, blocks["right"], 0)

    def test_phi_use_checked_at_incoming_block_end(self):
        fn = parsed(DIAMOND).get_function("f")
        tree = DominatorTree(fn)
        blocks = blocks_by_name(fn)
        phi = blocks["join"].instructions[0]
        x = blocks["left"].instructions[0]
        # %x flows in through the %left edge: legal.
        assert tree.dominates_use(x, phi, 0)

    def test_reverse_postorder_starts_at_entry(self):
        fn = parsed(LOOP).get_function("f")
        order = reverse_postorder(fn)
        assert order[0].name == "entry"
        assert order[1].name == "header"
        assert len(order) == 5
