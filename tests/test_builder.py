"""Tests for the IRBuilder."""

import pytest

from repro.ir import (BasicBlock, ConstantInt, Function, FunctionType, I1, I8,
                      I32, IRBuilder, Module, VOID, verify_function)


def make_function(return_type=I32, params=(I32, I32)):
    module = Module()
    fn = Function(FunctionType(return_type, tuple(params)), "f", module)
    for i, arg in enumerate(fn.arguments):
        arg.name = "ab"[i] if i < 2 else f"p{i}"
    block = BasicBlock("entry", fn)
    builder = IRBuilder(block)
    return fn, builder


class TestArithmeticBuilders:
    def test_basic_binops(self):
        fn, b = make_function()
        x, y = fn.arguments
        result = b.add(x, y)
        result = b.sub(result, x)
        result = b.mul(result, y, nsw=True)
        b.ret(result)
        verify_function(fn)
        assert [i.opcode for i in fn.blocks[0].instructions] == \
            ["add", "sub", "mul", "ret"]
        assert fn.blocks[0].instructions[2].nsw

    def test_not_and_neg(self):
        fn, b = make_function()
        x, _ = fn.arguments
        negged = b.neg(x)
        notted = b.not_(negged)
        b.ret(notted)
        verify_function(fn)
        assert fn.blocks[0].instructions[0].lhs.value == 0
        assert fn.blocks[0].instructions[1].rhs.is_all_ones()

    def test_auto_naming(self):
        fn, b = make_function()
        x, y = fn.arguments
        first = b.add(x, y)
        second = b.add(first, y)
        assert first.name and second.name
        assert first.name != second.name

    def test_insert_before(self):
        fn, b = make_function()
        x, y = fn.arguments
        add = b.add(x, y)
        ret = b.ret(add)
        b.set_insert_before(ret)
        mul = b.mul(add, y)
        ret.set_operand(0, mul)
        verify_function(fn)
        assert fn.blocks[0].index_of(mul) == 1

    def test_no_insert_point(self):
        builder = IRBuilder()
        from repro.ir import Argument

        with pytest.raises(ValueError):
            builder.add(Argument(I32, "x"), Argument(I32, "y"))


class TestOtherBuilders:
    def test_icmp_select(self):
        fn, b = make_function()
        x, y = fn.arguments
        cond = b.icmp("slt", x, y)
        result = b.select(cond, x, y)
        b.ret(result)
        verify_function(fn)

    def test_casts(self):
        fn, b = make_function(I32, (I8,))
        value = b.zext(fn.arguments[0], I32)
        b.ret(value)
        verify_function(fn)

    def test_memory(self):
        fn, b = make_function(VOID, (I32,))
        slot = b.alloca(I32)
        b.store(fn.arguments[0], slot)
        loaded = b.load(I32, slot)
        b.store(loaded, slot)
        b.ret()
        verify_function(fn)

    def test_control_flow(self):
        module = Module()
        fn = Function(FunctionType(I32, (I1,)), "g", module)
        fn.arguments[0].name = "c"
        entry = BasicBlock("entry", fn)
        then = BasicBlock("then", fn)
        other = BasicBlock("other", fn)
        b = IRBuilder(entry)
        b.cond_br(fn.arguments[0], then, other)
        b.set_insert_point(then)
        b.ret(ConstantInt(I32, 1))
        b.set_insert_point(other)
        b.ret(ConstantInt(I32, 2))
        verify_function(fn)

    def test_phi(self):
        module = Module()
        fn = Function(FunctionType(I32, (I1,)), "g", module)
        fn.arguments[0].name = "c"
        entry = BasicBlock("entry", fn)
        a = BasicBlock("a", fn)
        join = BasicBlock("join", fn)
        b = IRBuilder(entry)
        b.cond_br(fn.arguments[0], a, join)
        b.set_insert_point(a)
        b.br(join)
        b.set_insert_point(join)
        phi = b.phi(I32)
        phi.add_incoming(ConstantInt(I32, 1), entry)
        phi.add_incoming(ConstantInt(I32, 2), a)
        b.ret(phi)
        verify_function(fn)
