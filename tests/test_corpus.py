"""Tests for the runtime coverage corpus (``repro.fuzz.corpus``).

Admission and distillation invariants, journal durability (same model as
the campaign checkpoint: a crash damages at most the trailing line), and
the one-release deprecation shim for the seed generators that used to
live in this module.
"""

import json
import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fuzz.corpus import (Corpus, CorpusEntry, CorpusJournal,
                               module_fingerprint)

common_settings = settings(
    max_examples=60, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# A small feature alphabet keeps overlap (and therefore rejection and
# distillation pressure) high.
features_strategy = st.frozensets(
    st.sampled_from([f"feat{i}" for i in range(12)]), max_size=6)


def entry(index, features, text=None):
    text = text if text is not None else f"module {index}"
    return CorpusEntry(text=text, fingerprint=module_fingerprint(text),
                       features=frozenset(features), seed=index)


def build_corpus(feature_sets, max_size=64, journal=None):
    corpus = Corpus(max_size=max_size, journal=journal)
    for index, features in enumerate(feature_sets):
        corpus.consider(entry(index, features))
    return corpus


class TestAdmission:
    def test_first_entry_with_features_is_admitted(self):
        corpus = Corpus()
        fresh = corpus.consider(entry(0, {"a", "b"}))
        assert fresh == {"a", "b"}
        assert len(corpus) == 1
        assert corpus.admitted_count == 1

    def test_duplicate_coverage_is_rejected(self):
        corpus = build_corpus([{"a", "b"}])
        assert corpus.consider(entry(1, {"a"})) == frozenset()
        assert corpus.consider(entry(2, {"b", "a"})) == frozenset()
        assert len(corpus) == 1

    def test_partial_novelty_admits_and_reports_only_the_novel_part(self):
        corpus = build_corpus([{"a"}])
        assert corpus.consider(entry(1, {"a", "b"})) == {"b"}
        assert corpus.covered == {"a", "b"}

    def test_featureless_entry_is_rejected(self):
        corpus = Corpus()
        assert corpus.consider(entry(0, ())) == frozenset()
        assert len(corpus) == 0

    def test_cover_marks_features_without_admitting(self):
        corpus = Corpus()
        corpus.cover({"baseline"})
        assert corpus.consider(entry(0, {"baseline"})) == frozenset()
        assert len(corpus) == 0
        assert corpus.features_covered() == 1

    def test_lookup_by_fingerprint(self):
        corpus = build_corpus([{"a"}])
        admitted = corpus.entries()[0]
        assert admitted.fingerprint in corpus
        assert corpus.get(admitted.fingerprint) == admitted
        assert corpus.get("nope") is None

    def test_max_size_must_be_positive(self):
        with pytest.raises(ValueError):
            Corpus(max_size=0)

    @common_settings
    @given(sets=st.lists(features_strategy, max_size=20))
    def test_admitted_entries_cover_exactly_the_union(self, sets):
        """Coverage == union of considered feature sets, always."""
        corpus = build_corpus(sets)
        union = set()
        for features in sets:
            union |= features
        assert corpus.covered == union
        covered_by_entries = set()
        for admitted in corpus.entries():
            covered_by_entries |= admitted.features
        assert covered_by_entries == union

    @common_settings
    @given(sets=st.lists(features_strategy, max_size=20))
    def test_every_admission_contributed_a_new_feature(self, sets):
        corpus = Corpus()
        seen = set()
        for index, features in enumerate(sets):
            fresh = corpus.consider(entry(index, features))
            assert fresh == features - seen or fresh == frozenset()
            if fresh:
                assert not fresh & seen
            seen |= corpus.covered
        assert corpus.admitted_count == len(corpus)


class TestDistillation:
    def test_distilled_is_a_subset_covering_the_union(self):
        corpus = build_corpus([{"a"}, {"b"}, {"a", "b", "c"}])
        distilled = corpus.distill()
        assert set(e.fingerprint for e in distilled) <= \
            set(e.fingerprint for e in corpus.entries())
        covered = set()
        for kept in distilled:
            covered |= kept.features
        assert covered == {"a", "b", "c"}

    def test_greedy_prefers_the_largest_contributor(self):
        corpus = build_corpus([{"a"}, {"b"}, {"c"}, {"a", "b", "c", "d"}])
        distilled = corpus.distill()
        assert distilled[0].features == {"a", "b", "c", "d"}
        assert len(distilled) == 1

    def test_ties_break_by_admission_order(self):
        corpus = build_corpus([{"a", "b"}, {"c", "d"}])
        distilled = corpus.distill()
        assert [e.seed for e in distilled] == [0, 1]

    def test_compact_respects_max_size_and_is_monotone(self):
        corpus = build_corpus(
            [{f"f{i}"} for i in range(5)], max_size=3)
        assert len(corpus) == 3
        assert corpus.distilled_count > 0
        # Monotone coverage: dropped witnesses stay covered, so their
        # features can never be re-admitted.
        assert corpus.features_covered() == 5
        assert corpus.consider(entry(99, {"f0"})) == frozenset()

    @common_settings
    @given(sets=st.lists(features_strategy, max_size=24),
           max_size=st.integers(1, 8))
    def test_distill_properties(self, sets, max_size):
        """distilled ⊆ admitted; cover preserved when it fits."""
        corpus = build_corpus(sets, max_size=max_size)
        assert len(corpus) <= max_size
        live = {e.fingerprint for e in corpus.entries()}
        distilled = corpus.distill()
        assert {e.fingerprint for e in distilled} <= live
        assert len({e.fingerprint for e in distilled}) == len(distilled)
        union = set()
        for features in sets:
            union |= features
        assert corpus.covered == union  # coverage is monotone

    @common_settings
    @given(sets=st.lists(features_strategy, max_size=24))
    def test_distillation_is_deterministic(self, sets):
        first = [e.fingerprint for e in build_corpus(sets).distill()]
        second = [e.fingerprint for e in build_corpus(sets).distill()]
        assert first == second


class TestJournal:
    def path(self, tmp_path):
        return str(tmp_path / "run.corpus.jsonl")

    def test_roundtrip(self, tmp_path):
        path = self.path(tmp_path)
        with CorpusJournal(path) as journal:
            corpus = build_corpus([{"a"}, {"b"}, {"a", "c"}],
                                  journal=journal)
        loaded = Corpus.load(path)
        assert [e.fingerprint for e in loaded.entries()] == \
            [e.fingerprint for e in corpus.entries()]
        assert loaded.covered == corpus.covered
        reloaded_entry = loaded.entries()[0]
        assert reloaded_entry.text == "module 0"
        assert reloaded_entry.seed == 0

    def test_fresh_journal_truncates(self, tmp_path):
        path = self.path(tmp_path)
        with CorpusJournal(path) as journal:
            build_corpus([{"a"}], journal=journal)
        with CorpusJournal(path) as journal:
            journal.start()
        assert len(Corpus.load(path)) == 0

    def test_damaged_tail_is_dropped(self, tmp_path):
        path = self.path(tmp_path)
        with CorpusJournal(path) as journal:
            build_corpus([{"a"}, {"b"}], journal=journal)
        with open(path, "a") as stream:
            stream.write('{"kind": "entry", "trunca')
        loaded = Corpus.load(path)
        assert loaded.covered == {"a", "b"}

    def test_newline_less_tail_is_dropped(self, tmp_path):
        path = self.path(tmp_path)
        with CorpusJournal(path) as journal:
            build_corpus([{"a"}], journal=journal)
        with open(path, "a") as stream:
            stream.write(json.dumps(entry(9, {"z"}).to_dict()))  # no \n
        assert Corpus.load(path).covered == {"a"}

    def test_damage_in_the_middle_is_loud(self, tmp_path):
        path = self.path(tmp_path)
        with CorpusJournal(path) as journal:
            build_corpus([{"a"}, {"b"}], journal=journal)
        with open(path) as stream:
            lines = stream.readlines()
        lines[1] = lines[1][:10] + "\n"
        with open(path, "w") as stream:
            stream.writelines(lines)
        with pytest.raises(ValueError):
            Corpus.load(path)

    def test_entry_dict_roundtrip(self):
        original = CorpusEntry(text="m", fingerprint=module_fingerprint("m"),
                               features=frozenset({"x", "y"}), seed=7,
                               source="abc123", operator="swap-operands")
        back = CorpusEntry.from_dict(json.loads(
            json.dumps(original.to_dict())))
        assert back == original


class TestSeedsMoveShim:
    def test_legacy_import_warns_and_resolves(self):
        import repro.fuzz.corpus as corpus_module
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            generate_corpus = corpus_module.generate_corpus
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
        from repro.fuzz.seeds import generate_corpus as canonical
        assert generate_corpus is canonical

    def test_unknown_attribute_still_raises(self):
        import repro.fuzz.corpus as corpus_module
        with pytest.raises(AttributeError):
            corpus_module.no_such_name


# ---------------------------------------------------------------------------
# Bitcode journal records.
# ---------------------------------------------------------------------------

from repro.ir.parser import parse_module
from repro.ir.printer import print_module


def ir_entry(index, features):
    # Corpus text is always printed-module text in real campaigns, so
    # these entries round-trip through bitcode records exactly.
    text = print_module(parse_module(
        f"define i32 @f{index}(i32 %x) {{\n"
        f"  %r = add i32 %x, {index + 1}\n"
        f"  ret i32 %r\n}}\n"))
    return CorpusEntry(text=text, fingerprint=module_fingerprint(text),
                       features=frozenset(features), seed=index)


class TestBitcodeJournal:
    def path(self, tmp_path):
        return str(tmp_path / "run.corpus.jsonl")

    def test_bitcode_records_round_trip(self, tmp_path):
        path = self.path(tmp_path)
        with CorpusJournal(path, payload_format="bitcode") as journal:
            corpus = Corpus(max_size=8, journal=journal)
            for index, features in enumerate([{"a"}, {"b"}]):
                corpus.consider(ir_entry(index, features))
        with open(path) as stream:
            records = [json.loads(line) for line in stream]
        assert records[0]["format"] == "bitcode"  # header advertises it
        body = [r for r in records if r.get("kind") == "entry"]
        assert all(r.get("format") == "bitcode" and "text" not in r
                   for r in body)
        loaded = Corpus.load(path)
        assert [e.text for e in loaded.entries()] == \
            [e.text for e in corpus.entries()]
        assert [e.fingerprint for e in loaded.entries()] == \
            [e.fingerprint for e in corpus.entries()]

    def test_unencodable_text_falls_back_to_text_record(self, tmp_path):
        path = self.path(tmp_path)
        with CorpusJournal(path, payload_format="bitcode") as journal:
            corpus = Corpus(max_size=8, journal=journal)
            corpus.consider(entry(0, {"a"}))  # "module 0" is not IR
        loaded = Corpus.load(path)
        assert loaded.entries()[0].text == "module 0"

    def test_mixed_format_journal_loads(self, tmp_path):
        path = self.path(tmp_path)
        first, second = ir_entry(0, {"a"}), ir_entry(1, {"b"})
        with open(path, "w") as stream:
            stream.write(json.dumps(first.to_dict("text")) + "\n")
            stream.write(json.dumps(second.to_dict("bitcode")) + "\n")
        loaded = Corpus.load(path)
        assert [e.text for e in loaded.entries()] == \
            [first.text, second.text]

    def test_torn_bitcode_tail_is_dropped(self, tmp_path):
        path = self.path(tmp_path)
        with CorpusJournal(path, payload_format="bitcode") as journal:
            corpus = Corpus(max_size=8, journal=journal)
            corpus.consider(ir_entry(0, {"a"}))
        record = ir_entry(1, {"b"}).to_dict("bitcode")
        record["data"] = record["data"][:8]  # truncated base64 payload
        with open(path, "a") as stream:
            stream.write(json.dumps(record) + "\n")
        loaded = Corpus.load(path)
        assert loaded.covered == {"a"}

    def test_torn_bitcode_mid_journal_is_loud(self, tmp_path):
        path = self.path(tmp_path)
        record = ir_entry(0, {"a"}).to_dict("bitcode")
        record["data"] = record["data"][:8]
        with open(path, "w") as stream:
            stream.write(json.dumps(record) + "\n")
            stream.write(json.dumps(
                ir_entry(1, {"b"}).to_dict("bitcode")) + "\n")
        with pytest.raises(ValueError):
            Corpus.load(path)

    def test_journal_rejects_unknown_format(self, tmp_path):
        with pytest.raises(ValueError):
            CorpusJournal(self.path(tmp_path), payload_format="morse")
