"""Differential tests for compiled execution plans (repro.tv.compile).

The compiled interpreter must be observationally identical to the
tree-walking one: same Outcomes (including UB detail strings), same
exhaustiveness flags, same verdicts and counterexamples, same findings
and deterministic metrics.  Every test here runs both modes and diffs.
"""

import pytest

from repro.fuzz import FuzzConfig, FuzzDriver, corpus_modules
from repro.mutate import MutatorConfig
from repro.tv import (ExecutionLimits, Interpreter, PlanCache,
                      RefinementConfig, behavior_set, check_refinement,
                      compile_function, generate_inputs,
                      reset_global_plan_cache)
from repro.tv.compile import plan_key
from repro.tv.refine import _inputs_for

from helpers import optimize, parsed


def both_behaviors(text, fn="f", max_inputs=24, seed=0):
    """(compiled, tree-walk) behavior sets for every generated input."""
    module = parsed(text)
    function = module.get_function(fn)
    results = []
    for compiled in (True, False):
        config = RefinementConfig(max_inputs=max_inputs, seed=seed,
                                  compiled=compiled)
        per_input = []
        for test_input in generate_inputs(function, config):
            outcomes, exhausted = behavior_set(function, test_input,
                                               module, config)
            per_input.append((tuple(outcomes), exhausted))
        results.append(per_input)
    return results


def assert_identical_behaviors(text, fn="f", max_inputs=24, seed=0):
    compiled, walked = both_behaviors(text, fn, max_inputs, seed)
    assert compiled, "workload generated no inputs"
    assert compiled == walked


class TestDifferentialBehavior:
    """behavior_set parity on targeted semantic edge cases."""

    def test_arithmetic_and_poison_flags(self):
        assert_identical_behaviors("""
define i8 @f(i8 %x, i8 %y) {
  %a = add nsw i8 %x, %y
  %b = sub nuw i8 %a, 1
  %c = mul i8 %b, %y
  %d = xor i8 %c, 85
  ret i8 %d
}
""")

    def test_division_ub_ordering(self):
        # Divisor poison / zero must raise UB before the general poison
        # short-circuit; the detail string is part of the Outcome.
        assert_identical_behaviors("""
define i8 @f(i8 %x, i8 %y) {
  %p = add nsw i8 %x, 127
  %q = sdiv i8 %y, %p
  ret i8 %q
}
""")

    def test_shift_amount_poison(self):
        assert_identical_behaviors("""
define i8 @f(i8 %x, i8 %s) {
  %a = shl i8 %x, %s
  %b = lshr exact i8 %a, 1
  ret i8 %b
}
""")

    def test_freeze_of_poison_and_undef(self):
        assert_identical_behaviors("""
define i8 @f(i8 %x) {
  %p = add nuw i8 %x, 255
  %a = freeze i8 %p
  %u = freeze i8 undef
  %r = add i8 %a, %u
  ret i8 %r
}
""")

    def test_undef_multi_use_is_independent_choices(self):
        # Each textual use of undef is an independent oracle choice; the
        # compiled operand resolvers must preserve the choice order.
        assert_identical_behaviors("""
define i8 @f() {
  %a = add i8 undef, 0
  %b = add i8 undef, 0
  %r = sub i8 %a, %b
  ret i8 %r
}
""", max_inputs=4)

    def test_select_evaluates_only_taken_arm(self):
        assert_identical_behaviors("""
define i8 @f(i1 %c, i8 %x) {
  %d = udiv i8 1, %x
  %r = select i1 %c, i8 %d, i8 7
  ret i8 %r
}
""")

    def test_icmp_and_casts(self):
        assert_identical_behaviors("""
define i16 @f(i8 %x, i16 %y) {
  %c = icmp slt i8 %x, 3
  %w = sext i8 %x to i16
  %z = zext i8 %x to i16
  %t = trunc i16 %y to i8
  %u = zext i8 %t to i16
  %r = select i1 %c, i16 %w, i16 %z
  %s = add i16 %r, %u
  ret i16 %s
}
""")

    def test_phi_loop(self):
        assert_identical_behaviors("""
define i8 @f(i8 %n) {
entry:
  br label %loop
loop:
  %i = phi i8 [ 0, %entry ], [ %next, %loop ]
  %acc = phi i8 [ 0, %entry ], [ %acc2, %loop ]
  %acc2 = add i8 %acc, %i
  %next = add i8 %i, 1
  %done = icmp uge i8 %next, %n
  br i1 %done, label %exit, label %loop
exit:
  ret i8 %acc2
}
""")

    def test_parallel_phi_copies(self):
        # %a and %b swap through the back edge: the edge's phi schedule
        # must be a parallel copy, not a sequential one.
        assert_identical_behaviors("""
define i32 @f(i32 %n) {
entry:
  br label %loop
loop:
  %a = phi i32 [ 1, %entry ], [ %b, %loop ]
  %b = phi i32 [ 2, %entry ], [ %a, %loop ]
  %count = phi i32 [ 0, %entry ], [ %inc, %loop ]
  %inc = add i32 %count, 1
  %done = icmp uge i32 %inc, %n
  br i1 %done, label %exit, label %loop
exit:
  ret i32 %a
}
""")

    def test_switch(self):
        assert_identical_behaviors("""
define i8 @f(i8 %x) {
entry:
  switch i8 %x, label %d [ i8 0, label %a i8 9, label %b ]
a:
  ret i8 10
b:
  ret i8 20
d:
  ret i8 30
}
""")

    def test_memory_round_trip(self):
        assert_identical_behaviors("""
define i32 @f(i32 %x) {
  %slot = alloca i32
  store i32 %x, ptr %slot
  %r = load i32, ptr %slot
  ret i32 %r
}
""")

    def test_load_of_undef_bytes(self):
        # A fresh alloca holds undef bytes; each byte loaded is an
        # oracle choice over the truncated undef-byte domain.
        assert_identical_behaviors("""
define i8 @f() {
  %slot = alloca i8
  %r = load i8, ptr %slot
  ret i8 %r
}
""", max_inputs=4)

    def test_gep_chain_and_inbounds_overflow(self):
        assert_identical_behaviors("""
define i8 @f(i8 %x) {
  %slot = alloca i16
  %p2 = getelementptr i8, ptr %slot, i64 1
  %p1 = getelementptr i8, ptr %p2, i64 -1
  store i8 %x, ptr %p1
  %far = getelementptr inbounds i8, ptr %slot, i64 100
  %r = load i8, ptr %p1
  ret i8 %r
}
""")

    def test_pointer_arguments(self):
        assert_identical_behaviors("""
define i8 @f(ptr %p) {
  %r = load i8, ptr %p
  ret i8 %r
}
""")

    def test_internal_and_external_calls(self):
        assert_identical_behaviors("""
declare i8 @opaque(i8)

define i8 @double(i8 %x) {
  %r = add i8 %x, %x
  ret i8 %r
}

define i8 @f(i8 %x) {
  %a = call i8 @double(i8 %x)
  %b = call i8 @opaque(i8 %a)
  ret i8 %b
}
""", max_inputs=8)

    def test_intrinsics(self):
        assert_identical_behaviors("""
define i8 @f(i8 %x, i8 %y) {
  %a = call i8 @llvm.abs.i8(i8 %x, i1 false)
  %b = call i8 @llvm.ctlz.i8(i8 %y, i1 false)
  %c = call i8 @llvm.fshl.i8(i8 %a, i8 %b, i8 4)
  %r = call i8 @llvm.umax.i8(i8 %c, i8 %y)
  ret i8 %r
}
""")

    def test_assume(self):
        assert_identical_behaviors("""
declare void @llvm.assume(i1)

define i8 @f(i8 %x) {
  %c = icmp ult i8 %x, 16
  call void @llvm.assume(i1 %c)
  %r = add i8 %x, 1
  ret i8 %r
}
""")

    def test_step_limit_classification(self):
        # An infinite loop must time out at the same step count in both
        # modes (phis are not counted as steps).
        text = """
define i8 @f(i8 %x) {
entry:
  br label %loop
loop:
  %i = phi i8 [ 0, %entry ], [ %next, %loop ]
  %next = add i8 %i, 1
  br label %loop
}
"""
        module = parsed(text)
        function = module.get_function("f")
        limits = ExecutionLimits(max_steps=100)
        results = []
        for compiled in (True, False):
            config = RefinementConfig(max_inputs=4, limits=limits,
                                      compiled=compiled)
            test_input = generate_inputs(function, config)[0]
            outcomes, exhausted = behavior_set(function, test_input,
                                               module, config)
            interp = Interpreter(module, None, limits, compiled=compiled)
            interp.reset()
            with pytest.raises(Exception):
                interp.run(function, [0])
            results.append((tuple(outcomes), exhausted, interp._steps))
        assert results[0] == results[1]
        assert results[0][0][0].is_timeout()

    def test_recursion_depth_limit(self):
        assert_identical_behaviors("""
define i8 @f(i8 %x) {
  %r = call i8 @f(i8 %x)
  ret i8 %r
}
""", max_inputs=4)

    def test_unreachable_is_ub(self):
        assert_identical_behaviors("""
define i8 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  ret i8 1
b:
  unreachable
}
""", max_inputs=4)


class TestVerdictParity:
    """check_refinement parity, including over optimized corpus pairs."""

    def _check_both(self, src, tgt, fn):
        results = []
        for compiled in (True, False):
            config = RefinementConfig(max_inputs=24, compiled=compiled)
            results.append(check_refinement(
                src.get_function(fn), tgt.get_function(fn),
                src, tgt, config))
        return results

    def test_miscompilation_counterexample_identical(self):
        module = parsed("""
define i32 @clamp(i32 %x) {
  %c = icmp ult i32 %x, 100
  %r = select i1 %c, i32 %x, i32 100
  ret i32 %r
}
""")
        optimized, _ = optimize(module, "O2", bugs=("53252",))
        with_plans, walked = self._check_both(module, optimized, "clamp")
        assert with_plans.verdict == walked.verdict
        assert with_plans.counterexample == walked.counterexample
        assert with_plans.inputs_checked == walked.inputs_checked
        assert with_plans.inconclusive_inputs == walked.inconclusive_inputs

    def test_corpus_sweep_identical_verdicts(self):
        # The acceptance criterion in miniature: every corpus member's
        # O2 verdict (clean and with a seeded bug) matches across modes.
        checked = 0
        for _, module in corpus_modules(6, seed=7):
            for bugs in ((), ("53252",)):
                optimized, _ = optimize(module, "O2", bugs=bugs)
                for function in module.definitions():
                    if optimized.get_function(function.name) is None:
                        continue
                    with_plans, walked = self._check_both(
                        module, optimized, function.name)
                    assert with_plans.verdict == walked.verdict, \
                        function.name
                    assert with_plans.counterexample == \
                        walked.counterexample, function.name
                    checked += 1
        assert checked >= 6


class TestPlanCache:
    def test_hit_after_miss(self):
        module = parsed("""
define i8 @f(i8 %x) {
  %r = add i8 %x, 1
  ret i8 %r
}
""")
        cache = PlanCache()
        function = module.get_function("f")
        first = cache.plan_for(function)
        second = cache.plan_for(function)
        assert first is second is not None
        assert cache.stats() == (1, 1, 0)
        assert len(cache) == 1

    def test_alpha_renamed_twins_get_distinct_plans(self):
        # Fingerprints normalize names away, but UB detail strings
        # ("use of unevaluated value %x") embed them — the plan key must
        # keep renamed twins apart.
        a = parsed("""
define i8 @f(i8 %x) {
  %r = udiv i8 1, %x
  ret i8 %r
}
""").get_function("f")
        b = parsed("""
define i8 @f(i8 %y) {
  %q = udiv i8 1, %y
  ret i8 %q
}
""").get_function("f")
        assert plan_key(a) != plan_key(b)
        cache = PlanCache()
        cache.plan_for(a)
        cache.plan_for(b)
        assert cache.stats() == (0, 2, 0)

    def test_declaration_attributes_distinguish_plans(self):
        # _call_external consults readnone/readonly on declarations,
        # which fingerprints ignore; the plan key must not.
        template = """
declare i8 @opaque(i8) {attrs}

define i8 @f(i8 %x) {{
  %r = call i8 @opaque(i8 %x)
  ret i8 %r
}}
"""
        plain = parsed(template.format(attrs="")).get_function("f")
        pure = parsed(template.format(attrs="readnone")).get_function("f")
        assert plan_key(plain) != plan_key(pure)

    def test_declarations_fall_back(self):
        module = parsed("""
declare i8 @opaque(i8)

define i8 @f(i8 %x) {
  %r = call i8 @opaque(i8 %x)
  ret i8 %r
}
""")
        declaration = module.get_function("opaque")
        with pytest.raises(ValueError):
            compile_function(declaration)

    def test_lru_eviction_recompiles(self):
        functions = []
        for index in range(3):
            functions.append(parsed(f"""
define i8 @f(i8 %x) {{
  %r = add i8 %x, {index}
  ret i8 %r
}}
""").get_function("f"))
        cache = PlanCache(capacity=2)
        for function in functions:
            cache.plan_for(function)
        # functions[0] was evicted: looking it up again is a miss.
        cache.plan_for(functions[0])
        hits, misses, fallbacks = cache.stats()
        assert (hits, misses, fallbacks) == (0, 4, 0)

    def test_global_cache_reset(self):
        cache = reset_global_plan_cache()
        assert cache.stats() == (0, 0, 0)
        assert len(cache) == 0


class TestInterpreterArena:
    def test_reset_clears_memory_and_counters(self):
        module = parsed("""
define i32 @f(i32 %x) {
  %slot = alloca i32
  store i32 %x, ptr %slot
  %r = load i32, ptr %slot
  ret i32 %r
}
""")
        interp = Interpreter(module)
        function = module.get_function("f")
        assert interp.run(function, [7]) == 7
        steps = interp._steps
        assert steps > 0
        interp.reset()
        assert interp._steps == 0
        assert interp.run(function, [9]) == 9
        assert interp._steps == steps

    def test_prepare_memoizes_per_function_identity(self):
        module = parsed("""
define i8 @f(i8 %x) {
  %r = add i8 %x, 1
  ret i8 %r
}
""")
        interp = Interpreter(module)
        function = module.get_function("f")
        plan = interp.prepare(function)
        assert plan is not None
        assert interp.prepare(function) is plan

    def test_tree_walk_interpreter_prepares_nothing(self):
        module = parsed("""
define i8 @f(i8 %x) {
  %r = add i8 %x, 1
  ret i8 %r
}
""")
        interp = Interpreter(module, compiled=False)
        assert interp.prepare(module.get_function("f")) is None


class TestInputCache:
    def test_same_fingerprint_reuses_inputs(self):
        config = RefinementConfig(max_inputs=12)
        a = parsed("""
define i8 @f(i8 %x) {
  %r = add i8 %x, 1
  ret i8 %r
}
""").get_function("f")
        b = parsed("""
define i8 @f(i8 %x) {
  %r = add i8 %x, 1
  ret i8 %r
}
""").get_function("f")
        assert _inputs_for(a, config) is _inputs_for(b, config)

    def test_config_key_separates_entries(self):
        function = parsed("""
define i8 @f(i8 %x) {
  %r = add i8 %x, 1
  ret i8 %r
}
""").get_function("f")
        few = _inputs_for(function, RefinementConfig(max_inputs=4))
        many = _inputs_for(function, RefinementConfig(max_inputs=12))
        assert len(few) < len(many)

    def test_compiled_flag_shares_the_entry(self):
        # `compiled` is deliberately not part of cache_key(): both modes
        # must generate identical inputs.
        function = parsed("""
define i8 @f(i8 %x) {
  %r = add i8 %x, 1
  ret i8 %r
}
""").get_function("f")
        on = _inputs_for(function, RefinementConfig(compiled=True))
        off = _inputs_for(function, RefinementConfig(compiled=False))
        assert on is off


MIXED = """
define i32 @clamp(i32 %x, i32 %y) {
  %c = icmp ult i32 %x, 100
  %r = select i1 %c, i32 %x, i32 100
  %s = add i32 %r, %y
  ret i32 %s
}

define i32 @shifty(i32 %x) {
  %s = shl i32 %x, 3
  %t = lshr i32 %s, 3
  ret i32 %t
}
"""


def run_driver(compiled, iterations=30, **kwargs):
    config = FuzzConfig(
        mutator=MutatorConfig(max_mutations=2),
        tv=RefinementConfig(max_inputs=12, compiled=compiled),
        **kwargs,
    )
    driver = FuzzDriver(parsed(MIXED), config, file_name="t.ll")
    report = driver.run(iterations=iterations)
    return driver, report


def finding_keys(report):
    return [(f.seed, f.kind, f.function, tuple(f.bug_ids))
            for f in report.findings]


class TestDriverParity:
    """Compiled on == compiled off: the acceptance determinism bar."""

    def test_findings_identical(self):
        _, with_plans = run_driver(True, enabled_bugs=("53252",))
        _, walked = run_driver(False, enabled_bugs=("53252",))
        assert with_plans.findings  # the workload must actually find bugs
        assert finding_keys(with_plans) == finding_keys(walked)

    def test_deterministic_metrics_identical(self):
        on_driver, _ = run_driver(True, enabled_bugs=("53252",))
        off_driver, _ = run_driver(False, enabled_bugs=("53252",))
        assert on_driver.metrics.deterministic() == \
            off_driver.metrics.deterministic()

    def test_plan_cache_metrics_flow(self):
        reset_global_plan_cache()
        driver, _ = run_driver(True)
        assert driver.metrics.counter("exec.plan_cache.miss") > 0
        assert driver.metrics.counter("exec.plan_cache.hit") > 0

    def test_tree_walk_driver_reports_no_plan_metrics(self):
        driver, _ = run_driver(False)
        assert driver.metrics.counter("exec.plan_cache.miss") == 0
        assert driver.metrics.counter("exec.plan_cache.hit") == 0
