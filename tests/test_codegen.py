"""Tests for the codegen-lowering pass (the backend substitute)."""

import pytest

from repro.ir import (BinaryOperator, CallInst, SelectInst, parse_module,
                      verify_module)
from repro.tv import Verdict

from helpers import assert_sound, optimize, parsed


def lowered(text: str):
    module = parsed(text)
    optimized, ctx = optimize(module, "backend")
    assert_sound(module, "backend")
    return optimized.definitions()[0], ctx


class TestIntrinsicExpansion:
    def test_abs_expands(self):
        fn, _ = lowered("""
declare i8 @llvm.abs.i8(i8, i1)

define i8 @f(i8 %x) {
  %r = call i8 @llvm.abs.i8(i8 %x, i1 false)
  ret i8 %r
}
""")
        opcodes = [i.opcode for i in fn.instructions()]
        assert "call" not in opcodes
        assert "ashr" in opcodes and "xor" in opcodes and "sub" in opcodes

    def test_abs_int_min_poison_keeps_nsw(self):
        fn, _ = lowered("""
declare i8 @llvm.abs.i8(i8, i1)

define i8 @f(i8 %x) {
  %r = call i8 @llvm.abs.i8(i8 %x, i1 true)
  ret i8 %r
}
""")
        subs = [i for i in fn.instructions()
                if isinstance(i, BinaryOperator) and i.opcode == "sub"]
        assert subs and subs[0].nsw

    def test_usub_sat_expands(self):
        fn, _ = lowered("""
declare i8 @llvm.usub.sat.i8(i8, i8)

define i8 @f(i8 %x, i8 %y) {
  %r = call i8 @llvm.usub.sat.i8(i8 %x, i8 %y)
  ret i8 %r
}
""")
        assert any(isinstance(i, SelectInst) for i in fn.instructions())

    def test_uadd_sat_expands(self):
        fn, _ = lowered("""
declare i8 @llvm.uadd.sat.i8(i8, i8)

define i8 @f(i8 %x, i8 %y) {
  %r = call i8 @llvm.uadd.sat.i8(i8 %x, i8 %y)
  ret i8 %r
}
""")
        assert any(isinstance(i, SelectInst) for i in fn.instructions())

    def test_abs_expansion_cse(self):
        fn, ctx = lowered("""
declare i8 @llvm.abs.i8(i8, i1)

define i8 @f(i8 %x) {
  %a = call i8 @llvm.abs.i8(i8 %x, i1 false)
  %b = call i8 @llvm.abs.i8(i8 %x, i1 false)
  %r = add i8 %a, %b
  ret i8 %r
}
""")
        subs = [i for i in fn.instructions() if i.opcode == "sub"]
        assert len(subs) == 1  # second expansion reused the first


class TestBooleanLowering:
    def test_zext_i1_to_select(self):
        fn, _ = lowered("""
define i8 @f(i1 %b) {
  %r = zext i1 %b to i8
  ret i8 %r
}
""")
        selects = [i for i in fn.instructions() if isinstance(i, SelectInst)]
        assert selects
        assert selects[0].true_value.value == 1
        assert selects[0].false_value.value == 0

    def test_zero_width_extract_folds_to_zero(self):
        fn, _ = lowered("""
define i64 @f(i1 %b) {
  %1 = zext i1 %b to i64
  %2 = lshr i64 %1, 1
  ret i64 %2
}
""")
        ret_value = fn.blocks[0].terminator().return_value
        assert ret_value.value == 0


class TestIdiomMatching:
    def test_rotate_matched_to_fshl(self):
        fn, _ = lowered("""
define i32 @f(i32 %x) {
  %hi = shl i32 %x, 5
  %lo = lshr i32 %x, 27
  %r = or i32 %hi, %lo
  ret i32 %r
}
""")
        calls = [i for i in fn.instructions() if isinstance(i, CallInst)]
        assert calls and calls[0].intrinsic_name() == "llvm.fshl"

    def test_bswap_hword_matched(self):
        fn, _ = lowered("""
define i16 @f(i16 %x) {
  %hi = shl i16 %x, 8
  %lo = lshr i16 %x, 8
  %r = or i16 %hi, %lo
  ret i16 %r
}
""")
        calls = [i for i in fn.instructions() if isinstance(i, CallInst)]
        assert calls and calls[0].intrinsic_name() == "llvm.bswap"

    def test_non_byte_rotate_not_bswap(self):
        fn, _ = lowered("""
define i16 @f(i16 %x) {
  %hi = shl i16 %x, 4
  %lo = lshr i16 %x, 12
  %r = or i16 %hi, %lo
  ret i16 %r
}
""")
        calls = [i for i in fn.instructions() if isinstance(i, CallInst)]
        assert calls and calls[0].intrinsic_name() == "llvm.fshl"

    def test_shl_shl_overflow_to_zero(self):
        fn, _ = lowered("""
define i8 @f(i8 %x) {
  %a = shl i8 %x, 5
  %b = shl i8 %a, 5
  %r = or i8 %b, 1
  ret i8 %r
}
""")
        ors = [i for i in fn.instructions() if i.opcode == "or"]
        assert ors and ors[0].lhs.value == 0

    def test_urem_pow2_to_mask(self):
        fn, _ = lowered("""
define i8 @f(i8 %x) {
  %r = urem i8 %x, 32
  ret i8 %r
}
""")
        ands = [i for i in fn.instructions() if i.opcode == "and"]
        assert ands and ands[0].rhs.value == 31

    def test_bitfield_extract_mask_dropped_at_boundary(self):
        fn, _ = lowered("""
define i8 @f(i8 %x) {
  %s = lshr i8 %x, 4
  %r = and i8 %s, 15
  ret i8 %r
}
""")
        # shift 4 + 4 mask bits == width: the mask is redundant.
        assert not any(i.opcode == "and" for i in fn.instructions())


class TestWidthPromotion:
    @pytest.mark.parametrize("op", ["add", "mul", "urem", "sdiv", "srem"])
    def test_odd_width_promotes_soundly(self, op):
        module = parsed(f"""
define i26 @f(i26 %x, i26 %y) {{
  %r = {op} i26 %x, %y
  ret i26 %r
}}
""")
        optimized, _ = optimize(module, "backend")
        fn = optimized.get_function("f")
        widths = {i.type.width for i in fn.instructions()
                  if i.type.is_integer()}
        assert 32 in widths
        assert_sound(module, "backend")

    def test_legal_width_left_alone(self):
        module = parsed("""
define i32 @f(i32 %x, i32 %y) {
  %r = add i32 %x, %y
  ret i32 %r
}
""")
        optimized, ctx = optimize(module, "backend")
        assert optimized.get_function("f").num_instructions() == 2

    def test_signed_constants_sign_extend(self):
        module = parsed("""
define i7 @f(i7 %x) {
  %r = sdiv i7 %x, -3
  ret i7 %r
}
""")
        optimized, _ = optimize(module, "backend")
        fn = optimized.get_function("f")
        divs = [i for i in fn.instructions() if i.opcode == "sdiv"]
        assert divs and divs[0].rhs.signed_value() == -3
        assert_sound(module, "backend")


class TestFullBackendPipelineSoundness:
    @pytest.mark.parametrize("index", range(12))
    def test_corpus_files_sound_through_backend(self, index):
        from repro.fuzz.seeds import generate_corpus
        from repro.tv import RefinementConfig, check_module_refinement

        name, text = generate_corpus(12, seed=77)[index]
        module = parse_module(text, name)
        optimized, _ = optimize(module, "O2+backend")
        verify_module(optimized)
        results = check_module_refinement(
            module, optimized, RefinementConfig(max_inputs=24))
        for fn_name, result in results.items():
            assert result.verdict != Verdict.UNSOUND, \
                f"{name} @{fn_name}: {result.counterexample}"
