"""Tests for the Table-I campaign harness."""

import pytest

from repro.fuzz import CampaignConfig, run_campaign


class TestCampaign:
    @pytest.fixture(scope="class")
    def small_report(self):
        return run_campaign(CampaignConfig(
            corpus_size=12, mutants_per_file=20, max_inputs=10))

    def test_tracks_all_33_bugs(self, small_report):
        assert len(small_report.outcomes) == 33

    def test_finds_some_bugs_even_when_small(self, small_report):
        assert len(small_report.found_bugs()) >= 3

    def test_found_outcomes_have_repro_info(self, small_report):
        for outcome in small_report.found_bugs():
            assert outcome.first_seed >= 0
            assert outcome.first_file
            assert outcome.findings >= 1

    def test_table_renders(self, small_report):
        table = small_report.table()
        assert "Issue ID" in table
        assert "53252" in table
        assert "paper: 33 = 19 + 14" in table

    def test_found_by_kind_consistent(self, small_report):
        miscompilations, crashes = small_report.found_by_kind()
        assert miscompilations + crashes == len(small_report.found_bugs())

    def test_restricted_bug_set(self):
        report = run_campaign(CampaignConfig(
            corpus_size=4, mutants_per_file=10, max_inputs=8,
            enabled_bugs=["56968"], pipelines=("O2",)))
        assert set(report.outcomes) == {"56968"}

    def test_no_unattributed_findings_with_no_bugs(self):
        """With no seeded bugs, the optimizer must produce no findings at
        all — the strictest differential test of our own passes."""
        report = run_campaign(CampaignConfig(
            corpus_size=10, mutants_per_file=15, max_inputs=10,
            enabled_bugs=[]))
        assert report.total_findings == 0, [
            f.detail for f in report.unattributed]
