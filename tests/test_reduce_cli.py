"""End-to-end tests for the alive-reduce command-line tool."""


from repro.cli import reduce_tool
from repro.ir import is_valid_module, parse_module

CRASHING = """define i8 @f(i8 %x, i8 %y) {
  %noise = mul i8 %x, %y
  %crashy = shl i8 %y, 9
  %mix = and i8 %noise, %crashy
  ret i8 %mix
}
"""

MISCOMPILED = """define i32 @f(i32 %x, i32 %y) {
  %noise = add i32 %y, 3
  %c = icmp ult i32 %x, 100
  %r = select i1 %c, i32 %x, i32 100
  %mix = xor i32 %r, %noise
  %out = xor i32 %mix, %noise
  ret i32 %out
}
"""

CLEAN = """define i8 @f(i8 %x) {
  ret i8 %x
}
"""


class TestCrashMode:
    def test_reduces_crash_reproducer(self, tmp_path, capsys):
        source = tmp_path / "crash.ll"
        source.write_text(CRASHING)
        output = tmp_path / "reduced.ll"
        code = reduce_tool.main([
            str(source), "-o", str(output), "-p", "instsimplify",
            "--enable-bug", "56968", "--expect", "crash", "-q"])
        assert code == 0
        reduced = parse_module(output.read_text())
        assert is_valid_module(reduced)
        fn = reduced.get_function("f")
        assert fn.num_instructions() <= 3
        assert any(i.opcode == "shl" for i in fn.instructions())

    def test_rejects_non_reproducer(self, tmp_path):
        source = tmp_path / "clean.ll"
        source.write_text(CLEAN)
        code = reduce_tool.main([
            str(source), "-p", "instsimplify",
            "--enable-bug", "56968", "--expect", "crash", "-q"])
        assert code == 2


class TestMiscompilationMode:
    def test_reduces_miscompilation(self, tmp_path, capsys):
        source = tmp_path / "bad.ll"
        source.write_text(MISCOMPILED)
        output = tmp_path / "reduced.ll"
        code = reduce_tool.main([
            str(source), "-o", str(output), "-p", "instcombine",
            "--enable-bug", "53252", "--max-inputs", "16", "-q"])
        assert code == 0
        reduced = parse_module(output.read_text())
        fn = reduced.get_function("f")
        assert fn.num_instructions() < 6

    def test_stdout_output(self, tmp_path, capsys):
        source = tmp_path / "bad.ll"
        source.write_text(MISCOMPILED)
        code = reduce_tool.main([
            str(source), "-p", "instcombine",
            "--enable-bug", "53252", "--max-inputs", "16", "-q"])
        assert code == 0
        assert "define" in capsys.readouterr().out

    def test_bad_input_file(self):
        assert reduce_tool.main(["/nonexistent.ll"]) == 2


class TestOptStatsFlag:
    def test_stats_printed(self, tmp_path, capsys):
        from repro.cli import opt_tool

        source = tmp_path / "in.ll"
        source.write_text("""define i8 @f(i8 %x) {
  %dead = add i8 %x, 1
  ret i8 %x
}
""")
        assert opt_tool.main([str(source), "-p", "dce", "--stats"]) == 0
        err = capsys.readouterr().err
        assert "dce.removed" in err
