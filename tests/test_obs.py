"""Tests for repro.obs: metrics, span tracing, snapshots, summaries.

The aggregation contract under test: per-shard metric registries merge
associatively and commutatively, so the campaign aggregate — restricted
to its timing-free ``deterministic()`` subset — is identical across
worker counts and kill/resume cycles.
"""

import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz import CampaignConfig, FuzzConfig, FuzzDriver, run_campaign
from repro.ir.parser import parse_module
from repro.mutate import MutatorConfig
from repro.obs import (NULL_TRACER, Histogram, JsonlSnapshotSink,
                       ListTraceSink, MetricsRegistry, ProgressReporter,
                       ThroughputSnapshot, Tracer, campaign_summary,
                       load_summary, tracer_for_path, write_campaign_summary)
from repro.tv import RefinementConfig

IR = """define i32 @f(i32 %x) {
entry:
  %a = add i32 %x, 1
  %b = mul i32 %a, 2
  ret i32 %b
}
"""

SMALL = dict(corpus_size=4, mutants_per_file=8, max_inputs=8,
             pipelines=("O2",))


def small_config():
    return FuzzConfig(mutator=MutatorConfig(max_mutations=2),
                      tv=RefinementConfig(max_inputs=8))


# ---------------------------------------------------------------------------
# MetricsRegistry unit behavior.
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counters_add(self):
        metrics = MetricsRegistry()
        metrics.count("x")
        metrics.count("x", 2.5)
        assert metrics.counter("x") == pytest.approx(3.5)
        assert metrics.counter("missing") == 0.0
        assert metrics.counter("missing", default=7.0) == 7.0

    def test_gauges_keep_max(self):
        metrics = MetricsRegistry()
        metrics.gauge_max("hwm", 3.0)
        metrics.gauge_max("hwm", 1.0)
        metrics.gauge_max("hwm", 9.0)
        assert metrics.gauges["hwm"] == 9.0

    def test_histogram_buckets(self):
        histogram = Histogram(buckets=(0.1, 1.0))
        histogram.observe(0.05)   # bucket 0
        histogram.observe(0.5)    # bucket 1
        histogram.observe(100.0)  # overflow slot
        assert histogram.counts == [1, 1, 1]
        assert histogram.count == 3
        assert histogram.mean == pytest.approx((0.05 + 0.5 + 100.0) / 3)

    def test_counters_with_prefix(self):
        metrics = MetricsRegistry()
        metrics.count("mutate.op.shuffle")
        metrics.count("mutate.op.swap", 2)
        metrics.count("stage.mutate.seconds", 0.5)
        ops = metrics.counters_with_prefix("mutate.op.")
        assert ops == {"mutate.op.shuffle": 1.0, "mutate.op.swap": 2.0}

    def test_merge_semantics(self):
        left = MetricsRegistry()
        left.count("n", 2)
        left.gauge_max("g", 5.0)
        left.observe("h", 0.01)
        right = MetricsRegistry()
        right.count("n", 3)
        right.count("only_right")
        right.gauge_max("g", 3.0)
        right.observe("h", 2.0)
        left.merge(right)
        assert left.counter("n") == 5.0
        assert left.counter("only_right") == 1.0
        assert left.gauges["g"] == 5.0
        assert left.histograms["h"].count == 2
        # The donor registry is untouched.
        assert right.counter("n") == 3.0
        assert right.histograms["h"].count == 1

    def test_merge_rejects_mismatched_buckets(self):
        left = MetricsRegistry()
        left.observe("h", 0.1, buckets=(1.0,))
        right = MetricsRegistry()
        right.observe("h", 0.1, buckets=(2.0,))
        with pytest.raises(ValueError):
            left.merge(right)

    def test_pickle_roundtrip(self):
        metrics = MetricsRegistry()
        metrics.count("a", 4)
        metrics.gauge_max("g", 1.5)
        metrics.observe("h", 0.02)
        clone = pickle.loads(pickle.dumps(metrics))
        assert clone == metrics

    def test_dict_roundtrip(self):
        metrics = MetricsRegistry()
        metrics.count("a", 4)
        metrics.gauge_max("g", 1.5)
        metrics.observe("h", 0.02)
        back = MetricsRegistry.from_dict(
            json.loads(json.dumps(metrics.to_dict())))
        assert back == metrics

    def test_from_empty_dict(self):
        assert MetricsRegistry.from_dict({}) == MetricsRegistry()

    def test_deterministic_excludes_timings_and_gauges(self):
        metrics = MetricsRegistry()
        metrics.count("mutants.created", 10)
        metrics.count("stage.mutate.seconds", 1.25)
        metrics.count("campaign.retry.attempts", 2)
        metrics.gauge_max("rss.high_water", 123.0)
        metrics.observe("iteration.seconds", 0.01)
        metrics.observe("tv.inputs", 3.0)
        subset = metrics.deterministic()
        assert subset["counters"] == {"mutants.created": 10.0}
        assert list(subset["histograms"]) == ["tv.inputs"]
        assert "gauges" not in subset


# ---------------------------------------------------------------------------
# Property tests: merging is associative and commutative.
# ---------------------------------------------------------------------------

# Exactly-representable values keep float addition associative, so the
# properties hold exactly (real metrics are counts and bucket tallies;
# the timing counters are excluded from cross-run comparisons anyway).
NAMES = st.sampled_from(["a", "b", "c", "stage.x.seconds"])
AMOUNTS = st.integers(min_value=0, max_value=1000).map(float)


@st.composite
def registries(draw):
    metrics = MetricsRegistry()
    for name, amount in draw(st.lists(st.tuples(NAMES, AMOUNTS),
                                      max_size=6)):
        metrics.count(name, amount)
    for name, value in draw(st.lists(st.tuples(NAMES, AMOUNTS),
                                     max_size=4)):
        metrics.gauge_max(name, value)
    for name, value in draw(st.lists(st.tuples(NAMES, AMOUNTS),
                                     max_size=6)):
        metrics.observe(name, value)
    return metrics


@settings(max_examples=60, deadline=None)
@given(registries(), registries())
def test_merge_commutative(a, b):
    ab = MetricsRegistry.merged([a, b])
    ba = MetricsRegistry.merged([b, a])
    assert ab.to_dict() == ba.to_dict()


@settings(max_examples=60, deadline=None)
@given(registries(), registries(), registries())
def test_merge_associative(a, b, c):
    left = MetricsRegistry.merged([MetricsRegistry.merged([a, b]), c])
    right = MetricsRegistry.merged([a, MetricsRegistry.merged([b, c])])
    assert left.to_dict() == right.to_dict()


@settings(max_examples=60, deadline=None)
@given(registries())
def test_merge_identity(a):
    assert MetricsRegistry.merged([a, MetricsRegistry()]).to_dict() == \
        a.to_dict()


# ---------------------------------------------------------------------------
# Tracing.
# ---------------------------------------------------------------------------


class TestTracer:
    def test_null_tracer_is_disabled(self):
        assert not NULL_TRACER.enabled
        NULL_TRACER.record("x", 0.0, 1.0)  # must be a no-op

    def test_zero_rate_is_disabled(self):
        assert not Tracer(ListTraceSink(), sample_rate=0.0).enabled

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(ListTraceSink(), sample_rate=1.5)

    def test_records_relative_timestamps_and_meta(self):
        sink = ListTraceSink()
        tracer = Tracer(sink)
        tracer.record("mutate", tracer.epoch + 0.5, 0.25, seed=17)
        assert sink.records == [
            {"name": "mutate", "start": 0.5, "dur": 0.25, "seed": 17}]

    def test_span_context_manager(self):
        sink = ListTraceSink()
        tracer = Tracer(sink)
        with tracer.span("block", tag="x"):
            pass
        (record,) = sink.records
        assert record["name"] == "block"
        assert record["tag"] == "x"
        assert record["dur"] >= 0.0

    def test_sampling_is_deterministic(self):
        sink = ListTraceSink()
        tracer = Tracer(sink, sample_rate=0.25)
        for index in range(100):
            tracer.record("s", tracer.epoch, 0.0, i=index)
        assert len(sink.records) == 25
        # Error diffusion keeps exactly every fourth span.
        assert [r["i"] for r in sink.records[:3]] == [3, 7, 11]

    def test_jsonl_sink(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = tracer_for_path(path)
        tracer.record("verify", tracer.epoch, 0.125, seed=3)
        tracer.close()
        with open(path) as stream:
            lines = [json.loads(line) for line in stream]
        assert lines == [{"name": "verify", "start": 0.0, "dur": 0.125,
                          "seed": 3}]

    def test_tracer_for_none_is_null(self):
        assert tracer_for_path(None) is NULL_TRACER


# ---------------------------------------------------------------------------
# Snapshots and the progress reporter.
# ---------------------------------------------------------------------------


def loaded_metrics():
    metrics = MetricsRegistry()
    metrics.count("mutants.created", 100)
    metrics.count("mutants.valid", 90)
    metrics.count("stage.mutate.seconds", 1.0)
    metrics.count("stage.optimize.seconds", 3.0)
    metrics.count("stage.verify.seconds", 6.0)
    metrics.count("findings.miscompilation", 2)
    metrics.count("findings.crash", 1)
    return metrics


class TestSnapshots:
    def test_derivation(self):
        snapshot = ThroughputSnapshot.from_metrics(loaded_metrics(),
                                                   elapsed=20.0)
        assert snapshot.iterations == 100
        assert snapshot.mutants_per_sec == pytest.approx(5.0)
        assert snapshot.valid_mutant_rate == pytest.approx(0.9)
        assert snapshot.stage_share["verify"] == pytest.approx(0.6)
        assert snapshot.findings == 3

    def test_empty_metrics_are_all_zeros(self):
        """The empty-target-shard regression: a shard whose functions
        were all dropped records zero optimize calls, zero draws, zero
        everything — every derived rate must guard its denominator
        rather than divide by zero."""
        snapshot = ThroughputSnapshot.from_metrics(MetricsRegistry(), 0.0)
        assert snapshot.mutants_per_sec == 0.0
        assert snapshot.valid_mutant_rate == 0.0
        assert snapshot.optimize_hit_rate == 0.0
        assert snapshot.verify_hit_rate == 0.0
        assert snapshot.exec_plan_hit_rate == 0.0
        assert snapshot.new_feature_rate == 0.0
        assert snapshot.corpus_size == 0
        # ... and the progress line renders without blowing up.
        line = snapshot.progress_line()
        assert "0 mutants" in line
        assert "corpus" not in line  # only shown when feedback ran

    def test_feedback_derivation(self):
        metrics = loaded_metrics()
        metrics.count("feedback.draws", 40)
        metrics.count("feedback.features.new", 10)
        metrics.gauge_max("corpus.size", 5)
        metrics.gauge_max("feedback.features.covered", 17)
        snapshot = ThroughputSnapshot.from_metrics(metrics, 20.0)
        assert snapshot.new_feature_rate == pytest.approx(0.25)
        assert snapshot.corpus_size == 5
        assert snapshot.features_covered == 17
        assert "corpus 5 (17 feats)" in snapshot.progress_line()
        assert snapshot.to_dict()["new_feature_rate"] == \
            pytest.approx(0.25)

    def test_progress_line(self):
        line = ThroughputSnapshot.from_metrics(loaded_metrics(),
                                               20.0).progress_line()
        assert "100 mutants" in line
        assert "5.0/s" in line
        assert "90% valid" in line
        assert "3 findings" in line
        assert "retries" not in line  # only shown when nonzero

    def test_reporter_respects_interval(self):
        clock = iter([0.0,                 # construction
                      0.5, 1.0, 2.5, 2.5,  # three ticks (third emits)
                      3.0]).__next__
        emitted = []
        reporter = ProgressReporter(interval=2.0, sinks=[emitted.append],
                                    clock=clock)
        metrics = loaded_metrics()
        assert reporter.tick(metrics) is None
        assert reporter.tick(metrics) is None
        snapshot = reporter.tick(metrics)
        assert snapshot is not None
        assert snapshot.elapsed == pytest.approx(2.5)
        assert len(emitted) == 1

    def test_reporter_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            ProgressReporter(interval=0.0)

    def test_jsonl_snapshot_sink(self, tmp_path):
        path = str(tmp_path / "snapshots.jsonl")
        sink = JsonlSnapshotSink(path)
        reporter = ProgressReporter(interval=1.0, sinks=[sink])
        reporter.emit(loaded_metrics(), elapsed=20.0)
        sink.close()
        with open(path) as stream:
            (record,) = [json.loads(line) for line in stream]
        assert record["iterations"] == 100
        assert record["stage_share"]["verify"] == pytest.approx(0.6)


# ---------------------------------------------------------------------------
# Driver integration: the loop populates metrics and spans.
# ---------------------------------------------------------------------------


class TestDriverIntegration:
    def test_run_populates_metrics(self):
        driver = FuzzDriver(parse_module(IR, "t.ll"), small_config())
        report = driver.run(iterations=12)
        metrics = report.metrics
        assert metrics.counter("mutants.created") == 12
        assert 0 < metrics.counter("mutants.valid") <= 12
        assert metrics.counter("stage.mutate.seconds") > 0
        assert metrics.counter("stage.optimize.seconds") > 0
        assert metrics.counter("stage.verify.seconds") > 0
        assert metrics.counter("tv.checks") == 12
        assert metrics.histograms["iteration.seconds"].count == 12
        assert sum(metrics.counters_with_prefix("mutate.op.").values()) == \
            sum(report.mutation_counts.values())

    def test_stage_seconds_match_timings(self):
        driver = FuzzDriver(parse_module(IR, "t.ll"), small_config())
        report = driver.run(iterations=6)
        assert report.metrics.counter("stage.mutate.seconds") == \
            pytest.approx(report.timings.mutate)
        assert report.metrics.counter("stage.verify.seconds") == \
            pytest.approx(report.timings.verify)

    def test_spans_cover_every_stage(self):
        sink = ListTraceSink()
        driver = FuzzDriver(parse_module(IR, "t.ll"), small_config(),
                            tracer=Tracer(sink))
        driver.run(iterations=4)
        names = {record["name"] for record in sink.records}
        assert {"mutate", "optimize", "verify", "interp",
                "mutate.clone"} <= names
        assert any(name.startswith("optimize.pass.") for name in names)
        assert any(name.startswith("mutate.op.") for name in names)
        top_level = [r for r in sink.records if r["name"] == "mutate"]
        assert len(top_level) == 4
        assert all(r["dur"] >= 0 for r in sink.records)

    def test_findings_counted(self):
        config = FuzzConfig(pipeline="instsimplify",
                            enabled_bugs=("56968",),
                            mutator=MutatorConfig(max_mutations=2),
                            tv=RefinementConfig(max_inputs=8))
        shifty = """define i8 @f(i8 %x) {
  %r = shl i8 %x, 2
  ret i8 %r
}
"""
        driver = FuzzDriver(parse_module(shifty, "s.ll"), config)
        report = driver.run(iterations=40)
        recorded = report.metrics.counter("findings.miscompilation") + \
            report.metrics.counter("findings.crash")
        assert recorded == len(report.findings)
        assert report.findings  # the seeded bug must actually fire

    def test_progress_reporter_ticks_from_the_loop(self):
        times = iter(range(1000)).__next__  # one "second" per clock read
        emitted = []
        reporter = ProgressReporter(interval=2.0, sinks=[emitted.append],
                                    clock=lambda: float(times()))
        driver = FuzzDriver(parse_module(IR, "t.ll"), small_config(),
                            progress=reporter)
        driver.run(iterations=10)
        assert emitted  # the hot loop called tick() and intervals elapsed
        assert emitted[-1].iterations <= 10


# ---------------------------------------------------------------------------
# Campaign aggregation: shard sum == aggregate, any worker count.
# ---------------------------------------------------------------------------


class TestCampaignMetrics:
    @pytest.fixture(scope="class")
    def sequential(self):
        return run_campaign(CampaignConfig(workers=1, **SMALL))

    def test_aggregate_has_campaign_counters(self, sequential):
        metrics = sequential.metrics
        assert metrics.counter("campaign.jobs.completed") == 4
        assert metrics.counter("mutants.created") == \
            sequential.total_iterations
        assert metrics.counter("campaign.retry.attempts") == 0

    def test_stage_seconds_match_report_timings(self, sequential):
        assert sequential.metrics.counter("stage.mutate.seconds") == \
            pytest.approx(sequential.timings.mutate)

    def test_parallel_matches_sequential(self, sequential):
        parallel = run_campaign(CampaignConfig(workers=4, **SMALL))
        assert parallel.metrics.deterministic() == \
            sequential.metrics.deterministic()

    def test_trace_dir_writes_one_file_per_job(self, tmp_path):
        report = run_campaign(CampaignConfig(
            workers=2, trace_dir=str(tmp_path), **SMALL))
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == [f"job-{i:04d}.jsonl" for i in range(4)]
        with open(tmp_path / "job-0000.jsonl") as stream:
            names = {json.loads(line)["name"] for line in stream}
        assert "mutate" in names and "verify" in names
        assert report.metrics.counter("campaign.jobs.completed") == 4

    def test_trace_sample_validated(self):
        with pytest.raises(ValueError):
            CampaignConfig(trace_sample=1.5, **SMALL).validate()


# ---------------------------------------------------------------------------
# Benchmark summaries.
# ---------------------------------------------------------------------------


class TestSummary:
    def test_campaign_summary_schema(self, tmp_path):
        report = run_campaign(CampaignConfig(workers=1, **SMALL))
        path = str(tmp_path / "BENCH_campaign.json")
        write_campaign_summary(report, path, name="campaign_smoke")
        data = load_summary(path)
        assert data["bench"] == "campaign_smoke"
        assert data["schema"] == 1
        assert data["iterations"] == report.total_iterations
        assert data["mutants_per_sec"] > 0
        assert set(data["stage_share"]) == {"mutate", "optimize", "verify"}
        assert data["failed_shards"] == 0
        assert 0.0 <= data["valid_mutant_rate"] <= 1.0

    def test_campaign_summary_is_duck_typed(self):
        class FakeReport:
            elapsed = 2.0
            workers = 3
            total_iterations = 10
            total_findings = 0
            metrics = loaded_metrics()
            failed_shards = ()
            parse_failures = ()
            quarantined = ()
            skipped_jobs = 0

            def found_bugs(self):
                return []

        data = campaign_summary(FakeReport(), name="fake")
        assert data["workers"] == 3
        assert data["mutants_per_sec"] == pytest.approx(50.0)
