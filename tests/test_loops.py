"""Tests for natural-loop analysis, LICM, and DSE."""


from repro.analysis.loops import LoopInfo

from helpers import assert_sound, optimize, parsed

SIMPLE_LOOP = """
define i32 @f(i32 %n, i32 %k) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %next, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %invariant = mul i32 %k, 7
  %next = add i32 %i, %invariant
  br label %header
exit:
  ret i32 %i
}
"""

NESTED_LOOPS = """
define i32 @f(i32 %n) {
entry:
  br label %outer
outer:
  %i = phi i32 [ 0, %entry ], [ %i2, %outer_latch ]
  br label %inner
inner:
  %j = phi i32 [ 0, %outer ], [ %j2, %inner ]
  %j2 = add i32 %j, 1
  %cj = icmp ult i32 %j2, %n
  br i1 %cj, label %inner, label %outer_latch
outer_latch:
  %i2 = add i32 %i, 1
  %ci = icmp ult i32 %i2, %n
  br i1 %ci, label %outer, label %exit
exit:
  ret i32 %i
}
"""


class TestLoopInfo:
    def test_simple_loop_found(self):
        fn = parsed(SIMPLE_LOOP).get_function("f")
        info = LoopInfo(fn)
        assert len(info) == 1
        loop = info.loops[0]
        assert loop.header.name == "header"
        names = {b.name for b in loop.blocks}
        assert names == {"header", "body"}
        assert [b.name for b in loop.latches] == ["body"]

    def test_preheader_detected(self):
        fn = parsed(SIMPLE_LOOP).get_function("f")
        loop = LoopInfo(fn).loops[0]
        assert loop.preheader().name == "entry"

    def test_exits(self):
        fn = parsed(SIMPLE_LOOP).get_function("f")
        loop = LoopInfo(fn).loops[0]
        assert [b.name for b in loop.exits()] == ["exit"]

    def test_nested_loops(self):
        fn = parsed(NESTED_LOOPS).get_function("f")
        info = LoopInfo(fn)
        assert len(info) == 2
        outer = [lp for lp in info if lp.header.name == "outer"][0]
        inner = [lp for lp in info if lp.header.name == "inner"][0]
        assert {b.name for b in inner.blocks} == {"inner"}
        assert "inner" in {b.name for b in outer.blocks}

    def test_innermost_lookup(self):
        fn = parsed(NESTED_LOOPS).get_function("f")
        info = LoopInfo(fn)
        inner_block = fn.block_named("inner")
        assert info.loop_for(inner_block).header.name == "inner"
        latch = fn.block_named("outer_latch")
        assert info.loop_for(latch).header.name == "outer"

    def test_no_loops(self):
        fn = parsed("""
define i32 @f(i32 %x) {
  ret i32 %x
}
""").get_function("f")
        assert len(LoopInfo(fn)) == 0


class TestLICM:
    def test_hoists_invariant(self):
        module = parsed(SIMPLE_LOOP)
        optimized, ctx = optimize(module, "licm")
        assert ctx.stats["licm.hoisted"] == 1
        fn = optimized.get_function("f")
        entry_ops = [i.opcode for i in fn.block_named("entry").instructions]
        assert "mul" in entry_ops
        assert_sound(module, "licm")

    def test_does_not_hoist_division(self):
        # udiv %k, %m may be UB (m == 0); the loop may never run, so the
        # division must stay inside.
        module = parsed("""
define i32 @f(i32 %n, i32 %k, i32 %m) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %next, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %q = udiv i32 %k, %m
  %next = add i32 %i, %q
  br label %header
exit:
  ret i32 %i
}
""")
        optimized, ctx = optimize(module, "licm")
        assert ctx.stats.get("licm.hoisted", 0) == 0
        fn = optimized.get_function("f")
        assert any(i.opcode == "udiv"
                   for i in fn.block_named("body").instructions)
        assert_sound(module, "licm")

    def test_does_not_hoist_loads(self):
        module = parsed("""
define i32 @f(i32 %n, ptr %p) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %next, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %v = load i32, ptr %p
  %next = add i32 %i, %v
  br label %header
exit:
  ret i32 %i
}
""")
        optimized, ctx = optimize(module, "licm")
        assert ctx.stats.get("licm.hoisted", 0) == 0
        assert_sound(module, "licm")

    def test_hoists_chains(self):
        # Two dependent invariants both leave the loop.
        module = parsed("""
define i32 @f(i32 %n, i32 %k) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %next, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %a = mul i32 %k, 7
  %b = xor i32 %a, 3
  %next = add i32 %i, %b
  br label %header
exit:
  ret i32 %i
}
""")
        optimized, ctx = optimize(module, "licm")
        assert ctx.stats["licm.hoisted"] == 2
        assert_sound(module, "licm")

    def test_flagged_arithmetic_hoistable(self):
        # Speculating poison is fine; its uses stay in the loop.
        module = parsed("""
define i32 @f(i32 %n, i32 %k) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %next, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %a = add nsw i32 %k, 1
  %next = add i32 %i, %a
  br label %header
exit:
  ret i32 %i
}
""")
        optimized, ctx = optimize(module, "licm")
        assert ctx.stats["licm.hoisted"] == 1
        assert_sound(module, "licm")

    def test_full_o2_on_loops_sound(self):
        assert_sound(parsed(SIMPLE_LOOP), "O2")
        assert_sound(parsed(NESTED_LOOPS), "O2")


class TestDSE:
    def test_kills_overwritten_store(self):
        module = parsed("""
define void @f(ptr %p, i32 %a, i32 %b) {
  store i32 %a, ptr %p
  store i32 %b, ptr %p
  ret void
}
""")
        optimized, ctx = optimize(module, "dse")
        assert ctx.stats["dse.removed"] == 1
        fn = optimized.get_function("f")
        stores = [i for i in fn.instructions() if i.opcode == "store"]
        assert len(stores) == 1
        assert_sound(module, "dse")

    def test_intervening_load_keeps_store(self):
        module = parsed("""
define i32 @f(ptr %p, i32 %a, i32 %b) {
  store i32 %a, ptr %p
  %v = load i32, ptr %p
  store i32 %b, ptr %p
  ret i32 %v
}
""")
        optimized, ctx = optimize(module, "dse")
        assert ctx.stats.get("dse.removed", 0) == 0
        assert_sound(module, "dse")

    def test_intervening_call_keeps_store(self):
        module = parsed("""
declare void @observer(ptr)

define void @f(ptr %p, i32 %a, i32 %b) {
  store i32 %a, ptr %p
  call void @observer(ptr %p)
  store i32 %b, ptr %p
  ret void
}
""")
        optimized, ctx = optimize(module, "dse")
        assert ctx.stats.get("dse.removed", 0) == 0
        assert_sound(module, "dse", function="f")

    def test_different_pointers_untouched(self):
        module = parsed("""
define void @f(ptr %p, ptr %q, i32 %a) {
  store i32 %a, ptr %p
  store i32 %a, ptr %q
  ret void
}
""")
        optimized, ctx = optimize(module, "dse")
        assert ctx.stats.get("dse.removed", 0) == 0
        assert_sound(module, "dse")

    def test_type_size_mismatch_kept(self):
        # A narrow store does not fully cover the wide one.
        module = parsed("""
define void @f(ptr %p, i32 %a, i8 %b) {
  store i32 %a, ptr %p
  store i8 %b, ptr %p
  ret void
}
""")
        optimized, ctx = optimize(module, "dse")
        assert ctx.stats.get("dse.removed", 0) == 0
        assert_sound(module, "dse")

    def test_store_chain_collapses(self):
        module = parsed("""
define void @f(ptr %p) {
  store i8 1, ptr %p
  store i8 2, ptr %p
  store i8 3, ptr %p
  ret void
}
""")
        optimized, ctx = optimize(module, "dse")
        assert ctx.stats["dse.removed"] == 2
        assert_sound(module, "dse")
