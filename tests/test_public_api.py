"""Lint-style guard for the curated public surface.

Keeps ``repro.__all__`` honest (every name importable) and keeps the
examples off private names, so the redesigned API cannot silently rot.
"""

import ast
import importlib
import os

import pytest

import repro
import repro.fuzz

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")
EXAMPLE_FILES = sorted(
    os.path.join(EXAMPLES_DIR, name)
    for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py"))

CURATED = {"FuzzDriver", "FuzzConfig", "CampaignConfig", "run_campaign",
           "Session", "Finding", "Verdict"}


def test_all_is_curated_not_just_version():
    assert CURATED <= set(repro.__all__)


@pytest.mark.parametrize("name", sorted(repro.__all__))
def test_every_top_level_name_resolves(name):
    assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"


@pytest.mark.parametrize("module_name", [
    "repro.fuzz", "repro.ir", "repro.opt", "repro.tv", "repro.mutate",
    "repro.analysis",
])
def test_subpackage_all_names_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), \
            f"{module_name}.__all__ lists missing name {name!r}"


def _repro_imports(tree):
    """Yield (module, imported-name) pairs for every repro import."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module \
                and node.module.split(".")[0] == "repro":
            for alias in node.names:
                yield node.module, alias.name
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "repro":
                    yield alias.name, ""


@pytest.mark.parametrize("path", EXAMPLE_FILES,
                         ids=[os.path.basename(p) for p in EXAMPLE_FILES])
def test_examples_import_no_private_names(path):
    with open(path) as stream:
        tree = ast.parse(stream.read(), path)
    for module_name, name in _repro_imports(tree):
        for part in module_name.split("."):
            assert not part.startswith("_"), \
                f"{path} imports private module {module_name}"
        assert not name.startswith("_"), \
            f"{path} imports private name {module_name}.{name}"


@pytest.mark.parametrize("path", EXAMPLE_FILES,
                         ids=[os.path.basename(p) for p in EXAMPLE_FILES])
def test_examples_import_only_names_that_exist(path):
    with open(path) as stream:
        tree = ast.parse(stream.read(), path)
    for module_name, name in _repro_imports(tree):
        module = importlib.import_module(module_name)
        if name and name != "*":
            assert hasattr(module, name), \
                f"{path}: {module_name} has no attribute {name!r}"
