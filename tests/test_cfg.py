"""Tests for CFG traversal utilities."""

from repro.analysis.cfg import (postorder, predecessor_map, reachable_blocks,
                                reverse_postorder)

from helpers import parsed


def fn_of(text):
    return parsed(text).definitions()[0]


class TestReversePostorder:
    def test_straight_line(self):
        fn = fn_of("""
define void @f() {
entry:
  br label %a
a:
  br label %b
b:
  ret void
}
""")
        assert [b.name for b in reverse_postorder(fn)] == ["entry", "a", "b"]

    def test_diamond_entry_first_join_last(self):
        fn = fn_of("""
define void @f(i1 %c) {
entry:
  br i1 %c, label %l, label %r
l:
  br label %join
r:
  br label %join
join:
  ret void
}
""")
        order = [b.name for b in reverse_postorder(fn)]
        assert order[0] == "entry"
        assert order[-1] == "join"
        assert set(order) == {"entry", "l", "r", "join"}

    def test_loop_header_before_body(self):
        fn = fn_of("""
define void @f(i1 %c) {
entry:
  br label %h
h:
  br i1 %c, label %body, label %out
body:
  br label %h
out:
  ret void
}
""")
        order = [b.name for b in reverse_postorder(fn)]
        assert order.index("h") < order.index("body")

    def test_unreachable_excluded(self):
        fn = fn_of("""
define void @f() {
entry:
  ret void
dead:
  br label %dead
}
""")
        assert [b.name for b in reverse_postorder(fn)] == ["entry"]
        assert len(reachable_blocks(fn)) == 1

    def test_postorder_is_reverse(self):
        fn = fn_of("""
define void @f() {
entry:
  br label %a
a:
  ret void
}
""")
        assert [b.name for b in postorder(fn)] == \
            list(reversed([b.name for b in reverse_postorder(fn)]))


class TestPredecessorMap:
    def test_diamond(self):
        fn = fn_of("""
define void @f(i1 %c) {
entry:
  br i1 %c, label %l, label %r
l:
  br label %join
r:
  br label %join
join:
  ret void
}
""")
        preds = predecessor_map(fn)
        blocks = {b.name: b for b in fn.blocks}
        assert {p.name for p in preds[id(blocks["join"])]} == {"l", "r"}
        assert preds[id(blocks["entry"])] == []

    def test_self_loop_counted_once(self):
        fn = fn_of("""
define void @f(i1 %c) {
entry:
  br label %spin
spin:
  br i1 %c, label %spin, label %out
out:
  ret void
}
""")
        preds = predecessor_map(fn)
        blocks = {b.name: b for b in fn.blocks}
        assert {p.name for p in preds[id(blocks["spin"])]} == \
            {"entry", "spin"}

    def test_duplicate_edges_deduped(self):
        fn = fn_of("""
define void @f(i1 %c) {
entry:
  br i1 %c, label %next, label %next
next:
  ret void
}
""")
        preds = predecessor_map(fn)
        blocks = {b.name: b for b in fn.blocks}
        assert len(preds[id(blocks["next"])]) == 1
