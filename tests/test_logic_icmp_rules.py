"""Tests for the and/or-of-icmp InstCombine rules, with exhaustive
semantic cross-checks at i8."""

import pytest

from repro.ir import ConstantInt, ICmpInst

from helpers import assert_sound, optimize, parsed


def combined(text: str):
    module = parsed(text)
    optimized, ctx = optimize(module, "instcombine")
    assert_sound(module, "instcombine")
    return optimized.definitions()[0], ctx


class TestRangeMerging:
    def test_and_ult_pair_takes_min(self):
        fn, _ = combined("""
define i1 @f(i8 %x) {
  %a = icmp ult i8 %x, 30
  %b = icmp ult i8 %x, 20
  %r = and i1 %a, %b
  ret i1 %r
}
""")
        cmps = [i for i in fn.instructions() if isinstance(i, ICmpInst)]
        assert len(cmps) == 1
        assert cmps[0].rhs.value == 20

    def test_or_ult_pair_takes_max(self):
        fn, _ = combined("""
define i1 @f(i8 %x) {
  %a = icmp ult i8 %x, 30
  %b = icmp ult i8 %x, 20
  %r = or i1 %a, %b
  ret i1 %r
}
""")
        cmps = [i for i in fn.instructions() if isinstance(i, ICmpInst)]
        assert len(cmps) == 1
        assert cmps[0].rhs.value == 30

    def test_and_ugt_pair_takes_max(self):
        fn, _ = combined("""
define i1 @f(i8 %x) {
  %a = icmp ugt i8 %x, 30
  %b = icmp ugt i8 %x, 20
  %r = and i1 %a, %b
  ret i1 %r
}
""")
        cmps = [i for i in fn.instructions() if isinstance(i, ICmpInst)]
        assert len(cmps) == 1
        assert cmps[0].rhs.value == 30

    def test_empty_intersection_is_false(self):
        fn, _ = combined("""
define i1 @f(i8 %x) {
  %a = icmp ult i8 %x, 10
  %b = icmp ugt i8 %x, 10
  %r = and i1 %a, %b
  ret i1 %r
}
""")
        ret_value = fn.blocks[0].terminator().return_value
        assert isinstance(ret_value, ConstantInt) and ret_value.value == 0

    def test_nonempty_intersection_survives(self):
        fn, _ = combined("""
define i1 @f(i8 %x) {
  %a = icmp ult i8 %x, 100
  %b = icmp ugt i8 %x, 10
  %r = and i1 %a, %b
  ret i1 %r
}
""")
        # The range (10, 100) is nonempty: the and must remain.
        ands = [i for i in fn.instructions() if i.opcode == "and"]
        assert ands

    def test_full_union_is_true(self):
        fn, _ = combined("""
define i1 @f(i8 %x) {
  %a = icmp ult i8 %x, 50
  %b = icmp ugt i8 %x, 20
  %r = or i1 %a, %b
  ret i1 %r
}
""")
        ret_value = fn.blocks[0].terminator().return_value
        assert isinstance(ret_value, ConstantInt) and ret_value.value == 1

    def test_mixed_operand_not_matched(self):
        fn, _ = combined("""
define i1 @f(i8 %x, i8 %y) {
  %a = icmp ult i8 %x, 30
  %b = icmp ult i8 %y, 20
  %r = and i1 %a, %b
  ret i1 %r
}
""")
        cmps = [i for i in fn.instructions() if isinstance(i, ICmpInst)]
        assert len(cmps) == 2


class TestBitTests:
    def test_ne_pow2_becomes_eq_zero(self):
        fn, _ = combined("""
define i1 @f(i8 %x) {
  %m = and i8 %x, 8
  %r = icmp ne i8 %m, 8
  ret i1 %r
}
""")
        cmps = [i for i in fn.instructions() if isinstance(i, ICmpInst)]
        assert cmps[0].predicate == "eq"
        assert cmps[0].rhs.value == 0

    def test_eqzero_pair_merges_masks(self):
        fn, _ = combined("""
define i1 @f(i8 %x) {
  %m1 = and i8 %x, 12
  %c1 = icmp eq i8 %m1, 0
  %m2 = and i8 %x, 3
  %c2 = icmp eq i8 %m2, 0
  %r = and i1 %c1, %c2
  ret i1 %r
}
""")
        ands = [i for i in fn.instructions() if i.opcode == "and"
                and i.type.width == 8]
        assert len(ands) == 1
        assert ands[0].rhs.value == 15


EXHAUSTIVE_TEMPLATE = """
define i1 @f(i8 %x) {{
  %a = icmp {p1} i8 %x, {c1}
  %b = icmp {p2} i8 %x, {c2}
  %r = {op} i1 %a, %b
  ret i1 %r
}}
"""


@pytest.mark.parametrize("op", ["and", "or"])
@pytest.mark.parametrize("p1,p2", [("ult", "ult"), ("ugt", "ugt"),
                                   ("ult", "ugt"), ("ugt", "ult")])
@pytest.mark.parametrize("c1,c2", [(0, 0), (1, 254), (10, 10), (10, 9),
                                   (20, 100), (255, 1)])
def test_exhaustive_i8_semantics(op, p1, p2, c1, c2):
    """Brute-force equivalence over all 256 inputs, before vs after."""
    from repro.tv import Interpreter

    text = EXHAUSTIVE_TEMPLATE.format(op=op, p1=p1, p2=p2, c1=c1, c2=c2)
    module = parsed(text)
    optimized, _ = optimize(module, "instcombine")
    for x in range(256):
        before = Interpreter(module).run(module.get_function("f"), [x])
        after = Interpreter(optimized).run(optimized.get_function("f"), [x])
        assert before == after, (op, p1, c1, p2, c2, x)
