"""Tests for the radamsa-style structure-blind mutator (paper §II)."""

from repro.fuzz.radamsa import (BORING, INTERESTING, INVALID, ValidityStats,
                                classify_mutant, radamsa_mutate,
                                run_validity_study)
from repro.fuzz.seeds import generate_corpus

SAMPLE = """define i32 @f(i32 %x) {
  %r = add i32 %x, 42
  ret i32 %r
}
"""


class TestMutator:
    def test_deterministic(self):
        assert radamsa_mutate(SAMPLE, 7) == radamsa_mutate(SAMPLE, 7)

    def test_changes_text(self):
        outputs = {radamsa_mutate(SAMPLE, seed) for seed in range(20)}
        assert len(outputs) > 10

    def test_round_count_respected(self):
        single = radamsa_mutate(SAMPLE, 3, rounds=1)
        assert isinstance(single, str)


class TestClassifier:
    def test_garbage_is_invalid(self):
        assert classify_mutant(SAMPLE, "complete garbage !!!") == INVALID

    def test_identical_is_boring(self):
        assert classify_mutant(SAMPLE, SAMPLE) == BORING

    def test_rename_is_boring(self):
        renamed = SAMPLE.replace("%r", "%result").replace("%x", "%input")
        assert classify_mutant(SAMPLE, renamed) == BORING

    def test_changed_constant_is_interesting(self):
        changed = SAMPLE.replace("42", "43")
        assert classify_mutant(SAMPLE, changed) == INTERESTING

    def test_changed_opcode_is_interesting(self):
        changed = SAMPLE.replace("add", "sub")
        assert classify_mutant(SAMPLE, changed) == INTERESTING

    def test_broken_ssa_is_invalid(self):
        broken = SAMPLE.replace("%r = add i32 %x, 42",
                                "%r = add i32 %undefined, 42")
        assert classify_mutant(SAMPLE, broken) == INVALID


class TestStudy:
    def test_stats_accumulate(self):
        stats = ValidityStats(invalid=8, boring=1, interesting=1)
        assert stats.total == 10
        assert stats.rate("invalid") == 0.8

    def test_study_reproduces_papers_finding(self):
        """§II: 'the vast majority of mutated LLVM IR files were invalid'."""
        corpus = generate_corpus(6, seed=0)
        stats = run_validity_study(corpus, mutants_per_file=25, seed=0)
        assert stats.total == 150
        assert stats.rate("invalid") > 0.5
        # Interesting mutants are the rare exception.
        assert stats.rate("interesting") < 0.3
