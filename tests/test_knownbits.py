"""Tests for KnownBits and value tracking, including a property-based
soundness check against the concrete interpreter semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.knownbits import (KnownBits, compute_known_bits,
                                      compute_num_sign_bits,
                                      is_known_non_negative,
                                      is_known_non_zero)

from helpers import single_function


def known_of(text: str, value_name: str):
    fn = single_function(text)
    for inst in fn.instructions():
        if inst.name == value_name:
            return compute_known_bits(inst), fn
    raise AssertionError(f"%{value_name} not found")


class TestKnownBitsBasics:
    def test_constant(self):
        known = KnownBits.constant(8, 0b1010)
        assert known.is_constant()
        assert known.constant_value() == 0b1010

    def test_unknown(self):
        known = KnownBits.unknown(8)
        assert not known.is_constant()
        assert known.min_unsigned() == 0
        assert known.max_unsigned() == 255

    def test_conflict_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            KnownBits(8, zero=1, one=1)

    def test_admits(self):
        known = KnownBits(8, zero=0b1, one=0b10)
        assert known.admits(0b10)
        assert known.admits(0b110)
        assert not known.admits(0b11)   # bit0 must be 0
        assert not known.admits(0b100)  # bit1 must be 1

    def test_and_or_xor_operators(self):
        a = KnownBits.constant(4, 0b1100)
        b = KnownBits.constant(4, 0b1010)
        assert (a & b).constant_value() == 0b1000
        assert (a | b).constant_value() == 0b1110
        assert (a ^ b).constant_value() == 0b0110

    def test_intersect(self):
        a = KnownBits.constant(4, 0b1100)
        b = KnownBits.constant(4, 0b1000)
        merged = a.intersect(b)
        assert merged.one == 0b1000
        assert merged.admits(0b1100) and merged.admits(0b1000)


class TestInstructionFacts:
    def test_and_with_mask(self):
        known, _ = known_of("""
define i8 @f(i8 %x) {
  %r = and i8 %x, 15
  ret i8 %r
}
""", "r")
        assert known.zero == 0xF0

    def test_or_sets_bits(self):
        known, _ = known_of("""
define i8 @f(i8 %x) {
  %r = or i8 %x, 128
  ret i8 %r
}
""", "r")
        assert known.one == 0x80
        assert known.is_negative()

    def test_zext_clears_high_bits(self):
        known, _ = known_of("""
define i32 @f(i8 %x) {
  %r = zext i8 %x to i32
  ret i32 %r
}
""", "r")
        assert known.zero == 0xFFFFFF00
        assert known.is_non_negative()

    def test_shl_constant(self):
        known, _ = known_of("""
define i8 @f(i8 %x) {
  %r = shl i8 %x, 4
  ret i8 %r
}
""", "r")
        assert known.zero & 0xF == 0xF

    def test_lshr_constant(self):
        known, _ = known_of("""
define i8 @f(i8 %x) {
  %r = lshr i8 %x, 4
  ret i8 %r
}
""", "r")
        assert known.zero == 0xF0

    def test_add_ripple(self):
        known, _ = known_of("""
define i8 @f(i8 %x) {
  %hi = and i8 %x, 240
  %r = add i8 %hi, 3
  ret i8 %r
}
""", "r")
        # Low nibble of %hi is 0, so low nibble of the sum is exactly 3.
        assert known.one & 0xF == 3
        assert known.zero & 0xF == 0xC

    def test_urem_bound(self):
        known, _ = known_of("""
define i8 @f(i8 %x) {
  %r = urem i8 %x, 8
  ret i8 %r
}
""", "r")
        assert known.max_unsigned() < 16

    def test_select_intersection(self):
        known, _ = known_of("""
define i8 @f(i1 %c, i8 %x) {
  %a = and i8 %x, 12
  %b = and i8 %x, 10
  %r = select i1 %c, i8 %a, i8 %b
  ret i8 %r
}
""", "r")
        # Both arms have bits 0 and top nibble clear.
        assert known.zero & 0xF1 == 0xF1


class TestDerivedPredicates:
    def test_non_zero_via_or(self):
        fn = single_function("""
define i8 @f(i8 %x) {
  %r = or i8 %x, 1
  ret i8 %r
}
""")
        inst = fn.blocks[0].instructions[0]
        assert is_known_non_zero(inst)

    def test_non_negative_via_zext(self):
        fn = single_function("""
define i32 @f(i8 %x) {
  %r = zext i8 %x to i32
  ret i32 %r
}
""")
        inst = fn.blocks[0].instructions[0]
        assert is_known_non_negative(inst)

    def test_sign_bits_of_sext(self):
        fn = single_function("""
define i32 @f(i8 %x) {
  %r = sext i8 %x to i32
  ret i32 %r
}
""")
        inst = fn.blocks[0].instructions[0]
        assert compute_num_sign_bits(inst) >= 25

    def test_sign_bits_of_ashr(self):
        fn = single_function("""
define i32 @f(i32 %x) {
  %r = ashr i32 %x, 8
  ret i32 %r
}
""")
        inst = fn.blocks[0].instructions[0]
        assert compute_num_sign_bits(inst) >= 9


# ---------------------------------------------------------------------------
# Property: facts claimed by KnownBits hold for every concrete execution.
# ---------------------------------------------------------------------------

TEMPLATE = """
define i8 @f(i8 %x, i8 %y) {{
  %m = and i8 %x, {mask1}
  %n = or i8 %y, {set1}
  %a = {op1} i8 %m, %n
  %b = {op2} i8 %a, {const}
  ret i8 %b
}}
"""

OPS = ["add", "sub", "mul", "and", "or", "xor"]


@settings(max_examples=120, deadline=None)
@given(
    mask1=st.integers(0, 255),
    set1=st.integers(0, 255),
    const=st.integers(0, 255),
    op1=st.sampled_from(OPS),
    op2=st.sampled_from(OPS),
    x=st.integers(0, 255),
    y=st.integers(0, 255),
)
def test_known_bits_sound_on_concrete_runs(mask1, set1, const, op1, op2, x, y):
    from repro.ir import parse_module
    from repro.tv import Interpreter

    module = parse_module(TEMPLATE.format(
        mask1=mask1, set1=set1, const=const, op1=op1, op2=op2))
    fn = module.get_function("f")
    facts = {inst.name: compute_known_bits(inst)
             for inst in fn.instructions()
             if inst.name and inst.type.is_integer()}
    result = Interpreter(module).run(fn, [x, y])
    # Cross-check the intermediate facts against a hand-rolled evaluation.
    concrete = {"m": x & mask1, "n": y | set1}
    ops = {"add": lambda a, b: (a + b) & 255,
           "sub": lambda a, b: (a - b) & 255,
           "mul": lambda a, b: (a * b) & 255,
           "and": lambda a, b: a & b,
           "or": lambda a, b: a | b,
           "xor": lambda a, b: a ^ b}
    concrete["a"] = ops[op1](concrete["m"], concrete["n"])
    concrete["b"] = ops[op2](concrete["a"], const)
    for name, value in concrete.items():
        assert facts[name].admits(value), (name, facts[name], value)
    # The interpreter agrees with the hand evaluation, too.
    assert result == concrete["b"]
