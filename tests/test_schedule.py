"""Tests for the deterministic (source, mutation-class) schedulers.

The hard requirement is determinism: the pull sequence must be a pure
function of the reward sequence and the arm-registration order, because
campaign findings and ``deterministic()`` metrics must be bit-identical
across kill+resume and worker counts.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fuzz.schedule import (ArmStats, BanditScheduler,
                                 RoundRobinScheduler, create_scheduler)

OPERATORS = ["swap", "widen", "reorder"]


def play(scheduler, rewards):
    """Drive ``scheduler`` through ``rewards``; return the pull sequence."""
    pulls = []
    for reward in rewards:
        arm = scheduler.select()
        scheduler.update(*arm, reward)
        pulls.append(arm)
    return pulls


class TestBandit:
    def test_unplayed_arms_first_in_registration_order(self):
        scheduler = BanditScheduler(OPERATORS)
        scheduler.add_source("seed")
        pulls = play(scheduler, [0.0] * len(OPERATORS))
        assert pulls == [("seed", op) for op in OPERATORS]

    def test_rewarding_arm_gets_replayed(self):
        scheduler = BanditScheduler(OPERATORS, exploration=0.1)
        scheduler.add_source("seed")
        # One sweep of the unplayed arms: only "widen" pays out.
        for operator in OPERATORS:
            scheduler.update("seed", operator,
                             5.0 if operator == "widen" else 0.0)
        assert scheduler.select() == ("seed", "widen")

    def test_ties_break_toward_the_oldest_arm(self):
        scheduler = BanditScheduler(OPERATORS)
        scheduler.add_source("seed")
        for operator in OPERATORS:
            scheduler.update("seed", operator, 1.0)
        assert scheduler.select() == ("seed", OPERATORS[0])

    def test_new_source_arms_are_pulled_next(self):
        scheduler = BanditScheduler(OPERATORS)
        scheduler.add_source("seed")
        play(scheduler, [1.0] * len(OPERATORS))
        scheduler.add_source("corpus-abc")
        assert scheduler.select() == ("corpus-abc", OPERATORS[0])

    def test_add_source_is_idempotent(self):
        scheduler = BanditScheduler(OPERATORS)
        scheduler.add_source("seed")
        scheduler.add_source("seed")
        assert scheduler.arm_count() == len(OPERATORS)

    def test_select_without_arms_raises(self):
        with pytest.raises(ValueError):
            BanditScheduler(OPERATORS).select()

    def test_needs_operators(self):
        with pytest.raises(ValueError):
            BanditScheduler([])

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(rewards=st.lists(
        st.floats(0.0, 10.0, allow_nan=False), max_size=60),
        admissions=st.sets(st.integers(0, 40), max_size=4))
    def test_pull_sequence_is_deterministic(self, rewards, admissions):
        """Same rewards + same mid-run source admissions ⇒ identical
        pulls and identical final arm statistics — no hidden RNG."""
        def run():
            scheduler = BanditScheduler(OPERATORS)
            scheduler.add_source("seed")
            pulls = []
            for step, reward in enumerate(rewards):
                if step in admissions:
                    scheduler.add_source(f"corpus-{step}")
                arm = scheduler.select()
                scheduler.update(*arm, reward)
                pulls.append(arm)
            return pulls, [(key, stats.plays, stats.reward)
                           for key, stats in scheduler.arms()]
        assert run() == run()

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(rewards=st.lists(st.floats(0.0, 5.0, allow_nan=False),
                            min_size=len(OPERATORS), max_size=50))
    def test_every_pull_is_a_registered_arm(self, rewards):
        scheduler = BanditScheduler(OPERATORS)
        scheduler.add_source("seed")
        for arm in play(scheduler, rewards):
            assert arm[0] == "seed" and arm[1] in OPERATORS
        assert scheduler.total_plays == len(rewards)
        assert sum(stats.plays for _, stats in scheduler.arms()) == \
            len(rewards)


class TestRoundRobin:
    def test_cycles_in_registration_order(self):
        scheduler = RoundRobinScheduler(OPERATORS)
        scheduler.add_source("seed")
        pulls = play(scheduler, [9.0] * (2 * len(OPERATORS)))
        expected = [("seed", op) for op in OPERATORS]
        assert pulls == expected + expected  # rewards change nothing

    def test_new_source_joins_the_cycle(self):
        scheduler = RoundRobinScheduler(["a", "b"])
        scheduler.add_source("seed")
        play(scheduler, [0.0, 0.0])
        scheduler.add_source("c1")
        pulls = play(scheduler, [0.0] * 4)
        assert pulls == [("c1", "a"), ("c1", "b"), ("seed", "a"),
                         ("seed", "b")]


class TestFactoryAndStats:
    def test_create_scheduler(self):
        assert isinstance(create_scheduler("bandit", OPERATORS),
                          BanditScheduler)
        assert isinstance(create_scheduler("round-robin", OPERATORS),
                          RoundRobinScheduler)
        with pytest.raises(ValueError):
            create_scheduler("thompson", OPERATORS)

    def test_arm_stats_mean_guards_zero_plays(self):
        assert ArmStats().mean == 0.0
        assert ArmStats(plays=4, reward=6.0).mean == pytest.approx(1.5)
