"""Make tests/helpers.py importable as `helpers` from any test module."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
