"""Tests for the in-process fuzz driver (paper §III, Figure 3)."""

import json
import os

import pytest

from repro.fuzz import (CRASH, MISCOMPILATION, BugLog, Finding, FuzzConfig,
                        FuzzDriver)
from repro.mutate import MutatorConfig
from repro.tv import RefinementConfig

from helpers import parsed

CLEAN = """
define i32 @t1(i32 %x, i32 %low, i32 %high) {
  %t0 = icmp slt i32 %x, -16
  %t1 = select i1 %t0, i32 %low, i32 %high
  %t2 = add i32 %x, 16
  %t3 = icmp ult i32 %t2, 144
  %r = select i1 %t3, i32 %x, i32 %t1
  ret i32 %r
}
"""

# A seed sitting right next to the canonicalizeClampLike bug (53252):
# many of its mutants preserve the clamp shape, so the driver tests can
# rely on findings appearing within a modest iteration budget.
CLAMP = """
define i32 @clamp(i32 %x, i32 %y) {
  %c = icmp ult i32 %x, 100
  %r = select i1 %c, i32 %x, i32 100
  %s = add i32 %r, %y
  ret i32 %s
}
"""


def make_driver(text=CLEAN, **kwargs):
    defaults = dict(
        pipeline="O2",
        mutator=MutatorConfig(max_mutations=2),
        tv=RefinementConfig(max_inputs=12),
    )
    defaults.update(kwargs)
    return FuzzDriver(parsed(text), FuzzConfig(**defaults), file_name="t.ll")


class TestPreprocessing:
    def test_supported_function_targeted(self):
        driver = make_driver()
        assert driver.target_functions == ["t1"]
        assert not driver.report.dropped_functions

    def test_unsupported_function_dropped(self):
        driver = make_driver("""
define i128 @wide(i128 %x) {
  ret i128 %x
}

define i32 @ok(i32 %x) {
  ret i32 %x
}
""")
        assert driver.target_functions == ["ok"]
        assert "wide" in driver.report.dropped_functions

    def test_from_text(self):
        driver = FuzzDriver.from_text(CLEAN)
        assert driver.target_functions == ["t1"]


class TestLoop:
    def test_clean_module_produces_no_findings(self):
        driver = make_driver()
        report = driver.run(iterations=20)
        assert report.iterations == 20
        assert report.findings == []

    def test_seeded_bug_produces_findings(self):
        driver = make_driver(CLAMP, enabled_bugs=("53252",))
        report = driver.run(iterations=120)
        assert any(f.kind == MISCOMPILATION and "53252" in f.bug_ids
                   for f in report.findings)

    def test_crash_bug_produces_crash_findings(self):
        driver = make_driver(enabled_bugs=("56968",))
        report = driver.run(iterations=150)
        crashes = [f for f in report.findings if f.kind == CRASH]
        assert crashes
        assert all("56968" in f.bug_ids for f in crashes)

    def test_time_budget_respected(self):
        driver = make_driver()
        report = driver.run(time_budget=0.2)
        assert report.timings.total <= 1.0
        assert report.iterations > 0

    def test_requires_some_budget(self):
        with pytest.raises(ValueError):
            make_driver().run()

    def test_timings_recorded(self):
        driver = make_driver()
        report = driver.run(iterations=10)
        assert report.timings.mutate > 0
        assert report.timings.optimize > 0
        assert report.timings.verify > 0

    def test_stop_on_first_finding(self):
        driver = make_driver(CLAMP, enabled_bugs=("53252",),
                             stop_on_first_finding=True)
        report = driver.run(iterations=500)
        assert len(report.findings) >= 1
        assert report.iterations < 500


class TestRepeatability:
    def test_recreate_seed(self):
        from repro.ir import print_module

        driver = make_driver()
        driver.run(iterations=5)
        replayed_a = driver.recreate(driver.config.base_seed + 3)
        replayed_b = driver.recreate(driver.config.base_seed + 3)
        assert print_module(replayed_a) == print_module(replayed_b)

    def test_failing_seed_reproduces_finding(self):
        driver = make_driver(CLAMP, enabled_bugs=("53252",))
        report = driver.run(iterations=150)
        failing = [f for f in report.findings if "53252" in f.bug_ids]
        assert failing
        # Re-running just that seed finds it again.
        fresh = make_driver(CLAMP, enabled_bugs=("53252",))
        findings = fresh.run_one(failing[0].seed)
        assert any("53252" in f.bug_ids for f in findings)


class TestSaving(object):
    def test_save_all(self, tmp_path):
        driver = make_driver(save_dir=str(tmp_path), save_all=True)
        driver.run(iterations=4)
        saved = list(tmp_path.iterdir())
        assert len(saved) == 4
        assert all(p.suffix == ".ll" for p in saved)

    def test_save_only_failures(self, tmp_path):
        driver = make_driver(CLAMP, enabled_bugs=("53252",), save_dir=str(tmp_path))
        report = driver.run(iterations=120)
        saved = {p.name for p in tmp_path.iterdir()}
        assert len(saved) == len({f.seed for f in report.findings})

    def test_log_file(self, tmp_path):
        log_path = str(tmp_path / "findings.jsonl")
        driver = make_driver(CLAMP, enabled_bugs=("53252",), log_path=log_path)
        report = driver.run(iterations=120)
        assert os.path.exists(log_path)
        loaded = BugLog.load(log_path)
        assert len(loaded.findings) == len(report.findings)


class TestFindings:
    def test_json_round_trip(self):
        finding = Finding(kind=CRASH, seed=5, file="a.ll", function="f",
                          detail="boom", bug_ids=["52884"])
        loaded = Finding.from_json(finding.to_json())
        assert loaded == finding

    def test_summary(self):
        finding = Finding(kind=MISCOMPILATION, seed=9, function="g",
                          bug_ids=["53252"])
        text = finding.summary()
        assert "miscompilation" in text and "53252" in text

    def test_bug_log_grouping(self):
        log = BugLog()
        log.record(Finding(kind=CRASH, seed=1, bug_ids=["52884"]))
        log.record(Finding(kind=MISCOMPILATION, seed=2, bug_ids=["53252"]))
        log.record(Finding(kind=CRASH, seed=3, bug_ids=["52884"]))
        assert len(log.crashes()) == 2
        assert len(log.miscompilations()) == 1
        assert len(log.attributed_bug_ids()["52884"]) == 2

    def test_bug_log_fsync_records_durably(self, tmp_path):
        path = str(tmp_path / "findings.jsonl")
        log = BugLog(path, fsync=True)
        log.record(Finding(kind=CRASH, seed=1, bug_ids=["52884"]))
        log.record(Finding(kind=MISCOMPILATION, seed=2, bug_ids=["53252"]))
        loaded = BugLog.load(path)
        assert [f.seed for f in loaded.findings] == [1, 2]

    def test_bug_log_load_drops_truncated_trailing_line(self, tmp_path):
        path = str(tmp_path / "findings.jsonl")
        log = BugLog(path)
        log.record(Finding(kind=CRASH, seed=1, bug_ids=["52884"]))
        log.record(Finding(kind=CRASH, seed=2, bug_ids=["52884"]))
        with open(path) as stream:
            text = stream.read()
        # A crash mid-append leaves a partial final line with no newline.
        with open(path, "w") as stream:
            stream.write(text[:-20])
        loaded = BugLog.load(path)
        assert [f.seed for f in loaded.findings] == [1]

    def test_bug_log_load_drops_newline_less_parsable_tail(self, tmp_path):
        path = str(tmp_path / "findings.jsonl")
        log = BugLog(path)
        log.record(Finding(kind=CRASH, seed=1, bug_ids=["52884"]))
        with open(path, "a") as stream:  # complete JSON, newline lost
            stream.write(Finding(kind=CRASH, seed=2).to_json())
        loaded = BugLog.load(path)
        assert [f.seed for f in loaded.findings] == [1]

    def test_bug_log_load_skips_foreign_records(self, tmp_path):
        # Headers, format markers, or records from a newer writer may
        # interleave with findings (the corpus journals already mix
        # record kinds this way); they are metadata, not corruption.
        path = str(tmp_path / "findings.jsonl")
        log = BugLog(path)
        with open(path, "w") as stream:
            stream.write('{"kind": "header", "version": 2}\n')
            stream.write('"not even an object"\n')
        log.record(Finding(kind=CRASH, seed=1, bug_ids=["52884"]))
        with open(path, "a") as stream:
            stream.write('{"format": "bitcode", "data": "AAAA"}\n')
        log.record(Finding(kind=MISCOMPILATION, seed=2, bug_ids=["53252"]))
        loaded = BugLog.load(path)
        assert [f.seed for f in loaded.findings] == [1, 2]
        assert len(loaded.crashes()) == 1

    def test_bug_log_load_raises_on_middle_corruption(self, tmp_path):
        path = str(tmp_path / "findings.jsonl")
        log = BugLog(path)
        log.record(Finding(kind=CRASH, seed=1, bug_ids=["52884"]))
        with open(path, "a") as stream:
            stream.write("{corrupt\n")
        log2 = BugLog(path)
        log2.record(Finding(kind=CRASH, seed=3, bug_ids=["52884"]))
        with pytest.raises(json.JSONDecodeError):
            BugLog.load(path)


class TestMutationAccounting:
    def test_mutation_counts_aggregate(self):
        driver = make_driver()
        report = driver.run(iterations=40)
        assert report.mutation_counts
        assert sum(report.mutation_counts.values()) >= 40
        from repro.mutate.mutations import MUTATIONS

        assert set(report.mutation_counts) <= set(MUTATIONS)
