"""System-level property tests (hypothesis).

These are the invariants the whole reproduction rests on:

1. every mutant of every corpus shape is valid IR (paper §II's 100%);
2. the (bug-free) optimizer is refinement-sound on arbitrary mutants —
   differential testing of our own passes with our own validator;
3. parse/print round-trips are lossless on mutants;
4. the mutate→optimize→verify loop is deterministic end to end.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fuzz.seeds import ARCHETYPES, generate_corpus
from repro.ir import (is_valid_module, parse_module, print_module,
                      verify_module)
from repro.mutate import Mutator, MutatorConfig
from repro.opt import OptContext, PassManager
from repro.tv import RefinementConfig, Verdict, check_refinement

CORPUS = generate_corpus(len(ARCHETYPES), seed=2024)

PIPELINES = ["O1", "O2", "backend", "O2+backend"]

common_settings = settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@common_settings
@given(file_index=st.integers(0, len(CORPUS) - 1),
       seed=st.integers(0, 2**31))
def test_mutants_always_valid(file_index, seed):
    name, text = CORPUS[file_index]
    mutator = Mutator(parse_module(text, name),
                      MutatorConfig(max_mutations=4))
    mutant, record = mutator.create_mutant(seed)
    assert is_valid_module(mutant), record.describe()


@common_settings
@given(file_index=st.integers(0, len(CORPUS) - 1),
       seed=st.integers(0, 2**31))
def test_mutants_round_trip_through_text(file_index, seed):
    name, text = CORPUS[file_index]
    mutator = Mutator(parse_module(text, name))
    mutant, _ = mutator.create_mutant(seed)
    printed = print_module(mutant)
    reparsed = parse_module(printed)
    verify_module(reparsed)
    assert print_module(reparsed) == printed


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(file_index=st.integers(0, len(CORPUS) - 1),
       seed=st.integers(0, 2**31),
       pipeline=st.sampled_from(PIPELINES))
def test_optimizer_is_refinement_sound_on_mutants(file_index, seed, pipeline):
    """Differential fuzzing of our own optimizer: with no seeded bugs
    enabled, no mutant may be miscompiled."""
    name, text = CORPUS[file_index]
    module = parse_module(text, name)
    mutator = Mutator(module, MutatorConfig(max_mutations=3))
    mutant, record = mutator.create_mutant(seed)

    optimized = mutant.clone()
    PassManager([pipeline], OptContext()).run(optimized)
    verify_module(optimized)

    config = RefinementConfig(max_inputs=12, seed=seed & 0xFFFF)
    for fn in mutant.definitions():
        tgt = optimized.get_function(fn.name)
        if tgt is None or tgt.is_declaration():
            continue
        result = check_refinement(fn, tgt, mutant, optimized, config)
        assert result.verdict != Verdict.UNSOUND, (
            f"{name} seed={seed} {pipeline} {record.describe()}: "
            f"{result.counterexample}\n--- mutant ---\n{print_module(mutant)}"
            f"\n--- optimized ---\n{print_module(optimized)}")


@common_settings
@given(file_index=st.integers(0, len(CORPUS) - 1),
       seed=st.integers(0, 2**31))
def test_end_to_end_determinism(file_index, seed):
    from repro.fuzz import FuzzConfig, FuzzDriver
    from repro.mutate import MutatorConfig as MC

    name, text = CORPUS[file_index]

    def one_run():
        driver = FuzzDriver(parse_module(text, name),
                            FuzzConfig(pipeline="O2",
                                       mutator=MC(max_mutations=2),
                                       tv=RefinementConfig(max_inputs=8),
                                       base_seed=seed),
                            file_name=name)
        report = driver.run(iterations=3)
        return [(f.kind, f.seed, f.function) for f in report.findings]

    assert one_run() == one_run()


def test_optimizer_idempotent_on_corpus():
    """Running O2 twice must give the same result as running it once."""
    for name, text in CORPUS[:10]:
        module = parse_module(text, name)
        once = module.clone()
        PassManager(["O2"], OptContext()).run(once)
        twice = once.clone()
        PassManager(["O2"], OptContext()).run(twice)
        assert print_module(once) == print_module(twice), name
