"""Edge-case tests for the translation validator: pointers, external
calls, assume bundles, and behavior-set enumeration."""

import pytest

from repro.tv import (Interpreter, RefinementConfig, Verdict, behavior_set,
                      check_refinement)
from repro.tv.refine import TestInput as TVInput

from helpers import parsed


class TestPointerSemantics:
    def test_pointer_equality_by_block_and_offset(self):
        module = parsed("""
define i1 @f(ptr %p) {
  %g = getelementptr i8, ptr %p, i64 0
  %r = icmp eq ptr %g, %p
  ret i1 %r
}
""")
        interp = Interpreter(module)
        pointer = interp.memory.add_block("arg:p", 8)
        assert interp.run(module.get_function("f"), [pointer]) == 1

    def test_offset_pointers_not_equal(self):
        module = parsed("""
define i1 @f(ptr %p) {
  %g = getelementptr i8, ptr %p, i64 1
  %r = icmp eq ptr %g, %p
  ret i1 %r
}
""")
        interp = Interpreter(module)
        pointer = interp.memory.add_block("arg:p", 8)
        assert interp.run(module.get_function("f"), [pointer]) == 0

    def test_null_comparison(self):
        module = parsed("""
define i1 @f(ptr %p) {
  %r = icmp eq ptr %p, null
  ret i1 %r
}
""")
        interp = Interpreter(module)
        pointer = interp.memory.add_block("arg:p", 8)
        assert interp.run(module.get_function("f"), [pointer]) == 0

    def test_pointer_ordering_is_consistent(self):
        module = parsed("""
define i1 @f(ptr %p, ptr %q) {
  %a = icmp ult ptr %p, %q
  %b = icmp ugt ptr %q, %p
  %r = icmp eq i1 %a, %b
  ret i1 %r
}
""")
        interp = Interpreter(module)
        p = interp.memory.add_block("arg:p", 8)
        q = interp.memory.add_block("arg:q", 8)
        assert interp.run(module.get_function("f"), [p, q]) == 1

    def test_stored_pointer_round_trips(self):
        module = parsed("""
define i8 @f(ptr %p) {
  %slot = alloca ptr
  store ptr %p, ptr %slot
  %loaded = load ptr, ptr %slot
  %v = load i8, ptr %loaded
  ret i8 %v
}
""")
        interp = Interpreter(module)
        pointer = interp.memory.add_block("arg:p", 4, [42, 0, 0, 0])
        assert interp.run(module.get_function("f"), [pointer]) == 42


class TestExternalCallModel:
    def test_readonly_depends_on_memory(self):
        module = parsed("""
declare i32 @peek(ptr) readonly

define i1 @f(ptr %p) {
  %a = call i32 @peek(ptr %p)
  store i8 77, ptr %p
  %b = call i32 @peek(ptr %p)
  %r = icmp eq i32 %a, %b
  ret i1 %r
}
""")
        interp = Interpreter(module)
        pointer = interp.memory.add_block("arg:p", 4, [1, 2, 3, 4])
        # The store changes the pointee, so the readonly function may
        # (and in our model, does) return a different value.
        assert interp.run(module.get_function("f"), [pointer]) == 0

    def test_readnone_ignores_memory(self):
        module = parsed("""
declare i32 @pure(i32) readnone

define i1 @f(i32 %x) {
  %a = call i32 @pure(i32 %x)
  %b = call i32 @pure(i32 %x)
  %r = icmp eq i32 %a, %b
  ret i1 %r
}
""")
        interp = Interpreter(module)
        assert interp.run(module.get_function("f"), [5]) == 1

    def test_stateful_calls_differ_by_sequence(self):
        module = parsed("""
declare i32 @rand()

define i1 @f() {
  %a = call i32 @rand()
  %b = call i32 @rand()
  %r = icmp eq i32 %a, %b
  ret i1 %r
}
""")
        interp = Interpreter(module)
        # Sequence-numbered: two calls give different values.
        assert interp.run(module.get_function("f"), []) == 0


class TestAssumeBundles:
    def test_nonnull_bundle_ub_on_null(self):
        from repro.tv import UBError

        module = parsed("""
declare void @llvm.assume(i1)

define i8 @f(ptr %p) {
  call void @llvm.assume(i1 true) [ "nonnull"(ptr %p) ]
  ret i8 1
}
""")
        interp = Interpreter(module)
        from repro.tv import NULL_POINTER

        with pytest.raises(UBError):
            interp.run(module.get_function("f"), [NULL_POINTER])

    def test_assume_constrains_validation_inputs(self):
        # Replacing x with 5 under assume(x == 5) is sound; the validator
        # must agree because violating inputs hit UB in the source.
        src = parsed("""
declare void @llvm.assume(i1)

define i32 @f(i32 %x) {
  %c = icmp eq i32 %x, 5
  call void @llvm.assume(i1 %c)
  ret i32 %x
}
""")
        tgt = parsed("""
declare void @llvm.assume(i1)

define i32 @f(i32 %x) {
  %c = icmp eq i32 %x, 5
  call void @llvm.assume(i1 %c)
  ret i32 5
}
""")
        result = check_refinement(src.get_function("f"),
                                  tgt.get_function("f"), src, tgt,
                                  RefinementConfig(max_inputs=32))
        assert result.verdict == Verdict.CORRECT


class TestBehaviorSets:
    def test_deterministic_function_single_outcome(self):
        module = parsed("""
define i8 @f(i8 %x) {
  %r = add i8 %x, 1
  ret i8 %r
}
""")
        outcomes, exhausted = behavior_set(
            module.get_function("f"), TVInput((5,)), module,
            RefinementConfig())
        assert exhausted
        assert len(outcomes) == 1
        assert outcomes[0].value == 6

    def test_narrow_undef_enumerates_fully(self):
        module = parsed("""
define i2 @f() {
  %r = add i2 undef, 0
  ret i2 %r
}
""")
        outcomes, exhausted = behavior_set(
            module.get_function("f"), TVInput(()), module,
            RefinementConfig(max_nondet_runs=8))
        assert exhausted
        assert {o.value for o in outcomes} == {0, 1, 2, 3}

    def test_wide_undef_marks_truncated(self):
        module = parsed("""
define i32 @f() {
  ret i32 undef
}
""")
        outcomes, exhausted = behavior_set(
            module.get_function("f"), TVInput(()), module,
            RefinementConfig(max_nondet_runs=16))
        assert not exhausted  # sampled domain -> under-approximate

    def test_ub_outcome_recorded(self):
        module = parsed("""
define i8 @f(i8 %x) {
  %r = udiv i8 1, %x
  ret i8 %r
}
""")
        outcomes, _ = behavior_set(
            module.get_function("f"), TVInput((0,)), module,
            RefinementConfig())
        assert outcomes[0].is_ub()
