"""Tests for the interned type system."""

import pytest

from repro.ir import (FunctionType, I1, I8, I32, IntType, LabelType, PTR,
                      PtrType, VOID, VoidType, int_type)
from repro.ir.types import MAX_INT_BITS, same_type


class TestIntType:
    def test_interning(self):
        assert IntType(32) is IntType(32)
        assert IntType(7) is IntType(7)
        assert IntType(32) is not IntType(33)

    def test_singleton_aliases(self):
        assert I1 is IntType(1)
        assert I8 is IntType(8)
        assert I32 is IntType(32)

    def test_width(self):
        assert IntType(26).width == 26

    def test_mask(self):
        assert IntType(8).mask == 0xFF
        assert IntType(1).mask == 1
        assert IntType(3).mask == 7

    def test_signed_bounds(self):
        t = IntType(8)
        assert t.signed_min == -128
        assert t.signed_max == 127
        assert t.unsigned_max == 255

    def test_signed_bounds_i1(self):
        assert IntType(1).signed_min == -1
        assert IntType(1).signed_max == 0

    def test_str(self):
        assert str(IntType(26)) == "i26"

    @pytest.mark.parametrize("width", [0, -1, MAX_INT_BITS + 1, "8"])
    def test_invalid_widths(self, width):
        with pytest.raises(ValueError):
            IntType(width)

    def test_int_type_helper(self):
        assert int_type(12) is IntType(12)

    def test_classification(self):
        assert I32.is_integer()
        assert not I32.is_pointer()
        assert I32.is_first_class()


class TestOtherTypes:
    def test_void_singleton(self):
        assert VoidType() is VoidType()
        assert VOID.is_void()
        assert str(VOID) == "void"
        assert not VOID.is_first_class()

    def test_ptr_singleton(self):
        assert PtrType() is PtrType()
        assert PTR.is_pointer()
        assert str(PTR) == "ptr"
        assert PTR.is_first_class()

    def test_label(self):
        assert LabelType() is LabelType()
        assert LabelType().is_label()

    def test_same_type(self):
        assert same_type(IntType(5), IntType(5))
        assert not same_type(IntType(5), IntType(6))


class TestFunctionType:
    def test_interning(self):
        a = FunctionType(I32, (I32, PTR))
        b = FunctionType(I32, (I32, PTR))
        assert a is b

    def test_fields(self):
        ft = FunctionType(VOID, (I8,))
        assert ft.return_type is VOID
        assert ft.param_types == (I8,)
        assert not ft.is_vararg

    def test_vararg_distinct(self):
        assert FunctionType(I32, (), True) is not FunctionType(I32, (), False)

    def test_str(self):
        assert str(FunctionType(I32, (I8, PTR))) == "i32 (i8, ptr)"
        assert str(FunctionType(VOID, (), True)) == "void (...)"
        assert str(FunctionType(VOID, (I8,), True)) == "void (i8, ...)"

    def test_is_function(self):
        assert FunctionType(VOID, ()).is_function()
