"""Tests for the .ll lexer and parser."""

import pytest

from repro.ir import (BinaryOperator, CallInst, GEPInst, ICmpInst, IntType,
                      LoadInst, ParseError, PhiNode, parse_function,
                      parse_module, SelectInst, StoreInst, SwitchInst)
from repro.ir.parser.lexer import LexError, tokenize

from helpers import parsed, round_trips, single_function


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("define i32 @f(%x) { }")
        kinds = [t.kind for t in tokens]
        assert kinds == ["word", "word", "global", "punct", "local", "punct",
                         "punct", "punct", "eof"]

    def test_comments_dropped(self):
        tokens = tokenize("add ; this is a comment\nsub")
        assert [t.text for t in tokens[:-1]] == ["add", "sub"]

    def test_negative_numbers(self):
        tokens = tokenize("-16 16")
        assert tokens[0].kind == "int" and tokens[0].text == "-16"
        assert tokens[1].kind == "int" and tokens[1].text == "16"

    def test_strings(self):
        tokens = tokenize('"align"')
        assert tokens[0].kind == "string" and tokens[0].text == "align"

    def test_quoted_local_name(self):
        tokens = tokenize('%"weird name"')
        assert tokens[0].kind == "local"
        assert tokens[0].text == "weird name"

    def test_attr_group_token(self):
        tokens = tokenize("#0")
        assert tokens[0].kind == "attr_group" and tokens[0].text == "0"

    def test_metadata_token(self):
        assert tokenize("!dbg")[0].kind == "metadata"

    def test_line_numbers(self):
        tokens = tokenize("a\nb")
        assert tokens[0].line == 1 and tokens[1].line == 2

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')


class TestParseBasics:
    def test_simple_function(self):
        fn = single_function("""
define i32 @f(i32 %x) {
  %r = add i32 %x, 1
  ret i32 %r
}
""")
        assert fn.name == "f"
        assert fn.num_args() == 1
        assert isinstance(fn.blocks[0].instructions[0], BinaryOperator)

    def test_declaration(self):
        module = parsed("declare void @ext(ptr, i32)")
        ext = module.get_function("ext")
        assert ext.is_declaration()
        assert ext.function_type.param_types[1] is IntType(32)

    def test_typed_pointer_normalized(self):
        fn = single_function("""
define i32 @f(i32* %p) {
  %v = load i32, i32* %p
  ret i32 %v
}
""")
        assert fn.arguments[0].type.is_pointer()

    def test_flags(self):
        fn = single_function("""
define i8 @f(i8 %x) {
  %a = add nuw nsw i8 %x, 1
  %b = lshr exact i8 %a, 1
  ret i8 %b
}
""")
        add, lshr = fn.blocks[0].instructions[:2]
        assert add.nuw and add.nsw
        assert lshr.exact

    def test_icmp_and_select(self):
        fn = single_function("""
define i32 @f(i32 %x) {
  %c = icmp sle i32 %x, -5
  %r = select i1 %c, i32 %x, i32 7
  ret i32 %r
}
""")
        cmp, sel = fn.blocks[0].instructions[:2]
        assert isinstance(cmp, ICmpInst) and cmp.predicate == "sle"
        assert isinstance(sel, SelectInst)
        assert cmp.rhs.signed_value() == -5

    def test_boolean_literals(self):
        fn = single_function("""
define i1 @f() {
  %r = select i1 true, i1 false, i1 true
  ret i1 %r
}
""")
        sel = fn.blocks[0].instructions[0]
        assert sel.condition.value == 1

    def test_undef_poison_null(self):
        fn = single_function("""
define i32 @f(ptr %p) {
  %c = icmp eq ptr %p, null
  %r = select i1 %c, i32 undef, i32 poison
  ret i32 %r
}
""")
        sel = fn.blocks[0].instructions[1]
        from repro.ir import PoisonValue, UndefValue

        assert isinstance(sel.true_value, UndefValue)
        assert isinstance(sel.false_value, PoisonValue)

    def test_casts(self):
        fn = single_function("""
define i64 @f(i8 %x) {
  %a = zext i8 %x to i32
  %b = sext i32 %a to i64
  %c = trunc i64 %b to i16
  %d = zext i16 %c to i64
  ret i64 %d
}
""")
        kinds = [i.opcode for i in fn.blocks[0].instructions[:4]]
        assert kinds == ["zext", "sext", "trunc", "zext"]

    def test_memory_ops(self):
        fn = single_function("""
define void @f(ptr %p) {
  %a = alloca i32, align 8
  %v = load i32, ptr %p, align 4
  store i32 %v, ptr %a, align 2
  ret void
}
""")
        alloca, load, store = fn.blocks[0].instructions[:3]
        assert alloca.align == 8
        assert isinstance(load, LoadInst) and load.align == 4
        assert isinstance(store, StoreInst) and store.align == 2

    def test_gep(self):
        fn = single_function("""
define ptr @f(ptr %p, i64 %i) {
  %g = getelementptr inbounds i32, ptr %p, i64 %i
  ret ptr %g
}
""")
        gep = fn.blocks[0].instructions[0]
        assert isinstance(gep, GEPInst) and gep.inbounds

    def test_freeze(self):
        fn = single_function("""
define i32 @f(i32 %x) {
  %f = freeze i32 %x
  ret i32 %f
}
""")
        assert fn.blocks[0].instructions[0].opcode == "freeze"


class TestParseControlFlow:
    def test_branches_and_labels(self):
        fn = single_function("""
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %yes, label %no
yes:
  ret i32 1
no:
  ret i32 0
}
""")
        assert [b.name for b in fn.blocks] == ["entry", "yes", "no"]

    def test_implicit_entry_label(self):
        fn = single_function("""
define i32 @f(i1 %c) {
  br i1 %c, label %a, label %b
a:
  ret i32 1
b:
  ret i32 2
}
""")
        assert len(fn.blocks) == 3

    def test_forward_value_reference_in_phi(self):
        fn = single_function("""
define i32 @f(i32 %n) {
entry:
  br label %loop
loop:
  %i = phi i32 [ 0, %entry ], [ %inc, %loop ]
  %inc = add i32 %i, 1
  %c = icmp ult i32 %inc, %n
  br i1 %c, label %loop, label %out
out:
  ret i32 %i
}
""")
        phi = fn.block_named("loop").instructions[0]
        assert isinstance(phi, PhiNode)
        inc = fn.block_named("loop").instructions[1]
        assert phi.incoming()[1][0] is inc

    def test_switch(self):
        fn = single_function("""
define i8 @f(i8 %x) {
entry:
  switch i8 %x, label %d [ i8 0, label %a i8 1, label %b ]
a:
  ret i8 10
b:
  ret i8 20
d:
  ret i8 30
}
""")
        sw = fn.block_named("entry").terminator()
        assert isinstance(sw, SwitchInst)
        assert len(sw.cases()) == 2


class TestParseCallsAndAttributes:
    def test_call_with_bundle(self):
        module = parsed("""
declare void @llvm.assume(i1)

define void @f(ptr %p) {
  call void @llvm.assume(i1 true) [ "align"(ptr %p, i64 16) ]
  ret void
}
""")
        fn = module.get_function("f")
        call = fn.blocks[0].instructions[0]
        assert isinstance(call, CallInst)
        assert call.bundles[0].tag == "align"
        assert len(call.bundle_operands(call.bundles[0])) == 2

    def test_implicit_declaration(self):
        module = parsed("""
define void @f(ptr %p) {
  call void @unknown(ptr %p)
  ret void
}
""")
        assert module.get_function("unknown") is not None

    def test_param_attributes(self):
        fn = single_function("""
define i32 @f(ptr nocapture dereferenceable(8) %p, i32 noundef %x) {
  ret i32 %x
}
""")
        assert fn.arguments[0].attributes.has("nocapture")
        assert fn.arguments[0].attributes.get_int("dereferenceable") == 8
        assert fn.arguments[1].attributes.has("noundef")

    def test_function_attributes_inline(self):
        fn = single_function("""
define i32 @f(i32 %x) nofree willreturn {
  ret i32 %x
}
""")
        assert fn.attributes.has("nofree")
        assert fn.attributes.has("willreturn")

    def test_attribute_group(self):
        module = parsed("""
define void @f() #0 {
  ret void
}

attributes #0 = { nounwind nofree }
""")
        assert module.get_function("f").attributes.has("nounwind")

    def test_declare_with_attrs(self):
        module = parsed("declare i32 @pure(i32) readnone willreturn")
        assert module.get_function("pure").attributes.has("readnone")


class TestParseErrors:
    @pytest.mark.parametrize("text", [
        "define i32 @f( {",                          # malformed params
        "define i32 @f() { ret i32 %nope\n}",        # undefined value
        "define i32 @f() { %x = add i32 1, 2\n%x = add i32 1, 2\nret i32 %x\n}",
        "define void @f() { br label %gone\n}",      # undefined label
        "frobnicate",                                # junk at top level
        "define i32 @f(i32 %x) { ret i32 %x\n}\ndefine i32 @f() { ret i32 0\n}",
    ])
    def test_rejects(self, text):
        with pytest.raises(ParseError):
            parse_module(text)

    def test_type_conflict(self):
        with pytest.raises(ParseError):
            parse_module("""
define i32 @f(i32 %x) {
  %a = add i32 %x, 1
  %b = add i64 %a, 1
  ret i32 %a
}
""")

    def test_parse_function_requires_one_definition(self):
        with pytest.raises(ParseError):
            parse_function("declare void @f()")


class TestRoundTrips:
    SNIPPETS = [
        """
define i32 @t1(i32 %x, i32 %low, i32 %high) {
  %t0 = icmp slt i32 %x, -16
  %t1 = select i1 %t0, i32 %low, i32 %high
  %t2 = add i32 %x, 16
  %t3 = icmp ult i32 %t2, 144
  %r = select i1 %t3, i32 %x, i32 %t1
  ret i32 %r
}
""",
        """
declare void @clobber(ptr)

define i32 @test9(ptr %p, ptr %q) {
  %a = load i32, ptr %q, align 4
  call void @clobber(ptr %p)
  %b = load i32, ptr %q, align 4
  %c = sub i32 %a, %b
  ret i32 %c
}
""",
        """
define i64 @lsr_zext(i1 %b) {
  %1 = zext i1 %b to i64
  %2 = lshr i64 %1, 1
  ret i64 %2
}
""",
        """
define i26 @odd(i26 %a) {
  %r = mul nsw i26 %a, %a
  ret i26 %r
}
""",
    ]

    @pytest.mark.parametrize("index", range(len(SNIPPETS)))
    def test_round_trip(self, index):
        assert round_trips(parsed(self.SNIPPETS[index]))
