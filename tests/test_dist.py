"""Distributed campaigns: lease protocol, node runners, coordinator merge.

Protocol-level tests drive :class:`WorkQueue` directly under a fake
clock (no wall-clock sleeps: lease expiry, backoff windows, and clock
skew are all simulated by advancing the clock), so every lease state
transition is exercised deterministically.  Campaign-level tests prove
the headline invariant — kill any node (or the coordinator)
mid-campaign, resume, and the merged findings + ``deterministic()``
metrics equal an uninterrupted single-host run, with reclaimed-job
duplicates deduplicated.
"""

from __future__ import annotations

import json
import os
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fuzz import CampaignConfig, run_campaign
from repro.fuzz.checkpoint import jobs_fingerprint
from repro.fuzz.dist import (DistConfig, NodeRunner, QueueMismatch,
                             WorkQueue, job_from_dict, job_to_dict,
                             merge_corpus_journals)
from repro.fuzz.driver import FuzzConfig
from repro.fuzz.faults import ChaosQueue, torn_write
from repro.fuzz.parallel import CampaignExecutor, ShardJob, ShardResult

SMALL = dict(corpus_size=4, mutants_per_file=8, max_inputs=8,
             pipelines=("O2",))
# The hypothesis property re-runs campaigns per example; keep them tiny.
TINY = dict(corpus_size=2, mutants_per_file=4, max_inputs=6,
            pipelines=("O2",))

IR = """define i32 @f(i32 %a) {
entry:
  %t = add i32 %a, 1
  ret i32 %t
}
"""


def report_key(report):
    """Everything that must be identical across distribution patterns."""
    return (
        report.total_iterations,
        report.total_findings,
        [(f.kind, f.seed, f.file, tuple(f.bug_ids))
         for f in report.unattributed],
        {bug_id: (o.found, o.first_file, o.first_seed, o.findings)
         for bug_id, o in report.outcomes.items()},
    )


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_jobs(count=3):
    return [ShardJob(job_index=index, file_name=f"f{index}.ll", text=IR,
                     config=FuzzConfig(base_seed=index * 100),
                     iterations=2)
            for index in range(count)]


def make_result(index, worker="w"):
    return ShardResult(job_index=index, file_name=f"f{index}.ll",
                       pipeline="O2", worker=worker, seed=index * 100,
                       iterations=2)


def published_queue(tmp_path, clock=None, node="n1", jobs=None, **manifest):
    jobs = make_jobs() if jobs is None else jobs
    fingerprint = jobs_fingerprint(jobs)
    coordinator = WorkQueue(str(tmp_path), node="coordinator")
    coordinator.publish(jobs, fingerprint, **manifest)
    queue = WorkQueue(str(tmp_path), node=node,
                      clock=clock or FakeClock())
    return queue, fingerprint


@pytest.fixture(scope="module")
def reference():
    return run_campaign(CampaignConfig(workers=1, **SMALL))


def dist_config(tmp_path, **extra):
    return CampaignConfig(
        workers=1,
        dist=DistConfig(queue_dir=os.path.join(str(tmp_path), "queue"),
                        wait_timeout=120.0, **extra.pop("dist", {})),
        **extra, **SMALL)


def run_distributed(config, node_names=("n1",), node_workers=1,
                    resume=False, chaos=None):
    """A coordinator thread plus in-process node runners."""
    box = {}

    def coordinate():
        box["report"] = run_campaign(config, resume=resume)

    coordinator = threading.Thread(target=coordinate)
    coordinator.start()
    reports = []
    try:
        for name in node_names:
            queue = (chaos(name) if chaos is not None
                     else WorkQueue(config.dist.queue_dir, node=name))
            runner = NodeRunner(queue, workers=node_workers)
            reports.append(runner.run(time_budget=120,
                                      wait_for_manifest=60))
    finally:
        coordinator.join(timeout=120)
    assert not coordinator.is_alive(), "coordinator did not finish"
    return box["report"], reports


# ---------------------------------------------------------------------------
# Job serialization.
# ---------------------------------------------------------------------------


class TestJobSerialization:
    def test_round_trip_preserves_fingerprint(self):
        jobs = make_jobs()
        rebuilt = [job_from_dict(json.loads(json.dumps(job_to_dict(job))))
                   for job in jobs]
        assert jobs_fingerprint(rebuilt) == jobs_fingerprint(jobs)

    def test_round_trip_preserves_budgets_and_deadline(self):
        job = make_jobs(1)[0]
        job.deadline = 12.5
        job.time_budget = 3.0
        job.confirm_attributions = True
        rebuilt = job_from_dict(job_to_dict(job))
        assert rebuilt.deadline == 12.5
        assert rebuilt.time_budget == 3.0
        assert rebuilt.confirm_attributions is True
        assert rebuilt.config.base_seed == job.config.base_seed


# ---------------------------------------------------------------------------
# The lease protocol (fake clock; no campaign runs).
# ---------------------------------------------------------------------------


class TestLeaseProtocol:
    def test_claim_is_exclusive(self, tmp_path):
        clock = FakeClock()
        queue, _ = published_queue(tmp_path, clock)
        other = WorkQueue(str(tmp_path), node="n2", clock=clock)
        taken = queue.claim(0)
        assert taken is not None
        job, lease = taken
        assert job.job_index == 0 and lease.attempt == 1
        assert other.claim(0) is None  # live lease

    def test_expired_lease_reclaims_with_bumped_attempt(self, tmp_path):
        clock = FakeClock()
        queue, _ = published_queue(tmp_path, clock,
                                   lease_duration=10.0, retry_backoff=1.0)
        queue.claim(0)
        other = WorkQueue(str(tmp_path), node="n2", clock=clock)
        clock.advance(10.5)           # expired, but inside backoff
        assert other.claim(0) is None
        clock.advance(1.0)            # past expiry + backoff
        taken = other.claim(0)
        assert taken is not None
        assert taken[1].attempt == 2
        assert taken[1].node == "n2"

    def test_reclaim_honors_exponential_backoff(self, tmp_path):
        clock = FakeClock()
        queue, _ = published_queue(tmp_path, clock, lease_duration=10.0,
                                   retry_backoff=2.0, max_attempts=5)
        queue.claim(0)
        clock.advance(12.5)           # 10 + backoff 2*2^0
        assert queue.claim(0) is not None  # attempt 2
        clock.advance(10.5)
        assert queue.claim(0) is None  # attempt-2 backoff is 4s
        clock.advance(4.0)
        taken = queue.claim(0)
        assert taken is not None and taken[1].attempt == 3

    def test_attempts_exhausted_tombstones_as_node_lost(self, tmp_path):
        clock = FakeClock()
        queue, _ = published_queue(tmp_path, clock, lease_duration=5.0,
                                   max_attempts=2, retry_backoff=0.1)
        queue.claim(0)
        clock.advance(100.0)
        queue.claim(0)                # attempt 2 (the last allowed)
        clock.advance(100.0)
        assert queue.claim(0) is None  # exhausted: tombstoned instead
        stones = queue.collect_tombstones()
        assert stones[0]["reason"] == "node_lost"
        assert stones[0]["attempts"] == 2
        assert queue.settled(0)

    def test_released_lease_tombstones_as_quarantine(self, tmp_path):
        clock = FakeClock()
        queue, _ = published_queue(tmp_path, clock, max_attempts=1)
        _job, lease = queue.claim(0)
        queue.release_for_retry(0, lease, "hang", "deadline exceeded")
        assert queue.claim(0) is None
        stones = queue.collect_tombstones()
        assert stones[0]["reason"] == "quarantine"
        assert "deadline exceeded" in stones[0]["error"]

    def test_released_lease_is_reclaimable_before_exhaustion(self, tmp_path):
        clock = FakeClock()
        queue, _ = published_queue(tmp_path, clock, max_attempts=3,
                                   retry_backoff=1.0)
        _job, lease = queue.claim(0)
        queue.release_for_retry(0, lease, "crash", "worker died")
        assert queue.claim(0) is None  # inside backoff
        clock.advance(2.0)
        taken = queue.claim(0)
        assert taken is not None and taken[1].attempt == 2

    def test_heartbeat_renews_and_detects_loss(self, tmp_path):
        clock = FakeClock()
        queue, _ = published_queue(tmp_path, clock, lease_duration=10.0,
                                   retry_backoff=0.1)
        queue.claim(0)
        clock.advance(8.0)
        assert queue.heartbeat(0, 10.0)
        clock.advance(8.0)            # would be past the original expiry
        lease = queue.read_lease(0)
        assert lease.expires_at > clock()
        # Another node steals after expiry; our next heartbeat reports loss.
        clock.advance(20.0)
        thief = WorkQueue(str(tmp_path), node="thief", clock=clock)
        assert thief.claim(0) is not None
        assert not queue.heartbeat(0, 10.0)
        assert queue.metrics.counter("dist.lease.lost") == 1

    def test_heartbeat_under_clock_skew_keeps_exclusivity(self, tmp_path):
        base = FakeClock()
        queue, _ = published_queue(tmp_path, base, lease_duration=10.0)
        skewed = ChaosQueue(str(tmp_path), node="n1", clock=base,
                            clock_skew=-6.0)  # this node's clock runs behind
        skewed.claim(0)
        # The skewed owner heartbeats on its own (late) clock; a peer on
        # true time must still see a live lease after renewal.
        base.advance(8.0)
        assert skewed.heartbeat(0, 10.0)
        peer = WorkQueue(str(tmp_path), node="n2", clock=base)
        # expires_at = skewed_now(2.0) + 10 = 12 > true now (8): still live.
        assert peer.claim(0) is None
        # Skew eats into effective lease time but never grants two owners:
        # once the true clock passes the skewed expiry the lease is simply
        # reclaimable, which is the at-least-once path, not a safety hole.
        base.advance(10.0)
        assert peer.claim(0) is not None

    def test_damaged_lease_file_reads_as_claimable(self, tmp_path):
        clock = FakeClock()
        queue, _ = published_queue(tmp_path, clock)
        queue.claim(0)
        torn_write(queue.lease_path(0), b'{"kind": "lease", "node": "n1"',
                   fraction=0.7)
        other = WorkQueue(str(tmp_path), node="n2", clock=clock)
        taken = other.claim(0)
        assert taken is not None and taken[1].node == "n2"

    def test_sweep_retires_exhausted_leases(self, tmp_path):
        clock = FakeClock()
        queue, _ = published_queue(tmp_path, clock, lease_duration=5.0,
                                   max_attempts=1)
        queue.claim(0)
        queue.claim(1)
        clock.advance(100.0)
        sweeper = WorkQueue(str(tmp_path), node="coordinator", clock=clock)
        assert sweeper.sweep() == 2
        stones = sweeper.collect_tombstones()
        assert set(stones) == {0, 1}
        assert all(s["reason"] == "node_lost" for s in stones.values())
        assert sweeper.metrics.counter("dist.node_lost") == 2


# ---------------------------------------------------------------------------
# Result publishing: dedup, repair, foreign fingerprints.
# ---------------------------------------------------------------------------


class TestResultPublishing:
    def test_duplicate_result_is_dropped_deterministically(self, tmp_path):
        queue, fingerprint = published_queue(tmp_path)
        first = make_result(0, worker="n1")
        assert queue.publish_result(first, fingerprint)
        dupe = make_result(0, worker="n2")
        dupe.iterations = 999  # would corrupt totals if it won
        assert not queue.publish_result(dupe, fingerprint)
        collected = queue.collect_results(fingerprint)
        assert collected[0].worker == "n1"
        assert collected[0].iterations == 2
        assert queue.metrics.counter("dist.results.duplicate") == 1

    def test_torn_result_reads_as_absent_and_is_repaired(self, tmp_path):
        queue, fingerprint = published_queue(tmp_path)
        path = queue.result_path(0)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        torn_write(path, json.dumps(
            {"kind": "result", "fingerprint": fingerprint,
             "result": {"job_index": 0}}).encode(), fraction=0.4)
        assert not queue.has_result(0)
        assert 0 not in queue.collect_results(fingerprint)
        assert queue.publish_result(make_result(0), fingerprint)  # repair
        assert queue.collect_results(fingerprint)[0].iterations == 2

    def test_foreign_fingerprint_results_are_dropped(self, tmp_path):
        queue, fingerprint = published_queue(tmp_path)
        queue.publish_result(make_result(0), "cafebabe" * 8)
        assert queue.collect_results(fingerprint) == {}
        assert queue.metrics.counter("dist.results.foreign") == 1

    def test_queue_dir_rejects_second_campaign(self, tmp_path):
        _queue, _fingerprint = published_queue(tmp_path)
        other_jobs = [ShardJob(job_index=0, file_name="other.ll", text=IR,
                               config=FuzzConfig(base_seed=7),
                               iterations=1)]
        coordinator = WorkQueue(str(tmp_path), node="coordinator")
        with pytest.raises(QueueMismatch):
            coordinator.publish(other_jobs, jobs_fingerprint(other_jobs))

    def test_republish_same_campaign_is_idempotent(self, tmp_path):
        queue, fingerprint = published_queue(tmp_path)
        coordinator = WorkQueue(str(tmp_path), node="coordinator")
        coordinator.publish(make_jobs(), fingerprint)
        assert queue.manifest()["fingerprint"] == fingerprint
        assert queue.published_indexes() == [0, 1, 2]


# ---------------------------------------------------------------------------
# Chaos injections.
# ---------------------------------------------------------------------------


class TestChaosQueue:
    def test_force_expire_reclaims_without_waiting(self, tmp_path):
        clock = FakeClock()
        chaos = ChaosQueue(str(tmp_path), node="n1", clock=clock)
        queue, _ = published_queue(tmp_path, clock, retry_backoff=0.0)
        del queue
        chaos.claim(0)
        assert chaos.force_expire(0)
        other = WorkQueue(str(tmp_path), node="n2", clock=clock)
        taken = other.claim(0)
        assert taken is not None and taken[1].attempt == 2

    def test_duplicate_delivery_lets_settled_job_be_reclaimed(self,
                                                              tmp_path):
        clock = FakeClock()
        _queue, fingerprint = published_queue(tmp_path, clock,
                                              retry_backoff=0.0)
        chaos = ChaosQueue(str(tmp_path), node="n2", clock=clock,
                           duplicate_delivery={0: 1})
        first = WorkQueue(str(tmp_path), node="n1", clock=clock)
        first.claim(0)
        first.publish_result(make_result(0, worker="n1"), fingerprint)
        clock.advance(100.0)
        taken = chaos.claim(0)        # sees the job as still open once
        assert taken is not None
        assert not chaos.publish_result(make_result(0, worker="n2"),
                                        fingerprint)  # deduped
        assert chaos.collect_results(fingerprint)[0].worker == "n1"


# ---------------------------------------------------------------------------
# Distributed campaigns end to end.
# ---------------------------------------------------------------------------


class TestDistributedCampaign:
    def test_single_node_matches_single_host(self, tmp_path, reference):
        config = dist_config(tmp_path)
        report, (node_report,) = run_distributed(config)
        assert report_key(report) == report_key(reference)
        assert report.metrics.deterministic() == \
            reference.metrics.deterministic()
        assert node_report.published == node_report.jobs_run
        assert not report.failed_shards and not report.quarantined

    def test_two_nodes_match_single_host(self, tmp_path, reference):
        config = dist_config(tmp_path)
        report, node_reports = run_distributed(
            config, node_names=("n1", "n2"), node_workers=2)
        assert report_key(report) == report_key(reference)
        assert report.metrics.deterministic() == \
            reference.metrics.deterministic()
        assert sum(r.published for r in node_reports) == SMALL["corpus_size"]

    def test_node_loss_recovers_with_parity(self, tmp_path, reference):
        """A node claims jobs and dies (lease expiry forced); a healthy
        node reclaims and finishes; the merged report shows parity."""
        config = dist_config(tmp_path,
                             dist=dict(lease_duration=5.0, max_attempts=3))
        queue_dir = config.dist.queue_dir

        def chaos(name):
            if name == "doomed":
                return ChaosQueue(queue_dir, node=name)
            return WorkQueue(queue_dir, node=name)

        box = {}

        def coordinate():
            box["report"] = run_campaign(config)

        coordinator = threading.Thread(target=coordinate)
        coordinator.start()
        try:
            # The doomed node claims one job and vanishes mid-lease.
            doomed = ChaosQueue(queue_dir, node="doomed")
            runner = NodeRunner(doomed, workers=1)
            manifest = None
            import time as _time
            deadline = _time.monotonic() + 60
            while manifest is None and _time.monotonic() < deadline:
                manifest = doomed.manifest()
                if manifest is None:
                    _time.sleep(0.02)
            assert manifest is not None
            claimed = doomed.claim_next(limit=1)
            assert claimed
            dead_index = claimed[0][0].job_index
            del runner                # never runs the job: simulated kill -9
            doomed.force_expire(dead_index)
            # A healthy node drains everything, including the reclaim.
            healthy = NodeRunner(WorkQueue(queue_dir, node="healthy"),
                                 workers=1)
            healthy.run(time_budget=120, wait_for_manifest=60)
        finally:
            coordinator.join(timeout=120)
        assert not coordinator.is_alive()
        report = box["report"]
        assert report_key(report) == report_key(reference)
        assert report.metrics.deterministic() == \
            reference.metrics.deterministic()
        assert not report.failed_shards

    def test_coordinator_death_nodes_park_results_for_resume(
            self, tmp_path, reference):
        """Kill the coordinator before any result lands: nodes drain the
        queue on their own and park results; a restarted coordinator
        collects them without re-running anything."""
        config = dist_config(tmp_path)
        executor = CampaignExecutor(config)
        jobs = executor.build_jobs()
        fingerprint = jobs_fingerprint(jobs)
        # "Coordinator died right after publishing": only the queue
        # state exists, no coordinator process is polling.
        coordinator_queue = WorkQueue(config.dist.queue_dir,
                                      node="coordinator")
        coordinator_queue.publish(
            jobs, fingerprint, lease_duration=config.dist.lease_duration,
            max_attempts=config.dist.max_attempts,
            retry_backoff=config.retry_backoff)
        node = NodeRunner(WorkQueue(config.dist.queue_dir, node="n1"),
                          workers=2)
        node_report = node.run(time_budget=120, wait_for_manifest=5)
        assert node_report.published == len(jobs)
        # The restarted coordinator collects the parked results.
        report = run_campaign(config)
        assert report_key(report) == report_key(reference)
        assert report.metrics.deterministic() == \
            reference.metrics.deterministic()

    def test_torn_results_are_repaired_with_parity(self, tmp_path,
                                                   reference):
        """Chaos tears the first publish of two jobs mid-write; the
        reclaimed attempts repair them and parity holds."""
        config = dist_config(
            tmp_path, dist=dict(lease_duration=2.0, max_attempts=4))
        queue_dir = config.dist.queue_dir

        def chaos(name):
            return ChaosQueue(queue_dir, node=name,
                              torn_results={0: 1, 2: 1})

        report, (node_report,) = run_distributed(config, chaos=chaos)
        assert report_key(report) == report_key(reference)
        assert report.metrics.deterministic() == \
            reference.metrics.deterministic()
        # Chaos bookkeeping lives on the node's queue registry.
        assert node_report.metrics.counter("chaos.results.torn") == 2
        assert node_report.metrics.counter("dist.results.repaired") == 2

    def test_checkpointed_distributed_run_resumes(self, tmp_path,
                                                  reference):
        checkpoint = os.path.join(str(tmp_path), "ckpt")
        config = dist_config(tmp_path, checkpoint_dir=checkpoint)
        report, _ = run_distributed(config)
        assert report_key(report) == report_key(reference)
        # Resume with every job cached: no queue traffic needed.
        resume_config = dist_config(
            os.path.join(str(tmp_path), "second"),
            checkpoint_dir=checkpoint)
        resumed = run_campaign(resume_config, resume=True)
        assert resumed.resumed_jobs == SMALL["corpus_size"]
        assert report_key(resumed) == report_key(reference)
        assert resumed.metrics.deterministic() == \
            reference.metrics.deterministic()

    def test_feedback_corpus_deltas_merge_across_nodes(self, tmp_path):
        from repro.fuzz import Corpus
        from repro.fuzz.dist import MERGED_CORPUS_NAME
        from repro.fuzz.feedback import FeedbackConfig
        config = dist_config(tmp_path, feedback=FeedbackConfig(
            enabled=True, corpus_dir=os.path.join(str(tmp_path), "cd")))
        baseline = run_campaign(CampaignConfig(
            workers=1, feedback=FeedbackConfig(enabled=True), **SMALL))
        report, _ = run_distributed(config, node_names=("n1", "n2"))
        assert report_key(report) == report_key(baseline)
        merged_path = os.path.join(config.dist.queue_dir,
                                   MERGED_CORPUS_NAME)
        queue = WorkQueue(config.dist.queue_dir)
        if queue.corpus_paths():      # deltas only exist if jobs admitted
            merged = Corpus.load(merged_path, max_size=4096)
            per_job = [len(Corpus.load(path, max_size=4096).entries())
                       for _i, path in queue.corpus_paths()]
            assert len(merged) >= 1
            assert len(merged) <= sum(per_job)


# ---------------------------------------------------------------------------
# Hypothesis: any interleaving of node deaths yields the same findings.
# ---------------------------------------------------------------------------


_property_state = {}


def _property_reference():
    if "reference" not in _property_state:
        _property_state["reference"] = run_campaign(
            CampaignConfig(workers=1, **TINY))
    return _property_state["reference"]


class TestNodeDeathInterleavings:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.function_scoped_fixture])
    @given(deaths=st.lists(st.booleans(), min_size=0, max_size=6))
    def test_any_death_interleaving_preserves_findings(self, tmp_path,
                                                       deaths):
        """Each drawn boolean is one scheduling step: True = a node
        claims a job and dies mid-lease (kill -9), False = a node runs
        one job to completion.  Whatever the interleaving, the drained
        queue merges to the uninterrupted run's findings and
        deterministic metrics."""
        reference = _property_reference()
        import shutil
        import uuid
        queue_dir = os.path.join(str(tmp_path), uuid.uuid4().hex)
        config = CampaignConfig(
            workers=1,
            dist=DistConfig(queue_dir=queue_dir, wait_timeout=120.0,
                            lease_duration=30.0, max_attempts=100,
                            poll_interval=0.01),
            **TINY)
        executor = CampaignExecutor(config)
        jobs = executor.build_jobs()
        fingerprint = jobs_fingerprint(jobs)
        coordinator_queue = WorkQueue(queue_dir, node="coordinator")
        coordinator_queue.publish(jobs, fingerprint,
                                  lease_duration=30.0, max_attempts=100,
                                  retry_backoff=0.0)
        clock = FakeClock()
        for step, dies in enumerate(deaths):
            node = f"node-{step}"
            if dies:
                chaos = ChaosQueue(queue_dir, node=node, clock=clock)
                if chaos.claim_next(limit=1):
                    clock.advance(31.0)  # the dead node's lease expires
            else:
                runner = NodeRunner(
                    WorkQueue(queue_dir, node=node, clock=clock),
                    workers=1)
                runner.run_once()
        # A final healthy node drains whatever is left.
        clock.advance(1000.0)
        survivor = NodeRunner(
            WorkQueue(queue_dir, node="survivor", clock=clock), workers=1)
        while survivor.run_once() is not None:
            pass
        report = run_campaign(config)   # restarted coordinator collects
        assert report_key(report) == report_key(reference)
        assert report.metrics.deterministic() == \
            reference.metrics.deterministic()
        shutil.rmtree(queue_dir, ignore_errors=True)


# ---------------------------------------------------------------------------
# Corpus-journal merging.
# ---------------------------------------------------------------------------


class TestMergeCorpusJournals:
    def test_merges_in_job_index_order(self, tmp_path):
        from repro.fuzz.corpus import Corpus, CorpusEntry, CorpusJournal
        queue, _ = published_queue(tmp_path)
        for index, features in ((0, ("a", "b")), (1, ("b", "c"))):
            path = os.path.join(str(tmp_path), f"delta{index}.jsonl")
            journal = CorpusJournal(path)
            corpus = Corpus(max_size=16, journal=journal)
            corpus.consider(CorpusEntry(text=f"m{index}",
                                        fingerprint=f"fp{index}",
                                        features=frozenset(features)))
            journal.close()
            queue.publish_corpus(index, path)
        out = os.path.join(str(tmp_path), "merged.jsonl")
        merged = merge_corpus_journals(queue, out)
        assert merged == 2
        loaded = Corpus.load(out, max_size=16)
        assert {e.fingerprint for e in loaded.entries()} == {"fp0", "fp1"}

    def test_duplicate_features_deduplicate(self, tmp_path):
        from repro.fuzz.corpus import Corpus, CorpusEntry, CorpusJournal
        queue, _ = published_queue(tmp_path)
        for index in (0, 1):
            path = os.path.join(str(tmp_path), f"delta{index}.jsonl")
            journal = CorpusJournal(path)
            corpus = Corpus(max_size=16, journal=journal)
            corpus.consider(CorpusEntry(text=f"m{index}",
                                        fingerprint=f"fp{index}",
                                        features=frozenset(("same",))))
            journal.close()
            queue.publish_corpus(index, path)
        out = os.path.join(str(tmp_path), "merged.jsonl")
        assert merge_corpus_journals(queue, out) == 1
        loaded = Corpus.load(out, max_size=16)
        # Job-index order decides the surviving witness deterministically.
        assert [e.fingerprint for e in loaded.entries()] == ["fp0"]


# ---------------------------------------------------------------------------
# Binary payloads and deduplicated job records.
# ---------------------------------------------------------------------------


class TestWirePayloads:
    def test_config_requires_exactly_one_transport(self):
        with pytest.raises(ValueError):
            DistConfig().validate()
        with pytest.raises(ValueError):
            DistConfig(queue_dir="/tmp/q",
                       queue_addr="127.0.0.1:1").validate()
        with pytest.raises(ValueError):
            DistConfig(queue_dir="/tmp/q",
                       payload_format="morse").validate()
        assert DistConfig(queue_addr="127.0.0.1:1").validate()

    def test_identical_modules_share_one_blob(self, tmp_path):
        # make_jobs() publishes three jobs over the same module text:
        # content addressing stores the bitcode exactly once.
        queue, _ = published_queue(tmp_path)
        assert len(queue.blobs.digests()) == 1

    def test_unchanged_republish_skips_serialization(self, tmp_path):
        queue, fingerprint = published_queue(tmp_path)
        coordinator = WorkQueue(str(tmp_path), node="coordinator")
        coordinator.publish(make_jobs(), fingerprint)
        assert coordinator.metrics.counter("dist.jobs.unchanged") == 3
        assert coordinator.metrics.counter("dist.jobs.published") == 0
        assert queue.published_indexes() == [0, 1, 2]

    def test_legacy_inline_text_record_still_loads(self, tmp_path):
        # Queue version 1 wrote self-contained records with inline text
        # and full config; old queue directories must drain cleanly.
        queue, fingerprint = published_queue(tmp_path)
        legacy = make_jobs(1)[0]
        queue._write_atomic(queue.job_path(0), {
            "kind": "job",
            "fingerprint": fingerprint,
            "job": job_to_dict(legacy),
        })
        queue._job_cache.pop(0, None)
        loaded = queue.load_job(0)
        assert loaded is not None
        assert loaded.text == legacy.text
        assert loaded.config.base_seed == legacy.config.base_seed

    def test_text_payload_campaign_matches_single_host(self, tmp_path,
                                                       reference):
        config = dist_config(tmp_path,
                             dist=dict(payload_format="text"))
        report, _nodes = run_distributed(config)
        assert report_key(report) == report_key(reference)
        assert report.metrics.deterministic() == \
            reference.metrics.deterministic()
        assert report.metrics.counter("bitcode.encode.count") == 0

    def test_bitcode_payload_travels_by_default(self, tmp_path,
                                                reference):
        config = dist_config(tmp_path)
        report, _nodes = run_distributed(config)
        assert report_key(report) == report_key(reference)
        assert report.metrics.counter("bitcode.encode.count") > 0
