"""Tests for the individual mutation operators (paper §IV)."""

import pytest

from repro.analysis.overlay import MutantOverlay, OriginalFunctionInfo
from repro.ir import (BinaryOperator, CallInst, CastInst, print_module,
                      verify_module)
from repro.mutate import MutationRNG
from repro.mutate.mutations import (MUTATIONS, arithmetic, attributes,
                                    bitwidth, inlining, move, remove_calls,
                                    shuffle, uses)

from helpers import parsed

TEST9 = """
declare void @clobber(ptr)

define i32 @test9(ptr %p, ptr %q) {
  %a = load i32, ptr %q
  call void @clobber(ptr %p)
  %b = load i32, ptr %q
  %c = sub i32 %a, %b
  ret i32 %c
}
"""


def overlay_for(module, name="test9"):
    original = module.get_function(name)
    info = OriginalFunctionInfo(original)
    mutant_module = module.clone()
    mutant = mutant_module.get_function(name)
    return MutantOverlay(mutant, info), mutant_module


def apply_until(mutation, module, name="test9", max_seeds=200):
    """Apply a mutation with successive seeds until it fires."""
    for seed in range(max_seeds):
        overlay, mutant_module = overlay_for(module, name)
        if mutation(overlay, MutationRNG(seed)):
            verify_module(mutant_module)
            return mutant_module, seed
    raise AssertionError("mutation never applied")


class TestAttributes:
    def test_toggles_something(self):
        module = parsed(TEST9)
        mutated, _ = apply_until(attributes.apply, module)
        original = module.get_function("test9")
        mutant = mutated.get_function("test9")
        changed = (
            original.attributes != mutant.attributes
            or any(a.attributes != b.attributes
                   for a, b in zip(original.arguments, mutant.arguments)))
        assert changed

    def test_many_seeds_always_valid(self):
        module = parsed(TEST9)
        for seed in range(60):
            overlay, mutant_module = overlay_for(module)
            attributes.apply(overlay, MutationRNG(seed))
            verify_module(mutant_module)


class TestRemoveCalls:
    def test_removes_void_call(self):
        module = parsed(TEST9)
        mutated, _ = apply_until(remove_calls.apply, module)
        fn = mutated.get_function("test9")
        assert not any(isinstance(i, CallInst) for i in fn.instructions())

    def test_no_candidates(self):
        module = parsed("""
define i32 @f(i32 %x) {
  ret i32 %x
}
""")
        overlay, _ = overlay_for(module, "f")
        assert not remove_calls.apply(overlay, MutationRNG(0))

    def test_does_not_remove_assume(self):
        module = parsed("""
declare void @llvm.assume(i1)

define i8 @f(i1 %c) {
  call void @llvm.assume(i1 %c)
  ret i8 1
}
""")
        overlay, _ = overlay_for(module, "f")
        assert not remove_calls.apply(overlay, MutationRNG(0))


class TestShuffle:
    def test_reorders_listing8_style(self):
        # The paper's Listing 8: %a, call, %b are mutually independent.
        module = parsed(TEST9)
        mutated, _ = apply_until(shuffle.apply, module)
        fn = mutated.get_function("test9")
        opcodes = [i.opcode for i in fn.blocks[0].instructions]
        assert sorted(opcodes[:3]) == ["call", "load", "load"]
        original_opcodes = [i.opcode for i in
                            module.get_function("test9").blocks[0].instructions]
        assert opcodes != original_opcodes

    def test_no_ranges_no_shuffle(self):
        module = parsed("""
define i32 @f(i32 %x) {
  %a = add i32 %x, 1
  %b = mul i32 %a, 2
  %c = xor i32 %b, 3
  ret i32 %c
}
""")
        overlay, _ = overlay_for(module, "f")
        assert not shuffle.apply(overlay, MutationRNG(0))


class TestArithmetic:
    def test_opcode_change(self):
        module = parsed(TEST9)
        mutated, _ = apply_until(arithmetic.change_opcode, module)
        fn = mutated.get_function("test9")
        binops = [i for i in fn.instructions()
                  if isinstance(i, BinaryOperator)]
        assert binops[0].opcode != "sub"

    def test_opcode_change_clears_invalid_flags(self):
        module = parsed("""
define i32 @f(i32 %x) {
  %r = add nuw nsw i32 %x, 1
  ret i32 %r
}
""")
        for seed in range(100):
            overlay, mutant_module = overlay_for(module, "f")
            if arithmetic.change_opcode(overlay, MutationRNG(seed)):
                verify_module(mutant_module)

    def test_swap_operands(self):
        module = parsed(TEST9)
        mutated, _ = apply_until(arithmetic.swap_operands, module)
        fn = mutated.get_function("test9")
        sub = [i for i in fn.instructions()
               if isinstance(i, BinaryOperator)]
        if sub and sub[0].opcode == "sub":
            assert sub[0].lhs.name == "b" or sub[0].rhs.name == "a"

    def test_toggle_flags(self):
        module = parsed("""
define i32 @f(i32 %x) {
  %r = add i32 %x, 1
  ret i32 %r
}
""")
        mutated, _ = apply_until(arithmetic.toggle_flags, module, "f")
        inst = mutated.get_function("f").blocks[0].instructions[0]
        assert inst.nuw or inst.nsw

    def test_replace_constant(self):
        module = parsed("""
define i32 @f(i32 %x) {
  %r = add i32 %x, 1000
  ret i32 %r
}
""")
        changed = 0
        for seed in range(40):
            overlay, mutant_module = overlay_for(module, "f")
            if arithmetic.replace_constant(overlay, MutationRNG(seed)):
                verify_module(mutant_module)
                inst = mutant_module.get_function("f").blocks[0].instructions[0]
                from repro.ir import ConstantInt

                if isinstance(inst.rhs, ConstantInt) and inst.rhs.value != 1000:
                    changed += 1
        assert changed > 10

    def test_change_predicate(self):
        module = parsed("""
define i1 @f(i32 %x) {
  %r = icmp eq i32 %x, 0
  ret i1 %r
}
""")
        mutated, _ = apply_until(arithmetic.change_predicate, module, "f")
        inst = mutated.get_function("f").blocks[0].instructions[0]
        assert inst.predicate != "eq"


class TestUses:
    def test_replaces_a_use(self):
        module = parsed(TEST9)
        for seed in range(50):
            overlay, mutant_module = overlay_for(module)
            if uses.apply(overlay, MutationRNG(seed)):
                verify_module(mutant_module)

    def test_can_add_fresh_parameter(self):
        # Paper Listing 11: replacement may come from a fresh parameter.
        module = parsed(TEST9)
        found = False
        for seed in range(300):
            overlay, mutant_module = overlay_for(module)
            if uses.apply(overlay, MutationRNG(seed)):
                verify_module(mutant_module)
                if mutant_module.get_function("test9").num_args() > 2:
                    found = True
                    break
        assert found

    def test_can_create_fresh_instruction(self):
        # Paper Listing 10: replacement may be a fresh generated op.
        module = parsed(TEST9)
        found = False
        for seed in range(300):
            overlay, mutant_module = overlay_for(module)
            before = module.get_function("test9").num_instructions()
            if uses.apply(overlay, MutationRNG(seed)):
                verify_module(mutant_module)
                if mutant_module.get_function("test9").num_instructions() > before:
                    found = True
                    break
        assert found


class TestMove:
    def test_moves_and_repairs(self):
        module = parsed(TEST9)
        moved = False
        for seed in range(100):
            overlay, mutant_module = overlay_for(module)
            if move.apply(overlay, MutationRNG(seed)):
                verify_module(mutant_module)
                moved = True
        assert moved

    def test_move_up_replaces_operands(self):
        # Moving %c to the top forces both its uses to be repaired
        # (paper Listing 12).
        module = parsed(TEST9)
        for seed in range(400):
            overlay, mutant_module = overlay_for(module)
            if move.apply(overlay, MutationRNG(seed)):
                verify_module(mutant_module)
                fn = mutant_module.get_function("test9")
                first = fn.blocks[0].instructions[0]
                if first.opcode == "sub":
                    return
        pytest.skip("move-to-top never selected in 400 seeds")


class TestBitwidth:
    def test_changes_width_of_path(self):
        module = parsed("""
define i32 @f(i32 %a, i32 %b) {
  %c = sub i32 %a, %b
  ret i32 %c
}
""")
        mutated, _ = apply_until(bitwidth.apply, module, "f")
        fn = mutated.get_function("f")
        casts = [i for i in fn.instructions() if isinstance(i, CastInst)]
        assert casts, print_module(mutated)
        widths = {i.type.width for i in fn.instructions()
                  if i.type.is_integer()}
        assert widths - {32}, "no new width introduced"

    def test_no_polymorphic_roots(self):
        module = parsed("""
define i1 @f(i32 %x) {
  %r = icmp eq i32 %x, 0
  ret i1 %r
}
""")
        overlay, _ = overlay_for(module, "f")
        assert not bitwidth.apply(overlay, MutationRNG(0))

    def test_always_valid(self):
        module = parsed("""
define i32 @f(i32 %a, i32 %b) {
  %c = sub i32 %a, %b
  %d = mul i32 %c, %a
  %e = add i32 %d, %b
  ret i32 %e
}
""")
        for seed in range(60):
            overlay, mutant_module = overlay_for(module, "f")
            bitwidth.apply(overlay, MutationRNG(seed))
            verify_module(mutant_module)


class TestInlining:
    MULTI = """
declare void @clobber(ptr)

define void @helper(ptr %ptr) {
  store i32 42, ptr %ptr
  ret void
}

define i32 @test9(ptr %p, ptr %q) {
  %a = load i32, ptr %q
  call void @clobber(ptr %p)
  %b = load i32, ptr %q
  %c = sub i32 %a, %b
  ret i32 %c
}
"""

    def test_inlines_other_function(self):
        # Paper Listing 6: the call to @clobber is replaced by @helper's
        # body (a store).
        module = parsed(self.MULTI)
        mutated, _ = apply_until(inlining.apply, module)
        fn = mutated.get_function("test9")
        opcodes = [i.opcode for i in fn.instructions()]
        assert "store" in opcodes
        assert "call" not in opcodes

    def test_no_candidates_no_change(self):
        module = parsed(TEST9)  # only @clobber, a declaration
        overlay, _ = overlay_for(module)
        assert not inlining.apply(overlay, MutationRNG(0))


class TestCatalog:
    def test_all_eight_mutations_registered(self):
        assert set(MUTATIONS) == {
            "attributes", "inlining", "remove-call", "shuffle",
            "arithmetic", "uses", "move", "bitwidth",
        }
