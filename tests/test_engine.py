"""Tests for the mutation engine: determinism, repeatability, and the
100%-valid-mutants property (paper §II and §III-E), property-tested with
hypothesis over seeds and corpus shapes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz.seeds import generate_corpus
from repro.ir import is_valid_module, parse_module, print_module
from repro.mutate import MutantRecord, Mutator, MutatorConfig

from helpers import parsed

SEED_MODULE = """
declare void @clobber(ptr)

define i32 @t1(i32 %x, i32 %low, i32 %high) {
  %t0 = icmp slt i32 %x, -16
  %t1 = select i1 %t0, i32 %low, i32 %high
  %t2 = add i32 %x, 16
  %t3 = icmp ult i32 %t2, 144
  %r = select i1 %t3, i32 %x, i32 %t1
  ret i32 %r
}

define i32 @test9(ptr %p, ptr %q) {
  %a = load i32, ptr %q
  call void @clobber(ptr %p)
  %b = load i32, ptr %q
  %c = sub i32 %a, %b
  ret i32 %c
}
"""


class TestDeterminism:
    def test_same_seed_same_mutant(self):
        mutator = Mutator(parsed(SEED_MODULE))
        first, record1 = mutator.create_mutant(42)
        second, record2 = mutator.create_mutant(42)
        assert print_module(first) == print_module(second)
        assert record1.applied == record2.applied

    def test_different_seeds_usually_differ(self):
        mutator = Mutator(parsed(SEED_MODULE))
        texts = {print_module(mutator.create_mutant(seed)[0])
                 for seed in range(10)}
        assert len(texts) > 5

    def test_recreate_matches(self):
        mutator = Mutator(parsed(SEED_MODULE))
        mutant, record = mutator.create_mutant(7)
        assert print_module(mutator.recreate_mutant(7)) == print_module(mutant)

    def test_original_never_modified(self):
        module = parsed(SEED_MODULE)
        before = print_module(module)
        mutator = Mutator(module)
        for seed in range(20):
            mutator.create_mutant(seed)
        assert print_module(module) == before


class TestConfig:
    def test_enabled_mutations_restricted(self):
        config = MutatorConfig(enabled_mutations=["arithmetic"])
        mutator = Mutator(parsed(SEED_MODULE), config)
        _, record = mutator.create_mutant(3)
        assert all(op == "arithmetic" for _, op in record.applied)

    def test_unknown_mutation_rejected(self):
        config = MutatorConfig(enabled_mutations=["explode"])
        with pytest.raises(ValueError):
            Mutator(parsed(SEED_MODULE), config).create_mutant(0)

    def test_only_functions(self):
        config = MutatorConfig(only_functions=["t1"])
        mutator = Mutator(parsed(SEED_MODULE), config)
        assert mutator.target_names == ["t1"]
        _, record = mutator.create_mutant(1)
        assert all(fn == "t1" for fn, _ in record.applied)

    def test_mutation_count_bounds(self):
        config = MutatorConfig(min_mutations=2, max_mutations=2)
        mutator = Mutator(parsed(SEED_MODULE), config)
        _, record = mutator.create_mutant(5)
        per_function = {}
        for fn, _ in record.applied:
            per_function[fn] = per_function.get(fn, 0) + 1
        assert all(count <= 2 for count in per_function.values())

    def test_record_describe(self):
        record = MutantRecord(seed=9, applied=[("f", "uses")])
        assert "seed=9" in record.describe()
        assert "uses@f" in record.describe()


class TestHundredPercentValidity:
    """The paper's §II claim: valid IR 100% of the time."""

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 2**32))
    def test_valid_over_random_seeds(self, seed):
        mutator = Mutator(parsed(SEED_MODULE),
                          MutatorConfig(max_mutations=4))
        mutant, _ = mutator.create_mutant(seed)
        assert is_valid_module(mutant)

    @settings(max_examples=25, deadline=None)
    @given(corpus_index=st.integers(0, 26), seed=st.integers(0, 10_000))
    def test_valid_over_corpus_shapes(self, corpus_index, seed):
        name, text = generate_corpus(27, seed=1)[corpus_index]
        mutator = Mutator(parse_module(text, name),
                          MutatorConfig(max_mutations=3))
        mutant, _ = mutator.create_mutant(seed)
        assert is_valid_module(mutant), print_module(mutant)

    def test_mutant_round_trips_through_text(self):
        mutator = Mutator(parsed(SEED_MODULE))
        for seed in range(30):
            mutant, _ = mutator.create_mutant(seed)
            text = print_module(mutant)
            assert is_valid_module(parse_module(text))
