#!/usr/bin/env python3
"""The paper's repeatability workflow (§III-E).

    "In a typical workflow, we run alive-mutate without saving files, to
     make fuzzing as fast as possible.  Then, when an error is
     discovered, we re-run with the same seed but with file-saving turned
     on, in order to capture the IR file that triggers whatever bug had
     been previously encountered."

This example does exactly that: a fast first pass with no disk I/O, then
a replay of only the failing seed with saving enabled, then a
delta-style shrink of the mutation count to the smallest set that still
reproduces the finding.

Run:  python examples/bug_replay.py
"""

import os
import tempfile

from repro.fuzz import FuzzConfig, FuzzDriver
from repro.ir import parse_module, print_module
from repro.mutate import MutatorConfig
from repro.tv import RefinementConfig

SEED_TEST = """
define i32 @clamp101(i32 %x, i32 %y) {
  %c = icmp ult i32 %x, 100
  %r = select i1 %c, i32 %x, i32 101
  %s = add i32 %r, %y
  ret i32 %s
}
"""

BUG = "53252"  # Table I: canonicalizeClampLike predicate bug


def make_driver(save_dir=None):
    return FuzzDriver(
        parse_module(SEED_TEST, "clamp101.ll"),
        FuzzConfig(pipeline="O2",
                   enabled_bugs=(BUG,),
                   mutator=MutatorConfig(max_mutations=3),
                   tv=RefinementConfig(max_inputs=24),
                   save_dir=save_dir),
        file_name="clamp101.ll")


def main():
    # Phase 1: fast fuzzing, nothing written to disk.
    print("phase 1: fuzzing with file-saving OFF (the fast path)...")
    driver = make_driver()
    report = driver.run(iterations=400)
    print(f"  {report.summary()}")
    if not report.findings:
        print("  no finding; increase the iteration budget")
        return
    finding = report.findings[0]
    print(f"  first finding: {finding.summary()}")

    # Phase 2: replay only that seed with saving enabled.
    print(f"\nphase 2: replaying seed {finding.seed} with saving ON...")
    with tempfile.TemporaryDirectory() as save_dir:
        replay_driver = make_driver(save_dir=save_dir)
        replayed = replay_driver.run_one(finding.seed)
        assert replayed, "replay must reproduce the finding"
        saved = os.listdir(save_dir)
        print(f"  reproduced: {replayed[0].summary()}")
        print(f"  captured mutant file: {saved[0]}")
        with open(os.path.join(save_dir, saved[0])) as stream:
            print("\n" + stream.read())

    # Phase 3: reduce — shrink the captured mutant with delta debugging
    # while the miscompilation keeps reproducing.
    print("phase 3: reducing the captured mutant...")
    from repro.fuzz import reduce_module
    from repro.opt import OptContext, OptimizerCrash, PassManager
    from repro.tv import Verdict, check_refinement

    mutant = driver.recreate(finding.seed)

    def still_miscompiled(candidate):
        optimized = candidate.clone()
        try:
            PassManager(["O2"], OptContext({BUG})).run(optimized)
        except OptimizerCrash:
            return False
        source = candidate.get_function("clamp101")
        target = optimized.get_function("clamp101")
        if source is None or target is None or target.is_declaration():
            return False
        verdict = check_refinement(
            source, target, candidate, optimized,
            RefinementConfig(max_inputs=24)).verdict
        return verdict == Verdict.UNSOUND

    result = reduce_module(mutant, still_miscompiled)
    print(f"  {result.summary()}")
    print("\nminimal reproducer:")
    print(print_module(result.module))


if __name__ == "__main__":
    main()
