#!/usr/bin/env python3
"""The paper's throughput experiment (§V-B) at example scale.

For each corpus file, the same seeded mutation-testing workload runs two
ways — the integrated in-process loop vs. discrete tools communicating
through files and processes — and the per-file speedups are printed in
the artifact's res.txt format (paper Listing 20).

Run:  python examples/throughput_experiment.py [files] [mutants_per_file]
"""

import sys

from repro.fuzz import ThroughputConfig, generate_corpus, \
    run_throughput_experiment


def main():
    files = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    count = int(sys.argv[2]) if len(sys.argv) > 2 else 25

    corpus = generate_corpus(files, seed=42)
    print(f"measuring {files} files x {count} mutants per workflow "
          "(paper: 194 files x 1000 mutants)...\n")

    report = run_throughput_experiment(
        corpus, ThroughputConfig(count=count, max_inputs=8))

    print(report.render_res_txt())
    print(f"average speedup: {report.average_perf:.1f}x   (paper: ~12x)")
    print(f"best speedup:    {report.best_perf:.1f}x   (paper: 786x)")
    print(f"worst speedup:   {report.worst_perf:.2f}x   (paper: ~1.01x)")
    print("\n(the absolute ratios differ from the paper's C++ setting; the"
          "\n shape matches: in-process wins everywhere, and the most"
          "\n verification-bound file shows the smallest speedup)")


if __name__ == "__main__":
    main()
