#!/usr/bin/env python3
"""Fuzzing your own optimization pass — the downstream-user story.

The paper's workflow applies to out-of-tree passes too ("this can be a
sequence of built-in passes, an out-of-tree pass loaded from a shared
library...", §III-C).  This example writes a small peephole pass with a
deliberate poison-flag bug, registers it, and lets alive-mutate find the
bug; then it fixes the pass and shows the campaign come back clean.

Run:  python examples/custom_pass.py
"""

from repro.fuzz import FuzzConfig, FuzzDriver
from repro.ir import BinaryOperator, ConstantInt, parse_module
from repro.mutate import MutatorConfig
from repro.opt import FunctionPass, register_pass
from repro.tv import RefinementConfig


@register_pass("my-shrink-adds")
class ShrinkAddChains(FunctionPass):
    """(x + C1) + C2  ->  x + (C1 + C2).

    BUG (for demonstration): the rewritten add keeps the outer add's nsw
    flag.  The combined constant can overflow differently, so the folded
    add may be poison where the original chain was well-defined.
    """

    keep_flags = True  # flip to False for the fixed version

    def run_on_function(self, function, ctx):
        changed = False
        for block in function.blocks:
            for inst in list(block.instructions):
                if not (isinstance(inst, BinaryOperator)
                        and inst.opcode == "add"
                        and isinstance(inst.rhs, ConstantInt)):
                    continue
                inner = inst.lhs
                if not (isinstance(inner, BinaryOperator)
                        and inner.opcode == "add"
                        and inner.num_uses() == 1
                        and isinstance(inner.rhs, ConstantInt)):
                    continue
                total = (inner.rhs.value + inst.rhs.value) & inst.type.mask
                inst.set_operand(0, inner.lhs)
                inst.set_operand(1, ConstantInt(inst.type, total))
                if not self.keep_flags:
                    inst.nuw = inst.nsw = False
                inner.erase_from_parent()
                changed = True
        return changed


# The seed chain carries no flags, so the pass's rewrite is sound on the
# unmutated test — LLVM's own regression suite would pass.  The bug only
# shows once a mutant toggles nsw onto the outer add (paper §IV-E), which
# is exactly the corner the flag-toggling mutation explores.
SEED = """
define i8 @chain(i8 %x) {
  %a = add i8 %x, 100
  %b = add i8 %a, 100
  ret i8 %b
}
"""


def fuzz_the_pass(label):
    driver = FuzzDriver(
        parse_module(SEED, "chain.ll"),
        FuzzConfig(pipeline="my-shrink-adds",
                   mutator=MutatorConfig(max_mutations=2),
                   tv=RefinementConfig(max_inputs=32)),
        file_name="chain.ll")
    report = driver.run(iterations=150)
    print(f"{label}: {report.summary()}")
    for finding in report.findings[:2]:
        print(f"  {finding.summary()}")
        print(f"    {finding.detail}")
    return report


def main():
    print("fuzzing the buggy version of the custom pass...")
    buggy = fuzz_the_pass("buggy")
    assert buggy.findings, "the flag bug should be found quickly"

    print("\napplying the fix (drop flags on the folded add)...")
    ShrinkAddChains.keep_flags = False
    fixed = fuzz_the_pass("fixed")
    assert not fixed.findings, "the fixed pass must verify everywhere"
    print("\nthe fixed pass survives the same fuzzing budget — ship it.")


if __name__ == "__main__":
    main()
