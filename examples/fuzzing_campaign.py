#!/usr/bin/env python3
"""A miniature version of the paper's year-long fuzzing campaign (§V-A).

Arms all 33 seeded bugs (the Table I analog), fuzzes a generated corpus
under both of the paper's configurations (middle-end -O2 and the
backend), and prints the Table-I-style report of which bugs were
rediscovered, where, and at which seed.

Run:  python examples/fuzzing_campaign.py [corpus_size] [mutants_per_file] [jobs]

``jobs`` > 1 shards the (file x pipeline) matrix across worker
processes; seeds are derived from each job's index in the matrix, so a
parallel run rediscovers exactly the bugs of the sequential one.

Defaults are sized to finish in under a minute; the benchmark harness
(benchmarks/test_bench_table1_campaign.py) runs the full-size version
that rediscovers all 33 bugs.
"""

import sys

from repro import CampaignConfig, Session


def main():
    corpus_size = int(sys.argv[1]) if len(sys.argv) > 1 else 54
    mutants_per_file = int(sys.argv[2]) if len(sys.argv) > 2 else 40
    jobs = int(sys.argv[3]) if len(sys.argv) > 3 else 1

    print(f"corpus: {corpus_size} files x {mutants_per_file} mutants "
          f"x 3 pipelines (-O2, backend, O2+backend), {jobs} worker(s)\n")

    session = Session.from_corpus(size=corpus_size, campaign=CampaignConfig(
        mutants_per_file=mutants_per_file,
        max_inputs=14,
        workers=jobs,
    ))
    report = session.run_campaign()

    print(report.table())
    print()
    miscompilations, crashes = report.found_by_kind()
    print(f"iterations:       {report.total_iterations}")
    print(f"raw findings:     {report.total_findings}")
    print(f"elapsed:          {report.elapsed:.1f}s "
          f"({report.throughput:.0f} mutants/sec, "
          f"{report.workers} worker(s))")
    if report.failed_shards:
        print(f"failed shards:    {len(report.failed_shards)}")
    print()
    print("first discovery of each bug:")
    for outcome in report.found_bugs():
        print(f"  {outcome.bug.issue_id}: {outcome.first_file} "
              f"seed={outcome.first_seed} ({outcome.findings} findings)")
    if report.unattributed:
        print(f"\nWARNING: {len(report.unattributed)} unattributed findings "
              "(bugs in the reproduction's own optimizer!)")


if __name__ == "__main__":
    main()
