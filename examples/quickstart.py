#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1 flow, end to end.

1. Parse one of "LLVM's" unit tests (Listing 1).
2. Mutate it (Listing 2's neighborhood) with the alive-mutate engine.
3. Optimize the mutant.
4. Translation-validate: optimized-vs-mutant refinement.

With a clean optimizer every mutant verifies.  To see a *bug* get
caught, the script then hunts with the seeded version of LLVM issue
53252 (the real canonicalizeClampLike miscompilation from Table I)
enabled — through ``repro.Session``, the one-call front door to the
same parse→drive→report loop — and prints the counterexample the
validator produces.

Run:  python examples/quickstart.py
"""

from repro import FuzzConfig, Session
from repro.ir import parse_module, print_module
from repro.mutate import Mutator, MutatorConfig
from repro.opt import OptContext, PassManager
from repro.tv import RefinementConfig, check_refinement

# Listing 1 of the paper: a real InstCombine unit test.
LISTING_1 = """
define i32 @t1_ult_slt_0(i32 %x, i32 %low, i32 %high) {
  %t0 = icmp slt i32 %x, -16
  %t1 = select i1 %t0, i32 %low, i32 %high
  %t2 = add i32 %x, 16
  %t3 = icmp ult i32 %t2, 144
  %r = select i1 %t3, i32 %x, i32 %t1
  ret i32 %r
}
"""


# A test that comes *close* to bug 53252's trigger but misses it — the
# select's false arm is 101 where the clamp shape needs 100.  This is the
# paper's core hypothesis verbatim: "it is a fairly common occurrence for
# an existing test case to come close to triggering a bug, but to miss
# the mark somehow".  One constant-replacement mutation closes the gap.
NEAR_MISS = """
define i32 @clamp101(i32 %x) {
  %c = icmp ult i32 %x, 100
  %r = select i1 %c, i32 %x, i32 101
  ret i32 %r
}
"""


def mutate_optimize_verify(module, seed, enabled_bugs=()):
    """One iteration of the paper's core loop (Figure 3)."""
    mutator = Mutator(module, MutatorConfig(max_mutations=3))
    mutant, record = mutator.create_mutant(seed)

    optimized = mutant.clone()
    ctx = OptContext(enabled_bugs)
    PassManager(["O2"], ctx).run(optimized)

    function_name = module.definitions()[0].name
    result = check_refinement(
        mutant.get_function(function_name),
        optimized.get_function(function_name),
        mutant, optimized,
        RefinementConfig(max_inputs=32),
    )
    return mutant, optimized, record, result


def main():
    module = parse_module(LISTING_1)
    print("=== original test (paper Listing 1) ===")
    print(print_module(module))

    print("=== mutants through a CLEAN optimizer ===")
    for seed in range(5):
        mutant, _, record, result = mutate_optimize_verify(module, seed)
        print(f"seed {seed}: {record.describe():60s} -> {result.verdict.value}")

    print()
    print("=== one mutant, shown in full (compare with Listing 2) ===")
    mutant, optimized, record, result = mutate_optimize_verify(module, 3)
    print(print_module(mutant))

    print("=== hunting a real Table-I bug (seeded LLVM issue 53252) ===")
    print("(canonicalizeClampLike 'didn't update predicate')")
    print("seed test: one constant away from the buggy pattern\n")
    print(NEAR_MISS)

    # The Session facade runs the same loop as above in one call.
    session = Session.from_text(NEAR_MISS, FuzzConfig(
        enabled_bugs=("53252",),
        mutator=MutatorConfig(max_mutations=3),
        tv=RefinementConfig(max_inputs=32),
        stop_on_first_finding=True,
    ), file_name="near_miss.ll")
    report = session.run(iterations=200)
    if report.findings:
        finding = report.findings[0]
        print(f"caught: {finding.summary()}")
        print("\n--- mutant (the fuzzer's input to the optimizer) ---")
        print(print_module(session.replay(finding.seed)))
        print("--- the validator's counterexample ---")
        print(finding.detail)
    else:
        print("no finding in 200 mutants (unexpected; try more seeds)")


if __name__ == "__main__":
    main()
