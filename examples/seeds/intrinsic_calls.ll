; Intrinsic calls with immarg-style boolean arguments and saturating
; arithmetic — the call-heavy seed for attribute round-trips.
declare i64 @llvm.abs.i64(i64, i1)
declare i64 @llvm.umax.i64(i64, i64)
declare i64 @llvm.uadd.sat.i64(i64, i64)

define i64 @combined(i64 %x, i64 %y) {
  %a = call i64 @llvm.abs.i64(i64 %x, i1 false)
  %m = call i64 @llvm.umax.i64(i64 %a, i64 %y)
  %s = call i64 @llvm.uadd.sat.i64(i64 %m, i64 1024)
  ret i64 %s
}
