; Dense switch dispatch: exercises switch case tables and the
; multi-successor CFG edges the mutators rewire.
define i32 @dispatch(i32 %x) {
entry:
  switch i32 %x, label %default [
    i32 0, label %zero
    i32 1, label %one
    i32 2, label %two
    i32 7, label %seven
  ]

zero:
  ret i32 10

one:
  %a = add i32 %x, 20
  ret i32 %a

two:
  %b = mul i32 %x, 11
  ret i32 %b

seven:
  %c = shl i32 %x, 3
  ret i32 %c

default:
  ret i32 -1
}
