; Cast chains through odd widths: zext/trunc/sext round-trips the
; width-narrowing rules fold, plus a select over the result.
define i1 @narrow(i32 %x) {
entry:
  %w = zext i32 %x to i64
  %t = trunc i64 %w to i57
  %m = mul i57 %t, %t
  %b = zext i57 %m to i64
  %s = sext i32 %x to i64
  %c = icmp ule i64 %b, 4294967295
  %pick = select i1 %c, i64 %b, i64 %s
  %r = icmp eq i64 %pick, %b
  ret i1 %r
}
