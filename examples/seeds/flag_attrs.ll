; Instruction flags the mutation classes toggle: nuw/nsw on adds and
; shifts, exact on division and right-shift.
define i32 @flags(i32 %x, i32 %y) {
  %a = add nuw nsw i32 %x, %y
  %b = shl nsw i32 %a, 2
  %c = lshr exact i32 %b, 1
  %d = sdiv exact i32 %c, 4
  %e = sub nuw i32 %d, %y
  ret i32 %e
}
