; Operand bundles on llvm.assume: the align bundle the driver's
; assume-aware rules consume, plus a plain boolean assume.
declare void @llvm.assume(i1)

define i16 @aligned_load(ptr %p, i16 %x) {
  call void @llvm.assume(i1 true) [ "align"(ptr %p, i64 64) ]
  %v = load i16, ptr %p
  %c = icmp sgt i16 %x, 0
  call void @llvm.assume(i1 %c)
  %r = add nsw i16 %v, %x
  ret i16 %r
}
