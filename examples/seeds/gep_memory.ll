; Pointer arithmetic and memory traffic: inbounds GEPs, mixed-width
; loads and stores through the same object, and an alloca slot.
define i64 @walk(ptr %base, i64 %i) {
  %slot = alloca i64
  %p = getelementptr inbounds i64, ptr %base, i64 %i
  %v = load i64, ptr %p
  store i64 %v, ptr %slot
  %q = getelementptr i64, ptr %base, i64 1
  %w = load i64, ptr %q
  %s = load i64, ptr %slot
  %r = add i64 %w, %s
  ret i64 %r
}
