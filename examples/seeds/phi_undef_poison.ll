; Phi edge cases: undef and poison incoming values, a self-feeding
; loop phi, and a freeze of the merged value.
define i8 @merge(i1 %c, i8 %n) {
entry:
  br i1 %c, label %a, label %b

a:
  br label %join

b:
  br label %join

join:
  %v = phi i8 [ undef, %a ], [ poison, %b ]
  %f = freeze i8 %v
  br label %loop

loop:
  %i = phi i8 [ 0, %join ], [ %next, %loop ]
  %acc = phi i8 [ %f, %join ], [ %acc2, %loop ]
  %next = add nuw i8 %i, 1
  %acc2 = xor i8 %acc, %i
  %done = icmp uge i8 %next, %n
  br i1 %done, label %exit, label %loop

exit:
  ret i8 %acc2
}
