; A counted loop with two phis and a loop-invariant computation —
; the shape the worklist optimizer and loop rules care about.
define i8 @accumulate(i8 %n, i8 %k) {
entry:
  br label %header

header:
  %i = phi i8 [ 0, %entry ], [ %next, %body ]
  %acc = phi i8 [ 0, %entry ], [ %acc2, %body ]
  %cmp = icmp ult i8 %i, %n
  br i1 %cmp, label %body, label %exit

body:
  %inv = xor i8 %k, 85
  %acc2 = add i8 %acc, %inv
  %next = add nuw i8 %i, 1
  br label %header

exit:
  ret i8 %acc
}
