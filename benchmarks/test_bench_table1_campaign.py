"""E1 — the bug-finding campaign (paper §V-A, Table I).

Enables all 33 seeded bugs (modeled on Table I: 19 miscompilations + 14
crashes across InstCombine, NewGVN, the backend, ConstantFolding, ...),
fuzzes a generated corpus under the paper's two configurations (-O2 and
the backend), and reports which bugs were rediscovered — regenerating
Table I's shape.  The rendered table is written to
``benchmarks/out/table1.txt``.
"""


from repro.fuzz import CampaignConfig, run_campaign
from repro.obs import campaign_summary

from bench_utils import scaled, write_json, write_report

CORPUS_SIZE = scaled(108, 24)
MUTANTS_PER_FILE = scaled(80, 30)

# Quick mode fuzzes ~1/12 of the full workload, so it cannot rediscover
# all 33 bugs — the floors below were calibrated with headroom from the
# deterministic quick-mode run.
FOUND_FLOOR = scaled(30, 12)
MISCOMPILATION_FLOOR = scaled(16, 6)
CRASH_FLOOR = scaled(12, 4)


def test_bench_table1_campaign(benchmark):
    holder = {}

    def campaign():
        holder["report"] = run_campaign(CampaignConfig(
            corpus_size=CORPUS_SIZE,
            mutants_per_file=MUTANTS_PER_FILE,
            max_inputs=16,
        ))
        return holder["report"]

    benchmark.pedantic(campaign, rounds=1, iterations=1)
    report = holder["report"]

    table = report.table()
    miscompilations, crashes = report.found_by_kind()
    summary = (
        f"\niterations: {report.total_iterations}, "
        f"raw findings: {report.total_findings}, "
        f"unattributed: {len(report.unattributed)}\n"
        f"bugs rediscovered: {len(report.found_bugs())}/33 "
        f"({miscompilations} miscompilations + {crashes} crashes; "
        "paper: 19 + 14)\n"
    )
    write_report("table1.txt", table + "\n" + summary)
    write_json("BENCH_campaign.json", campaign_summary(report))
    print("\n" + table + summary)

    # Shape assertions.
    assert len(report.outcomes) == 33
    assert len(report.found_bugs()) >= FOUND_FLOOR, [
        o.bug.issue_id for o in report.outcomes.values() if not o.found
    ]
    assert miscompilations >= MISCOMPILATION_FLOOR
    assert crashes >= CRASH_FLOOR
    # The optimizer itself is clean: every finding traces to a seeded bug.
    assert not report.unattributed, [f.detail for f in report.unattributed]


def test_bench_campaign_single_file_rate(benchmark):
    """Fuzzing rate on one InstCombine-style file with all bugs armed."""
    from repro.fuzz import FuzzConfig, FuzzDriver, generate_corpus
    from repro.ir import parse_module
    from repro.mutate import MutatorConfig
    from repro.opt import all_bug_ids
    from repro.tv import RefinementConfig

    name, text = generate_corpus(2, seed=5)[0]
    driver = FuzzDriver(
        parse_module(text, name),
        FuzzConfig(
            pipeline="O2+backend",
            enabled_bugs=all_bug_ids(),
            mutator=MutatorConfig(max_mutations=3),
            tv=RefinementConfig(max_inputs=16),
        ),
        file_name=name,
    )
    counter = iter(range(10**9))

    def one_iteration():
        driver.run_one(next(counter))

    benchmark(one_iteration)
