"""E3 — the structure-blind-mutation study (paper §II).

The paper's pilot: mutating LLVM IR with Radamsa produced files that were
(a) almost always invalid and (b) almost always boring when loadable,
while alive-mutate produces valid IR 100% of the time.  This bench runs
both mutators over the same corpus and prints the comparison.
"""


from repro.fuzz import generate_corpus, run_validity_study
from repro.ir import is_valid_module, parse_module
from repro.mutate import Mutator, MutatorConfig

from bench_utils import write_report

FILES = 12
MUTANTS_PER_FILE = 40


def test_bench_radamsa_validity_study(benchmark):
    corpus = generate_corpus(FILES, seed=11)
    holder = {}

    def study():
        holder["stats"] = run_validity_study(
            corpus, mutants_per_file=MUTANTS_PER_FILE, seed=0
        )
        return holder["stats"]

    benchmark.pedantic(study, rounds=1, iterations=1)
    stats = holder["stats"]

    # Alive-mutate on the same corpus: count valid mutants.
    total = valid = 0
    for name, text in corpus:
        mutator = Mutator(parse_module(text, name), MutatorConfig(max_mutations=3))
        for seed in range(MUTANTS_PER_FILE):
            mutant, _ = mutator.create_mutant(seed)
            total += 1
            valid += int(is_valid_module(mutant))

    report = (
        f"structure-blind (radamsa-style): {stats}\n"
        f"  invalid: {100 * stats.rate('invalid'):.1f}%  "
        f"boring: {100 * stats.rate('boring'):.1f}%  "
        f"interesting: {100 * stats.rate('interesting'):.1f}%\n"
        f"alive-mutate: {valid}/{total} valid "
        f"({100 * valid / total:.1f}%; paper claims 100%)\n"
    )
    write_report("radamsa_study.txt", report)
    print("\n" + report)

    # Paper §II shape: radamsa output is mostly unusable; ours is 100%.
    assert stats.rate("invalid") > 0.5
    assert stats.rate("interesting") < 0.25
    assert valid == total


def test_bench_radamsa_mutation_rate(benchmark):
    """Raw byte-mutation speed (for context in the study writeup)."""
    from repro.fuzz.radamsa import radamsa_mutate

    _, text = generate_corpus(2, seed=11)[0]
    counter = iter(range(10**9))

    def mutate_once():
        radamsa_mutate(text, next(counter))

    benchmark(mutate_once)
