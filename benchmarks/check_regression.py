#!/usr/bin/env python3
"""Gate benchmark summaries against the committed baseline.

Reads the normalized ``BENCH_*.json`` summaries that the benchmark
modules write under ``benchmarks/out/`` and compares them against a
committed baseline.  Deterministic metrics must match the baseline
exactly; performance metrics may not regress by more than
``--tolerance`` (default 25%).

Two baseline modes exist, selected with ``--mode``: ``quick`` (the
``BENCH_QUICK=1`` smoke workload CI's bench-smoke job runs, gated by
``baseline.json``) and ``full`` (the unscaled suite the nightly-bench
workflow runs, gated by ``baseline_full.json``).

To refresh a baseline after an intentional workload change, run the
suite in the matching mode and then ``check_regression.py --mode <mode>
--update``: exact metrics are copied from the fresh summaries and every
performance floor is backed off by ``--backoff`` (default 20%) below
the measured value, so runner variance does not turn the gate into a
coin flip.  Review the diff before committing it.

Exit status: 0 when every gate passes, 1 on any regression, 2 when a
required summary file is missing.
"""

import argparse
import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
BASELINES = {
    "quick": os.path.join(HERE, "baseline.json"),
    "full": os.path.join(HERE, "baseline_full.json"),
}
DEFAULT_OUT_DIR = os.path.join(HERE, "out")

# (baseline section, summary file, metric, kind)
# kind "exact": must equal the baseline value.
# kind "floor": must be >= baseline * (1 - tolerance).
GATES = [
    ("campaign", "BENCH_campaign.json", "iterations", "exact"),
    ("campaign", "BENCH_campaign.json", "parse_failures", "exact"),
    ("campaign", "BENCH_campaign.json", "quarantined", "exact"),
    ("campaign", "BENCH_campaign.json", "failed_shards", "exact"),
    ("campaign", "BENCH_campaign.json", "found_bugs", "floor"),
    ("campaign", "BENCH_campaign.json", "valid_mutant_rate", "floor"),
    ("campaign", "BENCH_campaign.json", "mutants_per_sec", "floor"),
    ("feedback", "BENCH_feedback.json", "trials", "exact"),
    ("feedback", "BENCH_feedback.json", "blind_found", "exact"),
    ("feedback", "BENCH_feedback.json", "guided_found", "exact"),
    ("feedback", "BENCH_feedback.json", "blind_iterations", "exact"),
    ("feedback", "BENCH_feedback.json", "guided_iterations", "exact"),
    # floor 2.0 - 25% = 1.5x: the E9 acceptance criterion.
    ("feedback", "BENCH_feedback.json", "speedup", "floor"),
    ("incremental_opt", "BENCH_incremental_opt.json", "findings", "exact"),
    # floor 2.0 - 25% = 1.5x: the E11 acceptance criterion.
    ("incremental_opt", "BENCH_incremental_opt.json", "optimize_speedup",
     "floor"),
    ("incremental_opt", "BENCH_incremental_opt.json", "worklist_runs",
     "floor"),
    ("incremental_opt", "BENCH_incremental_opt.json", "mutants_per_sec",
     "floor"),
    ("cow_memo", "BENCH_cow_memo.json", "findings", "exact"),
    ("cow_memo", "BENCH_cow_memo.json", "speedup", "floor"),
    ("cow_memo", "BENCH_cow_memo.json", "optimize_hit_rate", "floor"),
    ("cow_memo", "BENCH_cow_memo.json", "mutants_per_sec", "floor"),
    ("exec_compile", "BENCH_exec_compile.json", "pairs", "exact"),
    ("exec_compile", "BENCH_exec_compile.json", "plan_fallbacks", "exact"),
    ("exec_compile", "BENCH_exec_compile.json", "speedup", "floor"),
    ("exec_compile", "BENCH_exec_compile.json", "plan_hit_rate", "floor"),
    ("exec_compile", "BENCH_exec_compile.json", "checks_per_sec", "floor"),
    # floor 2.0 - 25% = 1.5x: the E10 acceptance criterion.
    ("batch_exec", "BENCH_batch_exec.json", "pairs", "exact"),
    ("batch_exec", "BENCH_batch_exec.json", "scalar_fallbacks", "exact"),
    ("batch_exec", "BENCH_batch_exec.json", "speedup", "floor"),
    ("batch_exec", "BENCH_batch_exec.json", "lanes_per_batch", "floor"),
    ("batch_exec", "BENCH_batch_exec.json", "checks_per_sec", "floor"),
    ("throughput", "BENCH_throughput.json", "files", "exact"),
    ("throughput", "BENCH_throughput.json", "invalid_files", "exact"),
    ("throughput", "BENCH_throughput.json", "not_verified_files", "exact"),
    ("throughput", "BENCH_throughput.json", "speedup_avg", "floor"),
    ("wire", "BENCH_wire.json", "modules", "exact"),
    ("wire", "BENCH_wire.json", "claims", "exact"),
    ("wire", "BENCH_wire.json", "jobs", "exact"),
    ("wire", "BENCH_wire.json", "result_mismatches", "exact"),
    ("wire", "BENCH_wire.json", "decode_hit_rate", "exact"),
    # floor 6.67 - 25% = 5.0x: the E12 codec acceptance criterion.
    ("wire", "BENCH_wire.json", "codec_speedup", "floor"),
    # floor 2.67 - 25% = 2.0x: the E12 dispatch acceptance criterion.
    ("wire", "BENCH_wire.json", "dispatch_speedup", "floor"),
    ("wire", "BENCH_wire.json", "socket_jobs_per_sec", "floor"),
]

_NOTE = (
    "{mode}-mode reference for check_regression.py. Metrics gated 'exact' "
    "are deterministic for the seeded {mode} workload; metrics gated "
    "'floor' fail when they drop more than the tolerance (default 25%) "
    "below the value here. Floors are written by --update with a "
    "conservative back-off below the measured run to absorb CI-runner "
    "variance."
)


def load_summaries(out_dir):
    """Read every summary file the gates reference; None if one is
    missing (the caller reports and exits 2)."""
    summaries = {}
    for _, file_name, _, _ in GATES:
        if file_name in summaries:
            continue
        path = os.path.join(out_dir, file_name)
        if not os.path.exists(path):
            print(f"missing summary: {path}", file=sys.stderr)
            return None
        with open(path) as stream:
            summaries[file_name] = json.load(stream)
    return summaries


def check(baseline, summaries, tolerance):
    """Compare summaries against the baseline; returns failure list."""
    failures = []
    checked = 0
    for section, file_name, metric, kind in GATES:
        expected = baseline.get(section, {}).get(metric)
        if expected is None:
            continue  # metric not pinned by this baseline
        actual = summaries[file_name].get(metric)
        if actual is None:
            failures.append(f"{section}.{metric} missing from {file_name}")
            print(f"FAIL {section}.{metric}: missing from {file_name}")
            continue
        checked += 1
        if kind == "exact":
            ok = actual == expected
            detail = f"expected exactly {expected}, got {actual}"
        else:
            floor = expected * (1.0 - tolerance)
            ok = actual >= floor
            detail = (
                f"floor {floor:.4f} (baseline {expected} "
                f"- {tolerance:.0%}), got {actual}"
            )
        print(f"{'ok  ' if ok else 'FAIL'} {section}.{metric}: {detail}")
        if not ok:
            failures.append(f"{section}.{metric}: {detail}")
    return failures, checked


def rebuild(summaries, mode, backoff):
    """A fresh baseline document from the latest summaries: exact
    metrics copied, performance floors backed off conservatively."""
    baseline = {
        "_note": _NOTE.format(mode=mode),
        "schema": 1,
        "mode": mode,
    }
    missing = []
    for section, file_name, metric, kind in GATES:
        actual = summaries[file_name].get(metric)
        if actual is None:
            missing.append(f"{section}.{metric} missing from {file_name}")
            continue
        if kind == "floor":
            actual = round(actual * (1.0 - backoff), 4)
        baseline.setdefault(section, {})[metric] = actual
    return baseline, missing


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Compare BENCH_*.json summaries against baseline.json",
    )
    parser.add_argument(
        "--mode",
        choices=sorted(BASELINES),
        default="quick",
        help="workload the summaries came from: quick (BENCH_QUICK=1 "
        "smoke) or full (the nightly unscaled suite)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default: per-mode committed baseline)",
    )
    parser.add_argument("--out-dir", default=DEFAULT_OUT_DIR)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional drop for 'floor' metrics (default 0.25)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the latest summaries instead "
        "of checking against it",
    )
    parser.add_argument(
        "--backoff",
        type=float,
        default=0.20,
        help="fractional back-off applied to 'floor' metrics when "
        "rewriting the baseline with --update (default 0.20)",
    )
    args = parser.parse_args(argv)
    baseline_path = args.baseline or BASELINES[args.mode]

    summaries = load_summaries(args.out_dir)
    if summaries is None:
        return 2

    if args.update:
        baseline, missing = rebuild(summaries, args.mode, args.backoff)
        if missing:
            for entry in missing:
                print(f"cannot update: {entry}", file=sys.stderr)
            return 2
        with open(baseline_path, "w") as stream:
            json.dump(baseline, stream, indent=2)
            stream.write("\n")
        print(f"wrote {baseline_path} from {args.out_dir} summaries")
        return 0

    with open(baseline_path) as stream:
        baseline = json.load(stream)
    failures, checked = check(baseline, summaries, args.tolerance)
    if failures:
        print(
            f"\n{len(failures)} regression(s) out of {checked} gates",
            file=sys.stderr,
        )
        return 1
    print(f"\nall {checked} gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
