#!/usr/bin/env python3
"""Gate benchmark summaries against the committed baseline.

Reads the normalized ``BENCH_*.json`` summaries that the benchmark
modules write under ``benchmarks/out/`` and compares them against
``benchmarks/baseline.json``.  Deterministic metrics must match the
baseline exactly; performance metrics may not regress by more than
``--tolerance`` (default 25%).

To refresh the baseline after an intentional workload change, run the
benches with ``BENCH_QUICK=1`` and copy the new deterministic values
from ``benchmarks/out/BENCH_*.json`` into ``baseline.json`` (leave the
conservative performance floors alone unless the workload shape moved).

Exit status: 0 when every gate passes, 1 on any regression, 2 when a
required summary file is missing.
"""

import argparse
import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_BASELINE = os.path.join(HERE, "baseline.json")
DEFAULT_OUT_DIR = os.path.join(HERE, "out")

# (baseline section, summary file, metric, kind)
# kind "exact": must equal the baseline value.
# kind "floor": must be >= baseline * (1 - tolerance).
GATES = [
    ("campaign", "BENCH_campaign.json", "iterations", "exact"),
    ("campaign", "BENCH_campaign.json", "parse_failures", "exact"),
    ("campaign", "BENCH_campaign.json", "quarantined", "exact"),
    ("campaign", "BENCH_campaign.json", "failed_shards", "exact"),
    ("campaign", "BENCH_campaign.json", "found_bugs", "floor"),
    ("campaign", "BENCH_campaign.json", "valid_mutant_rate", "floor"),
    ("campaign", "BENCH_campaign.json", "mutants_per_sec", "floor"),
    ("feedback", "BENCH_feedback.json", "trials", "exact"),
    ("feedback", "BENCH_feedback.json", "blind_found", "exact"),
    ("feedback", "BENCH_feedback.json", "guided_found", "exact"),
    ("feedback", "BENCH_feedback.json", "blind_iterations", "exact"),
    ("feedback", "BENCH_feedback.json", "guided_iterations", "exact"),
    # floor 2.0 - 25% = 1.5x: the E9 acceptance criterion.
    ("feedback", "BENCH_feedback.json", "speedup", "floor"),
    ("cow_memo", "BENCH_cow_memo.json", "findings", "exact"),
    ("cow_memo", "BENCH_cow_memo.json", "speedup", "floor"),
    ("cow_memo", "BENCH_cow_memo.json", "optimize_hit_rate", "floor"),
    ("cow_memo", "BENCH_cow_memo.json", "mutants_per_sec", "floor"),
    ("exec_compile", "BENCH_exec_compile.json", "pairs", "exact"),
    ("exec_compile", "BENCH_exec_compile.json", "plan_fallbacks", "exact"),
    ("exec_compile", "BENCH_exec_compile.json", "speedup", "floor"),
    ("exec_compile", "BENCH_exec_compile.json", "plan_hit_rate", "floor"),
    ("exec_compile", "BENCH_exec_compile.json", "checks_per_sec", "floor"),
    ("throughput", "BENCH_throughput.json", "files", "exact"),
    ("throughput", "BENCH_throughput.json", "invalid_files", "exact"),
    ("throughput", "BENCH_throughput.json", "not_verified_files", "exact"),
    ("throughput", "BENCH_throughput.json", "speedup_avg", "floor"),
]


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Compare BENCH_*.json summaries against baseline.json",
    )
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--out-dir", default=DEFAULT_OUT_DIR)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional drop for 'floor' metrics (default 0.25)",
    )
    args = parser.parse_args(argv)

    with open(args.baseline) as stream:
        baseline = json.load(stream)

    summaries = {}
    failures = []
    checked = 0
    for section, file_name, metric, kind in GATES:
        if file_name not in summaries:
            path = os.path.join(args.out_dir, file_name)
            if not os.path.exists(path):
                print(f"missing summary: {path}", file=sys.stderr)
                return 2
            with open(path) as stream:
                summaries[file_name] = json.load(stream)
        expected = baseline.get(section, {}).get(metric)
        if expected is None:
            continue  # metric not pinned by this baseline
        actual = summaries[file_name].get(metric)
        if actual is None:
            failures.append(f"{section}.{metric} missing from {file_name}")
            print(f"FAIL {section}.{metric}: missing from {file_name}")
            continue
        checked += 1
        if kind == "exact":
            ok = actual == expected
            detail = f"expected exactly {expected}, got {actual}"
        else:
            floor = expected * (1.0 - args.tolerance)
            ok = actual >= floor
            detail = (
                f"floor {floor:.4f} (baseline {expected} "
                f"- {args.tolerance:.0%}), got {actual}"
            )
        print(f"{'ok  ' if ok else 'FAIL'} {section}.{metric}: {detail}")
        if not ok:
            failures.append(f"{section}.{metric}: {detail}")

    if failures:
        print(
            f"\n{len(failures)} regression(s) out of {checked} gates",
            file=sys.stderr,
        )
        return 1
    print(f"\nall {checked} gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
