"""Helpers shared by the benchmark modules."""

import os

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def write_report(name: str, text: str) -> str:
    """Persist a rendered report under benchmarks/out/."""
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, name)
    with open(path, "w") as stream:
        stream.write(text)
    return path
