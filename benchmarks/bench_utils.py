"""Helpers shared by the benchmark modules.

``BENCH_QUICK=1`` switches every bench into a scaled-down smoke
configuration (CI's ``bench-smoke`` job sets it): same code paths, a
fraction of the work, and relaxed shape assertions via :func:`scaled`.
Normalized machine-comparable summaries are written as
``benchmarks/out/BENCH_<name>.json`` through :func:`write_json`;
``check_regression.py`` diffs them against ``benchmarks/baseline.json``.
"""

import json
import os

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

# Quick mode: scaled-down workloads for CI smoke runs.
QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")


def scaled(full, quick):
    """Pick the full-run or quick-mode value for a workload knob."""
    return quick if QUICK else full


def write_report(name: str, text: str) -> str:
    """Persist a rendered report under benchmarks/out/."""
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, name)
    with open(path, "w") as stream:
        stream.write(text)
    return path


def write_json(name: str, payload: dict) -> str:
    """Persist a normalized JSON summary under benchmarks/out/."""
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, name)
    with open(path, "w") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
        stream.write("\n")
    return path
