"""E12 — the wire tier: binary payloads and socket dispatch (ROADMAP 5).

Two measurements, one invariant.

**Codec leg** — module payload materialization on the claim path.  The
text transport prints the module into every job record and every claim
re-parses it; the bitcode transport encodes each unique module once
(content addressing dedups the blob) and each node decodes it once (the
fingerprint-keyed LRU serves repeats).  A module's payload is claimed
many times per campaign — once per pipeline shard, reclaim attempt, and
resume — so the leg replays ``CLAIMS_PER_MODULE`` claims per module and
gates the amortized speedup at >=5x.

**Dispatch leg** — publish -> claim -> result -> collect for the same
job set through the shared-directory queue and through a loopback
:class:`QueueBroker`, gating the socket transport at >=2x the
shared-dir dispatch throughput.  Both transports must deliver the
identical result set — transports move bytes, they never change
outcomes.

Summary: ``benchmarks/out/BENCH_wire.json``; gated by the ``wire``
section of ``baseline.json`` via ``check_regression.py``.
"""

import tempfile
import time

from repro.fuzz.checkpoint import jobs_fingerprint, result_to_dict
from repro.fuzz.dist import ShardJob, WorkQueue
from repro.fuzz.driver import FuzzConfig
from repro.fuzz.net import QueueBroker, SocketQueue
from repro.fuzz.parallel import ShardResult
from repro.fuzz.seeds import ARCHETYPES, generate_corpus
from repro.fuzz.wire import DecodeCache, blob_digest, encode_payload
from repro.ir import parse_module, print_module

from bench_utils import scaled, write_json

# A payload is claimed well more than once per campaign: pipeline
# shards x retry attempts x resumes.  12 mirrors three pipelines with
# up to four claims each — the regime content addressing targets.
CLAIMS_PER_MODULE = 12
MODULE_COUNT = len(ARCHETYPES)
JOB_COUNT = scaled(150, 60)
ROUNDS = scaled(5, 3)

IR = """define i32 @f(i32 %a) {
entry:
  %t = add i32 %a, 1
  ret i32 %t
}
"""


def _modules():
    corpus = generate_corpus(MODULE_COUNT, seed=77)
    return [parse_module(text, name) for name, text in corpus]


def _codec_leg():
    modules = _modules()
    texts = [print_module(module) for module in modules]
    # The parity these timings rest on: decoding the bitcode payload
    # reconstructs the canonical text exactly (print∘parse fixpoint).
    for text in texts:
        data, fmt = encode_payload(text, "bitcode")
        assert fmt == "bitcode"
        cache = DecodeCache(capacity=1)
        assert cache.text(blob_digest(data), data, fmt) == text

    def text_path():
        # Coordinator prints the module into each job record; every
        # claim parses it back.  No sharing anywhere.
        for module in modules:
            for _ in range(CLAIMS_PER_MODULE):
                parse_module(print_module(module))

    cache_stats = {}

    def bitcode_path():
        # Coordinator: encode once per unique module, content-addressed.
        store = {}
        digests = []
        for text in texts:
            data, fmt = encode_payload(text, "bitcode")
            sha = blob_digest(data)
            store[sha] = (data, fmt)
            digests.append(sha)
        # Node: the decode LRU pays one decode per blob; repeats hit.
        cache = DecodeCache()
        hits = misses = 0
        for sha in digests:
            data, fmt = store[sha]
            for _ in range(CLAIMS_PER_MODULE):
                before = len(cache)
                cache.text(sha, data, fmt)
                if len(cache) == before:
                    hits += 1
                else:
                    misses += 1
        cache_stats["hits"], cache_stats["misses"] = hits, misses

    best = {"text": float("inf"), "bitcode": float("inf")}
    for _ in range(ROUNDS):
        begin = time.perf_counter()
        text_path()
        best["text"] = min(best["text"], time.perf_counter() - begin)
        begin = time.perf_counter()
        bitcode_path()
        best["bitcode"] = min(best["bitcode"],
                              time.perf_counter() - begin)
    total = len(modules) * CLAIMS_PER_MODULE
    hit_rate = cache_stats["hits"] / total
    return {
        "modules": len(modules),
        "claims": total,
        "text_best_round": round(best["text"], 6),
        "bitcode_best_round": round(best["bitcode"], 6),
        "codec_speedup": round(best["text"] / best["bitcode"], 4),
        "decode_hit_rate": round(hit_rate, 6),
    }


def _jobs():
    return [ShardJob(job_index=index, file_name=f"f{index}.ll", text=IR,
                     config=FuzzConfig(base_seed=index), iterations=1)
            for index in range(JOB_COUNT)]


def _result(index):
    return ShardResult(job_index=index, file_name=f"f{index}.ll",
                       pipeline="O2", worker="w", seed=index,
                       iterations=1)


def _drain(coordinator, node, jobs, fingerprint):
    """One full dispatch cycle; returns (seconds, collected results)."""
    begin = time.perf_counter()
    coordinator.publish(jobs, fingerprint)
    completed = 0
    while completed < len(jobs):
        claims = node.claim_next(limit=8)
        if not claims:
            break
        for job, _lease in claims:
            node.publish_result(_result(job.job_index), fingerprint)
            completed += 1
    collected = coordinator.collect_results(fingerprint)
    elapsed = time.perf_counter() - begin
    assert completed == len(jobs)
    assert node.drained()
    return elapsed, collected


def _dispatch_leg():
    jobs = _jobs()
    fingerprint = jobs_fingerprint(jobs)
    best = {"shared_dir": float("inf"), "socket": float("inf")}
    results = {}
    for _ in range(ROUNDS):
        directory = tempfile.mkdtemp(prefix="bench-wire-dir-")
        coordinator = WorkQueue(directory, node="coordinator")
        node = WorkQueue(directory, node="n1")
        elapsed, collected = _drain(coordinator, node, jobs, fingerprint)
        best["shared_dir"] = min(best["shared_dir"], elapsed)
        results["shared_dir"] = collected

        broker = QueueBroker()
        broker.start()
        try:
            coordinator = SocketQueue(broker.address, node="coordinator")
            node = SocketQueue(broker.address, node="n1")
            elapsed, collected = _drain(coordinator, node, jobs,
                                        fingerprint)
            coordinator.close()
            node.close()
        finally:
            broker.stop()
        best["socket"] = min(best["socket"], elapsed)
        results["socket"] = collected

    # Transport invariance: byte-identical result sets either way.
    as_dicts = {
        mode: {index: result_to_dict(result)
               for index, result in collected.items()}
        for mode, collected in results.items()
    }
    assert as_dicts["socket"] == as_dicts["shared_dir"]
    return {
        "jobs": len(jobs),
        "shared_dir_best_round": round(best["shared_dir"], 6),
        "socket_best_round": round(best["socket"], 6),
        "dispatch_speedup": round(
            best["shared_dir"] / best["socket"], 4),
        "socket_jobs_per_sec": round(len(jobs) / best["socket"], 3),
        "result_mismatches": 0,
    }


def test_bench_wire(benchmark):
    payload = {"bench": "wire", "schema": 1,
               "claims_per_module": CLAIMS_PER_MODULE}

    def measure():
        payload.update(_codec_leg())
        payload.update(_dispatch_leg())

    benchmark.pedantic(measure, rounds=1, iterations=1)

    assert payload["decode_hit_rate"] > 0.9
    assert payload["result_mismatches"] == 0
    write_json("BENCH_wire.json", payload)
