"""E11 — ablation of incremental re-optimization (worklist + pass memos).

The incremental optimizer (``repro.opt.incremental``) shrinks the
optimize stage three ways: per-(fingerprint, pass) skip memos replay
no-change outcomes for repeated shapes, worklist-driven scan passes
revisit only the mutation's dirty blocks, and refingerprint budgeting
caps whole-function re-hashes for fresh mutants.  The ablation
(``--no-incremental-opt`` / ``FuzzConfig(incremental=False)``) runs every
pass over every function, the classic full-pipeline loop.

The workload is shaped like real fuzzing corpora after a few rounds of
growth: one function with many *dataflow-local* blocks (each block
computes from the arguments, not from a long cross-block chain), so a
mutation dirties one block and the worklist passes skip the other ~39.
Long dependency chains would make every mutation's dirty closure cover
the whole function and hide the effect being measured.

Both modes must produce byte-identical findings and deterministic
metrics — incremental mode is a pure performance layer.  The comparison
gates ``stage.optimize.seconds`` rather than wall clock: the two drivers
share the process-wide TV plan cache, so whichever runs first warms
verification for the other and wall-clock ratios under-report the
optimize-stage win.
"""

import time

from repro.fuzz import FuzzConfig, FuzzDriver
from repro.ir import parse_module, print_module
from repro.mutate import MutatorConfig
from repro.opt import OptContext, PassManager
from repro.tv import RefinementConfig

from bench_utils import scaled, write_json, write_report

PIPELINE = "constfold,instsimplify,instcombine,dce"

# Bugs hosted in the peephole passes this pipeline runs; mutants reach
# them through shift-constant and bitwidth (trunc/zext/mul) mutations.
BUGS = ("53252", "50693", "59836", "56945", "56968", "56981")

BLOCKS = 40
INSTS_PER_BLOCK = 6
OPS = ("add", "sub", "xor", "and", "or", "mul")


def _workload() -> str:
    lines = ["define i32 @work(i32 %x, i32 %y) {", "entry:", "  br label %b0"]
    for b in range(BLOCKS):
        lines.append(f"b{b}:")
        prev = "%x" if b % 2 == 0 else "%y"
        for i in range(INSTS_PER_BLOCK):
            op = OPS[(b + i) % len(OPS)]
            constant = 2 * (b * INSTS_PER_BLOCK + i) + 3
            lines.append(f"  %v{b}_{i} = {op} i32 {prev}, {constant}")
            prev = f"%v{b}_{i}"
        lines.append(f"  %c{b} = icmp slt i32 {prev}, {1000 + b}")
        nxt = f"b{b + 1}" if b + 1 < BLOCKS else "out"
        lines.append(f"  br i1 %c{b}, label %{nxt}, label %out")
    lines += ["out:", "  ret i32 %x", "}"]
    return "\n".join(lines)


def _preoptimized() -> str:
    # Run the seed to a fixpoint first so the baseline optimize pass over
    # the *unmutated* shape finds nothing to do — that is the state a
    # long-running campaign settles into, and it lets the pass memos
    # prove the seed's passes up front.
    module = parse_module(_workload())
    for _ in range(10):
        if not PassManager([PIPELINE], OptContext(())).run(module):
            break
    return print_module(module)


SEED_TEXT = _preoptimized()
MUTANTS = scaled(240, 80)
ROUNDS = 4
BATCH = MUTANTS // ROUNDS


def _driver(incremental: bool) -> FuzzDriver:
    config = FuzzConfig(
        pipeline=PIPELINE,
        enabled_bugs=BUGS,
        mutator=MutatorConfig(max_mutations=2),
        tv=RefinementConfig(max_inputs=8),
        incremental=incremental,
    )
    return FuzzDriver(parse_module(SEED_TEXT), config, file_name="bench.ll")


def _finding_keys(findings) -> list:
    return [(f.seed, f.kind, f.function, tuple(f.bug_ids)) for f in findings]


def test_bench_incremental_opt_ablation(benchmark):
    opt_seconds = {"incremental": float("inf"), "full": float("inf")}
    wall = {"incremental": float("inf"), "full": float("inf")}
    findings = {"incremental": [], "full": []}
    drivers = {"incremental": _driver(True), "full": _driver(False)}

    def measure_both():
        # Interleave the two modes round-robin and keep each mode's best
        # round, so a transient load spike cannot skew the comparison.
        # The gated metric is each round's *optimize-stage* seconds delta.
        for round_index in range(ROUNDS):
            for mode, driver in drivers.items():
                before = driver.metrics.counter("stage.optimize.seconds")
                begin = time.perf_counter()
                for offset in range(BATCH):
                    found = driver.run_one(round_index * BATCH + offset)
                    findings[mode].extend(_finding_keys(found))
                wall[mode] = min(wall[mode], time.perf_counter() - begin)
                after = driver.metrics.counter("stage.optimize.seconds")
                opt_seconds[mode] = min(opt_seconds[mode], after - before)

    benchmark.pedantic(measure_both, rounds=1, iterations=1)

    # Findings invariance is the whole contract: same seeds, same bugs,
    # same deterministic counters — incremental mode only changes speed.
    assert findings["incremental"] == findings["full"]
    inc_metrics = drivers["incremental"].metrics
    full_metrics = drivers["full"].metrics
    assert inc_metrics.deterministic() == full_metrics.deterministic()

    speedup = opt_seconds["full"] / opt_seconds["incremental"]
    skips = inc_metrics.counter("opt.incremental.memo_skips") + inc_metrics.counter(
        "opt.incremental.memo_crash_skips"
    )
    worklist_runs = inc_metrics.counter("opt.incremental.worklist_runs")
    full_runs = inc_metrics.counter("opt.incremental.full_runs")
    dispatches = skips + worklist_runs + full_runs
    skip_rate = skips / dispatches if dispatches else 0.0

    payload = {
        "bench": "incremental_opt",
        "schema": 1,
        "mutants_per_round": BATCH,
        "incremental_opt_best_round": round(opt_seconds["incremental"], 6),
        "full_opt_best_round": round(opt_seconds["full"], 6),
        "optimize_speedup": round(speedup, 4),
        "mutants_per_sec": round(BATCH / wall["incremental"], 3),
        "skip_rate": round(skip_rate, 6),
        "worklist_runs": int(worklist_runs),
        "findings": len(findings["incremental"]),
    }
    write_json("BENCH_incremental_opt.json", payload)
    report = (
        f"incremental optimize stage: {opt_seconds['incremental']:.3f}s per "
        f"best {BATCH}-mutant round\n"
        f"full optimize stage:        {opt_seconds['full']:.3f}s per best "
        f"{BATCH}-mutant round\n"
        f"optimize-stage speedup:     {speedup:.2f}x\n"
        f"pass-skip rate:             {skip_rate:.0%}\n"
        f"worklist runs:              {int(worklist_runs)}\n"
        f"findings (equal in both modes): {payload['findings']}\n"
    )
    write_report("incremental_opt_ablation.txt", report)
    print("\n" + report)

    # Acceptance floor: incremental optimization must at least halve the
    # optimize stage on this workload, and the worklist machinery must
    # actually have engaged (not just the skip memos).
    assert speedup >= 2.0
    assert worklist_runs > 0


def test_bench_incremental_opt_off_leaves_no_trace():
    """The ablation driver must not touch any incremental counters."""
    driver = _driver(False)
    for seed in range(10):
        driver.run_one(seed)
    assert driver.metrics.counters_with_prefix("opt.incremental.") == {}
