"""E7 — ablation of CoW cloning + fingerprint memoization (paper §III-B).

Real fuzzing corpora are modules where only a couple of functions are
viable mutation targets while the rest ride along: they are cloned and
re-optimized on every iteration even though they never change.  The
memoized driver shares those functions copy-on-write and replays their
cached optimize results (and repeated verify verdicts), so per-iteration
work shrinks to the functions the mutant round actually touched.  The
ablation (``--no-memo`` / ``FuzzConfig(memo=False)``) deep-clones and
re-optimizes everything, mirroring the overhead the paper attributes to
naive per-mutant copying in §V-B.

The two modes must produce byte-identical findings — the caches are a
pure performance layer.
"""

import time

from repro.fuzz import FuzzConfig, FuzzDriver
from repro.ir import parse_module
from repro.mutate import MutatorConfig
from repro.tv import RefinementConfig

from bench_utils import scaled, write_json, write_report

# Cold functions: unsupported by TV (i128 parameters, so preprocessing
# drops them from targeting) but perfectly optimizable, which is what
# makes them pure overhead for the deep-clone driver and pure cache hits
# for the memoized one.
COLD_FUNCTIONS = 10
COLD_BODY_ADDS = 12


def _workload() -> str:
    lines = []
    for index in range(COLD_FUNCTIONS):
        lines.append(f"define i128 @cold{index}(i128 %x) {{")
        prev = "%x"
        for step in range(COLD_BODY_ADDS):
            lines.append(f"  %v{step} = add i128 {prev}, {index * 31 + step + 1}")
            prev = f"%v{step}"
        lines += [f"  ret i128 {prev}", "}", ""]
    lines += [
        "define i32 @clamp(i32 %x, i32 %y) {",
        "  %c = icmp ult i32 %x, 100",
        "  %r = select i1 %c, i32 %x, i32 100",
        "  %s = add i32 %r, %y",
        "  ret i32 %s",
        "}",
        "",
        "define i32 @shifty(i32 %x, i32 %y) {",
        "  %s = shl i32 %x, 3",
        "  %t = lshr i32 %s, 3",
        "  %u = xor i32 %t, %y",
        "  ret i32 %u",
        "}",
    ]
    return "\n".join(lines)


SEED_TEXT = _workload()
MUTANTS = scaled(240, 80)
ROUNDS = 4
BATCH = MUTANTS // ROUNDS


def _driver(memo: bool) -> FuzzDriver:
    config = FuzzConfig(
        mutator=MutatorConfig(max_mutations=2, cow_clone=memo),
        tv=RefinementConfig(max_inputs=12),
        memo=memo,
        enabled_bugs=("53252",),
    )
    return FuzzDriver(parse_module(SEED_TEXT), config, file_name="bench.ll")


def _finding_keys(findings) -> list:
    return [(f.seed, f.kind, f.function, tuple(f.bug_ids)) for f in findings]


def test_bench_cow_memo_ablation(benchmark):
    results = {"memo": float("inf"), "deep": float("inf")}
    findings = {"memo": [], "deep": []}
    drivers = {"memo": _driver(True), "deep": _driver(False)}

    def measure_both():
        # Interleave the two modes round-robin and keep each mode's best
        # round, so a transient load spike cannot skew the comparison.
        # The memo driver's caches warm across rounds, exactly as they
        # would across a long campaign.
        for round_index in range(ROUNDS):
            for mode, driver in drivers.items():
                begin = time.perf_counter()
                for offset in range(BATCH):
                    found = driver.run_one(round_index * BATCH + offset)
                    findings[mode].extend(_finding_keys(found))
                results[mode] = min(results[mode], time.perf_counter() - begin)

    benchmark.pedantic(measure_both, rounds=1, iterations=1)

    # Findings invariance is the whole contract: same seeds, same bugs.
    assert findings["memo"] == findings["deep"]

    speedup = results["deep"] / results["memo"]
    memo_metrics = drivers["memo"].metrics

    def hit_rate(cache: str) -> float:
        hits = memo_metrics.counter(f"cache.{cache}.hit")
        total = hits + memo_metrics.counter(f"cache.{cache}.miss")
        return hits / total if total else 0.0

    payload = {
        "bench": "cow_memo",
        "schema": 1,
        "mutants_per_round": BATCH,
        "memo_best_round": round(results["memo"], 6),
        "deep_best_round": round(results["deep"], 6),
        "speedup": round(speedup, 4),
        "mutants_per_sec": round(BATCH / results["memo"], 3),
        "optimize_hit_rate": round(hit_rate("optimize"), 6),
        "verify_hit_rate": round(hit_rate("verify"), 6),
        "findings": len(findings["memo"]),
    }
    write_json("BENCH_cow_memo.json", payload)
    report = (
        f"memoized driver:  {results['memo']:.3f}s per best "
        f"{BATCH}-mutant round\n"
        f"deep-clone driver: {results['deep']:.3f}s per best "
        f"{BATCH}-mutant round\n"
        f"speedup:           {speedup:.2f}x\n"
        f"optimize hit rate: {payload['optimize_hit_rate']:.0%}\n"
        f"verify hit rate:   {payload['verify_hit_rate']:.0%}\n"
        f"findings (equal in both modes): {payload['findings']}\n"
    )
    write_report("cow_memo_ablation.txt", report)
    print("\n" + report)

    # Acceptance floor: the memoized hot loop must beat the deep-clone
    # ablation by at least 1.5x on this workload.
    assert speedup >= 1.5
    # The cold functions must actually be served from cache.
    assert payload["optimize_hit_rate"] > 0.5


def test_bench_cow_memo_clone_volume(benchmark):
    """CoW must copy strictly fewer functions than deep cloning."""

    def run_both():
        memo_driver = _driver(True)
        deep_driver = _driver(False)
        for seed in range(20):
            memo_driver.run_one(seed)
            deep_driver.run_one(seed)
        memo_copied = memo_driver.metrics.counter("clone.functions_copied")
        deep_copied = deep_driver.metrics.counter("clone.functions_copied")
        assert memo_copied < deep_copied / 2
        return memo_copied, deep_copied

    benchmark.pedantic(run_both, rounds=1, iterations=1)
