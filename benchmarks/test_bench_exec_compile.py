"""E8 — ablation of compiled execution plans (paper §III-B, "pay once").

The verify stage dominates the integrated loop (see overheads.txt), and
most of its time used to be tree-walking dispatch: every instruction of
every test-input execution re-inspected IR objects.  The plan compiler
lowers each function once into specialized closures over dense frame
slots; the global plan cache amortizes that single compilation across
every input, path, and mutant that re-executes the function.

The ablation (``--no-compiled-exec`` / ``RefinementConfig(compiled=
False)``) tree-walks instead.  Verdicts must be identical — the plans
are a pure performance layer — and the compiled mode must clear a 2x
speedup floor on this verification workload.
"""

import time

from repro.fuzz import FuzzConfig, FuzzDriver, corpus_modules
from repro.ir import parse_module
from repro.mutate import MutatorConfig
from repro.opt import OptContext, PassManager
from repro.tv import RefinementConfig, check_refinement, reset_global_plan_cache

from bench_utils import scaled, write_json, write_report

# The verification workload is cheap enough (~1s) to run unscaled in
# quick mode; a smaller corpus slice would be dominated by per-check
# setup instead of interpretation, understating the speedup.
CORPUS_FILES = 10
MAX_INPUTS = 24
ROUNDS = 4


def _pairs():
    """(src module, optimized module, function name) verification jobs."""
    jobs = []
    for _, module in corpus_modules(CORPUS_FILES, seed=13):
        optimized = module.clone()
        PassManager(["O2"], OptContext(("53252",))).run(optimized)
        for function in module.definitions():
            if optimized.get_function(function.name) is None:
                continue
            jobs.append((module, optimized, function.name))
    return jobs


def test_bench_exec_compile_ablation(benchmark):
    jobs = _pairs()
    assert jobs
    cache = reset_global_plan_cache()
    results = {"compiled": float("inf"), "treewalk": float("inf")}
    verdicts = {}

    def verify_all(compiled):
        config = RefinementConfig(max_inputs=MAX_INPUTS, compiled=compiled)
        observed = []
        for src_module, tgt_module, name in jobs:
            result = check_refinement(
                src_module.get_function(name),
                tgt_module.get_function(name),
                src_module,
                tgt_module,
                config,
            )
            observed.append((name, result.verdict.value, str(result.counterexample)))
        return observed

    def measure_both():
        # Interleave the two modes round-robin and keep each mode's
        # best round, so a transient load spike cannot skew the
        # comparison.  The plan cache warms on the first compiled
        # round, exactly as it would across a long campaign.
        for _ in range(ROUNDS):
            for mode, compiled in (("compiled", True), ("treewalk", False)):
                begin = time.perf_counter()
                verdicts[mode] = verify_all(compiled)
                results[mode] = min(results[mode], time.perf_counter() - begin)

    benchmark.pedantic(measure_both, rounds=1, iterations=1)

    # Verdict invariance is the whole contract.
    assert verdicts["compiled"] == verdicts["treewalk"]

    hits, misses, fallbacks = cache.stats()
    lookups = hits + misses
    plan_hit_rate = hits / lookups if lookups else 0.0
    speedup = results["treewalk"] / results["compiled"]
    unsound = sum(1 for _, verdict, _ in verdicts["compiled"] if verdict == "unsound")

    payload = {
        "bench": "exec_compile",
        "schema": 1,
        "pairs": len(jobs),
        "max_inputs": MAX_INPUTS,
        "compiled_best_round": round(results["compiled"], 6),
        "treewalk_best_round": round(results["treewalk"], 6),
        "speedup": round(speedup, 4),
        "checks_per_sec": round(len(jobs) / results["compiled"], 3),
        "plan_hit_rate": round(plan_hit_rate, 6),
        "plan_fallbacks": fallbacks,
        "unsound_pairs": unsound,
    }
    write_json("BENCH_exec_compile.json", payload)
    report = (
        f"compiled plans:  {results['compiled']:.3f}s per best "
        f"{len(jobs)}-pair round\n"
        f"tree-walking:    {results['treewalk']:.3f}s per best "
        f"{len(jobs)}-pair round\n"
        f"speedup:         {speedup:.2f}x\n"
        f"plan hit rate:   {plan_hit_rate:.0%} "
        f"({fallbacks} fallbacks)\n"
        f"verdicts (equal in both modes): {len(jobs)} pairs, "
        f"{unsound} unsound\n"
    )
    write_report("exec_compile_ablation.txt", report)
    print("\n" + report)

    # Acceptance floor: compiled execution must beat tree-walking by at
    # least 2x on this verification workload.
    assert speedup >= 2.0
    # After the warm-up round every plan lookup must be a cache hit.
    assert plan_hit_rate > 0.5
    assert fallbacks == 0


def test_bench_exec_compile_driver_parity(benchmark):
    """Driver-level invariance: same findings, same deterministic
    metrics, with the compiled mode's plan cache visibly hot."""
    seed_text = "\n".join([
        "define i32 @clamp(i32 %x, i32 %y) {",
        "  %c = icmp ult i32 %x, 100",
        "  %r = select i1 %c, i32 %x, i32 100",
        "  %s = add i32 %r, %y",
        "  ret i32 %s",
        "}",
        "",
        "define i32 @shifty(i32 %x) {",
        "  %s = shl i32 %x, 3",
        "  %t = lshr i32 %s, 3",
        "  ret i32 %t",
        "}",
    ])
    mutants = scaled(120, 40)

    def driver_for(compiled):
        config = FuzzConfig(
            mutator=MutatorConfig(max_mutations=2),
            tv=RefinementConfig(max_inputs=12, compiled=compiled),
            enabled_bugs=("53252",),
        )
        return FuzzDriver(parse_module(seed_text), config, file_name="bench.ll")

    def run_both():
        reset_global_plan_cache()
        compiled_driver = driver_for(True)
        walked_driver = driver_for(False)
        compiled_report = compiled_driver.run(iterations=mutants)
        walked_report = walked_driver.run(iterations=mutants)

        def keys(report):
            return [
                (f.seed, f.kind, f.function, tuple(f.bug_ids))
                for f in report.findings
            ]
        assert keys(compiled_report) == keys(walked_report)
        assert (
            compiled_driver.metrics.deterministic()
            == walked_driver.metrics.deterministic()
        )
        hits = compiled_driver.metrics.counter("exec.plan_cache.hit")
        misses = compiled_driver.metrics.counter("exec.plan_cache.miss")
        assert hits > 0  # repeated functions are served from cache
        assert walked_driver.metrics.counter("exec.plan_cache.miss") == 0
        return hits, misses

    benchmark.pedantic(run_both, rounds=1, iterations=1)
