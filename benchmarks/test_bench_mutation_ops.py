"""E6 — per-mutation-class throughput and applicability (paper §IV mix).

Benchmarks each of the eight mutation operators in isolation and reports
how often each applies across the corpus — the data behind the engine's
default operator weights.
"""

import pytest

from repro.analysis.overlay import MutantOverlay, OriginalFunctionInfo
from repro.fuzz import generate_corpus
from repro.ir import is_valid_module, parse_module
from repro.mutate import MutationRNG, Mutator, MutatorConfig
from repro.mutate.mutations import MUTATIONS

from bench_utils import write_report

SEED_TEXT = """
declare void @clobber(ptr)

define void @helper(ptr %ptr) {
  store i32 42, ptr %ptr
  ret void
}

define i32 @test9(ptr %p, ptr %q) {
  %a = load i32, ptr %q
  call void @clobber(ptr %p)
  %b = load i32, ptr %q
  %c = sub i32 %a, %b
  %d = add nsw i32 %c, 16
  %e = icmp ult i32 %d, 144
  %r = select i1 %e, i32 %d, i32 %c
  ret i32 %r
}
"""


@pytest.fixture(scope="module")
def prepared():
    module = parse_module(SEED_TEXT)
    infos = {fn.name: OriginalFunctionInfo(fn) for fn in module.definitions()}
    return module, infos


@pytest.mark.parametrize("mutation_name", sorted(MUTATIONS))
def test_bench_single_mutation(benchmark, prepared, mutation_name):
    """Clone + one mutation attempt of a single class."""
    module, infos = prepared
    mutation = MUTATIONS[mutation_name]
    counter = iter(range(10**9))

    def mutate_once():
        seed = next(counter)
        clone = module.clone()
        mutant = clone.get_function("test9")
        overlay = MutantOverlay(mutant, infos["test9"])
        mutation(overlay, MutationRNG(seed))

    benchmark(mutate_once)


def test_bench_mutation_applicability(benchmark):
    """How often each operator applies over the whole corpus."""
    corpus = generate_corpus(27, seed=13)
    holder = {}

    def survey():
        rates = {}
        for mutation_name, mutation in MUTATIONS.items():
            applied = attempts = 0
            for name, text in corpus:
                module = parse_module(text, name)
                infos = {
                    fn.name: OriginalFunctionInfo(fn)
                    for fn in module.definitions()
                }
                for seed in range(6):
                    clone = module.clone()
                    for fn_name, info in infos.items():
                        overlay = MutantOverlay(clone.get_function(fn_name), info)
                        attempts += 1
                        if mutation(overlay, MutationRNG(seed * 977 + 1)):
                            applied += 1
                    assert is_valid_module(clone)
            rates[mutation_name] = applied / attempts
        holder["rates"] = rates
        return rates

    benchmark.pedantic(survey, rounds=1, iterations=1)
    rates = holder["rates"]
    lines = ["applicability across the corpus (share of attempts that fired):"]
    for name in sorted(rates, key=rates.get, reverse=True):
        lines.append(f"  {name:12s} {100 * rates[name]:5.1f}%")
    report = "\n".join(lines) + "\n"
    write_report("mutation_mix.txt", report)
    print("\n" + report)

    # Arithmetic and use mutations — the aggressive defaults of §IV-E/F —
    # must be near-universally applicable.
    assert rates["arithmetic"] > 0.5
    assert rates["uses"] > 0.8


def test_bench_full_engine_throughput(benchmark):
    """Whole-engine mutant creation rate (all operators, weighted)."""
    mutator = Mutator(parse_module(SEED_TEXT), MutatorConfig(max_mutations=3))
    counter = iter(range(10**9))

    def create():
        mutator.create_mutant(next(counter))

    benchmark(create)
