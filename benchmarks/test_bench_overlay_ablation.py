"""E5 — ablation of the two-level analysis cache (paper §III-B).

The paper's design keeps the original function's analyses (dominator
tree, shufflable ranges, constant pool) immutable and consults a
mutant-specific overlay first, "avoiding repeated dominance tree
computations".  The ablation forces a per-mutant recompute instead and
measures the throughput difference on a mutation mix that leans on
dominance queries (uses/move).
"""

import pytest

from repro.ir import parse_module
from repro.mutate import Mutator, MutatorConfig

from bench_utils import write_report

def _make_cfg_heavy_seed(diamonds: int = 16) -> str:
    """A chain of diamonds: 2 + 3*diamonds blocks, so dominator-tree
    construction is a real cost relative to cloning."""
    lines = [
        "define i32 @f(i32 %x, i32 %y) {",
        "entry:",
        "  %v0 = add i32 %x, %y",
        "  br label %d0_head",
    ]
    for i in range(diamonds):
        lines += [
            f"d{i}_head:",
            f"  %c{i} = icmp ult i32 %v{i}, {1000 + i}",
            f"  br i1 %c{i}, label %d{i}_l, label %d{i}_r",
            f"d{i}_l:",
            f"  %l{i} = add i32 %v{i}, {i + 1}",
            f"  br label %d{i}_join",
            f"d{i}_r:",
            f"  %r{i} = xor i32 %v{i}, {i + 7}",
            f"  br label %d{i}_join",
            f"d{i}_join:",
            f"  %v{i + 1} = phi i32 [ %l{i}, %d{i}_l ], "
            f"[ %r{i}, %d{i}_r ]",
            f"  br label %{'d%d_head' % (i + 1) if i + 1 < diamonds else 'done'}",
        ]
    lines += ["done:", f"  ret i32 %v{diamonds}", "}"]
    return "\n".join(lines)


# A CFG-heavy seed makes dominance queries expensive enough to matter.
SEED_TEXT = _make_cfg_heavy_seed()

DOMINANCE_HEAVY = ["uses", "move"]
MUTANTS = 300


def _mutator(mode: str) -> Mutator:
    return Mutator(
        parse_module(SEED_TEXT),
        MutatorConfig(
            max_mutations=3,
            enabled_mutations=DOMINANCE_HEAVY,
            overlay_mode=mode,
        ),
    )


@pytest.mark.parametrize("mode", ["two-level", "recompute"])
def test_bench_overlay_mode(benchmark, mode):
    mutator = _mutator(mode)
    counter = iter(range(10**9))

    def one_mutant():
        mutator.create_mutant(next(counter))

    benchmark(one_mutant)


def test_bench_overlay_ablation_summary(benchmark):
    import time

    results = {}
    ROUNDS = 5
    BATCH = MUTANTS // ROUNDS

    def measure_both():
        # Interleave the two modes round-robin and keep each mode's best
        # round, so a transient load spike cannot skew the comparison.
        best = {"two-level": float("inf"), "recompute": float("inf")}
        mutators = {mode: _mutator(mode) for mode in ("two-level", "recompute")}
        for round_index in range(ROUNDS):
            for mode, mutator in mutators.items():
                begin = time.perf_counter()
                for seed in range(BATCH):
                    mutator.create_mutant(round_index * BATCH + seed)
                best[mode] = min(best[mode], time.perf_counter() - begin)
        results.update(best)

    benchmark.pedantic(measure_both, rounds=1, iterations=1)
    speedup = results["recompute"] / results["two-level"]
    report = (
        f"two-level overlay: {results['two-level']:.3f}s per best "
        f"{MUTANTS // 5}-mutant round\n"
        f"full recompute:    {results['recompute']:.3f}s per best "
        f"{MUTANTS // 5}-mutant round\n"
        f"overlay speedup:   {speedup:.2f}x\n"
    )
    write_report("overlay_ablation.txt", report)
    print("\n" + report)
    # The paper's claim is qualitative ("supports high performance by
    # avoiding repeated dominance tree computations"): the overlay must
    # not be slower, and should win measurably on this workload.
    assert speedup > 1.0


def test_bench_overlay_results_identical(benchmark):
    """The ablation changes performance only: both modes produce
    byte-identical mutants for every seed."""
    from repro.ir import print_module

    def compare_modes():
        fast = _mutator("two-level")
        slow = _mutator("recompute")
        for seed in range(40):
            a, _ = fast.create_mutant(seed)
            b, _ = slow.create_mutant(seed)
            assert print_module(a) == print_module(b), seed

    benchmark.pedantic(compare_modes, rounds=1, iterations=1)
