"""E10 — ablation of batched (struct-of-arrays) execution (ROADMAP 3).

After E8's compile-once plans, the verify stage still replays the same
plan once per enumerated input: ``max_inputs`` scalar walks per side
per check.  Batched execution drives the whole pending input set down
each plan step as a vector of lanes — one tight loop per instruction
instead of one interpreter walk per input — regrouping lanes at
divergent branches and masking out lanes that trap.

The ablation (``--no-batched-exec`` / ``RefinementConfig(batched=
False)``) enumerates scalar runs instead.  Verdicts must be identical —
batching is a pure performance layer over the same semantics — and the
batched mode must clear a 2x speedup floor on this verification
workload.
"""

import time

from repro.fuzz import FuzzConfig, FuzzDriver, corpus_modules
from repro.ir import parse_module
from repro.mutate import MutatorConfig
from repro.opt import OptContext, PassManager
from repro.tv import (
    RefinementConfig,
    check_refinement,
    global_batch_stats,
    reset_global_batch_stats,
    reset_global_plan_cache,
)

from bench_utils import scaled, write_json, write_report

# The verification workload is cheap enough (~1s) to run unscaled in
# quick mode; a smaller corpus slice would be dominated by per-check
# setup instead of interpretation, understating the speedup.
CORPUS_FILES = 10
MAX_INPUTS = 24
ROUNDS = 4


def _pairs():
    """(src module, optimized module, function name) verification jobs."""
    jobs = []
    for _, module in corpus_modules(CORPUS_FILES, seed=13):
        optimized = module.clone()
        PassManager(["O2"], OptContext(("53252",))).run(optimized)
        for function in module.definitions():
            if optimized.get_function(function.name) is None:
                continue
            jobs.append((module, optimized, function.name))
    return jobs


def test_bench_batch_exec_ablation(benchmark):
    jobs = _pairs()
    assert jobs
    reset_global_plan_cache()
    reset_global_batch_stats()
    results = {"batched": float("inf"), "scalar": float("inf")}
    verdicts = {}

    def verify_all(batched):
        config = RefinementConfig(max_inputs=MAX_INPUTS, batched=batched)
        observed = []
        for src_module, tgt_module, name in jobs:
            result = check_refinement(
                src_module.get_function(name),
                tgt_module.get_function(name),
                src_module,
                tgt_module,
                config,
            )
            observed.append(
                (
                    name,
                    result.verdict.value,
                    result.inputs_checked,
                    result.inconclusive_inputs,
                    str(result.counterexample),
                )
            )
        return observed

    def measure_both():
        # Interleave the two modes round-robin and keep each mode's
        # best round, so a transient load spike cannot skew the
        # comparison.  Both modes share the warm plan cache, exactly
        # as they would across a long campaign.
        for _ in range(ROUNDS):
            for mode, batched in (("batched", True), ("scalar", False)):
                begin = time.perf_counter()
                verdicts[mode] = verify_all(batched)
                results[mode] = min(results[mode], time.perf_counter() - begin)

    benchmark.pedantic(measure_both, rounds=1, iterations=1)

    # Verdict invariance is the whole contract: identical verdicts,
    # input counts, inconclusive counts, and counterexamples.
    assert verdicts["batched"] == verdicts["scalar"]

    batches, lanes, splits, fallbacks = global_batch_stats().stats()
    lanes_per_batch = lanes / batches if batches else 0.0
    speedup = results["scalar"] / results["batched"]
    unsound = sum(
        1 for _, verdict, _, _, _ in verdicts["batched"]
        if verdict == "unsound"
    )

    payload = {
        "bench": "batch_exec",
        "schema": 1,
        "pairs": len(jobs),
        "max_inputs": MAX_INPUTS,
        "batched_best_round": round(results["batched"], 6),
        "scalar_best_round": round(results["scalar"], 6),
        "speedup": round(speedup, 4),
        "checks_per_sec": round(len(jobs) / results["batched"], 3),
        "lanes_per_batch": round(lanes_per_batch, 3),
        "divergence_splits": splits,
        "scalar_fallbacks": fallbacks,
        "unsound_pairs": unsound,
    }
    write_json("BENCH_batch_exec.json", payload)
    report = (
        f"batched exec:    {results['batched']:.3f}s per best "
        f"{len(jobs)}-pair round\n"
        f"scalar exec:     {results['scalar']:.3f}s per best "
        f"{len(jobs)}-pair round\n"
        f"speedup:         {speedup:.2f}x\n"
        f"lanes per batch: {lanes_per_batch:.1f} "
        f"({splits} divergence splits, {fallbacks} fallbacks)\n"
        f"verdicts (equal in both modes): {len(jobs)} pairs, "
        f"{unsound} unsound\n"
    )
    write_report("batch_exec_ablation.txt", report)
    print("\n" + report)

    # Acceptance floor: batched execution must beat per-input scalar
    # enumeration by at least 2x on this verification workload.
    assert speedup >= 2.0
    # The whole corpus must actually take the batched path.
    assert fallbacks == 0
    assert lanes_per_batch > 1.0


def test_bench_batch_exec_driver_parity(benchmark):
    """Driver-level invariance: same findings, same deterministic
    metrics, with the batched mode's lane counters visibly live."""
    seed_text = "\n".join(
        [
            "define i32 @clamp(i32 %x, i32 %y) {",
            "  %c = icmp ult i32 %x, 100",
            "  %r = select i1 %c, i32 %x, i32 100",
            "  %s = add i32 %r, %y",
            "  ret i32 %s",
            "}",
            "",
            "define i32 @shifty(i32 %x) {",
            "  %s = shl i32 %x, 3",
            "  %t = lshr i32 %s, 3",
            "  ret i32 %t",
            "}",
        ]
    )
    mutants = scaled(120, 40)

    def driver_for(batched):
        config = FuzzConfig(
            mutator=MutatorConfig(max_mutations=2),
            tv=RefinementConfig(max_inputs=12, batched=batched),
            enabled_bugs=("53252",),
        )
        return FuzzDriver(parse_module(seed_text), config, file_name="bench.ll")

    def run_both():
        reset_global_plan_cache()
        reset_global_batch_stats()
        batched_driver = driver_for(True)
        scalar_driver = driver_for(False)
        batched_report = batched_driver.run(iterations=mutants)
        scalar_report = scalar_driver.run(iterations=mutants)

        def keys(report):
            return [
                (f.seed, f.kind, f.function, tuple(f.bug_ids))
                for f in report.findings
            ]

        assert keys(batched_report) == keys(scalar_report)
        assert (
            batched_driver.metrics.deterministic()
            == scalar_driver.metrics.deterministic()
        )
        lanes = batched_driver.metrics.counter("exec.batch.lanes")
        batches = batched_driver.metrics.counter("exec.batch.batches")
        assert batches > 0 and lanes >= batches
        assert scalar_driver.metrics.counter("exec.batch.batches") == 0
        return lanes, batches

    benchmark.pedantic(run_both, rounds=1, iterations=1)
