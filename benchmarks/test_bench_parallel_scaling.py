"""Parallel campaign scaling — sequential vs. N-worker throughput.

Runs the same campaign (fixed corpus, fixed seeds) with increasing
worker counts through :class:`repro.fuzz.CampaignExecutor` and records
wall-clock, mutants/second, and speedup over the sequential run into
``benchmarks/out/parallel_scaling.txt``.  Also asserts the engine's core
contract: every worker count rediscovers the same bugs with the same
first-discovery attributions.
"""

import os
import time

from repro.fuzz import CampaignConfig, run_campaign

from bench_utils import write_report

CORPUS_SIZE = 16
MUTANTS_PER_FILE = 30
WORKER_COUNTS = (1, 2, 4)


def _campaign_config(workers):
    return CampaignConfig(
        corpus_size=CORPUS_SIZE,
        mutants_per_file=MUTANTS_PER_FILE,
        max_inputs=10,
        workers=workers,
    )


def _attribution_key(report):
    return {
        bug_id: (outcome.found, outcome.first_file, outcome.first_seed)
        for bug_id, outcome in report.outcomes.items()
    }


def test_bench_parallel_scaling(benchmark):
    holder = {}

    def sweep():
        rows = []
        for workers in WORKER_COUNTS:
            started = time.perf_counter()
            report = run_campaign(_campaign_config(workers))
            elapsed = time.perf_counter() - started
            rows.append((workers, elapsed, report))
        holder["rows"] = rows
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = holder["rows"]

    base_elapsed = rows[0][1]
    header = (
        f"{'workers':>7} {'elapsed_s':>10} {'mutants/s':>10} "
        f"{'speedup':>8} {'bugs':>5} {'failed':>7} {'skipped':>8}"
    )
    lines = [
        "parallel campaign scaling "
        f"(corpus={CORPUS_SIZE}, mutants/file={MUTANTS_PER_FILE}, "
        f"pipelines=3, cpus={os.cpu_count()})",
        header, "-" * len(header),
    ]
    for workers, elapsed, report in rows:
        lines.append(
            f"{workers:>7} {elapsed:>10.2f} {report.throughput:>10.0f} "
            f"{base_elapsed / elapsed:>8.2f} "
            f"{len(report.found_bugs()):>5} "
            f"{len(report.failed_shards):>7} {report.skipped_jobs:>8}"
        )
    text = "\n".join(lines) + "\n"
    write_report("parallel_scaling.txt", text)
    print("\n" + text)

    # The engine's contract: sharding never changes what is found.
    base_key = _attribution_key(rows[0][2])
    for workers, _, report in rows[1:]:
        assert _attribution_key(report) == base_key, (
            f"workers={workers} diverged from the sequential report"
        )
    base = rows[0][2]
    assert all(r.total_iterations == base.total_iterations for _, _, r in rows)
    assert not base.failed_shards
    assert base.total_iterations > 0
