"""E4 — overhead decomposition (paper Figure 2).

Figure 2 annotates the discrete workflow's overheads: process creation
and destruction, dynamic loading, parsing, printing, and file I/O — all
absent from the integrated tool's critical path.  This bench measures
each overhead class directly and reports where the discrete workflow's
time goes.
"""

import subprocess
import sys
import time

import pytest

from repro.fuzz import FuzzConfig, FuzzDriver, generate_corpus
from repro.ir import parse_module, print_module
from repro.mutate import MutatorConfig
from repro.tv import RefinementConfig

from bench_utils import write_report


@pytest.fixture(scope="module")
def sample():
    name, text = generate_corpus(4, seed=21)[1]
    return name, text


def test_bench_process_spawn_overhead(benchmark):
    """Cost of one no-op tool process (spawn + interpreter + teardown)."""

    def spawn():
        subprocess.run([sys.executable, "-c", "import repro"], capture_output=True)

    benchmark.pedantic(spawn, rounds=5, iterations=1)


def test_bench_parse_overhead(benchmark, sample):
    _, text = sample

    def parse():
        parse_module(text)

    benchmark(parse)


def test_bench_print_overhead(benchmark, sample):
    _, text = sample
    module = parse_module(text)

    def render():
        print_module(module)

    benchmark(render)


def test_bench_file_io_overhead(benchmark, sample, tmp_path):
    _, text = sample
    path = tmp_path / "roundtrip.ll"

    def roundtrip():
        path.write_text(text)
        path.read_text()

    benchmark(roundtrip)


def test_bench_stage_decomposition(benchmark, sample):
    """In-process per-stage time (mutate / optimize / verify) plus the
    overhead classes a discrete iteration adds on top."""
    name, text = sample
    rounds = 3
    batch = 50
    best = None

    def fresh_driver():
        return FuzzDriver(
            parse_module(text, name),
            FuzzConfig(
                pipeline="O2",
                mutator=MutatorConfig(max_mutations=3),
                tv=RefinementConfig(max_inputs=8),
            ),
            file_name=name,
        )

    def run_batch():
        # One warm-up batch pays the one-time costs (imports, execution
        # -plan compilation), then each measured round uses a fresh
        # driver — cold memo caches, the same shape as the seed
        # methodology — and min-of-rounds resists load spikes.
        nonlocal best
        fresh_driver().run(iterations=batch)
        for _ in range(rounds):
            driver = fresh_driver()
            driver.run(iterations=batch)
            timings = driver.report.timings
            if best is None or timings.total < sum(best):
                best = (timings.mutate, timings.optimize, timings.verify)

    benchmark.pedantic(run_batch, rounds=1, iterations=1)
    mutate_s, optimize_s, verify_s = best
    iterations = batch

    # Measure the discrete-only overheads once each.
    begin = time.perf_counter()
    subprocess.run([sys.executable, "-c", "import repro"], capture_output=True)
    spawn = time.perf_counter() - begin

    module = parse_module(text)
    begin = time.perf_counter()
    for _ in range(20):
        parse_module(text)
    parse = (time.perf_counter() - begin) / 20
    begin = time.perf_counter()
    for _ in range(20):
        print_module(module)
    render = (time.perf_counter() - begin) / 20

    per_iter = (mutate_s + optimize_s + verify_s) / iterations
    # One discrete iteration spawns 3 processes; each parses its input and
    # two of them print output.
    discrete_overhead = 3 * spawn + 3 * parse + 2 * render
    lines = [
        "in-process per-iteration stage times:",
        f"  mutate:   {1e3 * mutate_s / iterations:8.3f} ms",
        f"  optimize: {1e3 * optimize_s / iterations:8.3f} ms",
        f"  verify:   {1e3 * verify_s / iterations:8.3f} ms",
        f"  total:    {1e3 * per_iter:8.3f} ms",
        "discrete-only overheads per iteration (Figure 2's bold boxes):",
        f"  3x process create/destroy + load: {3e3 * spawn:8.1f} ms",
        f"  3x parse:                         {3e3 * parse:8.3f} ms",
        f"  2x print:                         {2e3 * render:8.3f} ms",
        f"  total overhead:                   {1e3 * discrete_overhead:8.1f} ms",
        f"overhead / useful work ratio: {discrete_overhead / per_iter:.1f}x",
    ]
    text_report = "\n".join(lines) + "\n"
    write_report("overheads.txt", text_report)
    print("\n" + text_report)

    # The core claim behind Figure 2: the overhead the discrete workflow
    # pays per iteration dwarfs the useful mutate/optimize/verify work.
    assert discrete_overhead > per_iter
