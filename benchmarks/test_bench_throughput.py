"""E2 — the throughput experiment (paper §V-B, Listing 20).

The paper's claim: running mutation, optimization, and translation
validation *in one process* is ~12x faster on average than the same work
through standalone tools and files; best case 786x, worst case ~1%.

This bench (a) microbenchmarks one iteration of each workflow, and
(b) runs the full per-file comparison over a corpus of small files with
matching PRNG seeds, writing the artifact's ``res.txt`` (Listing 20
format) to ``benchmarks/out/``.
"""


from repro.fuzz import (
    DiscreteConfig,
    FuzzConfig,
    FuzzDriver,
    ThroughputConfig,
    generate_corpus,
    run_discrete_workflow,
    run_throughput_experiment,
)
from repro.ir import parse_module
from repro.mutate import MutatorConfig
from repro.obs import throughput_summary
from repro.tv import RefinementConfig

from bench_utils import scaled, write_json, write_report

CORPUS_FILES = scaled(12, 6)       # paper: 194 files; scaled for the harness
MUTANTS_PER_FILE = scaled(40, 15)  # paper: 1000 mutants per file


def _driver(text, name):
    return FuzzDriver(
        parse_module(text, name),
        FuzzConfig(
            pipeline="O2",
            mutator=MutatorConfig(max_mutations=3),
            tv=RefinementConfig(max_inputs=8),
        ),
        file_name=name,
    )


def test_bench_in_process_iteration(benchmark):
    """One mutate->optimize->verify iteration, in process."""
    name, text = generate_corpus(4, seed=9)[2]
    driver = _driver(text, name)
    counter = iter(range(10**9))

    def one_iteration():
        driver.run_one(next(counter))

    benchmark(one_iteration)


def test_bench_discrete_iteration(benchmark, tmp_path):
    """One mutate->optimize->verify iteration through subprocesses+files."""
    name, text = generate_corpus(4, seed=9)[2]
    path = tmp_path / name
    path.write_text(text)
    counter = iter(range(10**9))

    def one_iteration():
        run_discrete_workflow(
            str(path), 1, DiscreteConfig(base_seed=next(counter), max_inputs=8)
        )

    benchmark.pedantic(one_iteration, rounds=5, iterations=1)


def test_bench_full_throughput_experiment(benchmark):
    """The full §V-B comparison; regenerates res.txt (Listing 20)."""
    corpus = generate_corpus(CORPUS_FILES, seed=42)
    config = ThroughputConfig(count=MUTANTS_PER_FILE, pipeline="O2", max_inputs=8)
    holder = {}

    def experiment():
        holder["report"] = run_throughput_experiment(corpus, config)
        return holder["report"]

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    report = holder["report"]

    res_txt = report.render_res_txt()
    write_report("res.txt", res_txt)
    write_json("BENCH_throughput.json", throughput_summary(report))
    summary = (
        f"files: {len(report.timings)} (+{len(report.invalid)} discarded, "
        "paper discarded 6/200)\n"
        f"average speedup: {report.average_perf:.1f}x (paper: ~12x)\n"
        f"best speedup:    {report.best_perf:.1f}x (paper: 786x)\n"
        f"worst speedup:   {report.worst_perf:.2f}x (paper: ~1.01x)\n"
    )
    write_report("throughput_summary.txt", summary)
    print("\n" + summary + res_txt)

    # Shape assertions: who wins and by roughly what order of magnitude.
    # Quick mode keeps the direction but relaxes the magnitude — fewer
    # mutants per file leave the per-file ratio noisier.
    assert report.timings, "no files measured"
    assert report.average_perf > scaled(5.0, 3.0), (
        "in-process workflow should be several times faster on average"
    )
    assert report.best_perf > report.average_perf
    assert report.worst_perf > 0.5, (
        "even the worst case should never be dramatically slower"
    )
    assert not report.not_verified, "clean pipeline must verify everywhere"


def test_bench_throughput_large_files(benchmark):
    """Appendix G's second configuration: files larger than 2 KB.

    Larger files mean more real work per iteration, so the fixed
    per-process overhead is a smaller fraction and the speedup shrinks —
    the same trend that produced the paper's 1.01x worst case.
    """
    from repro.fuzz import generate_large_corpus

    corpus = generate_large_corpus(scaled(4, 2), seed=42)
    config = ThroughputConfig(count=scaled(15, 6), pipeline="O2", max_inputs=8)
    holder = {}

    def experiment():
        holder["report"] = run_throughput_experiment(corpus, config)
        return holder["report"]

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    report = holder["report"]
    summary = (
        f"large files (>2KB): average speedup {report.average_perf:.1f}x, "
        f"best {report.best_perf:.1f}x, worst {report.worst_perf:.2f}x\n"
    )
    write_report("throughput_large.txt", summary + report.render_res_txt())
    print("\n" + summary)
    assert report.timings
    assert report.average_perf > 1.0
