"""Pytest configuration for the benchmark harness.

Each bench regenerates one of the paper's evaluation artifacts (see
DESIGN.md's per-experiment index); rendered reports are written under
``benchmarks/out/`` by :mod:`bench_utils`.
"""

import os
import sys

# Make bench_utils importable regardless of how pytest was invoked.
sys.path.insert(0, os.path.dirname(__file__))
