#!/usr/bin/env python
"""Distributed-campaign smoke test: two nodes, one SIGKILL, full parity.

The CI-facing proof of the headline invariant from DESIGN §10: a
coordinator plus two ``alive-mutate --node`` worker *processes* run a
campaign over a shared queue directory; one node is SIGKILLed as soon
as it holds a lease; the survivor reclaims and finishes; and the merged
report's findings and ``deterministic()`` metrics must equal an
uninterrupted single-host run.

Standalone script (not pytest-collected) so the ``dist-smoke`` CI job
can run it directly:

    PYTHONPATH=src python benchmarks/dist_smoke.py
    PYTHONPATH=src python benchmarks/dist_smoke.py --transport socket

``--transport socket`` runs the same drill over the wire tier instead
of the shared directory: an in-process :class:`QueueBroker` (journal-
backed) serves the queue, the worker processes connect with
``--queue addr:HOST:PORT``, and the SIGKILLed node's leases expire on
disconnect rather than by timeout.

Exit status 0 = parity held, 1 = divergence (with a diff dump), 2 =
harness failure (nodes never started, queue never drained, ...).
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.fuzz import CampaignConfig, run_campaign  # noqa: E402
from repro.fuzz.dist import DistConfig  # noqa: E402
from repro.fuzz.net import QueueBroker  # noqa: E402

SMOKE = dict(corpus_size=6, mutants_per_file=12, max_inputs=8, pipelines=("O2",))
VICTIM = "smoke-victim"
SURVIVOR = "smoke-survivor"


def report_key(report):
    return {
        "total_iterations": report.total_iterations,
        "total_findings": report.total_findings,
        "outcomes": {
            bug_id: [o.found, o.first_file, o.first_seed, o.findings]
            for bug_id, o in sorted(report.outcomes.items())
        },
        "failed_shards": len(report.failed_shards),
        "quarantined": len(report.quarantined),
    }


def spawn_node(name, queue_spec):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli.alive_mutate",
            "--node",
            name,
            "--queue",
            queue_spec,
            "--wait-manifest",
            "60",
            "-j",
            "1",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def wait_for_lease(queue_dir, node, timeout=60.0):
    """Block until ``node`` owns at least one lease; False on timeout."""
    leases = os.path.join(queue_dir, "leases")
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            names = os.listdir(leases)
        except OSError:
            names = []
        for name in names:
            if name.startswith("."):
                continue
            try:
                with open(os.path.join(leases, name)) as stream:
                    if json.load(stream).get("node") == node:
                        return True
            except (OSError, json.JSONDecodeError):
                continue
        time.sleep(0.05)
    return False


def wait_for_broker_lease(broker, node, timeout=60.0):
    """Socket-mode twin of :func:`wait_for_lease`."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if any(lease.node == node for lease in broker.leases().values()):
            return True
        time.sleep(0.05)
    return False


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--transport", choices=("dir", "socket"),
                        default="dir",
                        help="queue transport for the worker processes")
    args = parser.parse_args()

    print("dist-smoke: single-host reference run ...", flush=True)
    reference = run_campaign(CampaignConfig(workers=1, **SMOKE))
    print(
        f"dist-smoke: reference: {reference.total_iterations} iterations, "
        f"{reference.total_findings} findings",
        flush=True,
    )

    work_dir = tempfile.mkdtemp(prefix="dist-smoke-")
    queue_dir = os.path.join(work_dir, "queue")
    broker = None
    if args.transport == "socket":
        broker = QueueBroker(journal_dir=os.path.join(work_dir, "broker"))
        host, port = broker.start()
        queue_spec = f"addr:{host}:{port}"
        dist = DistConfig(
            queue_addr=f"{host}:{port}",
            lease_duration=3.0,
            max_attempts=5,
            wait_timeout=300.0,
        )
        print(f"dist-smoke: broker serving on {host}:{port}", flush=True)
    else:
        queue_spec = f"dir:{queue_dir}"
        dist = DistConfig(
            queue_dir=queue_dir,
            lease_duration=3.0,
            max_attempts=5,
            wait_timeout=300.0,
        )
    config = CampaignConfig(workers=1, dist=dist, **SMOKE)

    box = {}

    def coordinate():
        box["report"] = run_campaign(config)

    coordinator = threading.Thread(target=coordinate)
    coordinator.start()

    victim = spawn_node(VICTIM, queue_spec)
    survivor = spawn_node(SURVIVOR, queue_spec)
    killed = False
    try:
        if (wait_for_broker_lease(broker, VICTIM, timeout=60.0)
                if broker is not None
                else wait_for_lease(queue_dir, VICTIM, timeout=60.0)):
            victim.send_signal(signal.SIGKILL)
            killed = True
            print(
                f"dist-smoke: SIGKILLed {VICTIM} (pid {victim.pid}) "
                "while it held a lease",
                flush=True,
            )
        else:
            print(
                f"dist-smoke: {VICTIM} never claimed a lease",
                file=sys.stderr,
                flush=True,
            )
        coordinator.join(timeout=300)
        if coordinator.is_alive():
            print("dist-smoke: coordinator did not finish", file=sys.stderr)
            return 2
    finally:
        for proc in (victim, survivor):
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=60)
        if broker is not None:
            broker.stop()

    if not killed:
        # The victim drained too fast to be killed mid-lease (tiny CI
        # runners); parity must hold regardless, but say so.
        print(
            "dist-smoke: node kill was not injected; checking parity "
            "of the clean two-node run",
            flush=True,
        )

    survivor_output = survivor.stdout.read() if survivor.stdout else ""
    print("dist-smoke: survivor output:", flush=True)
    for line in survivor_output.strip().splitlines():
        print(f"  {line}", flush=True)

    report = box["report"]
    expected, actual = report_key(reference), report_key(report)
    if actual != expected:
        print("dist-smoke: PARITY FAILURE", file=sys.stderr)
        print(f"  expected: {json.dumps(expected, indent=2)}", file=sys.stderr)
        print(f"  actual:   {json.dumps(actual, indent=2)}", file=sys.stderr)
        return 1
    if report.metrics.deterministic() != reference.metrics.deterministic():
        print("dist-smoke: deterministic() metrics diverged", file=sys.stderr)
        return 1
    print(
        f"dist-smoke: OK — {report.total_iterations} iterations, "
        f"{report.total_findings} findings, parity with single-host run "
        f"({args.transport} transport, node kill injected: {killed})",
        flush=True,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
