"""E9 — ablation of coverage-guided scheduling (iterations-to-find).

The feedback loop (``repro.fuzz.feedback``) turns the paper's uniform
mutant drawing into a guided campaign: rule-firing coverage admits
interesting mutants into a runtime corpus and a deterministic UCB1
bandit concentrates draws on the (source, mutation-class) arms that
keep reaching new optimizer behavior.  This bench measures the payoff
in the scenario the design targets — a seed sitting next to a buggy
rewrite rule's neighborhood (the ``canonicalizeClampLike`` clamp shape,
bug 53252), where most mutation classes destroy the shape and only the
mutants that keep exercising instcombine can ever reach the bug.

Metric: iterations until the seeded bug is found, summed over many
independent trial seeds (each trial is a fresh driver with a disjoint
seed range, so the sum is deterministic).  The CI gate demands the
guided loop find the bug in >= 1.5x fewer iterations than the blind
loop; both configurations must find it in every trial.

Feedback is *not* uniformly a win — on seeds whose bugs live far from
any coverage signal the bandit's exploitation can slow discovery — so
this bench makes the targeted claim only, and the blind loop stays the
default configuration.
"""

from repro.fuzz.driver import FuzzConfig, FuzzDriver
from repro.fuzz.feedback import FeedbackConfig
from repro.ir import parse_module
from repro.mutate import MutatorConfig
from repro.tv import RefinementConfig

from bench_utils import scaled, write_json, write_report

# A seed right next to the canonicalizeClampLike bug (53252): the clamp
# shape survives some mutation classes and not others, which is exactly
# the signal the scheduler can learn.
CLAMP = """
define i32 @clamp(i32 %x, i32 %y) {
  %c = icmp ult i32 %x, 100
  %r = select i1 %c, i32 %x, i32 100
  %s = add i32 %r, %y
  ret i32 %s
}
"""

BUG = "53252"
TRIALS = scaled(25, 10)
CAP = scaled(400, 300)      # per-trial iteration budget
TRIAL_STRIDE = 100003       # disjoint seed ranges per trial
MIN_SPEEDUP = 1.5


def _config(guided: bool, base_seed: int) -> FuzzConfig:
    return FuzzConfig(
        pipeline="O2",
        mutator=MutatorConfig(max_mutations=3),
        tv=RefinementConfig(max_inputs=12),
        enabled_bugs=(BUG,),
        base_seed=base_seed,
        feedback=FeedbackConfig(enabled=guided),
    )


def _iterations_to_find(guided: bool, base_seed: int) -> int:
    """Iterations until bug 53252 is found (CAP if the budget runs out)."""
    driver = FuzzDriver(
        parse_module(CLAMP), _config(guided, base_seed), file_name="bench.ll"
    )
    try:
        for offset in range(CAP):
            findings = driver.run_one(base_seed + offset)
            if any(BUG in finding.bug_ids for finding in findings):
                return offset + 1
        return CAP
    finally:
        driver.close()


def _campaign(guided: bool):
    total = 0
    found = 0
    for trial in range(TRIALS):
        iterations = _iterations_to_find(guided, trial * TRIAL_STRIDE)
        total += iterations
        found += iterations < CAP
    return total, found


def test_bench_feedback_ablation(benchmark):
    results = {}

    def measure_both():
        results["blind"] = _campaign(guided=False)
        results["guided"] = _campaign(guided=True)

    benchmark.pedantic(measure_both, rounds=1, iterations=1)

    blind_total, blind_found = results["blind"]
    guided_total, guided_found = results["guided"]
    speedup = blind_total / guided_total

    # Both modes must find the bug in every trial; the guided loop must
    # need at least MIN_SPEEDUP fewer iterations in aggregate.
    assert blind_found == TRIALS
    assert guided_found == TRIALS
    assert speedup >= MIN_SPEEDUP, (
        f"guided loop took {guided_total} iterations vs {blind_total} "
        f"blind ({speedup:.2f}x < {MIN_SPEEDUP}x)"
    )

    payload = {
        "bench": "feedback",
        "schema": 1,
        "bug": BUG,
        "trials": TRIALS,
        "cap": CAP,
        "blind_iterations": blind_total,
        "guided_iterations": guided_total,
        "blind_found": blind_found,
        "guided_found": guided_found,
        "speedup": round(speedup, 4),
    }
    write_json("BENCH_feedback.json", payload)
    report = (
        f"bug {BUG}, {TRIALS} trials, {CAP}-iteration budget each\n"
        f"blind loop:  {blind_total} iterations to find "
        f"({blind_found}/{TRIALS} trials)\n"
        f"guided loop: {guided_total} iterations to find "
        f"({guided_found}/{TRIALS} trials)\n"
        f"speedup:     {speedup:.2f}x fewer iterations\n"
    )
    write_report("feedback_ablation.txt", report)
    print("\n" + report)
