"""Periodic throughput telemetry: snapshots and the progress reporter.

A :class:`ThroughputSnapshot` is a derived, human-meaningful view over a
:class:`~repro.obs.metrics.MetricsRegistry` at one instant: mutants/sec,
valid-mutant rate, per-stage time share, findings and retry/quarantine
counts — the numbers behind the paper's throughput claim (§V-B).

:class:`ProgressReporter` emits snapshots to pluggable sinks on a time
interval.  ``tick`` is called once per fuzzing iteration and costs one
monotonic-clock read between intervals, so it can sit on the hot loop.
Two sinks are provided: :func:`stderr_sink` (a one-line progress report)
and :class:`JsonlSnapshotSink` (one JSON object per snapshot)::

    {"elapsed": 12.3, "iterations": 456, "mutants_per_sec": 37.1,
     "valid_mutant_rate": 0.98, "stage_share": {"mutate": 0.12, ...},
     "findings": 3, "retries": 0, "quarantined": 0}
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .metrics import MetricsRegistry

__all__ = [
    "JsonlSnapshotSink",
    "ProgressReporter",
    "ThroughputSnapshot",
    "stderr_sink",
]

STAGES = ("mutate", "optimize", "verify")


@dataclass
class ThroughputSnapshot:
    """Derived throughput statistics at one point in time."""

    elapsed: float = 0.0
    iterations: int = 0
    mutants_per_sec: float = 0.0
    valid_mutant_rate: float = 0.0
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    stage_share: Dict[str, float] = field(default_factory=dict)
    findings: int = 0
    retries: int = 0
    quarantined: int = 0
    # Memoization effectiveness (paper §III-B): hit rates of the
    # optimize and verify fingerprint caches, 0.0 when memoization is
    # off or no lookups happened yet.
    optimize_hit_rate: float = 0.0
    verify_hit_rate: float = 0.0
    # Execution-plan cache effectiveness (compiled interpreter, paper
    # §III-B "pay once"): hit rate of the global plan cache, 0.0 when
    # compiled execution is off or no lookups happened yet.
    exec_plan_hit_rate: float = 0.0
    # Batched execution (repro.tv.batch): average lanes driven per batch
    # walk, divergence regroupings, and checks that fell back to scalar
    # enumeration.  All 0 when batching is off or nothing verified yet.
    exec_batch_lanes_per_batch: float = 0.0
    exec_batch_divergence_splits: int = 0
    exec_batch_scalar_fallbacks: int = 0
    # Coverage feedback (repro.fuzz.feedback): runtime-corpus high-water
    # mark, features covered, and new-features-per-draw rate.  All 0
    # when feedback is off — and every rate here guards its denominator,
    # because an empty-target shard legitimately records zero draws,
    # zero optimize calls, and zero of everything else.
    corpus_size: int = 0
    features_covered: int = 0
    new_feature_rate: float = 0.0
    # Incremental optimization (repro.opt.incremental): share of pass
    # dispatches answered from the skip memo, worklist (dirty-region)
    # runs, and the per-pass wall-clock breakdown of the optimize stage
    # (from the ``optimize.pass.<name>.seconds`` counters).  All 0/empty
    # when incremental optimization is off or nothing optimized yet.
    incremental_skip_rate: float = 0.0
    incremental_worklist_runs: int = 0
    pass_seconds: Dict[str, float] = field(default_factory=dict)
    # Transport tier (repro.fuzz.wire / repro.fuzz.net): bytes on the
    # socket, the per-node blob-transfer cache's hit rate, and the
    # decode LRU's hit rate.  All 0 on single-host campaigns or the
    # shared-dir transport with text payloads.
    wire_bytes_sent: int = 0
    blob_hit_rate: float = 0.0
    decode_hit_rate: float = 0.0

    @classmethod
    def from_metrics(
        cls, metrics: MetricsRegistry, elapsed: float
    ) -> "ThroughputSnapshot":
        created = metrics.counter("mutants.created")
        valid = metrics.counter("mutants.valid")
        stage_seconds = {
            stage: metrics.counter(f"stage.{stage}.seconds")
            for stage in STAGES
        }
        stage_total = sum(stage_seconds.values())

        def hit_rate(cache: str) -> float:
            hits = metrics.counter(f"cache.{cache}.hit")
            total = hits + metrics.counter(f"cache.{cache}.miss")
            return hits / total if total else 0.0

        plan_hits = metrics.counter("exec.plan_cache.hit")
        plan_total = plan_hits + metrics.counter("exec.plan_cache.miss")
        batches = metrics.counter("exec.batch.batches")
        batch_lanes = metrics.counter("exec.batch.lanes")
        draws = metrics.counter("feedback.draws")
        new_features = metrics.counter("feedback.features.new")
        skips = (
            metrics.counter("opt.incremental.memo_skips")
            + metrics.counter("opt.incremental.memo_crash_skips")
        )
        dispatches = (
            skips
            + metrics.counter("opt.incremental.full_runs")
            + metrics.counter("opt.incremental.worklist_runs")
        )
        prefix = "optimize.pass."
        suffix = ".seconds"
        pass_seconds = {
            name[len(prefix) : -len(suffix)]: seconds
            for name, seconds in metrics.counters_with_prefix(prefix).items()
            if name.endswith(suffix)
        }
        blob_hits = metrics.counter("wire.blob_cache.hit")
        blob_total = blob_hits + metrics.counter("wire.blob_cache.miss")
        decode_hits = metrics.counter("bitcode.decode_cache.hit")
        decode_total = decode_hits + metrics.counter(
            "bitcode.decode_cache.miss"
        )

        return cls(
            elapsed=elapsed,
            iterations=int(created),
            mutants_per_sec=created / elapsed if elapsed > 0 else 0.0,
            valid_mutant_rate=valid / created if created else 0.0,
            stage_seconds=stage_seconds,
            stage_share={
                stage: seconds / stage_total if stage_total else 0.0
                for stage, seconds in stage_seconds.items()
            },
            findings=int(
                metrics.counter("findings.miscompilation")
                + metrics.counter("findings.crash")
            ),
            retries=int(metrics.counter("campaign.retry.attempts")),
            quarantined=int(metrics.counter("campaign.quarantined")),
            optimize_hit_rate=hit_rate("optimize"),
            verify_hit_rate=hit_rate("verify"),
            exec_plan_hit_rate=plan_hits / plan_total if plan_total else 0.0,
            exec_batch_lanes_per_batch=(
                batch_lanes / batches if batches else 0.0
            ),
            exec_batch_divergence_splits=int(
                metrics.counter("exec.batch.divergence_splits")
            ),
            exec_batch_scalar_fallbacks=int(
                metrics.counter("exec.batch.scalar_fallbacks")
            ),
            corpus_size=int(metrics.gauges.get("corpus.size", 0.0)),
            features_covered=int(metrics.gauges.get("feedback.features.covered", 0.0)),
            new_feature_rate=new_features / draws if draws else 0.0,
            incremental_skip_rate=skips / dispatches if dispatches else 0.0,
            incremental_worklist_runs=int(
                metrics.counter("opt.incremental.worklist_runs")
            ),
            pass_seconds=pass_seconds,
            wire_bytes_sent=int(metrics.counter("wire.bytes.sent")),
            blob_hit_rate=blob_hits / blob_total if blob_total else 0.0,
            decode_hit_rate=(
                decode_hits / decode_total if decode_total else 0.0
            ),
        )

    def to_dict(self) -> dict:
        return {
            "elapsed": round(self.elapsed, 6),
            "iterations": self.iterations,
            "mutants_per_sec": round(self.mutants_per_sec, 3),
            "valid_mutant_rate": round(self.valid_mutant_rate, 6),
            "stage_seconds": {
                stage: round(seconds, 6)
                for stage, seconds in self.stage_seconds.items()
            },
            "stage_share": {
                stage: round(share, 6)
                for stage, share in self.stage_share.items()
            },
            "findings": self.findings,
            "retries": self.retries,
            "quarantined": self.quarantined,
            "optimize_hit_rate": round(self.optimize_hit_rate, 6),
            "verify_hit_rate": round(self.verify_hit_rate, 6),
            "exec_plan_hit_rate": round(self.exec_plan_hit_rate, 6),
            "exec_batch_lanes_per_batch": round(
                self.exec_batch_lanes_per_batch, 3
            ),
            "exec_batch_divergence_splits": self.exec_batch_divergence_splits,
            "exec_batch_scalar_fallbacks": self.exec_batch_scalar_fallbacks,
            "corpus_size": self.corpus_size,
            "features_covered": self.features_covered,
            "new_feature_rate": round(self.new_feature_rate, 6),
            "incremental_skip_rate": round(self.incremental_skip_rate, 6),
            "incremental_worklist_runs": self.incremental_worklist_runs,
            "pass_seconds": {
                name: round(seconds, 6)
                for name, seconds in sorted(self.pass_seconds.items())
            },
            "wire_bytes_sent": self.wire_bytes_sent,
            "blob_hit_rate": round(self.blob_hit_rate, 6),
            "decode_hit_rate": round(self.decode_hit_rate, 6),
        }

    def progress_line(self) -> str:
        """The one-line stderr progress format."""
        share = " ".join(
            f"{stage} {self.stage_share.get(stage, 0.0):.0%}"
            for stage in STAGES
        )
        line = (
            f"[{self.elapsed:7.1f}s] {self.iterations} mutants "
            f"({self.mutants_per_sec:.1f}/s, "
            f"{self.valid_mutant_rate:.0%} valid) | {share} | "
            f"{self.findings} findings"
        )
        if self.optimize_hit_rate or self.verify_hit_rate:
            line += (
                f" | memo opt {self.optimize_hit_rate:.0%} "
                f"tv {self.verify_hit_rate:.0%}"
            )
        if self.exec_plan_hit_rate:
            line += f" | plan {self.exec_plan_hit_rate:.0%}"
        if self.exec_batch_lanes_per_batch:
            line += f" | batch {self.exec_batch_lanes_per_batch:.1f} lanes"
        if self.incremental_skip_rate or self.incremental_worklist_runs:
            line += (
                f" | inc skip {self.incremental_skip_rate:.0%}"
                f" wl {self.incremental_worklist_runs}"
            )
        if self.corpus_size or self.features_covered:
            line += f" | corpus {self.corpus_size} ({self.features_covered} feats)"
        if self.wire_bytes_sent:
            line += (
                f" | wire {self.wire_bytes_sent / 1024.0:.1f}KiB"
                f" blob {self.blob_hit_rate:.0%}"
                f" dec {self.decode_hit_rate:.0%}"
            )
        if self.retries or self.quarantined:
            line += (
                f" | {self.retries} retries, "
                f"{self.quarantined} quarantined"
            )
        return line


def stderr_sink(snapshot: ThroughputSnapshot) -> None:
    """Write the snapshot's progress line to stderr."""
    print(snapshot.progress_line(), file=sys.stderr)


class JsonlSnapshotSink:
    """Appends one JSON object per snapshot to a file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._stream = open(path, "w")

    def __call__(self, snapshot: ThroughputSnapshot) -> None:
        self._stream.write(json.dumps(snapshot.to_dict()) + "\n")
        self._stream.flush()

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None


class ProgressReporter:
    """Emits throughput snapshots to sinks every ``interval`` seconds.

    ``clock`` is injectable for tests.  ``tick`` is designed for the
    fuzzing hot loop: between intervals it costs one clock read.
    """

    def __init__(
        self,
        interval: float = 2.0,
        sinks: Optional[Sequence[Callable[[ThroughputSnapshot], None]]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.sinks: List[Callable[[ThroughputSnapshot], None]] = list(
            sinks or [stderr_sink]
        )
        self._clock = clock
        self._started = clock()
        self._last_emit = self._started

    def tick(self, metrics: MetricsRegistry) -> Optional[ThroughputSnapshot]:
        """Emit a snapshot if the interval elapsed; returns it if emitted."""
        now = self._clock()
        if now - self._last_emit < self.interval:
            return None
        self._last_emit = now
        return self.emit(metrics, now - self._started)

    def emit(
        self, metrics: MetricsRegistry, elapsed: Optional[float] = None
    ) -> ThroughputSnapshot:
        """Unconditionally snapshot and fan out to every sink."""
        if elapsed is None:
            elapsed = self._clock() - self._started
        snapshot = ThroughputSnapshot.from_metrics(metrics, elapsed)
        for sink in self.sinks:
            sink(snapshot)
        return snapshot
