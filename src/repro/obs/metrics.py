"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The campaign runtime is sharded across worker processes, so metrics are
collected in a per-process (in practice per-*job*) :class:`MetricsRegistry`
— a plain picklable dataclass that rides back to the supervising process
inside :class:`~repro.fuzz.parallel.ShardResult` and is folded into
``CampaignReport.metrics`` with :meth:`MetricsRegistry.merge`.

Merge semantics are **associative and commutative**, so the aggregate is
independent of worker count, scheduling order, and kill/resume cycles:

* counters add (float-valued, monotonic — stage seconds are counters);
* gauges keep their maximum (high-water marks);
* histograms add per-bucket counts (merging requires identical bucket
  boundaries).

Naming convention: metrics measuring wall-clock time have names ending in
``.seconds``.  Everything else is deterministic for a fixed campaign
configuration; :meth:`MetricsRegistry.deterministic` returns exactly that
timing-free subset, which tests use to compare runs across worker counts
and resume cycles.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["DEFAULT_BUCKETS", "Histogram", "MetricsRegistry"]

# Upper bounds (seconds) for latency-style histograms; the final implicit
# bucket is +inf.  Chosen to straddle one fuzzing iteration (~1-100 ms).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
)


@dataclass
class Histogram:
    """Fixed-bucket histogram: cumulative-free, merge-by-addition.

    ``buckets`` are inclusive upper bounds; ``counts`` has one extra
    trailing slot for observations above the last bound.
    """

    buckets: Tuple[float, ...] = DEFAULT_BUCKETS
    counts: List[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        self.buckets = tuple(self.buckets)
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)
        if len(self.counts) != len(self.buckets) + 1:
            raise ValueError(
                f"histogram needs {len(self.buckets) + 1} counts, "
                f"got {len(self.counts)}"
            )

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> "Histogram":
        if self.buckets != other.buckets:
            raise ValueError(
                "cannot merge histograms with different buckets: "
                f"{self.buckets} != {other.buckets}"
            )
        for position, value in enumerate(other.counts):
            self.counts[position] += value
        self.total += other.total
        self.count += other.count
        return self

    def to_dict(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "total": self.total,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        return cls(
            buckets=tuple(data.get("buckets", DEFAULT_BUCKETS)),
            counts=list(data.get("counts", [])),
            total=float(data.get("total", 0.0)),
            count=int(data.get("count", 0)),
        )


@dataclass
class MetricsRegistry:
    """All metrics of one process/job; picklable, JSON-able, mergeable."""

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)

    # -- recording ----------------------------------------------------------

    def count(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to the counter ``name`` (creates it at 0)."""
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def gauge_max(self, name: str, value: float) -> None:
        """Raise the high-water-mark gauge ``name`` to at least ``value``."""
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = value

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        """Record ``value`` into the histogram ``name``."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(tuple(buckets))
        histogram.observe(value)

    # -- reading ------------------------------------------------------------

    def counter(self, name: str, default: float = 0.0) -> float:
        return self.counters.get(name, default)

    def counters_with_prefix(self, prefix: str) -> Dict[str, float]:
        return {
            name: value
            for name, value in self.counters.items()
            if name.startswith(prefix)
        }

    # -- merging ------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (in place); returns self."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0.0) + value
        for name, value in other.gauges.items():
            self.gauge_max(name, value)
        for name, histogram in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = Histogram(
                    buckets=histogram.buckets,
                    counts=list(histogram.counts),
                    total=histogram.total,
                    count=histogram.count,
                )
            else:
                mine.merge(histogram)
        return self

    @classmethod
    def merged(cls, registries: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        """A fresh registry holding the merge of ``registries``."""
        result = cls()
        for registry in registries:
            result.merge(registry)
        return result

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in self.histograms.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        return cls(
            counters={
                str(k): float(v)
                for k, v in data.get("counters", {}).items()
            },
            gauges={
                str(k): float(v) for k, v in data.get("gauges", {}).items()
            },
            histograms={
                str(k): Histogram.from_dict(v)
                for k, v in data.get("histograms", {}).items()
            },
        )

    def deterministic(self) -> dict:
        """The run-invariant subset: no ``.seconds`` metrics, no gauges,
        no ``campaign.retry.*``, ``cache.*``, ``clone.*``, ``exec.*``,
        ``dist.*`` or ``chaos.*`` counters.

        For a fixed campaign configuration this subset is identical
        across worker counts and kill/resume cycles — what legitimately
        varies between runs is wall-clock-derived values and the
        operational retry bookkeeping (retries happen when transient
        faults do, not when the configuration says so).  Cache hit/miss
        and functions-copied counters vary with sharding and resume
        boundaries (each driver instance starts with cold caches) and
        with the ``--no-memo`` ablation, while the *findings* they feed
        stay identical — that invariance is what the deterministic
        subset certifies.  ``exec.*`` covers the execution-plan cache
        counters, which likewise vary with sharding, resume boundaries
        and the ``--no-compiled-exec`` ablation without affecting
        verdicts.  ``dist.*``/``chaos.*`` cover the distributed queue's
        protocol bookkeeping (claims, heartbeats, reclaims, dedups) and
        injected chaos — which node ran which job and how many leases
        expired is scheduling history, not computation, and must not
        break the kill-and-resume == uninterrupted invariant.
        ``opt.incremental.*`` covers the incremental optimizer's
        skip/worklist bookkeeping, which varies with memo warmth and the
        ``--no-incremental-opt`` ablation while the optimized IR, stats,
        and findings it produces stay bit-identical.  ``wire.*`` /
        ``bitcode.*`` / ``net.*`` cover the transport tier — frames and
        bytes on the socket, blob-store and decode-cache hit rates,
        broker bookkeeping — which varies with the transport choice
        (shared dir vs socket), the payload format (text vs bitcode),
        and reconnect/retry history, while the findings the transported
        modules produce are bit-identical by the print∘parse fixpoint.
        """

        def varies(name: str) -> bool:
            return (
                ".seconds" in name
                or name.startswith("campaign.retry.")
                or name.startswith("cache.")
                or name.startswith("clone.")
                or name.startswith("exec.")
                or name.startswith("dist.")
                or name.startswith("chaos.")
                or name.startswith("opt.incremental.")
                or name.startswith("wire.")
                or name.startswith("bitcode.")
                or name.startswith("net.")
            )

        return {
            "counters": {
                name: value
                for name, value in self.counters.items()
                if not varies(name)
            },
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in self.histograms.items()
                if not varies(name)
            },
        }
