"""Lightweight span tracing for the mutate → optimize → verify loop.

A :class:`Tracer` records named spans — ``mutate``, ``optimize``,
``verify``, ``interp``, plus finer-grained ones like
``optimize.pass.<name>`` — into a pluggable sink.  The disabled path is
the common case and must stay within noise on the fuzzing hot loop, so:

* a tracer without a sink has ``enabled = False`` and
  :meth:`Tracer.record` returns after one attribute check;
* callers inside per-mutation/per-pass loops guard the extra
  ``perf_counter`` calls with ``if tracer.enabled``.

Sampling is deterministic (an error-diffusion accumulator, no PRNG):
``sample_rate=0.25`` keeps exactly every fourth span, so traces of the
same seeded run are reproducible.

Span timestamps are ``time.perf_counter`` offsets from the tracer's
creation, so a trace file reads as a run-relative timeline.  The JSONL
schema is one object per line::

    {"name": "mutate", "start": 0.0123, "dur": 0.0009, "seed": 17, ...}
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Iterator, List, Optional

__all__ = [
    "JsonlTraceSink",
    "ListTraceSink",
    "NULL_TRACER",
    "Tracer",
    "tracer_for_path",
]


class ListTraceSink:
    """Collects span dicts in memory (tests, ad-hoc analysis)."""

    def __init__(self) -> None:
        self.records: List[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


class JsonlTraceSink:
    """Appends one JSON object per span to a file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._stream = open(path, "w")

    def emit(self, record: dict) -> None:
        self._stream.write(json.dumps(record) + "\n")

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None


class Tracer:
    """Records spans into a sink, with deterministic sampling.

    ``sample_rate`` in [0, 1] is the kept fraction; 1.0 keeps every
    span.  A tracer with no sink (or rate 0) is permanently disabled.
    """

    def __init__(self, sink=None, sample_rate: float = 1.0) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        self.sink = sink
        self.sample_rate = sample_rate
        self.enabled = sink is not None and sample_rate > 0.0
        self.epoch = time.perf_counter()
        self._accumulator = 0.0

    def record(self, name: str, start: float, duration: float, **meta) -> None:
        """Record one span; ``start`` is a raw ``perf_counter`` value."""
        if not self.enabled:
            return
        self._accumulator += self.sample_rate
        if self._accumulator < 1.0:
            return
        self._accumulator -= 1.0
        record = {
            "name": name,
            "start": round(start - self.epoch, 9),
            "dur": round(duration, 9),
        }
        if meta:
            record.update(meta)
        self.sink.emit(record)

    @contextmanager
    def span(self, name: str, **meta) -> Iterator[None]:
        """Time a block and record it as one span."""
        if not self.enabled:
            yield
            return
        begin = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, begin, time.perf_counter() - begin, **meta)

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()


# The shared disabled tracer: safe to pass anywhere, records nothing.
NULL_TRACER = Tracer()


def tracer_for_path(
    path: Optional[str], sample_rate: float = 1.0
) -> Tracer:
    """A JSONL-backed tracer for ``path``, or the null tracer for None."""
    if not path:
        return NULL_TRACER
    return Tracer(JsonlTraceSink(path), sample_rate)
