"""Normalized benchmark summaries (``BENCH_campaign.json``).

Any campaign or throughput run can be reduced to one flat, normalized
JSON document that CI's ``bench-smoke`` job diffs against a committed
baseline (``benchmarks/baseline.json``).  The schema is deliberately
small and stable::

    {"bench": "campaign", "schema": 1,
     "elapsed": 12.3, "workers": 4,
     "iterations": 1440, "mutants_per_sec": 117.0,
     "valid_mutant_rate": 0.98,
     "stage_share": {"mutate": 0.1, "optimize": 0.3, "verify": 0.6},
     "findings": 120, "found_bugs": 33,
     "retries": 0, "quarantined": 0, "failed_shards": 0,
     "parse_failures": 0, "skipped_jobs": 0}

The writer takes duck-typed report objects so this module stays free of
imports from :mod:`repro.fuzz` (fuzz imports obs, not the reverse).
"""

from __future__ import annotations

import json
import os
from typing import Optional

from .snapshots import ThroughputSnapshot

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "campaign_summary",
    "load_summary",
    "throughput_summary",
    "write_campaign_summary",
    "write_summary",
]

BENCH_SCHEMA_VERSION = 1


def campaign_summary(report, name: str = "campaign") -> dict:
    """Normalize a :class:`~repro.fuzz.campaign.CampaignReport`."""
    snapshot = ThroughputSnapshot.from_metrics(report.metrics, report.elapsed)
    found = report.found_bugs() if hasattr(report, "found_bugs") else []
    return {
        "bench": name,
        "schema": BENCH_SCHEMA_VERSION,
        "elapsed": round(report.elapsed, 6),
        "workers": report.workers,
        "iterations": report.total_iterations,
        "mutants_per_sec": round(snapshot.mutants_per_sec, 3),
        "valid_mutant_rate": round(snapshot.valid_mutant_rate, 6),
        "stage_share": {
            stage: round(share, 6)
            for stage, share in snapshot.stage_share.items()
        },
        "findings": report.total_findings,
        "found_bugs": len(found),
        "retries": snapshot.retries,
        "quarantined": len(report.quarantined),
        "failed_shards": len(report.failed_shards),
        "parse_failures": len(report.parse_failures),
        "skipped_jobs": report.skipped_jobs,
        "optimize_hit_rate": round(snapshot.optimize_hit_rate, 6),
        "verify_hit_rate": round(snapshot.verify_hit_rate, 6),
        "exec_plan_hit_rate": round(snapshot.exec_plan_hit_rate, 6),
        "exec_batch_lanes_per_batch": round(
            snapshot.exec_batch_lanes_per_batch, 3
        ),
        "exec_batch_divergence_splits": snapshot.exec_batch_divergence_splits,
        "exec_batch_scalar_fallbacks": snapshot.exec_batch_scalar_fallbacks,
        "corpus_size": snapshot.corpus_size,
        "features_covered": snapshot.features_covered,
        "new_feature_rate": round(snapshot.new_feature_rate, 6),
        "incremental_skip_rate": round(snapshot.incremental_skip_rate, 6),
        "incremental_worklist_runs": snapshot.incremental_worklist_runs,
        "pass_seconds": {
            name: round(seconds, 6)
            for name, seconds in sorted(snapshot.pass_seconds.items())
        },
        "wire_bytes_sent": snapshot.wire_bytes_sent,
        "blob_hit_rate": round(snapshot.blob_hit_rate, 6),
        "decode_hit_rate": round(snapshot.decode_hit_rate, 6),
    }


def throughput_summary(report, name: str = "throughput") -> dict:
    """Normalize a :class:`~repro.fuzz.throughput.ThroughputReport`."""
    return {
        "bench": name,
        "schema": BENCH_SCHEMA_VERSION,
        "files": len(report.timings),
        "invalid_files": len(report.invalid),
        "not_verified_files": len(report.not_verified),
        "speedup_avg": round(report.average_perf, 4),
        "speedup_best": round(report.best_perf, 4),
        "speedup_worst": round(report.worst_perf, 4),
        "alive_seconds": round(
            sum(t.alive_mutate_seconds for t in report.timings), 6
        ),
        "discrete_seconds": round(
            sum(t.discrete_seconds for t in report.timings), 6
        ),
    }


def write_summary(payload: dict, path: str) -> str:
    """Write one normalized summary as pretty JSON; returns the path."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
        stream.write("\n")
    return path


def write_campaign_summary(
    report, path: str, name: str = "campaign"
) -> dict:
    """Summarize ``report`` and write it to ``path``; returns the payload."""
    payload = campaign_summary(report, name=name)
    write_summary(payload, path)
    return payload


def load_summary(path: str) -> Optional[dict]:
    """Read a summary written by :func:`write_summary` (None if absent)."""
    if not os.path.exists(path):
        return None
    with open(path) as stream:
        return json.load(stream)
