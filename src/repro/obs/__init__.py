"""repro.obs — zero-dependency observability for the fuzzing runtime.

Per-stage metrics (:mod:`repro.obs.metrics`), sampled span tracing
(:mod:`repro.obs.trace`), periodic throughput snapshots
(:mod:`repro.obs.snapshots`), and normalized benchmark summaries
(:mod:`repro.obs.summary`).  Everything here is stdlib-only and safe to
import from the hot path: the disabled tracer and an untouched registry
cost one attribute check or one dict operation per event.

See README "Observability" for the CLI flags and JSONL schemas, and
DESIGN for how the spans map onto the paper's §V timing breakdown.
"""

from .metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from .snapshots import (
    JsonlSnapshotSink,
    ProgressReporter,
    ThroughputSnapshot,
    stderr_sink,
)
from .summary import (
    BENCH_SCHEMA_VERSION,
    campaign_summary,
    load_summary,
    throughput_summary,
    write_campaign_summary,
    write_summary,
)
from .trace import (
    NULL_TRACER,
    JsonlTraceSink,
    ListTraceSink,
    Tracer,
    tracer_for_path,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "JsonlSnapshotSink",
    "ProgressReporter",
    "ThroughputSnapshot",
    "stderr_sink",
    "BENCH_SCHEMA_VERSION",
    "campaign_summary",
    "load_summary",
    "throughput_summary",
    "write_campaign_summary",
    "write_summary",
    "NULL_TRACER",
    "JsonlTraceSink",
    "ListTraceSink",
    "Tracer",
    "tracer_for_path",
]
