"""repro: a reproduction of "High-Throughput, Formal-Methods-Assisted
Fuzzing for LLVM" (Fan & Regehr, CGO 2024) as a self-contained Python
library.

Subpackages
-----------
``repro.ir``       -- LLVM-like IR: types, SSA values, parser, printer,
                      verifier.
``repro.analysis`` -- dominators, the two-level mutant overlay, known bits.
``repro.opt``      -- pass manager, InstCombine-style passes, seeded bugs.
``repro.tv``       -- bounded translation validation (the Alive2 analog).
``repro.mutate``   -- the alive-mutate mutation engine (the contribution).
``repro.fuzz``     -- in-process/discrete fuzzing harnesses + experiments.
``repro.cli``      -- alive-mutate / repro-opt / alive-tv command lines.

Quick start
-----------
>>> from repro.fuzz import FuzzDriver
>>> driver = FuzzDriver.from_text(open("test.ll").read())
>>> report = driver.run(iterations=100)
>>> print(report.summary())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
