"""repro: a reproduction of "High-Throughput, Formal-Methods-Assisted
Fuzzing for LLVM" (Fan & Regehr, CGO 2024) as a self-contained Python
library.

Subpackages
-----------
``repro.ir``       -- LLVM-like IR: types, SSA values, parser, printer,
                      verifier.
``repro.analysis`` -- dominators, the two-level mutant overlay, known bits.
``repro.opt``      -- pass manager, InstCombine-style passes, seeded bugs.
``repro.tv``       -- bounded translation validation (the Alive2 analog).
``repro.mutate``   -- the alive-mutate mutation engine (the contribution).
``repro.fuzz``     -- in-process/discrete fuzzing harnesses + experiments.
``repro.cli``      -- alive-mutate / repro-opt / alive-tv command lines.

Quick start
-----------
>>> from repro import Session
>>> report = Session.from_file("test.ll").run(iterations=100)
>>> print(report.summary())

Campaigns (optionally sharded across worker processes):

>>> from repro import CampaignConfig, run_campaign
>>> print(run_campaign(CampaignConfig(workers=4)).table())
"""

from .fuzz import (BugLog, CampaignConfig, CampaignExecutor, CampaignReport,
                   ConfigError, Finding, FuzzConfig, FuzzDriver, FuzzReport,
                   Session, StageTimings, run_campaign)
from .obs import MetricsRegistry, Tracer
from .tv import Verdict

__version__ = "1.2.0"

__all__ = [
    "__version__",
    # The curated front door: the Session facade, the driver it wraps,
    # the campaign engine, and the result/record types they hand back.
    "Session",
    "FuzzDriver", "FuzzConfig", "FuzzReport", "StageTimings",
    "CampaignConfig", "CampaignExecutor", "CampaignReport", "run_campaign",
    "Finding", "BugLog", "Verdict",
    "ConfigError",
    # Observability (repro.obs): per-run metrics and span tracing.
    "MetricsRegistry", "Tracer",
]
