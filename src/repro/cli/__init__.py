"""Command-line tools: alive-mutate, repro-opt, alive-tv."""
