"""The ``alive-reduce`` command-line tool.

Shrinks a failing module while its finding keeps reproducing: either an
optimizer crash (``--expect crash``) or a translation-validation failure
(``--expect miscompilation``) under the given pipeline and seeded bugs.
The llvm-reduce analog for the replay workflow's captured mutants.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..fuzz.reduce import reduce_module
from ..ir.bitcode import BitcodeError, load_module_file
from ..ir.parser import ParseError
from ..ir.printer import print_module
from ..opt import OptContext, OptimizerCrash, PassManager
from ..tv import RefinementConfig, Verdict, check_refinement


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="alive-reduce",
        description="shrink a failing module while the bug reproduces")
    parser.add_argument("input", help="failing .ll/.bc file")
    parser.add_argument("-o", "--output", default=None,
                        help="reduced output file (default stdout)")
    parser.add_argument("-p", "--passes", default="O2",
                        help="pipeline used to reproduce the failure")
    parser.add_argument("--enable-bug", action="append", default=[],
                        metavar="ID", help="seeded bug id(s) to enable")
    parser.add_argument("--expect", choices=["crash", "miscompilation"],
                        default="miscompilation",
                        help="failure kind to preserve while reducing")
    parser.add_argument("--function", default=None,
                        help="function to validate (miscompilation mode; "
                             "default: every definition)")
    parser.add_argument("--max-inputs", type=int, default=24,
                        help="inputs per refinement check")
    parser.add_argument("--max-rounds", type=int, default=12)
    parser.add_argument("-q", "--quiet", action="store_true")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        module = load_module_file(args.input)
    except (OSError, ParseError, BitcodeError) as exc:
        print(f"alive-reduce: {exc}", file=sys.stderr)
        return 2

    def optimize(candidate):
        optimized = candidate.clone()
        PassManager([args.passes], OptContext(args.enable_bug)).run(optimized)
        return optimized

    if args.expect == "crash":
        def is_interesting(candidate) -> bool:
            try:
                optimize(candidate)
            except OptimizerCrash:
                return True
            return False
    else:
        config = RefinementConfig(max_inputs=args.max_inputs)

        def is_interesting(candidate) -> bool:
            try:
                optimized = optimize(candidate)
            except OptimizerCrash:
                return False
            names = ([args.function] if args.function
                     else [f.name for f in candidate.definitions()])
            for name in names:
                source = candidate.get_function(name)
                target = optimized.get_function(name)
                if source is None or target is None \
                        or target.is_declaration():
                    continue
                result = check_refinement(source, target, candidate,
                                          optimized, config)
                if result.verdict == Verdict.UNSOUND:
                    return True
            return False

    if not is_interesting(module):
        print("alive-reduce: the input does not reproduce the expected "
              "failure", file=sys.stderr)
        return 2

    result = reduce_module(module, is_interesting,
                           max_rounds=args.max_rounds)
    if not args.quiet:
        print(f"alive-reduce: {result.summary()}", file=sys.stderr)
    output = print_module(result.module)
    if args.output:
        with open(args.output, "w") as stream:
            stream.write(output)
    else:
        sys.stdout.write(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
