"""The ``alive-mutate`` command-line tool.

Default mode runs the integrated in-process fuzzing loop of the paper:
mutate, optimize, and translation-validate inside one process.

``--mutate-only`` runs just the mutation stage and writes the mutant to a
file — the standalone-mutator configuration used as stage 1 of the
discrete-tools baseline in the throughput experiment (§V-B).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..fuzz.driver import FuzzConfig, FuzzDriver
from ..ir.bitcode import BitcodeError, load_module_file, write_bitcode
from ..ir.parser import ParseError, parse_module
from ..ir.printer import print_module
from ..mutate import Mutator, MutatorConfig
from ..tv import RefinementConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="alive-mutate",
        description="mutation-based fuzzing for the LLVM-like IR with "
                    "integrated translation validation")
    parser.add_argument("input", help="input .ll file")
    parser.add_argument("-n", "--num-mutants", type=int, default=10,
                        help="number of mutants to generate (default 10)")
    parser.add_argument("-t", "--time", type=float, default=None,
                        help="time budget in seconds (overrides -n)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base PRNG seed (mutant i uses seed base+i)")
    parser.add_argument("--passes", default="O2",
                        help="pipeline or comma-separated pass list "
                             "(default O2)")
    parser.add_argument("--save-dir", default=None,
                        help="directory for saving mutants")
    parser.add_argument("--saveAll", action="store_true",
                        help="save every mutant, not only failing ones")
    parser.add_argument("--enable-bug", action="append", default=[],
                        metavar="ID", help="enable a seeded bug by issue id")
    parser.add_argument("--max-mutations", type=int, default=3,
                        help="max mutations applied per function")
    parser.add_argument("--max-inputs", type=int, default=24,
                        help="inputs per refinement check")
    parser.add_argument("--log", default=None, help="findings log (JSONL)")
    parser.add_argument("--mutate-only", action="store_true",
                        help="generate one mutant and exit (discrete mode)")
    parser.add_argument("-o", "--output", default=None,
                        help="output file for --mutate-only")
    parser.add_argument("--emit-bitcode", action="store_true",
                        help="write the mutant in the compact binary format")
    parser.add_argument("--verify-mutants", action="store_true",
                        help="run the IR verifier on every mutant")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        module = load_module_file(args.input)
    except OSError as exc:
        print(f"alive-mutate: cannot read {args.input}: {exc}",
              file=sys.stderr)
        return 2
    except (ParseError, BitcodeError) as exc:
        print(f"alive-mutate: cannot load module: {exc}", file=sys.stderr)
        return 2

    mutator_config = MutatorConfig(max_mutations=args.max_mutations,
                                   verify_mutants=args.verify_mutants)

    if args.mutate_only:
        mutator = Mutator(module, mutator_config)
        mutant, record = mutator.create_mutant(args.seed)
        if args.emit_bitcode:
            if not args.output:
                print("alive-mutate: --emit-bitcode requires -o",
                      file=sys.stderr)
                return 2
            with open(args.output, "wb") as stream:
                stream.write(write_bitcode(mutant))
            return 0
        output = print_module(mutant)
        if args.output:
            with open(args.output, "w") as stream:
                stream.write(output)
        else:
            sys.stdout.write(output)
        return 0

    config = FuzzConfig(
        pipeline=args.passes,
        enabled_bugs=tuple(args.enable_bug),
        mutator=mutator_config,
        tv=RefinementConfig(max_inputs=args.max_inputs),
        base_seed=args.seed,
        save_dir=args.save_dir,
        save_all=args.saveAll and args.save_dir is not None,
        log_path=args.log,
    )
    driver = FuzzDriver(module, config, file_name=args.input)
    for name, reason in driver.report.dropped_functions.items():
        print(f"alive-mutate: dropping @{name}: {reason}", file=sys.stderr)
    if not driver.target_functions:
        print("alive-mutate: no processable functions", file=sys.stderr)
        return 2
    report = driver.run(
        iterations=None if args.time is not None else args.num_mutants,
        time_budget=args.time)
    print(report.summary())
    for finding in report.findings:
        print("  " + finding.summary())
    return 1 if report.findings else 0


if __name__ == "__main__":
    sys.exit(main())
