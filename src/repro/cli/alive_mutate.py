"""The ``alive-mutate`` command-line tool.

Default mode runs the integrated in-process fuzzing loop of the paper:
mutate, optimize, and translation-validate inside one process.

``--jobs N`` shards the work across N worker processes: with several
input files the files are fuzzed in parallel (each with the same
``--seed``, so results match running the tool on each file separately);
with a single file the iteration space ``seed..seed+n-1`` is split into
contiguous chunks, so the union of findings matches a sequential run.

``--mutate-only`` runs just the mutation stage and writes the mutant to a
file — the standalone-mutator configuration used as stage 1 of the
discrete-tools baseline in the throughput experiment (§V-B).

Long runs can be made fault-tolerant: ``--checkpoint DIR`` journals
every completed shard durably (and ``--resume`` skips them after a
crash or Ctrl-C), ``--job-deadline`` bounds each shard's wall clock
(stuck workers are killed by a watchdog when sharded), and
``--max-job-retries`` retries-then-quarantines shards that hang or
kill their worker.

``--node --queue-dir DIR`` joins a *distributed* campaign as a worker
node instead: jobs (seed payload included) come from the shared queue
directory a coordinator published, are run under time-bounded leases
with heartbeat renewal, and results are parked back in the queue — no
input files, no fuzzing flags.  The coordinator side is the Python API
(``CampaignConfig(dist=DistConfig(queue_dir=...))``); see README
"Distributed campaigns".

For fleets without a shared filesystem, ``--serve-queue HOST:PORT``
runs the same queue over a socket (:mod:`repro.fuzz.net`): the broker
owns queue state in memory (journal-backed with ``--broker-journal``),
coordinators publish with ``DistConfig(queue_addr="HOST:PORT")``, and
nodes join with ``--node --queue addr:HOST:PORT``.  Module payloads
travel as compact binary bitcode referenced by content hash, so a seed
crosses the wire once per node no matter how many jobs reuse it.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from typing import List, Optional

from ..fuzz.driver import ConfigError, DeadlineExceeded, FuzzConfig, \
    FuzzDriver
from ..fuzz.feedback import SCHEDULERS, FeedbackConfig
from ..fuzz.parallel import ShardJob, run_jobs
from ..ir.bitcode import BitcodeError, load_module_file, write_bitcode
from ..ir.parser import ParseError
from ..ir.printer import print_module
from ..mutate import Mutator, MutatorConfig
from ..obs import (MetricsRegistry, ProgressReporter, ThroughputSnapshot,
                   tracer_for_path)
from ..tv import RefinementConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="alive-mutate",
        description="mutation-based fuzzing for the LLVM-like IR with "
                    "integrated translation validation")
    parser.add_argument("inputs", nargs="*", metavar="input",
                        help="input .ll file(s) (not used with --node: "
                             "jobs come from the queue)")
    parser.add_argument("-n", "--num-mutants", type=int, default=10,
                        help="number of mutants per file (default 10)")
    parser.add_argument("-t", "--time", type=float, default=None,
                        help="time budget in seconds (overrides -n; with "
                             "--jobs, per shard)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base PRNG seed (mutant i uses seed base+i)")
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        help="worker processes to shard fuzzing across "
                             "(default 1: in-process)")
    parser.add_argument("--passes", default="O2",
                        help="pipeline or comma-separated pass list "
                             "(default O2)")
    parser.add_argument("--save-dir", default=None,
                        help="directory for saving mutants")
    parser.add_argument("--saveAll", action="store_true",
                        help="save every mutant, not only failing ones")
    parser.add_argument("--enable-bug", action="append", default=[],
                        metavar="ID", help="enable a seeded bug by issue id")
    parser.add_argument("--max-mutations", type=int, default=3,
                        help="max mutations applied per function")
    parser.add_argument("--max-inputs", type=int, default=24,
                        help="inputs per refinement check")
    parser.add_argument("--log", default=None, help="findings log (JSONL)")
    parser.add_argument("--checkpoint", default=None, metavar="DIR",
                        help="journal completed shards to DIR (fsync'd "
                             "JSONL), so a killed run loses no work")
    parser.add_argument("--resume", action="store_true",
                        help="skip shards already journaled in --checkpoint "
                             "DIR and merge their cached results")
    parser.add_argument("--job-deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="per-shard wall-clock deadline; overruns are "
                             "recorded as hangs (with --jobs > 1 a watchdog "
                             "also kills the stuck worker)")
    parser.add_argument("--max-job-retries", type=int, default=0,
                        metavar="N",
                        help="retry shards that hang or kill their worker "
                             "up to N times, then quarantine them "
                             "(default 0)")
    feedback = parser.add_argument_group(
        "coverage feedback",
        "rule-firing feedback, runtime corpus, and adaptive scheduling "
        "(see README \"Coverage-guided fuzzing\")")
    feedback.add_argument("--feedback", action="store_true",
                          help="enable rule-firing coverage feedback: "
                               "mutants that exercise new optimizer "
                               "behavior join a runtime corpus and are "
                               "mutated further")
    feedback.add_argument("--scheduler", default=None, choices=SCHEDULERS,
                          metavar="NAME",
                          help="adaptive (seed, mutation-class) scheduler: "
                               "'bandit' (UCB1; the default with "
                               "--feedback) or 'round-robin'; requires "
                               "--feedback")
    feedback.add_argument("--corpus-dir", default=None, metavar="DIR",
                          help="journal admitted corpus entries under DIR "
                               "(fsync'd JSONL) so a killed run resumes "
                               "with its corpus; requires --feedback")
    feedback.add_argument("--max-corpus-size", type=int, default=64,
                          metavar="N",
                          help="distill the runtime corpus down to a "
                               "covering set of at most N entries "
                               "(default 64)")
    dist = parser.add_argument_group(
        "distributed campaigns",
        "join a coordinator's work queue as a node, or serve one over "
        "a socket (see README \"Distributed campaigns\")")
    dist.add_argument("--node", nargs="?", const="", default=None,
                      metavar="NAME",
                      help="run as a worker node named NAME (default: "
                           "node-<pid>): claim jobs from the queue "
                           "under leases, run them, park results; "
                           "requires --queue-dir or --queue, ignores "
                           "input files and fuzzing flags")
    dist.add_argument("--queue-dir", default=None, metavar="DIR",
                      help="the shared queue directory the coordinator "
                           "published (shared-dir transport)")
    dist.add_argument("--queue", default=None, metavar="SPEC",
                      help="the queue to join: 'addr:HOST:PORT' connects "
                           "to a broker started with --serve-queue, "
                           "'dir:DIR' is the shared directory (same as "
                           "--queue-dir DIR)")
    dist.add_argument("--serve-queue", default=None, metavar="HOST:PORT",
                      help="run a queue broker on HOST:PORT (port 0 "
                           "picks a free one) instead of fuzzing; "
                           "coordinators publish with "
                           "DistConfig(queue_addr=...), nodes join with "
                           "--node --queue addr:HOST:PORT")
    dist.add_argument("--broker-journal", default=None, metavar="DIR",
                      help="with --serve-queue, journal broker state "
                           "under DIR so a killed broker recovers "
                           "(default: in-memory only)")
    dist.add_argument("--wait-manifest", type=float, default=30.0,
                      metavar="SECONDS",
                      help="with --node, wait up to this long for the "
                           "coordinator's manifest to appear "
                           "(default 30)")
    dist.add_argument("--max-node-jobs", type=int, default=None,
                      metavar="N",
                      help="with --node, exit after running N jobs "
                           "(default: drain the queue)")
    obs = parser.add_argument_group(
        "observability",
        "throughput statistics, metrics export, and span tracing "
        "(see README \"Observability\")")
    obs.add_argument("--stats", action="store_true",
                     help="print periodic throughput lines (mutants/sec, "
                          "valid-mutant rate, per-stage time share) to "
                          "stderr")
    obs.add_argument("--stats-interval", type=float, default=2.0,
                     metavar="SECONDS",
                     help="seconds between --stats lines (default 2)")
    obs.add_argument("--metrics-out", default=None, metavar="FILE",
                     help="write the final metrics registry as JSON")
    obs.add_argument("--trace-out", default=None, metavar="PATH",
                     help="record mutate/optimize/verify/interp spans as "
                          "JSONL: a file in single-process mode, a "
                          "directory (one file per shard) with --jobs")
    obs.add_argument("--trace-sample", type=float, default=1.0,
                     metavar="RATE",
                     help="keep this fraction of spans, 0..1 (default 1)")
    parser.add_argument("--mutate-only", action="store_true",
                        help="generate one mutant and exit (discrete mode)")
    parser.add_argument("-o", "--output", default=None,
                        help="output file for --mutate-only")
    parser.add_argument("--emit-bitcode", action="store_true",
                        help="write the mutant in the compact binary format")
    parser.add_argument("--no-memo", action="store_true",
                        help="disable copy-on-write cloning and "
                             "fingerprint memoization (the deep-clone "
                             "ablation; findings are identical either "
                             "way, throughput is not)")
    parser.add_argument("--no-incremental-opt", action="store_true",
                        help="disable incremental re-optimization: "
                             "per-(function, pass) skip memos and "
                             "worklist-driven pass sweeps (the "
                             "incremental-optimizer ablation; findings "
                             "are identical either way, throughput is "
                             "not)")
    parser.add_argument("--no-compiled-exec", action="store_true",
                        help="disable compiled execution plans and "
                             "tree-walk the IR during verification (the "
                             "interpreter ablation; findings are "
                             "identical either way, throughput is not)")
    parser.add_argument("--no-batched-exec", action="store_true",
                        help="run enumerated inputs one at a time "
                             "instead of struct-of-arrays batches (the "
                             "batching ablation; findings are identical "
                             "either way, throughput is not)")
    parser.add_argument("--verify-mutants", action="store_true",
                        help="run the IR verifier on every mutant")
    return parser


def _load(path: str):
    try:
        return load_module_file(path)
    except OSError as exc:
        print(f"alive-mutate: cannot read {path}: {exc}", file=sys.stderr)
    except (ParseError, BitcodeError) as exc:
        print(f"alive-mutate: cannot load {path}: {exc}", file=sys.stderr)
    return None


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.serve_queue is not None:
        return _serve_queue(args)
    if args.node is not None:
        if not args.queue_dir and not args.queue:
            print("alive-mutate: --node requires --queue-dir DIR or "
                  "--queue addr:HOST:PORT", file=sys.stderr)
            return 2
        if args.inputs:
            print("alive-mutate: --node takes no input files (jobs come "
                  "from the queue)", file=sys.stderr)
            return 2
        return _run_node(args)
    if not args.inputs:
        print("alive-mutate: at least one input .ll file is required",
              file=sys.stderr)
        return 2
    mutator_config = MutatorConfig(max_mutations=args.max_mutations,
                                   verify_mutants=args.verify_mutants,
                                   cow_clone=not args.no_memo)

    if args.mutate_only:
        if len(args.inputs) > 1:
            print("alive-mutate: --mutate-only takes exactly one input",
                  file=sys.stderr)
            return 2
        module = _load(args.inputs[0])
        if module is None:
            return 2
        mutator = Mutator(module, mutator_config)
        mutant, record = mutator.create_mutant(args.seed)
        if args.emit_bitcode:
            if not args.output:
                print("alive-mutate: --emit-bitcode requires -o",
                      file=sys.stderr)
                return 2
            with open(args.output, "wb") as stream:
                stream.write(write_bitcode(mutant))
            return 0
        output = print_module(mutant)
        if args.output:
            with open(args.output, "w") as stream:
                stream.write(output)
        else:
            sys.stdout.write(output)
        return 0

    config = FuzzConfig(
        pipeline=args.passes,
        enabled_bugs=tuple(args.enable_bug),
        mutator=mutator_config,
        tv=RefinementConfig(max_inputs=args.max_inputs,
                            compiled=not args.no_compiled_exec,
                            batched=not args.no_batched_exec),
        base_seed=args.seed,
        save_dir=args.save_dir,
        save_all=args.saveAll and args.save_dir is not None,
        log_path=args.log,
        memo=not args.no_memo,
        incremental=not args.no_incremental_opt,
        feedback=FeedbackConfig(
            enabled=args.feedback,
            corpus_dir=args.corpus_dir,
            scheduler=args.scheduler,
            max_corpus_size=args.max_corpus_size,
        ),
    )
    try:
        config.validate(
            iterations=None if args.time is not None else args.num_mutants,
            time_budget=args.time, require_budget=True)
    except ConfigError as exc:
        print(f"alive-mutate: {exc}", file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint:
        print("alive-mutate: --resume requires --checkpoint DIR",
              file=sys.stderr)
        return 2
    if args.job_deadline is not None and args.job_deadline <= 0:
        print("alive-mutate: --job-deadline must be positive, "
              f"got {args.job_deadline}", file=sys.stderr)
        return 2
    if args.max_job_retries < 0:
        print("alive-mutate: --max-job-retries must be >= 0, "
              f"got {args.max_job_retries}", file=sys.stderr)
        return 2
    if not 0.0 <= args.trace_sample <= 1.0:
        print("alive-mutate: --trace-sample must be in [0, 1], "
              f"got {args.trace_sample}", file=sys.stderr)
        return 2
    if args.stats_interval <= 0:
        print("alive-mutate: --stats-interval must be positive, "
              f"got {args.stats_interval}", file=sys.stderr)
        return 2

    if len(args.inputs) == 1 and args.jobs <= 1 and not args.checkpoint:
        return _fuzz_one(args.inputs[0], config, args)
    return _fuzz_sharded(config, args)


def _serve_queue(args) -> int:
    """Run a socket queue broker (``--serve-queue HOST:PORT``)."""
    from ..fuzz.net import QueueBroker, parse_address

    from ..fuzz.dist import QueueError
    try:
        host, port = parse_address(args.serve_queue)
    except QueueError as exc:
        print(f"alive-mutate: {exc}", file=sys.stderr)
        return 2
    broker = QueueBroker(host=host, port=port,
                         journal_dir=args.broker_journal)
    host, port = broker.start()
    durability = (f"journal {args.broker_journal}" if args.broker_journal
                  else "in-memory")
    print(f"alive-mutate: queue broker serving on {host}:{port} "
          f"({durability})", file=sys.stderr)
    try:
        broker.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        broker.stop()
    return 0


def _open_node_queue(args):
    """The transport a node's ``--queue``/``--queue-dir`` flags name."""
    from ..fuzz.dist import QueueError, WorkQueue

    spec = args.queue
    if spec:
        if spec.startswith("addr:"):
            from ..fuzz.net import SocketQueue
            return SocketQueue(spec[len("addr:"):], node=args.node)
        if spec.startswith("dir:"):
            return WorkQueue(spec[len("dir:"):], node=args.node)
        raise QueueError(f"--queue must be 'addr:HOST:PORT' or "
                         f"'dir:DIR', got {spec!r}")
    return WorkQueue(args.queue_dir, node=args.node)


def _run_node(args) -> int:
    """Join a distributed campaign as a worker node (``--node``)."""
    from ..fuzz.dist import NodeRunner, QueueError

    try:
        queue = _open_node_queue(args)
    except QueueError as exc:
        print(f"alive-mutate: {exc}", file=sys.stderr)
        return 2
    runner = NodeRunner(queue, workers=max(1, args.jobs))
    print(f"alive-mutate: node {queue.node} joining queue "
          f"{args.queue or args.queue_dir}", file=sys.stderr)
    try:
        report = runner.run(time_budget=args.time,
                            max_jobs=args.max_node_jobs,
                            wait_for_manifest=args.wait_manifest)
    except QueueError as exc:
        print(f"alive-mutate: queue failed: {exc}", file=sys.stderr)
        return 1
    finally:
        queue.close()
    if args.metrics_out:
        _write_metrics(report.metrics, args.metrics_out)
    print(f"node {report.node}: ran {report.jobs_run} jobs, "
          f"published {report.published} results "
          f"({report.duplicates} duplicates dropped, "
          f"{report.released} released for retry) "
          f"in {report.elapsed:.2f}s")
    return 0


def _write_metrics(metrics: MetricsRegistry, path: str) -> None:
    with open(path, "w") as stream:
        json.dump(metrics.to_dict(), stream, indent=2, sort_keys=True)
        stream.write("\n")


def _fuzz_one(path: str, config: FuzzConfig, args) -> int:
    """The classic single-file in-process loop."""
    module = _load(path)
    if module is None:
        return 2
    tracer = None
    if args.trace_out:
        tracer = tracer_for_path(args.trace_out,
                                 sample_rate=args.trace_sample)
    progress = ProgressReporter(interval=args.stats_interval) \
        if args.stats else None
    driver = FuzzDriver(module, config, file_name=path,
                        tracer=tracer, progress=progress)
    for name, reason in driver.report.dropped_functions.items():
        print(f"alive-mutate: dropping @{name}: {reason}", file=sys.stderr)
    if not driver.target_functions:
        print("alive-mutate: no processable functions", file=sys.stderr)
        return 2
    driver.set_deadline(args.job_deadline)
    try:
        report = driver.run(
            iterations=None if args.time is not None else args.num_mutants,
            time_budget=args.time)
    except DeadlineExceeded as exc:
        print(f"alive-mutate: {exc}", file=sys.stderr)
        return 2
    finally:
        driver.close()
        if tracer is not None:
            tracer.close()
    if progress is not None:
        snapshot = progress.emit(driver.metrics)
        if snapshot.pass_seconds:
            breakdown = " ".join(
                f"{name} {seconds:.2f}s"
                for name, seconds in sorted(snapshot.pass_seconds.items(),
                                            key=lambda item: -item[1]))
            print(f"alive-mutate: optimize passes: {breakdown}",
                  file=sys.stderr)
    if args.metrics_out:
        _write_metrics(driver.metrics, args.metrics_out)
    print(report.summary())
    for finding in report.findings:
        print("  " + finding.summary())
    return 1 if report.findings else 0


def _fuzz_sharded(config: FuzzConfig, args) -> int:
    """Fuzz several files — or one file's iteration space — across
    ``--jobs`` worker processes."""
    from ..fuzz.campaign import JOB_SEED_STRIDE

    sources = []
    for path in args.inputs:
        module = _load(path)
        if module is not None:
            sources.append((path, print_module(module)))
    if not sources:
        return 2

    jobs: List[ShardJob] = []
    if len(sources) == 1 and args.time is None:
        # Shard one file's seed range base..base+n-1 into contiguous
        # chunks; the union of findings equals the sequential run's.
        path, text = sources[0]
        shards = max(1, min(args.jobs, args.num_mutants))
        chunk, extra = divmod(args.num_mutants, shards)
        start = 0
        for index in range(shards):
            size = chunk + (1 if index < extra else 0)
            if size == 0:
                continue
            jobs.append(ShardJob(
                job_index=index, file_name=path, text=text,
                config=replace(config, base_seed=args.seed + start),
                iterations=size))
            start += size
    else:
        # One shard per file.  With -t each shard gets the full budget;
        # seed ranges are kept disjoint via the campaign stride.
        for index, (path, text) in enumerate(sources):
            shard_config = config if args.time is None else replace(
                config, base_seed=args.seed + index * JOB_SEED_STRIDE)
            jobs.append(ShardJob(
                job_index=index, file_name=path, text=text,
                config=shard_config,
                iterations=None if args.time is not None
                else args.num_mutants,
                time_budget=args.time))

    for job in jobs:
        job.deadline = args.job_deadline
        job.trace_dir = args.trace_out
        job.trace_sample = args.trace_sample

    journal = None
    cached = {}
    if args.checkpoint:
        from ..fuzz.checkpoint import (CheckpointError, CheckpointJournal,
                                       jobs_fingerprint)
        journal = CheckpointJournal(args.checkpoint)
        try:
            cached = journal.start(jobs_fingerprint(jobs),
                                   total_jobs=len(jobs), resume=args.resume)
        except CheckpointError as exc:
            print(f"alive-mutate: {exc}", file=sys.stderr)
            return 2
    todo = [job for job in jobs if job.job_index not in cached]
    if cached:
        print(f"alive-mutate: resuming {len(cached)} shards "
              f"from {args.checkpoint}", file=sys.stderr)
    def on_result(shard) -> None:
        if journal is not None:
            journal.append(shard)
        if args.stats and not shard.error and not shard.parse_error:
            snapshot = ThroughputSnapshot.from_metrics(shard.metrics,
                                                       shard.timings.total)
            print(f"alive-mutate: shard {shard.job_index} "
                  f"({shard.file_name}): {snapshot.progress_line()}",
                  file=sys.stderr)

    started = time.monotonic()
    try:
        results = run_jobs(todo, workers=args.jobs,
                           max_retries=args.max_job_retries,
                           on_result=on_result)
    finally:
        if journal is not None:
            journal.close()
    elapsed = time.monotonic() - started
    results = sorted(list(cached.values()) + list(results),
                     key=lambda shard: shard.job_index)

    total_iterations = 0
    total_findings = 0
    parse_failures = 0
    failed = 0
    quarantined = 0
    for shard in results:
        label = shard.file_name if len(sources) > 1 \
            else f"{shard.file_name}[shard {shard.job_index}]"
        if shard.failure_kind == "quarantine":
            quarantined += 1
            print(f"alive-mutate: {label}: quarantined (seed {shard.seed}, "
                  f"{shard.attempts} attempts): {shard.error}",
                  file=sys.stderr)
            continue
        if shard.error:
            failed += 1
            kind = f" ({shard.failure_kind})" if shard.failure_kind else ""
            print(f"alive-mutate: {label}: shard failed{kind}: "
                  f"{shard.error}", file=sys.stderr)
            continue
        if shard.parse_error:
            parse_failures += 1
            print(f"alive-mutate: {label}: parse failure: "
                  f"{shard.parse_error}", file=sys.stderr)
            continue
        for name, reason in shard.dropped_functions.items():
            print(f"alive-mutate: {label}: dropping @{name}: {reason}",
                  file=sys.stderr)
        total_iterations += shard.iterations
        total_findings += len(shard.findings)
        print(f"{label}: {shard.iterations} iterations, "
              f"{len(shard.findings)} findings "
              f"in {shard.timings.total:.2f}s")
        for finding in shard.findings:
            print("  " + finding.summary())
    health = ""
    if parse_failures or failed or quarantined:
        health = (f"; {parse_failures} parse failures, {failed} failed, "
                  f"{quarantined} quarantined")
    if args.stats or args.metrics_out:
        merged = MetricsRegistry.merged(
            shard.metrics for shard in results
            if not shard.error and not shard.parse_error)
        if args.stats:
            snapshot = ThroughputSnapshot.from_metrics(merged, elapsed)
            print(f"alive-mutate: total: {snapshot.progress_line()}",
                  file=sys.stderr)
            if snapshot.pass_seconds:
                breakdown = " ".join(
                    f"{name} {seconds:.2f}s"
                    for name, seconds in sorted(
                        snapshot.pass_seconds.items(),
                        key=lambda item: -item[1]))
                print(f"alive-mutate: optimize passes: {breakdown}",
                      file=sys.stderr)
        if args.metrics_out:
            _write_metrics(merged, args.metrics_out)
    print(f"total: {total_iterations} iterations, {total_findings} findings "
          f"across {len(results)} shards ({max(1, args.jobs)} workers)"
          f"{health}")
    if total_findings:
        return 1
    if total_iterations == 0:
        print("alive-mutate: no processable functions", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
