"""The ``repro-opt`` command-line tool (the standalone ``opt`` analog).

Stage 2 of the discrete-tools baseline: parse a file, run a pass
pipeline, print the result.  A seeded crash bug terminates the process
with a nonzero exit code, like an assertion failure in ``opt``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..ir.bitcode import BitcodeError, load_module_file
from ..ir.parser import ParseError
from ..ir.printer import print_module
from ..opt import OptContext, OptimizerCrash, PassManager, available_passes
from ..opt.pipelines import available_pipelines


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-opt",
        description="run optimization passes over a .ll file")
    parser.add_argument("input", help="input .ll file")
    parser.add_argument("-p", "--passes", default="O2",
                        help="pipeline name or comma-separated pass list")
    parser.add_argument("-o", "--output", default=None,
                        help="output file (default stdout)")
    parser.add_argument("--enable-bug", action="append", default=[],
                        metavar="ID", help="enable a seeded bug by issue id")
    parser.add_argument("--list-passes", action="store_true",
                        help="list passes and pipelines, then exit")
    parser.add_argument("--stats", action="store_true",
                        help="print per-pass statistics to stderr")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_passes:
        print("passes:", ", ".join(available_passes()))
        print("pipelines:", ", ".join(available_pipelines()))
        return 0
    try:
        module = load_module_file(args.input)
    except (OSError, ParseError, BitcodeError) as exc:
        print(f"repro-opt: {exc}", file=sys.stderr)
        return 2
    ctx = OptContext(args.enable_bug)
    try:
        PassManager([args.passes], ctx).run(module)
    except OptimizerCrash as exc:
        print(f"repro-opt: optimizer crashed: {exc}", file=sys.stderr)
        return 134  # SIGABRT-like, as an assertion failure would exit
    if args.stats:
        for stat, count in sorted(ctx.stats.items()):
            print(f"{count:8d} {stat}", file=sys.stderr)
    output = print_module(module)
    if args.output:
        with open(args.output, "w") as stream:
            stream.write(output)
    else:
        sys.stdout.write(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
