"""The ``alive-tv`` command-line tool (the standalone validator analog).

Stage 3 of the discrete-tools baseline: parse the original and optimized
files, pair functions by name, and report refinement verdicts.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..ir.bitcode import BitcodeError, load_module_file
from ..ir.parser import ParseError
from ..tv import RefinementConfig, Verdict, check_module_refinement


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="alive-tv",
        description="bounded translation validation between two .ll files")
    parser.add_argument("source", help="original .ll file")
    parser.add_argument("target", help="optimized .ll file")
    parser.add_argument("--max-inputs", type=int, default=24,
                        help="inputs per function pair")
    parser.add_argument("--seed", type=int, default=0,
                        help="input-generation seed")
    parser.add_argument("--no-compiled-exec", action="store_true",
                        help="tree-walk the IR instead of compiling "
                             "execution plans (verdicts are identical "
                             "either way)")
    parser.add_argument("--no-batched-exec", action="store_true",
                        help="run enumerated inputs one at a time "
                             "instead of struct-of-arrays batches "
                             "(verdicts are identical either way)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="only set the exit code")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        source = load_module_file(args.source)
        target = load_module_file(args.target)
    except (OSError, ParseError, BitcodeError) as exc:
        print(f"alive-tv: {exc}", file=sys.stderr)
        return 2

    config = RefinementConfig(max_inputs=args.max_inputs, seed=args.seed,
                              compiled=not args.no_compiled_exec,
                              batched=not args.no_batched_exec)
    results = check_module_refinement(source, target, config)
    unsound = 0
    for name, result in results.items():
        if result.verdict == Verdict.UNSOUND:
            unsound += 1
            if not args.quiet:
                print(f"@{name}: NOT verified")
                if result.counterexample:
                    print(f"  {result.counterexample}")
        elif not args.quiet:
            label = {"correct": "verified",
                     "unsupported": f"skipped ({result.reason})",
                     "inconclusive": "inconclusive"}[result.verdict.value]
            print(f"@{name}: {label}")
    return 1 if unsound else 0


if __name__ == "__main__":
    sys.exit(main())
