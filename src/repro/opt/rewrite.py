"""Opcode-indexed rewrite-rule dispatch (the incremental-optimize layer 1).

Historically every pattern-based pass tried its whole rule library against
every instruction on every sweep.  A :class:`RewriteRule` declares, next to
the match function, the *root opcodes* the rule can possibly fire on — the
opcode of the instruction the pattern is anchored at, never the opcodes of
operands it looks through.  A :class:`RuleIndex` buckets the library by
root opcode so a sweep consults only the rules that can match the
instruction in hand.

Indexing is behavior-preserving by construction: within one opcode bucket
the rules keep their global registration order, so the first-match-wins
scan over ``rules_for(inst.opcode)`` fires exactly the rule the full
linear scan would have fired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Optional, Sequence, Tuple

from ..ir.instructions import Instruction
from ..ir.values import Value

# A rule inspects one instruction and either returns a replacement Value,
# or performs an in-place change and returns the instruction itself, or
# returns None when it does not apply.  (The context argument is the
# pass-specific rewrite context, e.g. instcombine's CombineContext.)
RuleFn = Callable[[Instruction, object], Optional[Value]]


@dataclass(frozen=True)
class RewriteRule:
    """One named rewrite with its declared root opcodes."""

    name: str
    fn: RuleFn
    opcodes: FrozenSet[str]


def rule(name: str, fn: RuleFn, *opcodes: str) -> RewriteRule:
    """Terse constructor used by the rule modules' ``RULES`` tables."""
    if not opcodes:
        raise ValueError(f"rule {name!r} declares no root opcodes")
    return RewriteRule(name, fn, frozenset(opcodes))


class RuleIndex:
    """Rules bucketed by root opcode, preserving registration order."""

    def __init__(self, rules: Sequence[RewriteRule]) -> None:
        self.rules: Tuple[RewriteRule, ...] = tuple(rules)
        buckets: Dict[str, list] = {}
        for entry in self.rules:
            for opcode in entry.opcodes:
                buckets.setdefault(opcode, []).append(entry)
        self._buckets: Dict[str, Tuple[RewriteRule, ...]] = {
            opcode: tuple(bucket) for opcode, bucket in buckets.items()
        }
        self._empty: Tuple[RewriteRule, ...] = ()

    def rules_for(self, opcode: str) -> Tuple[RewriteRule, ...]:
        """The rules that can fire on ``opcode``, in registration order."""
        return self._buckets.get(opcode, self._empty)

    def __len__(self) -> int:
        return len(self.rules)
