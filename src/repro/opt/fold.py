"""Constant evaluation shared by the folding/simplification passes.

Folding respects poison semantics: an operation whose flags are violated
folds to ``poison``; operations whose misuse is *immediate UB* (division
by zero, sdiv overflow) are never folded so the UB stays visible to the
validator.  ``undef`` operands are left alone — per-use undef semantics
make naive folding unsound.
"""

from __future__ import annotations

from typing import Optional

from ..ir.instructions import (BINARY_OPCODES, CAST_OPCODES, BinaryOperator,
                               CallInst, CastInst, ICmpInst, Instruction,
                               SelectInst)
from ..ir.types import IntType
from ..ir.values import Constant, ConstantInt, PoisonValue


def _signed(value: int, width: int) -> int:
    value &= (1 << width) - 1
    if value >= 1 << (width - 1):
        return value - (1 << width)
    return value


def _unsigned(value: int, width: int) -> int:
    return value & ((1 << width) - 1)


def _fits_signed(value: int, width: int) -> bool:
    return -(1 << (width - 1)) <= value <= (1 << (width - 1)) - 1


def fold_binary(opcode: str, lhs: Constant, rhs: Constant, width: int,
                nuw: bool = False, nsw: bool = False,
                exact: bool = False) -> Optional[Constant]:
    """Fold a binary op over constants; None when it must not fold."""
    int_ty = IntType(width)
    if isinstance(lhs, PoisonValue) or isinstance(rhs, PoisonValue):
        if opcode in ("udiv", "sdiv", "urem", "srem") \
                and isinstance(rhs, PoisonValue):
            return None  # division by poison divisor is UB, not poison
        return PoisonValue(int_ty)
    if not (isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt)):
        return None

    a, b = lhs.value, rhs.value
    mask = (1 << width) - 1
    if opcode == "add":
        if nuw and a + b > mask:
            return PoisonValue(int_ty)
        if nsw and not _fits_signed(_signed(a, width) + _signed(b, width), width):
            return PoisonValue(int_ty)
        return ConstantInt(int_ty, a + b)
    if opcode == "sub":
        if nuw and a - b < 0:
            return PoisonValue(int_ty)
        if nsw and not _fits_signed(_signed(a, width) - _signed(b, width), width):
            return PoisonValue(int_ty)
        return ConstantInt(int_ty, a - b)
    if opcode == "mul":
        if nuw and a * b > mask:
            return PoisonValue(int_ty)
        if nsw and not _fits_signed(_signed(a, width) * _signed(b, width), width):
            return PoisonValue(int_ty)
        return ConstantInt(int_ty, a * b)
    if opcode in ("udiv", "urem"):
        if b == 0:
            return None  # immediate UB; leave it for the interpreter
        if opcode == "udiv":
            if exact and a % b:
                return PoisonValue(int_ty)
            return ConstantInt(int_ty, a // b)
        return ConstantInt(int_ty, a % b)
    if opcode in ("sdiv", "srem"):
        signed_a, signed_b = _signed(a, width), _signed(b, width)
        if signed_b == 0:
            return None
        if signed_a == -(1 << (width - 1)) and signed_b == -1:
            return None  # overflow is UB
        quotient = abs(signed_a) // abs(signed_b)
        if (signed_a < 0) != (signed_b < 0):
            quotient = -quotient
        if opcode == "sdiv":
            if exact and signed_a != quotient * signed_b:
                return PoisonValue(int_ty)
            return ConstantInt(int_ty, _unsigned(quotient, width))
        return ConstantInt(int_ty, _unsigned(signed_a - quotient * signed_b, width))
    if opcode in ("shl", "lshr", "ashr"):
        if b >= width:
            return PoisonValue(int_ty)
        if opcode == "shl":
            full = a << b
            if nuw and full > mask:
                return PoisonValue(int_ty)
            if nsw and _signed(full & mask, width) != _signed(a, width) * (1 << b):
                return PoisonValue(int_ty)
            return ConstantInt(int_ty, full)
        if exact and a & ((1 << b) - 1):
            return PoisonValue(int_ty)
        if opcode == "lshr":
            return ConstantInt(int_ty, a >> b)
        return ConstantInt(int_ty, _unsigned(_signed(a, width) >> b, width))
    if opcode == "and":
        return ConstantInt(int_ty, a & b)
    if opcode == "or":
        return ConstantInt(int_ty, a | b)
    if opcode == "xor":
        return ConstantInt(int_ty, a ^ b)
    return None


def fold_icmp(predicate: str, lhs: Constant, rhs: Constant,
              width: int) -> Optional[Constant]:
    bool_ty = IntType(1)
    if isinstance(lhs, PoisonValue) or isinstance(rhs, PoisonValue):
        return PoisonValue(bool_ty)
    if not (isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt)):
        return None
    a, b = lhs.value, rhs.value
    if predicate in ("sgt", "sge", "slt", "sle"):
        a, b = _signed(a, width), _signed(b, width)
    result = {
        "eq": a == b, "ne": a != b,
        "ugt": a > b, "uge": a >= b, "ult": a < b, "ule": a <= b,
        "sgt": a > b, "sge": a >= b, "slt": a < b, "sle": a <= b,
    }[predicate]
    return ConstantInt(bool_ty, int(result))


def fold_cast(opcode: str, value: Constant, src_width: int,
              dst_width: int) -> Optional[Constant]:
    int_ty = IntType(dst_width)
    if isinstance(value, PoisonValue):
        return PoisonValue(int_ty)
    if not isinstance(value, ConstantInt):
        return None
    if opcode == "trunc":
        return ConstantInt(int_ty, value.value)
    if opcode == "zext":
        return ConstantInt(int_ty, value.value)
    if opcode == "sext":
        return ConstantInt(int_ty, _unsigned(_signed(value.value, src_width),
                                             dst_width))
    return None


def fold_intrinsic(base_name: str, args, width: int) -> Optional[Constant]:
    """Fold an integer intrinsic over fully-constant arguments."""
    int_ty = IntType(width)
    if any(isinstance(a, PoisonValue) for a in args):
        return PoisonValue(int_ty)
    if not all(isinstance(a, ConstantInt) for a in args):
        return None
    values = [a.value for a in args]
    mask = (1 << width) - 1
    if base_name in ("llvm.smax", "llvm.smin"):
        a, b = _signed(values[0], width), _signed(values[1], width)
        chosen = max(a, b) if base_name.endswith("smax") else min(a, b)
        return ConstantInt(int_ty, _unsigned(chosen, width))
    if base_name in ("llvm.umax", "llvm.umin"):
        chosen = max(values[0], values[1]) if base_name.endswith("umax") \
            else min(values[0], values[1])
        return ConstantInt(int_ty, chosen)
    if base_name == "llvm.abs":
        signed = _signed(values[0], width)
        if signed == -(1 << (width - 1)):
            if values[1] == 1:
                return PoisonValue(int_ty)
            return ConstantInt(int_ty, values[0])
        return ConstantInt(int_ty, abs(signed))
    if base_name == "llvm.ctpop":
        return ConstantInt(int_ty, bin(values[0]).count("1"))
    if base_name == "llvm.ctlz":
        if values[0] == 0:
            if values[1] == 1:
                return PoisonValue(int_ty)
            return ConstantInt(int_ty, width)
        return ConstantInt(int_ty, width - values[0].bit_length())
    if base_name == "llvm.cttz":
        if values[0] == 0:
            if values[1] == 1:
                return PoisonValue(int_ty)
            return ConstantInt(int_ty, width)
        return ConstantInt(int_ty, (values[0] & -values[0]).bit_length() - 1)
    if base_name == "llvm.uadd.sat":
        return ConstantInt(int_ty, min(values[0] + values[1], mask))
    if base_name == "llvm.usub.sat":
        return ConstantInt(int_ty, max(values[0] - values[1], 0))
    if base_name == "llvm.sadd.sat":
        total = _signed(values[0], width) + _signed(values[1], width)
        return ConstantInt(int_ty, _unsigned(_clamp_signed(total, width), width))
    if base_name == "llvm.ssub.sat":
        total = _signed(values[0], width) - _signed(values[1], width)
        return ConstantInt(int_ty, _unsigned(_clamp_signed(total, width), width))
    return None


def _clamp_signed(value: int, width: int) -> int:
    low, high = -(1 << (width - 1)), (1 << (width - 1)) - 1
    return min(max(value, low), high)


def _fold_binary_inst(inst: BinaryOperator) -> Optional[Constant]:
    if isinstance(inst.lhs, Constant) and isinstance(inst.rhs, Constant):
        return fold_binary(inst.opcode, inst.lhs, inst.rhs,
                           inst.type.width, nuw=inst.nuw, nsw=inst.nsw,
                           exact=inst.exact)
    return None


def _fold_icmp_inst(inst: ICmpInst) -> Optional[Constant]:
    if isinstance(inst.lhs, Constant) and isinstance(inst.rhs, Constant) \
            and isinstance(inst.lhs.type, IntType):
        return fold_icmp(inst.predicate, inst.lhs, inst.rhs,
                         inst.lhs.type.width)
    return None


def _fold_cast_inst(inst: CastInst) -> Optional[Constant]:
    if isinstance(inst.value, Constant):
        return fold_cast(inst.opcode, inst.value, inst.src_type.width,
                         inst.type.width)
    return None


def _fold_select_inst(inst: SelectInst) -> Optional[Constant]:
    condition = inst.condition
    if isinstance(condition, PoisonValue):
        return PoisonValue(inst.type)
    if isinstance(condition, ConstantInt):
        chosen = inst.true_value if condition.value else inst.false_value
        return chosen if isinstance(chosen, Constant) else None
    return None


def _fold_call_inst(inst: CallInst) -> Optional[Constant]:
    if inst.is_intrinsic() and isinstance(inst.type, IntType) \
            and all(isinstance(a, Constant) for a in inst.args):
        return fold_intrinsic(inst.intrinsic_name(), inst.args,
                              inst.type.width)
    return None


# Opcode-keyed dispatch (see repro.opt.rewrite): each opcode names exactly
# one instruction class, so the per-class isinstance chain collapses into
# one dict probe and instructions with no folder (phi, load, br, ...) are
# rejected without trying any of them.
_FOLDERS = {"icmp": _fold_icmp_inst, "select": _fold_select_inst,
            "call": _fold_call_inst}
for _opcode in BINARY_OPCODES:
    _FOLDERS[_opcode] = _fold_binary_inst
for _opcode in CAST_OPCODES:
    _FOLDERS[_opcode] = _fold_cast_inst


def fold_instruction(inst: Instruction) -> Optional[Constant]:
    """Fold a whole instruction if its operands allow it."""
    folder = _FOLDERS.get(inst.opcode)
    return folder(inst) if folder is not None else None
