"""Pass framework: function passes, the registry, and the pass manager.

Mirrors how the paper drives LLVM: a pipeline is named on the command line
(``-O2``, ``instcombine``, or a comma-separated list) and run over every
function in the module (§III-C).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..ir.function import Function
from ..ir.instructions import Instruction
from ..ir.module import Module
from ..ir.values import Value
from .context import OptContext


class FunctionPass:
    """Base class: transform one function, report whether IR changed."""

    name = "<unnamed>"
    # Worklist-capable passes can re-optimize just a dirty region through
    # :meth:`run_on_worklist` (see ``repro.opt.incremental``); everything
    # else is always run over the whole function.
    supports_worklist = False

    def run_on_function(self, function: Function, ctx: OptContext) -> bool:
        raise NotImplementedError

    def run_on_worklist(self, function: Function, ctx: OptContext,
                        dirty) -> bool:
        raise NotImplementedError(f"pass {self.name} is not worklist-capable")

    def __repr__(self) -> str:
        return f"<pass {self.name}>"


_REGISTRY: Dict[str, Callable[[], FunctionPass]] = {}


def register_pass(name: str):
    """Class decorator adding a pass to the registry."""
    def decorate(cls):
        cls.name = name
        _REGISTRY[name] = cls
        return cls
    return decorate


def create_pass(name: str) -> FunctionPass:
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ValueError(f"unknown pass {name!r} "
                         f"(available: {', '.join(sorted(_REGISTRY))})")
    return factory()


def available_passes() -> List[str]:
    return sorted(_REGISTRY)


def replace_and_erase(inst: Instruction, replacement: Value) -> None:
    """RAUW + erase: the standard way a rewrite retires an instruction."""
    inst.replace_all_uses_with(replacement)
    inst.erase_from_parent()


class PassManager:
    """Runs a sequence of function passes over a module.

    Every execution of one pass over one function funnels through
    :meth:`_apply`, which owns the cross-cutting bookkeeping: wall-clock
    accumulation into :attr:`pass_seconds`, ``optimize.pass.<name>.seconds``
    counters when a ``metrics`` registry is attached, one
    ``optimize.pass.<name>`` span per (pass, function) when a ``tracer``
    is enabled, the ``pass.<name>.changed`` stat, and — when an
    :class:`repro.opt.incremental.IncrementalRun` is threaded through
    :meth:`run_function` — skip-memo/worklist dispatch.
    """

    def __init__(self, pass_names: Sequence[str],
                 ctx: Optional[OptContext] = None,
                 tracer=None, metrics=None) -> None:
        from . import pipelines  # late import: pipelines needs the registry

        expanded: List[str] = []
        for name in pass_names:
            expanded.extend(pipelines.expand(name))
        self.pass_names = expanded
        self.ctx = ctx or OptContext()
        self.tracer = tracer
        self.metrics = metrics
        self.pass_seconds: Dict[str, float] = {}
        self._passes = [create_pass(name) for name in expanded]

    def _apply(self, function_pass: FunctionPass, function: Function,
               ctx: OptContext, incremental=None) -> bool:
        """Run (or incrementally dispatch) one pass over one function."""
        name = function_pass.name
        begin = time.perf_counter()
        try:
            if incremental is not None:
                pass_changed = incremental.dispatch(function_pass, function,
                                                    ctx)
            else:
                pass_changed = function_pass.run_on_function(function, ctx)
        finally:
            elapsed = time.perf_counter() - begin
            self.pass_seconds[name] = \
                self.pass_seconds.get(name, 0.0) + elapsed
            if self.metrics is not None:
                self.metrics.count(f"optimize.pass.{name}.seconds", elapsed)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.record("optimize.pass." + name, begin, elapsed,
                          function=function.name, changed=pass_changed)
        if pass_changed:
            ctx.count(f"pass.{name}.changed")
        return pass_changed

    def run(self, module: Module) -> bool:
        """Run the full pipeline (pass-major); True if anything changed.

        Seeded crash bugs raise :class:`OptimizerCrash` out of this method,
        the analog of the optimizer process dying.
        """
        changed = False
        for function_pass in self._passes:
            for function in module.definitions():
                if self._apply(function_pass, function, self.ctx):
                    changed = True
        return changed

    def run_function(self, function: Function,
                     ctx: Optional[OptContext] = None,
                     incremental=None) -> bool:
        """Run the full pipeline over one function (function-major order).

        Because every registered pass is a :class:`FunctionPass`, running
        all passes over function A and then all passes over function B
        produces the same IR as the pass-major :meth:`run` — this is what
        lets the memoized driver optimize (and cache) functions one at a
        time.  ``ctx`` overrides the manager's context for this call so
        per-function bug attribution stays separable.  ``incremental`` is
        an optional :class:`repro.opt.incremental.IncrementalRun` carrying
        this function's skip-memo/worklist state.
        """
        ctx = ctx if ctx is not None else self.ctx
        changed = False
        for function_pass in self._passes:
            if self._apply(function_pass, function, ctx, incremental):
                changed = True
        return changed


def optimize_module(module: Module, pipeline: Union[str, Sequence[str]] = "O2",
                    ctx: Optional[OptContext] = None) -> OptContext:
    """Convenience wrapper: optimize in place, return the context."""
    names = [pipeline] if isinstance(pipeline, str) else list(pipeline)
    manager = PassManager(names, ctx)
    manager.run(module)
    return manager.ctx
