"""Pass framework: function passes, the registry, and the pass manager.

Mirrors how the paper drives LLVM: a pipeline is named on the command line
(``-O2``, ``instcombine``, or a comma-separated list) and run over every
function in the module (§III-C).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..ir.function import Function
from ..ir.instructions import Instruction
from ..ir.module import Module
from ..ir.values import Value
from .context import OptContext


class FunctionPass:
    """Base class: transform one function, report whether IR changed."""

    name = "<unnamed>"

    def run_on_function(self, function: Function, ctx: OptContext) -> bool:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<pass {self.name}>"


_REGISTRY: Dict[str, Callable[[], FunctionPass]] = {}


def register_pass(name: str):
    """Class decorator adding a pass to the registry."""
    def decorate(cls):
        cls.name = name
        _REGISTRY[name] = cls
        return cls
    return decorate


def create_pass(name: str) -> FunctionPass:
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ValueError(f"unknown pass {name!r} "
                         f"(available: {', '.join(sorted(_REGISTRY))})")
    return factory()


def available_passes() -> List[str]:
    return sorted(_REGISTRY)


def replace_and_erase(inst: Instruction, replacement: Value) -> None:
    """RAUW + erase: the standard way a rewrite retires an instruction."""
    inst.replace_all_uses_with(replacement)
    inst.erase_from_parent()


class PassManager:
    """Runs a sequence of function passes over a module.

    ``tracer`` (a :class:`repro.obs.Tracer`) records one
    ``optimize.pass.<name>`` span per pass execution when tracing is
    enabled — the per-pass breakdown of the loop's optimize stage.
    """

    def __init__(self, pass_names: Sequence[str],
                 ctx: Optional[OptContext] = None,
                 tracer=None) -> None:
        from . import pipelines  # late import: pipelines needs the registry

        expanded: List[str] = []
        for name in pass_names:
            expanded.extend(pipelines.expand(name))
        self.pass_names = expanded
        self.ctx = ctx or OptContext()
        self.tracer = tracer
        self._passes = [create_pass(name) for name in expanded]

    def run(self, module: Module) -> bool:
        """Run the full pipeline; True if anything changed.

        Seeded crash bugs raise :class:`OptimizerCrash` out of this method,
        the analog of the optimizer process dying.
        """
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            return self._run_traced(module, tracer)
        changed = False
        for function_pass in self._passes:
            for function in module.definitions():
                if function_pass.run_on_function(function, self.ctx):
                    changed = True
                    self.ctx.count(f"pass.{function_pass.name}.changed")
        return changed

    def run_function(self, function: Function,
                     ctx: Optional[OptContext] = None) -> bool:
        """Run the full pipeline over one function (function-major order).

        Because every registered pass is a :class:`FunctionPass`, running
        all passes over function A and then all passes over function B
        produces the same IR as the pass-major :meth:`run` — this is what
        lets the memoized driver optimize (and cache) functions one at a
        time.  ``ctx`` overrides the manager's context for this call so
        per-function bug attribution stays separable.
        """
        ctx = ctx if ctx is not None else self.ctx
        tracer = self.tracer
        traced = tracer is not None and tracer.enabled
        changed = False
        for function_pass in self._passes:
            if traced:
                begin = time.perf_counter()
                pass_changed = function_pass.run_on_function(function, ctx)
                tracer.record("optimize.pass." + function_pass.name, begin,
                              time.perf_counter() - begin,
                              function=function.name, changed=pass_changed)
            else:
                pass_changed = function_pass.run_on_function(function, ctx)
            if pass_changed:
                changed = True
                ctx.count(f"pass.{function_pass.name}.changed")
        return changed

    def _run_traced(self, module: Module, tracer) -> bool:
        """The traced twin of :meth:`run`: one span per pass."""
        changed = False
        for function_pass in self._passes:
            begin = time.perf_counter()
            pass_changed = False
            for function in module.definitions():
                if function_pass.run_on_function(function, self.ctx):
                    pass_changed = True
                    self.ctx.count(f"pass.{function_pass.name}.changed")
            tracer.record("optimize.pass." + function_pass.name, begin,
                          time.perf_counter() - begin, changed=pass_changed)
            changed = changed or pass_changed
        return changed


def optimize_module(module: Module, pipeline: Union[str, Sequence[str]] = "O2",
                    ctx: Optional[OptContext] = None) -> OptContext:
    """Convenience wrapper: optimize in place, return the context."""
    names = [pipeline] if isinstance(pipeline, str) else list(pipeline)
    manager = PassManager(names, ctx)
    manager.run(module)
    return manager.ctx
