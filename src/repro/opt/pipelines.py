"""Named pass pipelines (the ``-O1``/``-O2`` analogs)."""

from __future__ import annotations

from typing import Dict, List


PIPELINES: Dict[str, List[str]] = {
    "O0": [],
    "O1": [
        "mem2reg",
        "constfold",
        "instsimplify",
        "instcombine",
        "simplifycfg",
        "early-cse",
        "dce",
    ],
    "O2": [
        "mem2reg",
        "constfold",
        "instsimplify",
        "instcombine",
        "simplifycfg",
        "early-cse",
        "gvn",
        "licm",
        "dse",
        "reassociate",
        "instcombine",
        "align-from-assumptions",
        "constfold",
        "simplifycfg",
        "adce",
        "dce",
    ],
    # The paper's second configuration: -O2 followed by the (AArch64)
    # backend; our codegen pass is the backend substitute.
    "O2+backend": [],  # filled below from O2
    "backend": ["codegen", "dce"],
}

PIPELINES["O2+backend"] = PIPELINES["O2"] + ["codegen", "dce"]


def expand(name: str) -> List[str]:
    """A pipeline or single pass name (possibly comma-separated) into a
    flat pass list."""
    names: List[str] = []
    for part in name.split(","):
        part = part.strip()
        if not part:
            continue
        if part.startswith("-"):
            part = part.lstrip("-")
        if part in PIPELINES:
            names.extend(PIPELINES[part])
        else:
            names.append(part)
    return names


def available_pipelines() -> List[str]:
    return sorted(PIPELINES)
