"""LICM: loop-invariant code motion.

Hoists pure, loop-invariant instructions into the loop preheader.
Hoisting must be poison/UB-aware:

* instructions that can raise UB (divisions, remainders) are never
  hoisted — the loop body might not execute on some inputs, and hoisting
  would introduce UB on those paths;
* poison-producing instructions (flagged arithmetic, shifts) *are*
  hoistable: executing them speculatively only produces a poison value,
  which is benign unless used — and its uses stay inside the loop.
"""

from __future__ import annotations

from typing import Set

from ...analysis.domtree import DominatorTree
from ...analysis.loops import Loop, LoopInfo
from ...ir.function import Function
from ...ir.instructions import (BinaryOperator, CallInst, CastInst,
                                FreezeInst, GEPInst, ICmpInst, Instruction,
                                SelectInst)
from ..context import OptContext
from ..pass_manager import FunctionPass, register_pass

_UB_CAPABLE_OPCODES = frozenset({"udiv", "sdiv", "urem", "srem"})


def _is_hoistable_kind(inst: Instruction) -> bool:
    if isinstance(inst, BinaryOperator):
        return inst.opcode not in _UB_CAPABLE_OPCODES
    if isinstance(inst, (ICmpInst, SelectInst, CastInst, FreezeInst,
                         GEPInst)):
        return True
    if isinstance(inst, CallInst):
        # Only speculatable pure intrinsics; calls that can trap or
        # observe memory stay put.
        return inst.is_readnone() and inst.intrinsic_name() not in (
            "", "llvm.assume")
    return False


@register_pass("licm")
class LoopInvariantCodeMotion(FunctionPass):
    def run_on_function(self, function: Function, ctx: OptContext) -> bool:
        domtree = DominatorTree(function)
        loop_info = LoopInfo(function, domtree)
        changed = False
        for loop in loop_info:
            preheader = loop.preheader()
            if preheader is None:
                continue
            if self._hoist_loop(loop, preheader, ctx):
                changed = True
        return changed

    def _hoist_loop(self, loop: Loop, preheader, ctx: OptContext) -> bool:
        changed = False
        loop_defs: Set[int] = set()
        for block in loop.blocks:
            for inst in block.instructions:
                loop_defs.add(id(inst))

        def is_invariant(inst: Instruction) -> bool:
            return all(id(op) not in loop_defs for op in inst.operands)

        progress = True
        while progress:
            progress = False
            for block in loop.blocks:
                for inst in list(block.instructions):
                    if inst.parent is None or inst.is_terminator() \
                            or inst.is_phi():
                        continue
                    if not _is_hoistable_kind(inst):
                        continue
                    if not is_invariant(inst):
                        continue
                    # Hoist: move before the preheader's terminator.
                    block.remove(inst)
                    terminator_index = len(preheader.instructions) - 1
                    preheader.insert(terminator_index, inst)
                    loop_defs.discard(id(inst))
                    ctx.count("licm.hoisted")
                    changed = True
                    progress = True
        return changed
