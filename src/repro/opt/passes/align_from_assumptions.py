"""AlignmentFromAssumptions: propagate ``assume align`` bundles.

``call void @llvm.assume(i1 true) [ "align"(ptr %p, i64 N) ]`` lets the
pass raise the alignment recorded on loads/stores through ``%p``.

Hosts seeded crash bug 64687: per the LangRef, alignments in assume
bundles are *not* required to be powers of two; the buggy pass asserts
they are ("missing a corner case") and dies on e.g. ``align 123``.
"""

from __future__ import annotations

from ...ir.function import Function
from ...ir.instructions import CallInst, LoadInst, StoreInst
from ...ir.values import ConstantInt
from ..context import OptContext
from ..pass_manager import FunctionPass, register_pass


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@register_pass("align-from-assumptions")
class AlignmentFromAssumptions(FunctionPass):
    def run_on_function(self, function: Function, ctx: OptContext) -> bool:
        changed = False
        for inst in function.instructions():
            if not (isinstance(inst, CallInst)
                    and inst.intrinsic_name() == "llvm.assume"):
                continue
            for bundle in inst.bundles:
                if bundle.tag != "align":
                    continue
                operands = inst.bundle_operands(bundle)
                if len(operands) != 2:
                    continue
                pointer, align_value = operands
                if not isinstance(align_value, ConstantInt):
                    continue
                align = align_value.value
                if not _is_power_of_two(align):
                    if ctx.bug_enabled("64687"):
                        ctx.crash("64687", "AlignmentFromAssumptions assumed "
                                           "all alignments are powers of two")
                    continue  # the fixed behavior: skip the odd alignment
                for use in pointer.uses:
                    user = use.user
                    if isinstance(user, LoadInst) and user.pointer is pointer:
                        if user.align < align:
                            user.align = align
                            ctx.count("align-assume.load")
                            changed = True
                    elif isinstance(user, StoreInst) and user.pointer is pointer:
                        if user.align < align:
                            user.align = align
                            ctx.count("align-assume.store")
                            changed = True
        return changed
