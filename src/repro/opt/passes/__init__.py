"""Pass implementations.

Importing this package registers every pass with the registry in
:mod:`repro.opt.pass_manager`.
"""

from . import (align_from_assumptions, codegen, constant_fold, dce, dse,
               early_cse, gvn, instcombine, instsimplify, licm, mem2reg,
               reassociate, simplifycfg)

__all__ = ["align_from_assumptions", "codegen", "constant_fold", "dce",
           "dse", "early_cse", "gvn", "instcombine", "instsimplify",
           "licm", "mem2reg", "reassociate", "simplifycfg"]
