"""InstCombine rules threading binary operations through selects and
folding selects over compared values."""

from __future__ import annotations

from typing import Optional

from ....ir.instructions import (BINARY_OPCODES, BinaryOperator, ICmpInst,
                                 SelectInst)
from ....ir.values import ConstantInt, Value, same_value
from ...matchers import is_one_use
from ...rewrite import rule


def rule_binop_of_select_constants(inst, combine) -> Optional[Value]:
    """op (select c, C1, C2), C3  ->  select c, (C1 op C3), (C2 op C3).

    Folding the op into both constant arms removes an instruction.  The
    folded op must be flagless (constant-folding with flags could differ
    in poison between the arms and the original).
    """
    if not isinstance(inst, BinaryOperator):
        return None
    if inst.nuw or inst.nsw or inst.exact:
        return None
    select = inst.lhs
    if not (isinstance(select, SelectInst) and is_one_use(select)
            and isinstance(select.true_value, ConstantInt)
            and isinstance(select.false_value, ConstantInt)
            and isinstance(inst.rhs, ConstantInt)):
        return None
    from ...fold import fold_binary

    true_folded = fold_binary(inst.opcode, select.true_value, inst.rhs,
                              inst.type.width)
    false_folded = fold_binary(inst.opcode, select.false_value, inst.rhs,
                               inst.type.width)
    if not (isinstance(true_folded, ConstantInt)
            and isinstance(false_folded, ConstantInt)):
        return None
    builder = combine.builder_before(inst)
    return builder.select(select.condition, true_folded, false_folded)


def rule_select_icmp_eq_constant_arm(inst, combine) -> Optional[Value]:
    """select (icmp eq x, C), C, y  ->  select (icmp eq x, C), x, y — and
    then the arms rule can take over.  LLVM canonicalizes the other way
    (constant preferred), so we implement the profitable special case:
    when the true arm equals the compared constant, substituting x makes
    both arms x-derived and often unlocks select-elimination."""
    if not isinstance(inst, SelectInst):
        return None
    compare = inst.condition
    if not (isinstance(compare, ICmpInst) and compare.predicate == "eq"
            and isinstance(compare.rhs, ConstantInt)):
        return None
    if not same_value(inst.true_value, compare.rhs):
        return None
    if inst.false_value is compare.lhs:
        # select (x == C), C, x  ->  x
        return compare.lhs
    return None


def rule_select_of_sub_zero(inst, combine) -> Optional[Value]:
    """select (icmp slt x, 0), (sub 0, x), x  ->  abs-like shape stays,
    but the reversed arms form select (icmp sgt x, -1), x, (sub 0, x)
    canonicalizes to the same order for downstream matching."""
    if not isinstance(inst, SelectInst):
        return None
    compare = inst.condition
    if not (isinstance(compare, ICmpInst) and compare.predicate == "sgt"
            and isinstance(compare.rhs, ConstantInt)
            and compare.rhs.is_all_ones()
            and is_one_use(compare)):
        return None
    negated = inst.false_value
    if not (isinstance(negated, BinaryOperator) and negated.opcode == "sub"
            and isinstance(negated.lhs, ConstantInt)
            and negated.lhs.is_zero()
            and negated.rhs is compare.lhs
            and inst.true_value is compare.lhs):
        return None
    # select (x > -1), x, (0 - x)  ->  select (x < 0), (0 - x), x
    builder = combine.builder_before(inst)
    flipped = builder.icmp("slt", compare.lhs,
                           ConstantInt(compare.lhs.type, 0))
    return builder.select(flipped, negated, compare.lhs)


def rule_shared_operand_select(inst, combine) -> Optional[Value]:
    """op (select c, x, y), (select c, a, b) with the same condition
    folds to select c, (op x a), (op y b) when both selects are single-
    use — one select survives instead of two.

    Both arms now execute unconditionally, so the op must not be able to
    raise UB (division by an unselected zero would be a new crash).
    """
    if not isinstance(inst, BinaryOperator):
        return None
    if inst.opcode in ("udiv", "sdiv", "urem", "srem"):
        return None
    lhs, rhs = inst.lhs, inst.rhs
    if not (isinstance(lhs, SelectInst) and isinstance(rhs, SelectInst)
            and lhs.condition is rhs.condition
            and is_one_use(lhs) and is_one_use(rhs)):
        return None
    builder = combine.builder_before(inst)
    true_op = builder.binop(inst.opcode, lhs.true_value, rhs.true_value,
                            nuw=inst.nuw, nsw=inst.nsw, exact=inst.exact)
    false_op = builder.binop(inst.opcode, lhs.false_value, rhs.false_value,
                             nuw=inst.nuw, nsw=inst.nsw, exact=inst.exact)
    return builder.select(lhs.condition, true_op, false_op)


RULES = [
    rule("binop-select-consts", rule_binop_of_select_constants,
         *BINARY_OPCODES),
    rule("select-eq-const-arm", rule_select_icmp_eq_constant_arm, "select"),
    rule("select-neg-canon", rule_select_of_sub_zero, "select"),
    rule("binop-two-selects", rule_shared_operand_select, *BINARY_OPCODES),
]
