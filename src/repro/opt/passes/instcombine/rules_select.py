"""InstCombine rules for select.

Hosts seeded bug 53252 (miscompilation): "didn't update predicate in
function 'canonicalizeClampLike'" — the clamp-to-min/max canonicalization
emits a *signed* min/max even when the guarding compare was unsigned.
"""

from __future__ import annotations

from typing import Optional

from ....ir.instructions import BinaryOperator, ICmpInst, SelectInst
from ....ir.intrinsics import declare_intrinsic, supports_width
from ....ir.types import IntType
from ....ir.values import ConstantInt, Value, same_value
from ...matchers import is_one_use
from ...rewrite import rule


def rule_select_inverted_condition(inst, combine) -> Optional[Value]:
    """select (xor c, true), x, y  ->  select c, y, x."""
    if not isinstance(inst, SelectInst):
        return None
    condition = inst.condition
    if not (isinstance(condition, BinaryOperator) and condition.opcode == "xor"
            and is_one_use(condition)
            and isinstance(condition.rhs, ConstantInt)
            and condition.rhs.is_one()
            and condition.type.width == 1):
        return None
    builder = combine.builder_before(inst)
    return builder.select(condition.lhs, inst.false_value, inst.true_value)


def rule_select_bool_constant_arms(inst, combine) -> Optional[Value]:
    """select c, true, C  ->  or c, C  /  select c, C, false  ->  and c, C.

    Only with a *constant* other arm: with an arbitrary value the or/and
    form would let poison flow where select blocked it.
    """
    if not isinstance(inst, SelectInst):
        return None
    if not (isinstance(inst.type, IntType) and inst.type.width == 1):
        return None
    builder = combine.builder_before(inst)
    if isinstance(inst.true_value, ConstantInt) and inst.true_value.is_one() \
            and isinstance(inst.false_value, ConstantInt):
        return builder.or_(inst.condition, inst.false_value)
    if isinstance(inst.false_value, ConstantInt) and inst.false_value.is_zero() \
            and isinstance(inst.true_value, ConstantInt):
        return builder.and_(inst.condition, inst.true_value)
    return None


_MINMAX_FOR_PREDICATE = {
    # select (x PRED C) ? x : C  canonicalizes to this intrinsic.
    "slt": "llvm.smin",
    "sgt": "llvm.smax",
    "ult": "llvm.umin",
    "ugt": "llvm.umax",
}


def rule_canonicalize_clamp_like(inst, combine) -> Optional[Value]:
    """Clamp patterns become min/max intrinsics:

        select (icmp slt x, C), x, C  ->  smin(x, C)
        select (icmp slt x, C), C, x  ->  smax(x, C)

    Bug 53252: the buggy version keeps the *signed* intrinsic even when
    the predicate was unsigned — "didn't update the predicate".
    """
    if not isinstance(inst, SelectInst):
        return None
    if not isinstance(inst.type, IntType) or inst.type.width == 1:
        return None
    compare = inst.condition
    if not (isinstance(compare, ICmpInst) and is_one_use(compare)
            and isinstance(compare.rhs, ConstantInt)):
        return None
    base = _MINMAX_FOR_PREDICATE.get(compare.predicate)
    if base is None:
        return None
    x, c = compare.lhs, compare.rhs
    if inst.true_value is x and same_value(inst.false_value, c):
        chosen = base
    elif same_value(inst.true_value, c) and inst.false_value is x:
        chosen = {"llvm.smin": "llvm.smax", "llvm.smax": "llvm.smin",
                  "llvm.umin": "llvm.umax", "llvm.umax": "llvm.umin"}[base]
    else:
        return None
    if combine.ctx.bug_enabled("53252") and chosen.startswith("llvm.u"):
        combine.ctx.note_bug_trigger("53252")
        chosen = chosen.replace("llvm.u", "llvm.s")
    module = combine.module
    if module is None or not supports_width(chosen, inst.type.width):
        return None
    callee = declare_intrinsic(module, chosen, inst.type.width)
    builder = combine.builder_before(inst)
    return builder.call(callee, [x, c])


def rule_select_same_compare_operands(inst, combine) -> Optional[Value]:
    """select (icmp eq a, b), a, b  ->  b  (equal when taken, b otherwise)."""
    if not isinstance(inst, SelectInst):
        return None
    compare = inst.condition
    if not (isinstance(compare, ICmpInst) and compare.predicate == "eq"):
        return None
    if inst.true_value is compare.lhs and inst.false_value is compare.rhs:
        return inst.false_value
    if inst.true_value is compare.rhs and inst.false_value is compare.lhs:
        return inst.false_value
    return None


def rule_select_of_selects(inst, combine) -> Optional[Value]:
    """select c, (select c, x, y), z  ->  select c, x, z (same condition)."""
    if not isinstance(inst, SelectInst):
        return None
    condition = inst.condition
    true_value = inst.true_value
    false_value = inst.false_value
    builder = combine.builder_before(inst)
    if isinstance(true_value, SelectInst) and true_value.condition is condition:
        return builder.select(condition, true_value.true_value, false_value)
    if isinstance(false_value, SelectInst) and false_value.condition is condition:
        return builder.select(condition, true_value, false_value.false_value)
    return None


def rule_select_zext_arms(inst, combine) -> Optional[Value]:
    """select c, 1, 0  ->  zext c (and select c, 0, 1 -> zext (xor c))."""
    if not isinstance(inst, SelectInst):
        return None
    if not isinstance(inst.type, IntType) or inst.type.width <= 1:
        return None
    t, f = inst.true_value, inst.false_value
    if not (isinstance(t, ConstantInt) and isinstance(f, ConstantInt)):
        return None
    builder = combine.builder_before(inst)
    if t.is_one() and f.is_zero():
        return builder.zext(inst.condition, inst.type)
    if t.is_zero() and f.is_one():
        inverted = builder.xor(inst.condition, ConstantInt(IntType(1), 1))
        return builder.zext(inverted, inst.type)
    return None


RULES = [
    rule("select-inverted-cond", rule_select_inverted_condition, "select"),
    rule("select-bool-const-arms", rule_select_bool_constant_arms, "select"),
    rule("canonicalize-clamp-like", rule_canonicalize_clamp_like, "select"),
    rule("select-eq-operands", rule_select_same_compare_operands, "select"),
    rule("select-of-selects", rule_select_of_selects, "select"),
    rule("select-zext-arms", rule_select_zext_arms, "select"),
]
