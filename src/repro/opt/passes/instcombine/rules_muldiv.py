"""InstCombine rules for mul/div/rem.

Hosts seeded bug 59836 (miscompilation): "precondition of a peephole
optimization is too weak" — a mul of two zero-extended values is marked
``nuw``, but the buggy precondition also accepts operands that were
*truncated after* the zero-extension, which can reintroduce high bits
(the paper's Listing 17 shape).
"""

from __future__ import annotations

from typing import Optional

from ....ir.instructions import BinaryOperator, CastInst
from ....ir.values import ConstantInt, Value
from ...rewrite import rule


def _log2_exact(value: int) -> Optional[int]:
    if value <= 0 or value & (value - 1):
        return None
    return value.bit_length() - 1


def rule_mul_pow2_to_shl(inst, combine) -> Optional[Value]:
    """mul x, 2**C  ->  shl x, C (flags carry over)."""
    if not (isinstance(inst, BinaryOperator) and inst.opcode == "mul"):
        return None
    if not isinstance(inst.rhs, ConstantInt):
        return None
    shift = _log2_exact(inst.rhs.value)
    if shift is None or shift == 0:
        return None
    if shift >= inst.type.width:
        return None
    # nsw only transfers when the constant is a *positive* signed power of
    # two; 2**(w-1) is the signed minimum, where `mul nsw x, INT_MIN` and
    # `shl nsw x, w-1` poison on different inputs.
    keep_nsw = inst.nsw and shift < inst.type.width - 1
    builder = combine.builder_before(inst)
    return builder.shl(inst.lhs, ConstantInt(inst.type, shift),
                       nuw=inst.nuw, nsw=keep_nsw)


def rule_mul_allones_to_neg(inst, combine) -> Optional[Value]:
    """mul x, -1  ->  sub 0, x (drops nuw/nsw: x*-1 nsw poisons only at
    INT_MIN, exactly like 0-x nsw, so nsw could be kept — we keep it)."""
    if not (isinstance(inst, BinaryOperator) and inst.opcode == "mul"):
        return None
    if not (isinstance(inst.rhs, ConstantInt) and inst.rhs.is_all_ones()):
        return None
    if inst.type.width == 1:
        return None
    builder = combine.builder_before(inst)
    return builder.sub(ConstantInt(inst.type, 0), inst.lhs, nsw=inst.nsw)


def _zext_source_width(value: Value, look_through_trunc: bool) -> Optional[int]:
    """Effective value-range width if ``value`` is (trunc of) a zext.

    The sound version refuses to look through trunc; the buggy version
    (59836) accepts it and reports the *original* zext source width even
    though the trunc may have reintroduced high bits.
    """
    if isinstance(value, CastInst) and value.opcode == "zext":
        return value.src_type.width
    if look_through_trunc and isinstance(value, CastInst) \
            and value.opcode == "trunc":
        inner = value.value
        if isinstance(inner, CastInst) and inner.opcode == "zext":
            return inner.src_type.width
    return None


def rule_mul_of_zexts_is_nuw(inst, combine) -> Optional[Value]:
    """mul (zext a), (zext b) cannot overflow when the source widths fit:
    mark it nuw (and nsw when there is also a spare sign bit)."""
    if not (isinstance(inst, BinaryOperator) and inst.opcode == "mul"):
        return None
    if inst.nuw:
        return None
    buggy = combine.ctx.bug_enabled("59836")
    lhs_width = _zext_source_width(inst.lhs, look_through_trunc=buggy)
    rhs_width = _zext_source_width(inst.rhs, look_through_trunc=buggy)
    if lhs_width is None or rhs_width is None:
        return None
    if lhs_width + rhs_width > inst.type.width:
        # The sound precondition: the product of values below 2**lhs_width
        # and 2**rhs_width fits. The buggy version trusts "both operands
        # come from zext" alone, exactly like PR59836.
        if not buggy:
            return None
        combine.ctx.note_bug_trigger("59836")
    inst.nuw = True
    if lhs_width + rhs_width < inst.type.width:
        inst.nsw = True
    return inst


def rule_udiv_pow2_to_lshr(inst, combine) -> Optional[Value]:
    """udiv x, 2**C  ->  lshr x, C (exact carries over)."""
    if not (isinstance(inst, BinaryOperator) and inst.opcode == "udiv"):
        return None
    if not isinstance(inst.rhs, ConstantInt):
        return None
    shift = _log2_exact(inst.rhs.value)
    if shift is None:
        return None
    if shift == 0:
        return inst.lhs
    builder = combine.builder_before(inst)
    return builder.lshr(inst.lhs, ConstantInt(inst.type, shift),
                        exact=inst.exact)


def rule_urem_pow2_to_and(inst, combine) -> Optional[Value]:
    """urem x, 2**C  ->  and x, 2**C - 1."""
    if not (isinstance(inst, BinaryOperator) and inst.opcode == "urem"):
        return None
    if not isinstance(inst.rhs, ConstantInt):
        return None
    if _log2_exact(inst.rhs.value) is None:
        return None
    builder = combine.builder_before(inst)
    return builder.and_(inst.lhs, ConstantInt(inst.type, inst.rhs.value - 1))


def rule_mul_shl_operand(inst, combine) -> Optional[Value]:
    """mul (shl x, C), y  ->  shl (mul x, y), C — only with one use and no
    flags (the regrouping changes intermediate overflow)."""
    if not (isinstance(inst, BinaryOperator) and inst.opcode == "mul"):
        return None
    if inst.nuw or inst.nsw:
        return None
    for first, second in ((inst.lhs, inst.rhs), (inst.rhs, inst.lhs)):
        if isinstance(first, BinaryOperator) and first.opcode == "shl" \
                and first.num_uses() == 1 \
                and isinstance(first.rhs, ConstantInt) \
                and not (first.nuw or first.nsw):
            builder = combine.builder_before(inst)
            product = builder.mul(first.lhs, second)
            return builder.shl(product, first.rhs)
    return None


RULES = [
    rule("mul-pow2-to-shl", rule_mul_pow2_to_shl, "mul"),
    rule("mul-allones-to-neg", rule_mul_allones_to_neg, "mul"),
    rule("mul-zext-zext-nuw", rule_mul_of_zexts_is_nuw, "mul"),
    rule("udiv-pow2-to-lshr", rule_udiv_pow2_to_lshr, "udiv"),
    rule("urem-pow2-to-and", rule_urem_pow2_to_and, "urem"),
    rule("mul-shl-regroup", rule_mul_shl_operand, "mul"),
]
