"""InstCombine rules for and/or/xor."""

from __future__ import annotations

from typing import Optional

from ....analysis.knownbits import compute_known_bits
from ....ir.instructions import BinaryOperator, ICmpInst
from ....ir.types import IntType
from ....ir.values import ConstantInt, Value
from ...matchers import is_one_use
from ...rewrite import rule


def rule_xor_of_icmp_inverts(inst, combine) -> Optional[Value]:
    """xor (icmp pred a, b), true  ->  icmp !pred a, b.

    This is the canonicalization that turns the paper's Listing 2
    ``xor %t2, true`` into an inverted compare during optimization.
    """
    if not (isinstance(inst, BinaryOperator) and inst.opcode == "xor"):
        return None
    if not (isinstance(inst.type, IntType) and inst.type.width == 1):
        return None
    for compare, other in ((inst.lhs, inst.rhs), (inst.rhs, inst.lhs)):
        if isinstance(compare, ICmpInst) and is_one_use(compare) \
                and isinstance(other, ConstantInt) and other.is_one():
            builder = combine.builder_before(inst)
            return builder.icmp(compare.inverted_predicate(),
                                compare.lhs, compare.rhs)
    return None


def rule_demorgan(inst, combine) -> Optional[Value]:
    """and (xor a, -1), (xor b, -1)  ->  xor (or a, b), -1 (and dual)."""
    if not (isinstance(inst, BinaryOperator)
            and inst.opcode in ("and", "or")):
        return None
    lhs, rhs = inst.lhs, inst.rhs

    def inverted(value):
        if isinstance(value, BinaryOperator) and value.opcode == "xor" \
                and isinstance(value.rhs, ConstantInt) \
                and value.rhs.is_all_ones() and is_one_use(value):
            return value.lhs
        return None

    a = inverted(lhs)
    b = inverted(rhs)
    if a is None or b is None:
        return None
    builder = combine.builder_before(inst)
    dual = "or" if inst.opcode == "and" else "and"
    combined = builder.binop(dual, a, b)
    return builder.xor(combined, ConstantInt(inst.type, inst.type.mask))


def rule_and_or_absorb(inst, combine) -> Optional[Value]:
    """and x, (or x, y)  ->  x   and   or x, (and x, y)  ->  x."""
    if not (isinstance(inst, BinaryOperator)
            and inst.opcode in ("and", "or")):
        return None
    dual = "or" if inst.opcode == "and" else "and"
    for first, second in ((inst.lhs, inst.rhs), (inst.rhs, inst.lhs)):
        if isinstance(second, BinaryOperator) and second.opcode == dual:
            if second.lhs is first or second.rhs is first:
                return first
    return None


def rule_and_with_known_mask(inst, combine) -> Optional[Value]:
    """and x, C  ->  x when known bits prove C covers every possibly-set
    bit of x."""
    if not (isinstance(inst, BinaryOperator) and inst.opcode == "and"):
        return None
    if not isinstance(inst.rhs, ConstantInt):
        return None
    known = compute_known_bits(inst.lhs)
    possibly_set = known.mask & ~known.zero
    if possibly_set & ~inst.rhs.value:
        return None
    if inst.rhs.is_all_ones():
        return None  # instsimplify handles it
    return inst.lhs


def rule_or_disjoint_to_add(inst, combine) -> Optional[Value]:
    """add x, y  ->  or x, y when their set bits are provably disjoint.

    (The canonical LLVM direction; `or` exposes more bitwise facts.)
    """
    if not (isinstance(inst, BinaryOperator) and inst.opcode == "add"):
        return None
    if inst.nuw or inst.nsw:
        return None  # keep flag-carrying adds for other rules
    lhs_known = compute_known_bits(inst.lhs)
    rhs_known = compute_known_bits(inst.rhs)
    lhs_possible = lhs_known.mask & ~lhs_known.zero
    rhs_possible = rhs_known.mask & ~rhs_known.zero
    if lhs_possible & rhs_possible:
        return None
    if isinstance(inst.lhs, ConstantInt) or isinstance(inst.rhs, ConstantInt):
        if lhs_possible == 0 or rhs_possible == 0:
            return None  # add x, 0 is instsimplify's job
    builder = combine.builder_before(inst)
    return builder.or_(inst.lhs, inst.rhs)


def rule_xor_icmp_pair(inst, combine) -> Optional[Value]:
    """xor (icmp eq a, b), (icmp ne a, b)  ->  true."""
    if not (isinstance(inst, BinaryOperator) and inst.opcode == "xor"):
        return None
    lhs, rhs = inst.lhs, inst.rhs
    if not (isinstance(lhs, ICmpInst) and isinstance(rhs, ICmpInst)):
        return None
    if lhs.lhs is rhs.lhs and lhs.rhs is rhs.rhs \
            and lhs.inverted_predicate() == rhs.predicate:
        return ConstantInt(IntType(1), 1)
    return None


RULES = [
    rule("xor-icmp-invert", rule_xor_of_icmp_inverts, "xor"),
    rule("demorgan", rule_demorgan, "and", "or"),
    rule("and-or-absorb", rule_and_or_absorb, "and", "or"),
    rule("and-known-mask", rule_and_with_known_mask, "and"),
    # Anchored at an *add* of disjoint bits (rewritten to or), despite
    # living in the bitwise module.
    rule("or-disjoint-add", rule_or_disjoint_to_add, "add"),
    rule("xor-icmp-pair", rule_xor_icmp_pair, "xor"),
]
