"""InstCombine rules for intrinsic calls.

Hosts two seeded crash bugs:

* 52884 — "analysis got thwarted by having both nuw and nsw on the add":
  folding smax/smin over an offset add crashes when the add carries both
  flags (the paper's Listing 15 shape).
* 56463 — "calling a function with a bad signature": the call-site
  combiner crashes when an ``undef`` argument meets a ``noundef``
  parameter it wants to exploit.
"""

from __future__ import annotations

from typing import Optional

from ....analysis.knownbits import is_known_non_negative
from ....ir.instructions import BinaryOperator, CallInst
from ....ir.intrinsics import declare_intrinsic, supports_width
from ....ir.values import ConstantInt, UndefValue, Value
from ...rewrite import rule


def _intrinsic_call(inst, base: str) -> bool:
    return (isinstance(inst, CallInst) and inst.is_intrinsic()
            and inst.intrinsic_name() == base)


def _minmax_base(inst) -> Optional[str]:
    if not (isinstance(inst, CallInst) and inst.is_intrinsic()):
        return None
    base = inst.intrinsic_name()
    if base in ("llvm.smax", "llvm.smin", "llvm.umax", "llvm.umin"):
        return base
    return None


def rule_minmax_identity(inst, combine) -> Optional[Value]:
    """min/max with its identity bound folds to the other operand."""
    base = _minmax_base(inst)
    if base is None:
        return None
    x, y = inst.args
    if x is y:
        return x
    width = inst.type.width
    signed_min = 1 << (width - 1)
    signed_max = (1 << (width - 1)) - 1
    identities = {
        "llvm.smax": signed_min,
        "llvm.smin": signed_max,
        "llvm.umax": 0,
        "llvm.umin": inst.type.mask,
    }
    absorbers = {
        "llvm.smax": signed_max,
        "llvm.smin": signed_min,
        "llvm.umax": inst.type.mask,
        "llvm.umin": 0,
    }
    for value, other in ((x, y), (y, x)):
        if isinstance(value, ConstantInt):
            if value.value == identities[base]:
                return other
            if value.value == absorbers[base]:
                # Absorbing bound: result is the constant — but only when
                # the other operand cannot be poison-free-required... the
                # constant refines poison, so this is always sound.
                return value
    return None


def rule_minmax_of_minmax(inst, combine) -> Optional[Value]:
    """smax(smax(x, C1), C2)  ->  smax(x, max(C1, C2)) (same family)."""
    base = _minmax_base(inst)
    if base is None:
        return None
    if combine.ctx.bug_enabled("52884"):
        for arg in inst.args:
            if isinstance(arg, BinaryOperator) and arg.opcode == "add" \
                    and arg.nuw and arg.nsw:
                combine.ctx.crash(
                    "52884", "InstCombine: InstSimplify was expected to "
                             "squash the offset pattern but nuw+nsw add "
                             "thwarted the analysis")
    inner = outer_const = None
    for first, second in (inst.args, reversed(inst.args)):
        if isinstance(second, ConstantInt) and isinstance(first, CallInst) \
                and first.is_intrinsic() and first.intrinsic_name() == base \
                and first.num_uses() == 1:
            inner, outer_const = first, second
            break
    if inner is None:
        return None
    inner_const = next((a for a in inner.args if isinstance(a, ConstantInt)),
                       None)
    if inner_const is None:
        return None
    inner_operand = inner.args[1] if inner.args[0] is inner_const \
        else inner.args[0]
    width = inst.type.width
    a = inner_const.signed_value() if base.startswith("llvm.s") else inner_const.value
    b = outer_const.signed_value() if base.startswith("llvm.s") else outer_const.value
    take_max = base.endswith("max")
    chosen = max(a, b) if take_max else min(a, b)
    module = combine.module
    if module is None or not supports_width(base, width):
        return None
    callee = declare_intrinsic(module, base, width)
    builder = combine.builder_before(inst)
    return builder.call(callee, [inner_operand,
                                 ConstantInt(inst.type, chosen)])


def rule_abs_of_nonnegative(inst, combine) -> Optional[Value]:
    """llvm.abs(x, f)  ->  x when x is known non-negative."""
    if not _intrinsic_call(inst, "llvm.abs"):
        return None
    if is_known_non_negative(inst.args[0]):
        return inst.args[0]
    return None


def rule_abs_of_abs(inst, combine) -> Optional[Value]:
    """llvm.abs(llvm.abs(x, f), g)  ->  inner abs when g is no stricter."""
    if not _intrinsic_call(inst, "llvm.abs"):
        return None
    inner = inst.args[0]
    if not _intrinsic_call(inner, "llvm.abs"):
        return None
    outer_flag = inst.args[1]
    inner_flag = inner.args[1]
    if isinstance(outer_flag, ConstantInt) and isinstance(inner_flag, ConstantInt):
        if outer_flag.value <= inner_flag.value:
            return inner
    return None


def rule_call_site_noundef(inst, combine) -> Optional[Value]:
    """Seeded crash 56463 ("calling a function with a bad signature"):
    the call-site combiner assumes arguments are well-formed values and
    dies when one is literally ``undef``."""
    if not isinstance(inst, CallInst) or inst.is_intrinsic():
        return None
    if not combine.ctx.bug_enabled("56463"):
        return None
    if any(isinstance(value, UndefValue) for value in inst.args):
        combine.ctx.crash("56463", "call-site combine assumed a "
                                   "well-formed signature/argument pair")
    return None


RULES = [
    rule("minmax-identity", rule_minmax_identity, "call"),
    rule("minmax-of-minmax", rule_minmax_of_minmax, "call"),
    rule("abs-of-nonneg", rule_abs_of_nonnegative, "call"),
    rule("abs-of-abs", rule_abs_of_abs, "call"),
    rule("call-noundef-crash", rule_call_site_noundef, "call"),
]
