"""InstCombine rules for shifts.

Hosts seeded bug 50693 (miscompilation): the "opposite shifts of -1"
simplification.  ``lshr (shl -1, x), x`` equals ``lshr -1, x`` (a low-bit
mask); the buggy version folds it to ``-1`` outright.
"""

from __future__ import annotations

from typing import Optional

from ....ir.instructions import BinaryOperator, CastInst
from ....ir.values import ConstantInt, Value
from ...rewrite import rule


def rule_shl_shl_combine(inst, combine) -> Optional[Value]:
    """shl (shl x, C1), C2  ->  shl x, C1+C2 (or 0 when C1+C2 >= width).

    Flags are dropped: the combined shift has different overflow behavior.
    """
    if not (isinstance(inst, BinaryOperator) and inst.opcode == "shl"):
        return None
    inner = inst.lhs
    if not (isinstance(inner, BinaryOperator) and inner.opcode == "shl"
            and isinstance(inner.rhs, ConstantInt)
            and isinstance(inst.rhs, ConstantInt)):
        return None
    width = inst.type.width
    c1, c2 = inner.rhs.value, inst.rhs.value
    if c1 >= width or c2 >= width:
        return None  # already poison; leave it visible
    total = c1 + c2
    if total >= width:
        return ConstantInt(inst.type, 0)
    builder = combine.builder_before(inst)
    return builder.shl(inner.lhs, ConstantInt(inst.type, total))


def rule_lshr_lshr_combine(inst, combine) -> Optional[Value]:
    """lshr (lshr x, C1), C2  ->  lshr x, C1+C2 (or 0)."""
    if not (isinstance(inst, BinaryOperator) and inst.opcode == "lshr"):
        return None
    inner = inst.lhs
    if not (isinstance(inner, BinaryOperator) and inner.opcode == "lshr"
            and isinstance(inner.rhs, ConstantInt)
            and isinstance(inst.rhs, ConstantInt)):
        return None
    width = inst.type.width
    c1, c2 = inner.rhs.value, inst.rhs.value
    if c1 >= width or c2 >= width:
        return None
    total = c1 + c2
    if total >= width:
        return ConstantInt(inst.type, 0)
    builder = combine.builder_before(inst)
    return builder.lshr(inner.lhs, ConstantInt(inst.type, total))


def rule_shl_then_lshr_to_and(inst, combine) -> Optional[Value]:
    """lshr (shl x, C), C  ->  and x, (-1 >> C) — masks the top C bits."""
    if not (isinstance(inst, BinaryOperator) and inst.opcode == "lshr"):
        return None
    inner = inst.lhs
    if not (isinstance(inner, BinaryOperator) and inner.opcode == "shl"
            and isinstance(inner.rhs, ConstantInt)
            and isinstance(inst.rhs, ConstantInt)
            and inner.rhs.value == inst.rhs.value
            and inner.num_uses() == 1):
        return None
    width = inst.type.width
    shift = inst.rhs.value
    if shift >= width:
        return None
    mask = inst.type.mask >> shift
    builder = combine.builder_before(inst)
    return builder.and_(inner.lhs, ConstantInt(inst.type, mask))


def rule_opposite_shifts_of_allones(inst, combine) -> Optional[Value]:
    """lshr (shl -1, x), x  ->  lshr -1, x.

    Bug 50693: the buggy version returns -1, which is wrong for any
    nonzero x.
    """
    if not (isinstance(inst, BinaryOperator) and inst.opcode == "lshr"):
        return None
    inner = inst.lhs
    if not (isinstance(inner, BinaryOperator) and inner.opcode == "shl"
            and isinstance(inner.lhs, ConstantInt)
            and inner.lhs.is_all_ones()
            and inner.rhs is inst.rhs):
        return None
    if combine.ctx.bug_enabled("50693"):
        combine.ctx.note_bug_trigger("50693")
        return ConstantInt(inst.type, inst.type.mask)
    builder = combine.builder_before(inst)
    return builder.lshr(ConstantInt(inst.type, inst.type.mask), inst.rhs)


def rule_ashr_of_nonnegative_to_lshr(inst, combine) -> Optional[Value]:
    """ashr (zext x), C  ->  lshr (zext x), C — the sign bit is zero."""
    if not (isinstance(inst, BinaryOperator) and inst.opcode == "ashr"):
        return None
    lhs = inst.lhs
    if not (isinstance(lhs, CastInst) and lhs.opcode == "zext"
            and lhs.src_type.width < inst.type.width):
        return None
    builder = combine.builder_before(inst)
    return builder.lshr(lhs, inst.rhs, exact=inst.exact)


RULES = [
    rule("shl-shl", rule_shl_shl_combine, "shl"),
    rule("lshr-lshr", rule_lshr_lshr_combine, "lshr"),
    rule("shl-lshr-to-and", rule_shl_then_lshr_to_and, "lshr"),
    rule("opposite-shifts-allones", rule_opposite_shifts_of_allones, "lshr"),
    rule("ashr-nonneg-to-lshr", rule_ashr_of_nonnegative_to_lshr, "ashr"),
]
