"""InstCombine: the peephole-rewrite workhorse.

Like LLVM's InstCombine, this pass runs a worklist to fixpoint, applying
constant folding, InstSimplify, and a library of pattern-based rewrite
rules.  InstCombine was the single buggiest LLVM component found both by
Csmith (2011) and by alive-mutate (Table I), and the seeded versions of
those bugs live in these rule modules.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ....ir.builder import IRBuilder
from ....ir.function import Function
from ....ir.instructions import Instruction
from ....ir.module import Module
from ....ir.values import Value
from ...context import OptContext
from ...pass_manager import FunctionPass, register_pass, replace_and_erase
from ..instsimplify import simplify_instruction

# A rule inspects one instruction and either returns a replacement Value,
# or performs an in-place change and returns the instruction itself, or
# returns None when it does not apply.
Rule = Callable[[Instruction, "CombineContext"], Optional[Value]]


class CombineContext:
    """What a rule gets to work with."""

    def __init__(self, function: Function, ctx: OptContext) -> None:
        self.function = function
        self.ctx = ctx

    def builder_before(self, inst: Instruction) -> IRBuilder:
        builder = IRBuilder()
        builder.set_insert_before(inst)
        return builder

    @property
    def module(self) -> Optional[Module]:
        return self.function.parent


def _load_rules() -> List[Tuple[str, Rule]]:
    from . import (rules_addsub, rules_bitwise, rules_casts, rules_icmp,
                   rules_intrinsics, rules_logic_icmp, rules_muldiv,
                   rules_select, rules_select_binop, rules_shifts)

    rules: List[Tuple[str, Rule]] = []
    for module in (rules_addsub, rules_muldiv, rules_shifts, rules_bitwise,
                   rules_icmp, rules_logic_icmp, rules_select,
                   rules_select_binop, rules_casts, rules_intrinsics):
        rules.extend(module.RULES)
    return rules


_RULES: Optional[List[Tuple[str, Rule]]] = None


def all_rules() -> List[Tuple[str, Rule]]:
    global _RULES
    if _RULES is None:
        _RULES = _load_rules()
    return _RULES


MAX_ITERATIONS = 8


@register_pass("instcombine")
class InstCombine(FunctionPass):
    def run_on_function(self, function: Function, ctx: OptContext) -> bool:
        combine = CombineContext(function, ctx)
        rules = all_rules()
        any_change = False
        for _ in range(MAX_ITERATIONS):
            changed = False
            for block in function.blocks:
                for inst in list(block.instructions):
                    if inst.parent is None:
                        continue
                    if inst.is_terminator():
                        continue
                    simplified = None
                    if not inst.type.is_void():
                        simplified = simplify_instruction(inst, ctx)
                    if simplified is not None and simplified is not inst:
                        replace_and_erase(inst, simplified)
                        ctx.count("instcombine.simplified")
                        changed = True
                        continue
                    for rule_name, rule in rules:
                        result = rule(inst, combine)
                        if result is None:
                            continue
                        ctx.count(f"instcombine.rule.{rule_name}")
                        changed = True
                        if result is not inst:
                            replace_and_erase(inst, result)
                        break
            if changed:
                # Like LLVM's InstCombine, retire instructions its rewrites
                # have made dead before the next sweep.
                self._erase_trivially_dead(function, ctx)
            any_change = any_change or changed
            if not changed:
                break
        return any_change

    @staticmethod
    def _erase_trivially_dead(function: Function, ctx: OptContext) -> None:
        from ..dce import is_trivially_dead

        worklist = list(function.instructions())
        while worklist:
            inst = worklist.pop()
            if inst.parent is None or not is_trivially_dead(inst):
                continue
            operands = [op for op in inst.operands
                        if isinstance(op, Instruction)]
            inst.erase_from_parent()
            ctx.count("instcombine.dead")
            worklist.extend(operands)
