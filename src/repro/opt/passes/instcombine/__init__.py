"""InstCombine: the peephole-rewrite workhorse.

Like LLVM's InstCombine, this pass runs a worklist to fixpoint, applying
constant folding, InstSimplify, and a library of pattern-based rewrite
rules.  InstCombine was the single buggiest LLVM component found both by
Csmith (2011) and by alive-mutate (Table I), and the seeded versions of
those bugs live in these rule modules.

Rules are registered with their root opcodes (see ``repro.opt.rewrite``),
so each visited instruction only tries the rules whose pattern is
anchored at its opcode instead of the whole library.  Within a bucket
the registration order is preserved, and every rule's first test is its
root-opcode guard, so the indexed sweep fires exactly the rewrites the
linear scan would — in the same order.
"""

from __future__ import annotations

from typing import List, Optional

from ....ir.builder import IRBuilder
from ....ir.function import Function
from ....ir.instructions import Instruction
from ....ir.module import Module
from ....ir.values import Value
from ...context import OptContext
from ...incremental import SweepState
from ...pass_manager import FunctionPass, register_pass, replace_and_erase
from ...rewrite import RewriteRule, RuleIndex
from ..instsimplify import simplify_instruction


class CombineContext:
    """What a rule gets to work with."""

    def __init__(self, function: Function, ctx: OptContext) -> None:
        self.function = function
        self.ctx = ctx

    def builder_before(self, inst: Instruction) -> IRBuilder:
        builder = IRBuilder()
        builder.set_insert_before(inst)
        return builder

    @property
    def module(self) -> Optional[Module]:
        return self.function.parent


def _load_rules() -> List[RewriteRule]:
    from . import (rules_addsub, rules_bitwise, rules_casts, rules_icmp,
                   rules_intrinsics, rules_logic_icmp, rules_muldiv,
                   rules_select, rules_select_binop, rules_shifts)

    rules: List[RewriteRule] = []
    for module in (rules_addsub, rules_muldiv, rules_shifts, rules_bitwise,
                   rules_icmp, rules_logic_icmp, rules_select,
                   rules_select_binop, rules_casts, rules_intrinsics):
        rules.extend(module.RULES)
    return rules


_INDEX: Optional[RuleIndex] = None


def rule_index() -> RuleIndex:
    global _INDEX
    if _INDEX is None:
        _INDEX = RuleIndex(_load_rules())
    return _INDEX


def all_rules() -> List[RewriteRule]:
    return list(rule_index().rules)


MAX_ITERATIONS = 8


@register_pass("instcombine")
class InstCombine(FunctionPass):
    supports_worklist = True

    def run_on_function(self, function: Function, ctx: OptContext) -> bool:
        return self._run(function, ctx, None)

    def run_on_worklist(self, function: Function, ctx: OptContext,
                        dirty) -> bool:
        return self._run(function, ctx, SweepState(dirty))

    def _run(self, function: Function, ctx: OptContext,
             sweep: Optional[SweepState]) -> bool:
        combine = CombineContext(function, ctx)
        index = rule_index()
        any_change = False
        for _ in range(MAX_ITERATIONS):
            changed = False
            for block in function.blocks:
                if sweep is not None and not sweep.block_active(block):
                    continue
                for inst in list(block.instructions):
                    if inst.parent is None:
                        continue
                    if sweep is not None and not sweep.should_visit(inst):
                        continue
                    if inst.is_terminator():
                        continue
                    simplified = None
                    if not inst.type.is_void():
                        simplified = simplify_instruction(inst, ctx)
                    if simplified is not None and simplified is not inst:
                        if sweep is not None:
                            sweep.note_rewrite(inst)
                        replace_and_erase(inst, simplified)
                        ctx.count("instcombine.simplified")
                        changed = True
                        continue
                    for entry in index.rules_for(inst.opcode):
                        if sweep is not None:
                            # Rules build replacement chains right before
                            # the anchor; snapshot its position so the
                            # fresh instructions can be found afterwards.
                            pos_before = block.index_of(inst)
                        result = entry.fn(inst, combine)
                        if result is None:
                            continue
                        ctx.count(f"instcombine.rule.{entry.name}")
                        changed = True
                        if sweep is not None:
                            new_insts = block.instructions[
                                pos_before:block.index_of(inst)]
                            sweep.note_rewrite(inst, new_insts)
                        if result is not inst:
                            replace_and_erase(inst, result)
                        break
            if changed:
                # Like LLVM's InstCombine, retire instructions its rewrites
                # have made dead before the next sweep.
                self._erase_trivially_dead(function, ctx, sweep)
            any_change = any_change or changed
            if not changed:
                break
            if sweep is not None:
                sweep.finish_sweep()
        return any_change

    @staticmethod
    def _erase_trivially_dead(function: Function, ctx: OptContext,
                              sweep: Optional[SweepState] = None) -> None:
        from ..dce import is_trivially_dead

        worklist = list(function.instructions())
        while worklist:
            inst = worklist.pop()
            if inst.parent is None or not is_trivially_dead(inst):
                continue
            operands = [op for op in inst.operands
                        if isinstance(op, Instruction)]
            inst.erase_from_parent()
            ctx.count("instcombine.dead")
            worklist.extend(operands)
            if sweep is not None:
                # Each operand just lost a use; one-use rules at its
                # remaining users may now fire.
                sweep.note_affected(operands)
