"""InstCombine rules for integer comparisons."""

from __future__ import annotations

from typing import Optional

from ....ir.instructions import BinaryOperator, CastInst, ICmpInst
from ....ir.types import IntType
from ....ir.values import ConstantInt, Value
from ...matchers import is_one_use
from ...rewrite import rule

_NONSTRICT_TO_STRICT = {
    # pred -> (strict pred, constant delta, boundary constant to skip)
    "uge": ("ugt", -1, 0),
    "ule": ("ult", +1, None),   # boundary: all-ones
    "sge": ("sgt", -1, None),   # boundary: signed min
    "sle": ("slt", +1, None),   # boundary: signed max
}


def rule_canonicalize_strict(inst, combine) -> Optional[Value]:
    """icmp uge x, C  ->  icmp ugt x, C-1 (and the other non-strict
    predicates), keeping compares in strict canonical form."""
    if not isinstance(inst, ICmpInst):
        return None
    mapping = _NONSTRICT_TO_STRICT.get(inst.predicate)
    if mapping is None or not isinstance(inst.rhs, ConstantInt):
        return None
    if not isinstance(inst.lhs.type, IntType):
        return None
    strict, delta, _ = mapping
    width = inst.lhs.type.width
    value = inst.rhs.value
    # Skip boundary constants where the shifted compare would wrap.
    if inst.predicate == "uge" and value == 0:
        return None
    if inst.predicate == "ule" and value == inst.rhs.type.mask:
        return None
    if inst.predicate == "sge" and value == 1 << (width - 1):
        return None
    if inst.predicate == "sle" and value == (1 << (width - 1)) - 1:
        return None
    builder = combine.builder_before(inst)
    return builder.icmp(strict, inst.lhs,
                        ConstantInt(inst.rhs.type, value + delta))


def rule_icmp_eq_add_const(inst, combine) -> Optional[Value]:
    """icmp eq/ne (add x, C1), C2  ->  icmp eq/ne x, C2-C1.

    Sound for plain and flagged adds: if the add was poison the original
    compare was poison, which any result refines.
    """
    if not (isinstance(inst, ICmpInst) and inst.is_equality()):
        return None
    add = inst.lhs
    if not (isinstance(add, BinaryOperator) and add.opcode == "add"
            and is_one_use(add)
            and isinstance(add.rhs, ConstantInt)
            and isinstance(inst.rhs, ConstantInt)):
        return None
    builder = combine.builder_before(inst)
    adjusted = (inst.rhs.value - add.rhs.value) & add.type.mask
    return builder.icmp(inst.predicate, add.lhs,
                        ConstantInt(add.type, adjusted))


def rule_icmp_ult_add_nuw(inst, combine) -> Optional[Value]:
    """icmp ult (add nuw x, C1), C2  ->  icmp ult x, C2-C1 (when C2 >= C1).

    With nuw the addition cannot wrap, so the range check shifts directly.
    When C2 < C1 the compare is always false.
    """
    if not (isinstance(inst, ICmpInst) and inst.predicate == "ult"):
        return None
    add = inst.lhs
    if not (isinstance(add, BinaryOperator) and add.opcode == "add"
            and add.nuw and is_one_use(add)
            and isinstance(add.rhs, ConstantInt)
            and isinstance(inst.rhs, ConstantInt)):
        return None
    c1, c2 = add.rhs.value, inst.rhs.value
    if c2 < c1:
        return ConstantInt(IntType(1), 0)
    builder = combine.builder_before(inst)
    return builder.icmp("ult", add.lhs, ConstantInt(add.type, c2 - c1))


def rule_icmp_of_zext(inst, combine) -> Optional[Value]:
    """Compares of zext fold into the narrow domain."""
    if not isinstance(inst, ICmpInst):
        return None
    zext = inst.lhs
    if not (isinstance(zext, CastInst) and zext.opcode == "zext"
            and isinstance(inst.rhs, ConstantInt)):
        return None
    src_width = zext.src_type.width
    value = inst.rhs.value
    narrow_max = (1 << src_width) - 1
    builder = combine.builder_before(inst)
    if inst.is_equality():
        if value > narrow_max:
            return ConstantInt(IntType(1), int(inst.predicate == "ne"))
        return builder.icmp(inst.predicate, zext.value,
                            ConstantInt(zext.src_type, value))
    if inst.predicate == "ult":
        if value > narrow_max:
            return ConstantInt(IntType(1), 1)
        return builder.icmp("ult", zext.value,
                            ConstantInt(zext.src_type, value))
    if inst.predicate == "ugt":
        if value >= narrow_max:
            return ConstantInt(IntType(1), 0)
        return builder.icmp("ugt", zext.value,
                            ConstantInt(zext.src_type, value))
    return None


def rule_icmp_signed_of_zext(inst, combine) -> Optional[Value]:
    """Signed compares of zext values are unsigned compares (zext output
    is always non-negative when the source is narrower)."""
    if not isinstance(inst, ICmpInst) or not inst.is_signed():
        return None
    zext = inst.lhs
    if not (isinstance(zext, CastInst) and zext.opcode == "zext"
            and isinstance(inst.rhs, ConstantInt)):
        return None
    rhs_signed = inst.rhs.signed_value()
    builder = combine.builder_before(inst)
    if rhs_signed < 0:
        # zext value is >= 0 > rhs.
        result = inst.predicate in ("sgt", "sge")
        return ConstantInt(IntType(1), int(result))
    unsigned = {"sgt": "ugt", "sge": "uge", "slt": "ult", "sle": "ule"}
    return builder.icmp(unsigned[inst.predicate], zext, inst.rhs)


RULES = [
    rule("icmp-strict-canonical", rule_canonicalize_strict, "icmp"),
    rule("icmp-eq-add-const", rule_icmp_eq_add_const, "icmp"),
    rule("icmp-ult-add-nuw", rule_icmp_ult_add_nuw, "icmp"),
    rule("icmp-of-zext", rule_icmp_of_zext, "icmp"),
    rule("icmp-signed-of-zext", rule_icmp_signed_of_zext, "icmp"),
]
