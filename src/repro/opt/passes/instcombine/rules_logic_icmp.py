"""InstCombine rules combining boolean logic over comparisons.

The and/or-of-icmp family: range intersection/union over a shared
operand, plus the classic power-of-two bit tests.
"""

from __future__ import annotations

from typing import Optional

from ....ir.instructions import BinaryOperator, ICmpInst
from ....ir.types import IntType
from ....ir.values import ConstantInt, Value
from ...matchers import is_one_use
from ...rewrite import rule


def _unsigned_range_pair(inst) -> Optional[tuple]:
    """Match and/or of two one-use unsigned compares of the same value
    against constants; returns (op, x, pred1, c1, pred2, c2)."""
    if not (isinstance(inst, BinaryOperator)
            and inst.opcode in ("and", "or")):
        return None
    lhs, rhs = inst.lhs, inst.rhs
    if not (isinstance(lhs, ICmpInst) and isinstance(rhs, ICmpInst)
            and is_one_use(lhs) and is_one_use(rhs)):
        return None
    if lhs.lhs is not rhs.lhs:
        return None
    if not (isinstance(lhs.rhs, ConstantInt)
            and isinstance(rhs.rhs, ConstantInt)):
        return None
    if lhs.predicate not in ("ult", "ugt") \
            or rhs.predicate not in ("ult", "ugt"):
        return None
    return (inst.opcode, lhs.lhs, lhs.predicate, lhs.rhs.value,
            rhs.predicate, rhs.rhs.value)


def rule_and_or_of_unsigned_range(inst, combine) -> Optional[Value]:
    """Same-direction unsigned compares of one value fold:

        and (icmp ult x, C1), (icmp ult x, C2)  ->  icmp ult x, min
        or  (icmp ult x, C1), (icmp ult x, C2)  ->  icmp ult x, max

    (and the dual for ugt with max/min swapped).
    """
    matched = _unsigned_range_pair(inst)
    if matched is None:
        return None
    opcode, x, pred1, c1, pred2, c2 = matched
    if pred1 != pred2:
        return None
    if pred1 == "ult":
        chosen = min(c1, c2) if opcode == "and" else max(c1, c2)
    else:  # ugt
        chosen = max(c1, c2) if opcode == "and" else min(c1, c2)
    builder = combine.builder_before(inst)
    return builder.icmp(pred1, x, ConstantInt(x.type, chosen))


def rule_and_of_empty_range(inst, combine) -> Optional[Value]:
    """and (icmp ult x, C1), (icmp ugt x, C2) -> false when C2 >= C1 - 1
    (the interval (C2, C1) is empty)."""
    matched = _unsigned_range_pair(inst)
    if matched is None:
        return None
    opcode, x, pred1, c1, pred2, c2 = matched
    if opcode != "and" or pred1 == pred2:
        return None
    if pred1 == "ugt":
        pred1, c1, pred2, c2 = pred2, c2, pred1, c1
    # Now pred1 == ult (x < c1) and pred2 == ugt (x > c2).
    if c2 >= c1 - 1:
        return ConstantInt(IntType(1), 0)
    return None


def rule_or_of_full_range(inst, combine) -> Optional[Value]:
    """or (icmp ult x, C1), (icmp ugt x, C2) -> true when C2 < C1
    (every value is below C1 or above C2)."""
    matched = _unsigned_range_pair(inst)
    if matched is None:
        return None
    opcode, x, pred1, c1, pred2, c2 = matched
    if opcode != "or" or pred1 == pred2:
        return None
    if pred1 == "ugt":
        pred1, c1, pred2, c2 = pred2, c2, pred1, c1
    if c2 < c1:
        return ConstantInt(IntType(1), 1)
    return None


def rule_power_of_two_bit_test(inst, combine) -> Optional[Value]:
    """icmp eq (and x, Pow2), 0  ->  stays canonical, but the inverted
    form icmp ne (and x, Pow2), Pow2 folds to the eq-0 test."""
    if not (isinstance(inst, ICmpInst) and inst.predicate == "ne"):
        return None
    mask_inst = inst.lhs
    if not (isinstance(mask_inst, BinaryOperator)
            and mask_inst.opcode == "and"
            and isinstance(mask_inst.rhs, ConstantInt)):
        return None
    mask = mask_inst.rhs.value
    if mask == 0 or mask & (mask - 1):
        return None  # not a single bit
    if not (isinstance(inst.rhs, ConstantInt)
            and inst.rhs.value == mask):
        return None
    # (x & bit) != bit  <=>  (x & bit) == 0
    builder = combine.builder_before(inst)
    return builder.icmp("eq", mask_inst, ConstantInt(mask_inst.type, 0))


def rule_and_icmp_eq_zero_pair(inst, combine) -> Optional[Value]:
    """and (icmp eq (and x, M1), 0), (icmp eq (and x, M2), 0)
       -> icmp eq (and x, M1|M2), 0  (both bit groups clear)."""
    if not (isinstance(inst, BinaryOperator) and inst.opcode == "and"):
        return None
    parts = []
    for side in (inst.lhs, inst.rhs):
        if not (isinstance(side, ICmpInst) and side.predicate == "eq"
                and is_one_use(side)
                and isinstance(side.rhs, ConstantInt)
                and side.rhs.is_zero()):
            return None
        masked = side.lhs
        if not (isinstance(masked, BinaryOperator)
                and masked.opcode == "and" and is_one_use(masked)
                and isinstance(masked.rhs, ConstantInt)):
            return None
        parts.append((masked.lhs, masked.rhs.value))
    (x1, m1), (x2, m2) = parts
    if x1 is not x2:
        return None
    builder = combine.builder_before(inst)
    combined = builder.and_(x1, ConstantInt(x1.type, m1 | m2))
    return builder.icmp("eq", combined, ConstantInt(x1.type, 0))


RULES = [
    rule("andor-unsigned-range", rule_and_or_of_unsigned_range, "and", "or"),
    rule("and-empty-range", rule_and_of_empty_range, "and"),
    rule("or-full-range", rule_or_of_full_range, "or"),
    # Matches an icmp-ne whose operand chain is the bit test.
    rule("pow2-bit-test", rule_power_of_two_bit_test, "icmp"),
    rule("and-eqzero-pair", rule_and_icmp_eq_zero_pair, "and"),
]
