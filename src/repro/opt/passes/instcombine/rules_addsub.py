"""InstCombine rules for add/sub."""

from __future__ import annotations

from typing import Optional

from ....ir.instructions import BinaryOperator
from ....ir.values import ConstantInt, Value
from ...matchers import Capture, is_one_use, m_any, m_neg, m_not
from ...rewrite import rule


def rule_add_self_to_shl(inst, combine) -> Optional[Value]:
    """add x, x  ->  shl x, 1 (flags carry over: both compute 2*x)."""
    if not (isinstance(inst, BinaryOperator) and inst.opcode == "add"):
        return None
    if inst.lhs is not inst.rhs:
        return None
    if inst.type.width == 1:
        return None  # shl i1 x, 1 would be poison
    builder = combine.builder_before(inst)
    return builder.shl(inst.lhs, ConstantInt(inst.type, 1),
                       nuw=inst.nuw, nsw=inst.nsw)


def rule_add_of_not_is_neg_like(inst, combine) -> Optional[Value]:
    """add (xor x, -1), 1  ->  sub 0, x  (i.e. ~x + 1 == -x)."""
    if not (isinstance(inst, BinaryOperator) and inst.opcode == "add"):
        return None
    inner = Capture()
    matched = None
    if m_not(m_any(inner))(inst.lhs) and isinstance(inst.rhs, ConstantInt) \
            and inst.rhs.is_one():
        matched = inner.value
    elif m_not(m_any(inner))(inst.rhs) and isinstance(inst.lhs, ConstantInt) \
            and inst.lhs.is_one():
        matched = inner.value
    if matched is None:
        return None
    builder = combine.builder_before(inst)
    return builder.sub(ConstantInt(inst.type, 0), matched)


def rule_sub_of_sub_constant(inst, combine) -> Optional[Value]:
    """sub C1, (sub C2, x)  ->  add x, (C1 - C2); flags dropped."""
    if not (isinstance(inst, BinaryOperator) and inst.opcode == "sub"):
        return None
    if not isinstance(inst.lhs, ConstantInt):
        return None
    inner = inst.rhs
    if not (isinstance(inner, BinaryOperator) and inner.opcode == "sub"
            and is_one_use(inner) and isinstance(inner.lhs, ConstantInt)):
        return None
    difference = (inst.lhs.value - inner.lhs.value) & inst.type.mask
    builder = combine.builder_before(inst)
    return builder.add(inner.rhs, ConstantInt(inst.type, difference))


def rule_sub_neg_to_add(inst, combine) -> Optional[Value]:
    """sub a, (sub 0, b)  ->  add a, b (flags dropped: -b may be poisoned
    differently)."""
    if not (isinstance(inst, BinaryOperator) and inst.opcode == "sub"):
        return None
    negated = Capture()
    if not m_neg(m_any(negated))(inst.rhs):
        return None
    if not (isinstance(inst.rhs, BinaryOperator) and is_one_use(inst.rhs)):
        return None
    builder = combine.builder_before(inst)
    return builder.add(inst.lhs, negated.value)


def rule_add_sub_cancel(inst, combine) -> Optional[Value]:
    """add (sub a, b), b  ->  a   (also the commuted form).

    Flags on the sub do not matter: when the sub does not overflow both
    sides equal a; when it does, the sub was poison and a refines poison.
    """
    if not (isinstance(inst, BinaryOperator) and inst.opcode == "add"):
        return None
    for first, second in ((inst.lhs, inst.rhs), (inst.rhs, inst.lhs)):
        if isinstance(first, BinaryOperator) and first.opcode == "sub" \
                and first.rhs is second:
            return first.lhs
    return None


def rule_sub_add_cancel(inst, combine) -> Optional[Value]:
    """sub (add a, b), a  ->  b (either position of a)."""
    if not (isinstance(inst, BinaryOperator) and inst.opcode == "sub"):
        return None
    inner = inst.lhs
    if isinstance(inner, BinaryOperator) and inner.opcode == "add":
        if inner.lhs is inst.rhs:
            return inner.rhs
        if inner.rhs is inst.rhs:
            return inner.lhs
    return None


def rule_sub_constant_to_add(inst, combine) -> Optional[Value]:
    """sub x, C  ->  add x, -C (canonicalization; nsw is dropped because
    negating C can overflow at the type's minimum)."""
    if not (isinstance(inst, BinaryOperator) and inst.opcode == "sub"):
        return None
    if not isinstance(inst.rhs, ConstantInt) or isinstance(inst.lhs, ConstantInt):
        return None
    if inst.rhs.is_zero():
        return None
    builder = combine.builder_before(inst)
    negated = (-inst.rhs.value) & inst.type.mask
    return builder.add(inst.lhs, ConstantInt(inst.type, negated))


RULES = [
    rule("add-self-to-shl", rule_add_self_to_shl, "add"),
    rule("add-not-one-to-neg", rule_add_of_not_is_neg_like, "add"),
    rule("sub-of-sub-const", rule_sub_of_sub_constant, "sub"),
    rule("sub-neg-to-add", rule_sub_neg_to_add, "sub"),
    rule("add-sub-cancel", rule_add_sub_cancel, "add"),
    rule("sub-add-cancel", rule_sub_add_cancel, "sub"),
    rule("sub-const-to-add", rule_sub_constant_to_add, "sub"),
]
