"""InstCombine rules for integer casts."""

from __future__ import annotations

from typing import Optional

from ....analysis.knownbits import is_known_non_negative
from ....ir.instructions import CastInst
from ....ir.values import ConstantInt, Value
from ...matchers import is_one_use
from ...rewrite import rule


def rule_trunc_of_ext(inst, combine) -> Optional[Value]:
    """trunc (zext/sext x to M) to N folds by comparing N to x's width."""
    if not (isinstance(inst, CastInst) and inst.opcode == "trunc"):
        return None
    inner = inst.value
    if not (isinstance(inner, CastInst) and inner.opcode in ("zext", "sext")):
        return None
    src_width = inner.src_type.width
    dst_width = inst.type.width
    if dst_width == src_width:
        return inner.value
    builder = combine.builder_before(inst)
    if dst_width < src_width:
        return builder.trunc(inner.value, inst.type)
    return builder.cast(inner.opcode, inner.value, inst.type)


def rule_ext_of_ext(inst, combine) -> Optional[Value]:
    """zext(zext x) -> zext x; sext(sext x) -> sext x; sext(zext x) -> zext."""
    if not (isinstance(inst, CastInst) and inst.opcode in ("zext", "sext")):
        return None
    inner = inst.value
    if not (isinstance(inner, CastInst) and inner.opcode in ("zext", "sext")):
        return None
    builder = combine.builder_before(inst)
    if inner.opcode == "zext":
        # The middle value is non-negative, so the outer extension kind
        # does not matter: extend zero-style from the original source.
        return builder.zext(inner.value, inst.type)
    if inst.opcode == "sext":
        return builder.sext(inner.value, inst.type)
    return None


def rule_zext_of_trunc_same_width(inst, combine) -> Optional[Value]:
    """zext (trunc x to M) to N where N == width(x)  ->  and x, (2**M - 1)."""
    if not (isinstance(inst, CastInst) and inst.opcode == "zext"):
        return None
    inner = inst.value
    if not (isinstance(inner, CastInst) and inner.opcode == "trunc"
            and is_one_use(inner)):
        return None
    if inner.src_type is not inst.type:
        return None
    mask = (1 << inner.type.width) - 1
    builder = combine.builder_before(inst)
    return builder.and_(inner.value, ConstantInt(inst.type, mask))


def rule_sext_of_nonnegative(inst, combine) -> Optional[Value]:
    """sext x  ->  zext x when the sign bit of x is known zero."""
    if not (isinstance(inst, CastInst) and inst.opcode == "sext"):
        return None
    if not is_known_non_negative(inst.value):
        return None
    builder = combine.builder_before(inst)
    return builder.zext(inst.value, inst.type)


RULES = [
    rule("trunc-of-ext", rule_trunc_of_ext, "trunc"),
    rule("ext-of-ext", rule_ext_of_ext, "zext", "sext"),
    rule("zext-trunc-to-and", rule_zext_of_trunc_same_width, "zext"),
    rule("sext-nonneg-to-zext", rule_sext_of_nonnegative, "sext"),
]
