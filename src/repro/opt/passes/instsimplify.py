"""InstSimplify: rewrite instructions to *existing* values.

Unlike InstCombine, InstSimplify never creates new instructions; every
simplification returns a value that already exists (an operand, a
constant).  It also hosts seeded bug 56968 — a crash in the poison-shift
detection path.
"""

from __future__ import annotations

from typing import Optional

from ...analysis.knownbits import compute_known_bits
from ...ir.function import Function
from ...ir.instructions import (BinaryOperator, FreezeInst, ICmpInst,
                                Instruction, SelectInst)
from ...ir.types import IntType
from ...ir.values import ConstantInt, PoisonValue, Value
from ..context import OptContext
from ..fold import fold_instruction
from ..pass_manager import FunctionPass, register_pass, replace_and_erase


def simplify_instruction(inst: Instruction,
                         ctx: Optional[OptContext] = None) -> Optional[Value]:
    """An existing value equivalent to ``inst``, or None."""
    folded = fold_instruction(inst)
    if folded is not None:
        return folded
    if isinstance(inst, BinaryOperator):
        return _simplify_binary(inst, ctx)
    if isinstance(inst, ICmpInst):
        return _simplify_icmp(inst)
    if isinstance(inst, SelectInst):
        return _simplify_select(inst)
    if isinstance(inst, FreezeInst):
        return _simplify_freeze(inst)
    return None


def _simplify_binary(inst: BinaryOperator,
                     ctx: Optional[OptContext]) -> Optional[Value]:
    opcode = inst.opcode
    lhs, rhs = inst.lhs, inst.rhs
    width = inst.type.width
    rhs_const = rhs if isinstance(rhs, ConstantInt) else None
    lhs_const = lhs if isinstance(lhs, ConstantInt) else None

    if opcode == "add":
        if rhs_const is not None and rhs_const.is_zero():
            return lhs
        if lhs_const is not None and lhs_const.is_zero():
            return rhs
    elif opcode == "sub":
        if rhs_const is not None and rhs_const.is_zero():
            return lhs
        if lhs is rhs:
            # x - x == 0 even with flags (0 never wraps).
            return ConstantInt(inst.type, 0)
    elif opcode == "mul":
        if rhs_const is not None:
            if rhs_const.is_one():
                return lhs
            if rhs_const.is_zero() and not (inst.nuw or inst.nsw):
                return ConstantInt(inst.type, 0)
        if lhs_const is not None:
            if lhs_const.is_one():
                return rhs
            if lhs_const.is_zero() and not (inst.nuw or inst.nsw):
                return ConstantInt(inst.type, 0)
    elif opcode == "and":
        if lhs is rhs:
            return lhs
        if rhs_const is not None:
            if rhs_const.is_zero():
                return ConstantInt(inst.type, 0)
            if rhs_const.is_all_ones():
                return lhs
        if lhs_const is not None:
            if lhs_const.is_zero():
                return ConstantInt(inst.type, 0)
            if lhs_const.is_all_ones():
                return rhs
    elif opcode == "or":
        if lhs is rhs:
            return lhs
        if rhs_const is not None:
            if rhs_const.is_zero():
                return lhs
            if rhs_const.is_all_ones():
                return ConstantInt(inst.type, inst.type.mask)
        if lhs_const is not None:
            if lhs_const.is_zero():
                return rhs
            if lhs_const.is_all_ones():
                return ConstantInt(inst.type, inst.type.mask)
    elif opcode == "xor":
        if lhs is rhs:
            return ConstantInt(inst.type, 0)
        if rhs_const is not None and rhs_const.is_zero():
            return lhs
        if lhs_const is not None and lhs_const.is_zero():
            return rhs
    elif opcode in ("udiv", "sdiv"):
        if rhs_const is not None and rhs_const.is_one():
            return lhs
    elif opcode in ("urem", "srem"):
        if rhs_const is not None and rhs_const.is_one():
            return ConstantInt(inst.type, 0)
    elif opcode in ("shl", "lshr", "ashr"):
        if ctx is not None and ctx.bug_enabled("56968") \
                and rhs_const is not None and rhs_const.value >= width:
            # Bug 56968: the poison-shift detection asserts the shift
            # amount is in range before checking it.
            ctx.crash("56968", "uncovered condition in detecting a poison shift")
        if rhs_const is not None and rhs_const.value >= width:
            return PoisonValue(inst.type)
        if rhs_const is not None and rhs_const.is_zero():
            return lhs
        if lhs_const is not None and lhs_const.is_zero():
            # 0 shifted by an in-range amount is 0; an out-of-range amount
            # gives poison, which 0 refines.
            return ConstantInt(inst.type, 0)
        if opcode == "lshr" and lhs is not rhs:
            known = compute_known_bits(lhs)
            if isinstance(rhs, ConstantInt) and \
                    known.count_leading_known_zeros() >= width - rhs.value:
                return ConstantInt(inst.type, 0)
    return None


def _simplify_icmp(inst: ICmpInst) -> Optional[Value]:
    if inst.lhs is inst.rhs:
        # Same-operand compares fold even for poison (poison refines both).
        result = inst.predicate in ("eq", "uge", "ule", "sge", "sle")
        return ConstantInt(IntType(1), int(result))
    if not isinstance(inst.lhs.type, IntType):
        return None
    width = inst.lhs.type.width
    if isinstance(inst.rhs, ConstantInt):
        known = compute_known_bits(inst.lhs)
        rhs_value = inst.rhs.value
        if inst.predicate == "ult" and known.max_unsigned() < rhs_value:
            return ConstantInt(IntType(1), 1)
        if inst.predicate == "ult" and known.min_unsigned() >= rhs_value:
            return ConstantInt(IntType(1), 0)
        if inst.predicate == "ugt" and known.min_unsigned() > rhs_value:
            return ConstantInt(IntType(1), 1)
        if inst.predicate == "ugt" and known.max_unsigned() <= rhs_value:
            return ConstantInt(IntType(1), 0)
        if inst.predicate in ("eq", "ne") and not known.admits(rhs_value):
            return ConstantInt(IntType(1), int(inst.predicate == "ne"))
    return None


def _simplify_select(inst: SelectInst) -> Optional[Value]:
    if inst.true_value is inst.false_value:
        return inst.true_value
    if isinstance(inst.condition, ConstantInt):
        return inst.true_value if inst.condition.value else inst.false_value
    if isinstance(inst.condition, PoisonValue):
        return PoisonValue(inst.type)
    return None


def _simplify_freeze(inst: FreezeInst) -> Optional[Value]:
    # freeze of a fully-defined value is that value.
    value = inst.value
    if isinstance(value, ConstantInt):
        return value
    if isinstance(value, FreezeInst):
        return value
    return None


@register_pass("instsimplify")
class InstSimplify(FunctionPass):
    supports_worklist = True

    def run_on_function(self, function: Function, ctx: OptContext) -> bool:
        return self._run(function, ctx, None)

    def run_on_worklist(self, function: Function, ctx: OptContext,
                        dirty) -> bool:
        from ..incremental import SweepState

        return self._run(function, ctx, SweepState(dirty))

    def _run(self, function: Function, ctx: OptContext, sweep) -> bool:
        changed = True
        any_change = False
        while changed:
            changed = False
            for block in function.blocks:
                if sweep is not None and not sweep.block_active(block):
                    continue
                for inst in list(block.instructions):
                    if inst.parent is None or inst.type.is_void() \
                            or inst.is_terminator():
                        continue
                    if sweep is not None and not sweep.should_visit(inst):
                        continue
                    simplified = simplify_instruction(inst, ctx)
                    if simplified is not None and simplified is not inst:
                        if sweep is not None:
                            sweep.note_rewrite(inst)
                        replace_and_erase(inst, simplified)
                        ctx.count("instsimplify.simplified")
                        changed = True
                        any_change = True
            if sweep is not None and changed:
                sweep.finish_sweep()
        return any_change
