"""GVN: value numbering over the dominator tree.

A simplified NewGVN analog: expressions get value numbers; an instruction
whose expression already has a *dominating* leader is replaced by it.
Hosts two seeded Table-I bugs:

* 53218 (miscompilation) — "need to merge IR flags of the removed
  instruction into the leader": with the bug enabled the leader keeps its
  own (possibly stronger) poison flags instead of intersecting.
* 51618 (crash) — "PHI nodes with undef input": with the bug enabled,
  value-numbering a phi that has an undef incoming value trips an
  assertion, as NewGVN did.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...analysis.domtree import DominatorTree
from ...ir.function import Function
from ...ir.instructions import Instruction, PhiNode
from ...ir.values import UndefValue
from ..context import OptContext
from ..pass_manager import FunctionPass, register_pass, replace_and_erase
from .early_cse import expression_key, intersect_flags, _operand_key


@register_pass("gvn")
class GlobalValueNumbering(FunctionPass):
    def run_on_function(self, function: Function, ctx: OptContext) -> bool:
        domtree = DominatorTree(function)
        leaders: Dict[Tuple, Instruction] = {}
        changed = False
        for block in domtree.blocks_in_rpo():
            for inst in list(block.instructions):
                if inst.parent is None:
                    continue
                if isinstance(inst, PhiNode):
                    if ctx.bug_enabled("51618") and any(
                            isinstance(value, UndefValue)
                            for value, _ in inst.incoming()):
                        ctx.crash("51618", "NewGVN: phi with undef input "
                                           "hits wrong congruence assert")
                    phi_key = self._phi_key(inst)
                    if phi_key is not None:
                        leader = leaders.get(phi_key)
                        if leader is not None and leader.parent is not None \
                                and leader.parent is block:
                            replace_and_erase(inst, leader)
                            ctx.count("gvn.phi")
                            changed = True
                            continue
                        leaders[phi_key] = inst
                    continue
                key = expression_key(inst)
                if key is None:
                    continue
                leader = leaders.get(key)
                if leader is not None and leader.parent is not None \
                        and self._dominates(domtree, leader, inst):
                    if ctx.bug_enabled("53218"):
                        # Bug: skip flag intersection; the surviving leader
                        # keeps nsw/nuw the duplicate never promised.
                        ctx.note_bug_trigger("53218")
                    else:
                        intersect_flags(leader, inst)
                    replace_and_erase(inst, leader)
                    ctx.count("gvn.cse")
                    changed = True
                else:
                    leaders[key] = inst
        return changed

    @staticmethod
    def _phi_key(phi: PhiNode) -> Optional[Tuple]:
        pairs = tuple(sorted(
            (_operand_key(value), id(block)) for value, block in phi.incoming()
        ))
        return ("phi", id(phi.parent), str(phi.type), pairs)

    @staticmethod
    def _dominates(domtree: DominatorTree, leader: Instruction,
                   inst: Instruction) -> bool:
        block = inst.parent
        return domtree.dominates(leader, block, block.index_of(inst))
