"""Dead code elimination passes."""

from __future__ import annotations

from typing import List, Set

from ...ir.function import Function
from ...ir.instructions import CallInst, Instruction
from ..context import OptContext
from ..pass_manager import FunctionPass, register_pass


def is_trivially_dead(inst: Instruction) -> bool:
    """Unused, side-effect-free, non-terminator instructions are dead."""
    if inst.has_uses() or inst.is_terminator():
        return False
    if isinstance(inst, CallInst):
        return inst.is_readnone() and not inst.type.is_void() \
            and inst.intrinsic_name() != "llvm.assume"
    return not inst.has_side_effects()


@register_pass("dce")
class DeadCodeElimination(FunctionPass):
    """Iteratively removes trivially-dead instructions.

    Trivial DCE is confluent — any erasure order reaches the same
    fixpoint — so the worklist mode seeds from the dirty set instead of
    the whole function and still produces identical IR and counts: an
    instruction can only *become* dead through a use-count change, and
    every use-count change is tracked into the dirty set.
    """

    supports_worklist = True

    def run_on_function(self, function: Function, ctx: OptContext) -> bool:
        return self._run(list(function.instructions()), ctx, None)

    def run_on_worklist(self, function: Function, ctx: OptContext,
                        dirty) -> bool:
        seeds = [inst for inst in dirty if inst.parent is not None]
        return self._run(seeds, ctx, dirty)

    @staticmethod
    def _run(worklist: List[Instruction], ctx: OptContext, dirty) -> bool:
        from ..incremental import expand_users

        changed = False
        while worklist:
            inst = worklist.pop()
            if inst.parent is None or not is_trivially_dead(inst):
                continue
            operands = [op for op in inst.operands
                        if isinstance(op, Instruction)]
            inst.erase_from_parent()
            ctx.count("dce.removed")
            changed = True
            worklist.extend(operands)
            if dirty is not None:
                # Each operand lost a use; later passes' one-use rules at
                # its remaining users may now fire.
                expand_users(operands, dirty)
        return changed


@register_pass("adce")
class AggressiveDeadCodeElimination(FunctionPass):
    """Marks live roots and sweeps everything unreached.

    Roots are terminators, stores, and calls that may have side effects;
    liveness propagates through operands.
    """

    def run_on_function(self, function: Function, ctx: OptContext) -> bool:
        live: Set[int] = set()
        worklist: List[Instruction] = []

        for inst in function.instructions():
            if self._is_root(inst):
                live.add(id(inst))
                worklist.append(inst)

        while worklist:
            inst = worklist.pop()
            for operand in inst.operands:
                if isinstance(operand, Instruction) and id(operand) not in live:
                    live.add(id(operand))
                    worklist.append(operand)

        changed = False
        for block in function.blocks:
            for inst in list(block.instructions):
                if id(inst) not in live:
                    inst.erase_from_parent()
                    ctx.count("adce.removed")
                    changed = True
        return changed

    @staticmethod
    def _is_root(inst: Instruction) -> bool:
        if inst.is_terminator():
            return True
        if isinstance(inst, CallInst):
            return not inst.is_readnone() or inst.type.is_void()
        return inst.has_side_effects()
