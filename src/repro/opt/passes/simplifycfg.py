"""SimplifyCFG: branch folding, block merging, unreachable-code removal."""

from __future__ import annotations


from ...analysis.cfg import reachable_blocks
from ...ir.function import Function
from ...ir.instructions import BrInst, SwitchInst
from ...ir.values import ConstantInt
from ..context import OptContext
from ..pass_manager import FunctionPass, register_pass


@register_pass("simplifycfg")
class SimplifyCFG(FunctionPass):
    def run_on_function(self, function: Function, ctx: OptContext) -> bool:
        changed = False
        progress = True
        while progress:
            progress = (self._fold_constant_branches(function, ctx)
                        or self._fold_same_target_branches(function, ctx)
                        or self._remove_unreachable(function, ctx)
                        or self._merge_straight_line(function, ctx)
                        or self._skip_empty_blocks(function, ctx)
                        or self._simplify_trivial_phis(function, ctx))
            changed = changed or progress
        return changed

    # -- thread branches through empty forwarding blocks --------------------

    def _skip_empty_blocks(self, function: Function, ctx: OptContext) -> bool:
        """pred -> empty -> succ becomes pred -> succ when `empty` holds
        nothing but an unconditional branch.

        Phi bookkeeping: succ's incoming value from `empty` is re-routed
        to come from pred.  Skipped when pred already reaches succ (the
        rewrite would create a duplicate edge with conflicting phi
        values) or when succ's incoming value is defined in `empty`
        (impossible here — the block is empty — but phis referencing the
        *block* are the constraint we rewrite).
        """
        for block in function.blocks:
            if block is function.entry_block():
                continue
            if len(block.instructions) != 1:
                continue
            terminator = block.terminator()
            if not (isinstance(terminator, BrInst)
                    and not terminator.is_conditional()):
                continue
            successor = terminator.operands[0]
            if successor is block:
                continue
            for pred in block.predecessors():
                if any(s is successor for s in pred.successors()):
                    continue  # duplicate-edge hazard
                pred_term = pred.terminator()
                if pred_term is None:
                    continue
                # Retarget every edge pred -> block to pred -> succ.
                for index, operand in enumerate(pred_term.operands):
                    if operand is block:
                        pred_term.set_operand(index, successor)
                for phi in successor.phis():
                    incoming = phi.incoming_value_for(block)
                    if incoming is not None:
                        phi.add_incoming(incoming, pred)
                # If nothing branches to the empty block anymore, its
                # edge into succ's phis goes away with the block (the
                # unreachable-removal step cleans it up).
                ctx.count("simplifycfg.skipped-empty")
                return True
        return False

    # -- br i1 true/false ---------------------------------------------------

    def _fold_constant_branches(self, function: Function,
                                ctx: OptContext) -> bool:
        changed = False
        for block in function.blocks:
            terminator = block.terminator()
            if isinstance(terminator, BrInst) and terminator.is_conditional() \
                    and isinstance(terminator.condition, ConstantInt):
                taken_index = 1 if terminator.condition.value else 2
                dead_index = 2 if terminator.condition.value else 1
                taken = terminator.operands[taken_index]
                dead = terminator.operands[dead_index]
                terminator.erase_from_parent()
                block.append(BrInst(taken))
                if dead is not taken:
                    for phi in dead.phis():
                        phi.remove_incoming(block)
                ctx.count("simplifycfg.const-br")
                changed = True
            elif isinstance(terminator, SwitchInst) \
                    and isinstance(terminator.value, ConstantInt):
                value = terminator.value.value
                taken = terminator.default
                for case_value, case_block in terminator.cases():
                    if case_value.value == value:
                        taken = case_block
                        break
                dead_targets = {id(b): b for b in terminator.successors()
                                if b is not taken}
                terminator.erase_from_parent()
                block.append(BrInst(taken))
                for dead in dead_targets.values():
                    for phi in dead.phis():
                        phi.remove_incoming(block)
                ctx.count("simplifycfg.const-switch")
                changed = True
        return changed

    # -- br i1 c, %bb, %bb ------------------------------------------------------

    def _fold_same_target_branches(self, function: Function,
                                   ctx: OptContext) -> bool:
        changed = False
        for block in function.blocks:
            terminator = block.terminator()
            if isinstance(terminator, BrInst) and terminator.is_conditional() \
                    and terminator.operands[1] is terminator.operands[2]:
                target = terminator.operands[1]
                terminator.erase_from_parent()
                block.append(BrInst(target))
                ctx.count("simplifycfg.same-target")
                changed = True
        return changed

    # -- unreachable blocks -------------------------------------------------------

    def _remove_unreachable(self, function: Function, ctx: OptContext) -> bool:
        reachable = reachable_blocks(function)
        dead = [block for block in function.blocks if id(block) not in reachable]
        if not dead:
            return False
        dead_ids = {id(block) for block in dead}
        # Phis in live blocks must drop edges from dying blocks.
        for block in function.blocks:
            if id(block) in dead_ids:
                continue
            for phi in block.phis():
                for _, incoming_block in phi.incoming():
                    if id(incoming_block) in dead_ids:
                        phi.remove_incoming(incoming_block)
        for block in dead:
            for inst in list(block.instructions):
                inst.replace_all_uses_with(_undef_like(inst))
                inst.erase_from_parent()
            function.remove_block(block)
            ctx.count("simplifycfg.unreachable")
        return True

    # -- merge straight-line blocks --------------------------------------------------

    def _merge_straight_line(self, function: Function, ctx: OptContext) -> bool:
        for block in list(function.blocks):
            terminator = block.terminator()
            if not (isinstance(terminator, BrInst)
                    and not terminator.is_conditional()):
                continue
            successor = terminator.operands[0]
            if successor is block or successor is function.entry_block():
                continue
            if len(successor.predecessors()) != 1:
                continue
            # Resolve phis (single predecessor: the incoming value).
            for phi in list(successor.phis()):
                incoming = phi.incoming_value_for(block)
                phi.replace_all_uses_with(incoming)
                phi.erase_from_parent()
            terminator.erase_from_parent()
            for inst in list(successor.instructions):
                successor.remove(inst)
                block.append(inst)
            successor.replace_all_uses_with(block)
            function.remove_block(successor)
            ctx.count("simplifycfg.merged")
            return True
        return False

    # -- single-entry phis ------------------------------------------------------------

    def _simplify_trivial_phis(self, function: Function,
                               ctx: OptContext) -> bool:
        changed = False
        for block in function.blocks:
            for phi in list(block.phis()):
                incoming = phi.incoming()
                values = {id(v) for v, _ in incoming}
                if len(values) == 1 and incoming[0][0] is not phi:
                    phi.replace_all_uses_with(incoming[0][0])
                    phi.erase_from_parent()
                    ctx.count("simplifycfg.trivial-phi")
                    changed = True
        return changed


def _undef_like(inst):
    from ...ir.values import UndefValue

    return UndefValue(inst.type)
