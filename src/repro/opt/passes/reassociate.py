"""Reassociate: canonicalize chains of commutative operations.

``(x op C1) op C2`` becomes ``x op (C1 op C2)``, and constants sink to the
right of commutative operations.  Wrapping flags must be dropped when
operations are regrouped (regrouping can change which intermediate
overflows), exactly as LLVM's Reassociate does.
"""

from __future__ import annotations

from ...ir.function import Function
from ...ir.instructions import BinaryOperator, COMMUTATIVE_OPCODES
from ...ir.values import Constant, ConstantInt
from ..context import OptContext
from ..fold import fold_binary
from ..pass_manager import FunctionPass, register_pass


@register_pass("reassociate")
class Reassociate(FunctionPass):
    def run_on_function(self, function: Function, ctx: OptContext) -> bool:
        changed = False
        for block in function.blocks:
            for inst in list(block.instructions):
                if not isinstance(inst, BinaryOperator):
                    continue
                if inst.opcode not in COMMUTATIVE_OPCODES:
                    continue
                if self._canonicalize_constant_position(inst, ctx):
                    changed = True
                if self._fold_chained_constants(inst, ctx):
                    changed = True
        return changed

    @staticmethod
    def _canonicalize_constant_position(inst: BinaryOperator,
                                        ctx: OptContext) -> bool:
        """Move a constant LHS of a commutative op to the RHS."""
        if isinstance(inst.lhs, Constant) and not isinstance(inst.rhs, Constant):
            lhs, rhs = inst.lhs, inst.rhs
            inst.set_operand(0, rhs)
            inst.set_operand(1, lhs)
            ctx.count("reassociate.swapped")
            return True
        return False

    @staticmethod
    def _fold_chained_constants(inst: BinaryOperator, ctx: OptContext) -> bool:
        """(x op C1) op C2 -> x op (C1 op C2), dropping wrapping flags."""
        inner = inst.lhs
        if not (isinstance(inner, BinaryOperator)
                and inner.opcode == inst.opcode
                and inner.num_uses() == 1
                and isinstance(inner.rhs, ConstantInt)
                and isinstance(inst.rhs, ConstantInt)):
            return False
        combined = fold_binary(inst.opcode, inner.rhs, inst.rhs,
                               inst.type.width)
        if not isinstance(combined, ConstantInt):
            return False
        inst.set_operand(0, inner.lhs)
        inst.set_operand(1, combined)
        # Regrouping invalidates wrapping facts on the surviving op.
        inst.nuw = False
        inst.nsw = False
        if not inner.has_uses():
            inner.erase_from_parent()
        ctx.count("reassociate.folded")
        return True
