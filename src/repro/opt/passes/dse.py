"""DSE: dead store elimination (block-local).

A store is dead when the same pointer is overwritten by a later store in
the same block with no intervening read or escape of that memory: no
load, no call that may read, and no other store through a possibly-
aliasing pointer being read later.  The analysis is conservative: only
stores through the *same SSA pointer* with identical value sizes are
paired, and any may-read instruction in between keeps the earlier store
alive.
"""

from __future__ import annotations

from typing import Dict

from ...ir.function import Function
from ...ir.instructions import CallInst, Instruction, LoadInst, StoreInst
from ..context import OptContext
from ..pass_manager import FunctionPass, register_pass


def _may_read(inst: Instruction) -> bool:
    if isinstance(inst, LoadInst):
        return True
    if isinstance(inst, CallInst):
        return not inst.is_readnone()
    return False


@register_pass("dse")
class DeadStoreElimination(FunctionPass):
    def run_on_function(self, function: Function, ctx: OptContext) -> bool:
        changed = False
        for block in function.blocks:
            # pointer id -> the last store through it with nothing
            # reading memory since.
            pending: Dict[int, StoreInst] = {}
            for inst in list(block.instructions):
                if isinstance(inst, StoreInst):
                    earlier = pending.get(id(inst.pointer))
                    if earlier is not None and earlier.parent is not None \
                            and earlier.value.type is inst.value.type:
                        earlier.erase_from_parent()
                        ctx.count("dse.removed")
                        changed = True
                    pending[id(inst.pointer)] = inst
                elif _may_read(inst):
                    pending.clear()
        return changed
