"""Mem2Reg / SROA-lite: promote allocas to SSA registers.

Two promotions are performed:

* single-block allocas — store-to-load forwarding in program order;
* single-store allocas whose store dominates every load.

Hosts seeded crash bugs for SROA (72035) and MoveAutoInit (64661).
"""

from __future__ import annotations

from typing import List, Optional

from ...analysis.domtree import DominatorTree
from ...ir.function import Function
from ...ir.instructions import AllocaInst, Instruction, LoadInst, StoreInst
from ...ir.values import UndefValue, Value
from ..context import OptContext
from ..pass_manager import FunctionPass, register_pass


def _promotable_uses(alloca: AllocaInst) -> Optional[List[Instruction]]:
    """Loads/stores using the alloca directly, or None if it escapes."""
    uses: List[Instruction] = []
    for use in alloca.uses:
        user = use.user
        if isinstance(user, LoadInst) and user.pointer is alloca:
            uses.append(user)
        elif isinstance(user, StoreInst) and user.pointer is alloca \
                and user.value is not alloca:
            uses.append(user)
        else:
            return None
    return uses


@register_pass("mem2reg")
class Mem2Reg(FunctionPass):
    def run_on_function(self, function: Function, ctx: OptContext) -> bool:
        changed = False
        allocas = [inst for inst in function.instructions()
                   if isinstance(inst, AllocaInst)]
        if not allocas:
            return False
        domtree = DominatorTree(function)
        for alloca in allocas:
            if alloca.parent is None:
                continue
            uses = _promotable_uses(alloca)
            if uses is None:
                continue
            if ctx.bug_enabled("72035") and any(
                    isinstance(u, LoadInst) and u.type is not alloca.allocated_type
                    for u in uses):
                ctx.crash("72035", "SROA AllocaSliceRewriter mis-sizes a "
                                   "type-punned slice")
            if any(isinstance(u, LoadInst) and u.type is not alloca.allocated_type
                   for u in uses) or any(
                    isinstance(u, StoreInst)
                    and u.value.type is not alloca.allocated_type
                    for u in uses):
                continue  # type-punned access; leave to the interpreter
            if self._promote_single_block(alloca, uses, ctx):
                changed = True
            elif self._promote_single_store(alloca, uses, domtree, ctx):
                changed = True
        return changed

    def _promote_single_block(self, alloca: AllocaInst,
                              uses: List[Instruction],
                              ctx: OptContext) -> bool:
        blocks = {id(u.parent) for u in uses}
        if len(blocks) > 1:
            return False
        if not uses:
            alloca.erase_from_parent()
            return True
        block = uses[0].parent
        current: Optional[Value] = None
        for inst in list(block.instructions):
            if isinstance(inst, StoreInst) and inst.pointer is alloca:
                current = inst.value
                inst.erase_from_parent()
            elif isinstance(inst, LoadInst) and inst.pointer is alloca:
                if current is None:
                    # Load before any store: uninitialized -> undef.
                    if ctx.bug_enabled("64661"):
                        ctx.crash("64661", "MoveAutoInit: assertion that "
                                           "auto-init dominates all loads "
                                           "is too strong")
                    current = UndefValue(inst.type)
                inst.replace_all_uses_with(current)
                inst.erase_from_parent()
        alloca.erase_from_parent()
        ctx.count("mem2reg.single-block")
        return True

    def _promote_single_store(self, alloca: AllocaInst,
                              uses: List[Instruction],
                              domtree: DominatorTree,
                              ctx: OptContext) -> bool:
        stores = [u for u in uses if isinstance(u, StoreInst)]
        loads = [u for u in uses if isinstance(u, LoadInst)]
        if len(stores) != 1:
            return False
        store = stores[0]
        for load in loads:
            block = load.parent
            if not domtree.dominates(store, block, block.index_of(load)):
                return False
        for load in loads:
            load.replace_all_uses_with(store.value)
            load.erase_from_parent()
        store.erase_from_parent()
        alloca.erase_from_parent()
        ctx.count("mem2reg.single-store")
        return True
