"""EarlyCSE: dominator-scoped common subexpression elimination.

Walks the dominator tree depth-first with a scoped hash table, replacing
repeated pure computations with their first (dominating) occurrence.  When
two instructions differ only in poison flags, the *intersection* of the
flags must be kept on the surviving leader — dropping the stronger flags —
or the leader may be poison where the replaced instruction was not.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...analysis.domtree import DominatorTree
from ...ir.basicblock import BasicBlock
from ...ir.function import Function
from ...ir.instructions import (BinaryOperator, CallInst, CastInst,
                                COMMUTATIVE_OPCODES, GEPInst, ICmpInst,
                                Instruction, LoadInst, SelectInst, StoreInst)
from ...ir.values import constant_to_key, Constant, Value
from ..context import OptContext
from ..pass_manager import FunctionPass, register_pass, replace_and_erase


def _operand_key(value: Value):
    if isinstance(value, Constant):
        return constant_to_key(value)
    return ("val", id(value))


def expression_key(inst: Instruction) -> Optional[Tuple]:
    """Structural hash key; flags are deliberately excluded so that
    flag-differing duplicates unify (with flag intersection applied)."""
    if isinstance(inst, BinaryOperator):
        operands = [_operand_key(inst.lhs), _operand_key(inst.rhs)]
        if inst.opcode in COMMUTATIVE_OPCODES:
            operands.sort()
        return ("bin", inst.opcode, tuple(operands))
    if isinstance(inst, ICmpInst):
        return ("icmp", inst.predicate, _operand_key(inst.lhs),
                _operand_key(inst.rhs))
    if isinstance(inst, SelectInst):
        return ("select", _operand_key(inst.condition),
                _operand_key(inst.true_value), _operand_key(inst.false_value))
    if isinstance(inst, CastInst):
        return ("cast", inst.opcode, str(inst.type), _operand_key(inst.value))
    if isinstance(inst, GEPInst):
        return ("gep", str(inst.source_type), inst.inbounds,
                tuple(_operand_key(op) for op in inst.operands))
    if isinstance(inst, CallInst) and inst.is_readnone() and not inst.bundles:
        return ("call", inst.callee.name,
                tuple(_operand_key(a) for a in inst.args))
    return None


def _same_flags(a: Instruction, b: Instruction) -> bool:
    if isinstance(a, BinaryOperator) and isinstance(b, BinaryOperator):
        return (a.nuw == b.nuw and a.nsw == b.nsw and a.exact == b.exact)
    if isinstance(a, GEPInst) and isinstance(b, GEPInst):
        return a.inbounds == b.inbounds
    return True


def intersect_flags(leader: Instruction, duplicate: Instruction) -> None:
    """Keep only flags present on both (LLVM's ``andIRFlags``)."""
    if isinstance(leader, BinaryOperator) and isinstance(duplicate, BinaryOperator):
        leader.nuw = leader.nuw and duplicate.nuw
        leader.nsw = leader.nsw and duplicate.nsw
        leader.exact = leader.exact and duplicate.exact
    if isinstance(leader, GEPInst) and isinstance(duplicate, GEPInst):
        leader.inbounds = leader.inbounds and duplicate.inbounds


@register_pass("early-cse")
class EarlyCSE(FunctionPass):
    def run_on_function(self, function: Function, ctx: OptContext) -> bool:
        domtree = DominatorTree(function)
        entry = function.entry_block()
        if entry is None:
            return False
        self._changed = False
        self._ctx = ctx
        self._process(entry, {}, {}, domtree)
        return self._changed

    def _process(self, block: BasicBlock, available: Dict[Tuple, Instruction],
                 loads: Dict[Tuple, Value], domtree: DominatorTree) -> None:
        available = dict(available)
        loads = dict(loads)
        for inst in list(block.instructions):
            if inst.parent is None:
                continue
            if isinstance(inst, LoadInst):
                load_key = ("load", str(inst.type), _operand_key(inst.pointer))
                known = loads.get(load_key)
                if known is not None:
                    replace_and_erase(inst, known)
                    self._ctx.count("early-cse.load")
                    self._changed = True
                else:
                    loads[load_key] = inst
                continue
            if isinstance(inst, StoreInst):
                # A store makes its own value the known content, and kills
                # every other tracked load (conservative aliasing).
                loads.clear()
                loads[("load", str(inst.value.type),
                       _operand_key(inst.pointer))] = inst.value
                continue
            if inst.may_write_memory():
                loads.clear()
                continue
            key = expression_key(inst)
            if key is None:
                continue
            leader = available.get(key)
            if leader is not None and leader.parent is not None:
                if not _same_flags(leader, inst):
                    # Flag-differing duplicates are left for GVN, which
                    # owns the flag-merging logic (and its seeded bug).
                    continue
                replace_and_erase(inst, leader)
                self._ctx.count("early-cse.cse")
                self._changed = True
            else:
                available[key] = inst
        for child in domtree.children(block):
            # Memory facts are path-sensitive; only pass them down along a
            # straight edge (sole successor AND sole predecessor).
            straight_edge = (block.successors() == [child]
                             and child.predecessors() == [block])
            self._process(child, available, loads if straight_edge else {},
                          domtree)
