"""Codegen lowering: the architecture-independent backend substitute.

The paper found most of its bugs in LLVM's AArch64 backend and in
architecture-independent code-generation infrastructure (DAG combines,
legalization, GlobalISel).  This pass models that layer: it expands
intrinsics to primitive operations, matches machine-friendly idioms
(rotates, byte swaps, bitfield extracts), and *promotes* non-standard
integer widths (which the bitwidth-change mutation produces, e.g. ``i26``)
to the next legal width — the same promotion machinery whose sext/zext
selection bugs fill Table I.

Seeded bugs hosted here (ids are LLVM issue numbers; see
``repro.opt.bugs``): 55003, 55201, 55129, 55271, 55284, 55287, 55296,
55342, 55484, 55490, 55627, 55833, 58109, 58321, 58431 (miscompilations);
58423, 58425, 59757, 56377, 72034 (crashes).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...ir.builder import IRBuilder
from ...ir.function import Function
from ...ir.instructions import (BinaryOperator, CallInst, CastInst, FreezeInst,
                                Instruction, SelectInst)
from ...ir.intrinsics import declare_intrinsic, supports_width
from ...ir.types import IntType
from ...ir.values import ConstantInt, PoisonValue, UndefValue, Value
from ..context import OptContext
from ..pass_manager import FunctionPass, register_pass, replace_and_erase

LEGAL_WIDTHS = (1, 8, 16, 32, 64, 128)

# Library functions whose signatures TargetLibraryInfo knows (bug 59757).
_KNOWN_LIBFUNC_RETURNS: Dict[str, int] = {"printf": 32, "puts": 32,
                                          "putchar": 32}


def _next_legal_width(width: int) -> int:
    for legal in LEGAL_WIDTHS:
        if legal >= width:
            return legal
    return width


@register_pass("codegen")
class CodegenLowering(FunctionPass):
    def run_on_function(self, function: Function, ctx: OptContext) -> bool:
        changed = False
        # GlobalISel-style local CSE across expansions (bug 58423).
        self._expansion_cse: Dict[Tuple, Instruction] = {}
        # The (buggy) freeze combine runs before legalization/promotion,
        # like a GISel combiner pattern — promotion would otherwise hide
        # the flagged operand behind a trunc.
        if ctx.bug_enabled("58321"):
            for block in function.blocks:
                for inst in list(block.instructions):
                    if isinstance(inst, FreezeInst):
                        replacement = self._lower_freeze(inst, ctx)
                        if replacement is not None:
                            replace_and_erase(inst, replacement)
                            changed = True
        progress = True
        iterations = 0
        while progress and iterations < 8:
            progress = False
            iterations += 1
            for block in function.blocks:
                for inst in list(block.instructions):
                    if inst.parent is None:
                        continue
                    replacement = self._lower(inst, ctx)
                    if replacement is not None:
                        if replacement is not inst:
                            replace_and_erase(inst, replacement)
                        changed = True
                        progress = True
        return changed

    # -- dispatch --------------------------------------------------------------

    def _lower(self, inst: Instruction, ctx: OptContext) -> Optional[Value]:
        if isinstance(inst, CallInst):
            if inst.is_intrinsic():
                return self._lower_intrinsic(inst, ctx)
            return self._check_libfunc(inst, ctx)
        if isinstance(inst, CastInst) and inst.opcode == "zext" \
                and inst.src_type.width == 1 and inst.type.width > 1:
            return self._lower_bool_zext(inst, ctx)
        if isinstance(inst, BinaryOperator):
            lowered = self._match_idioms(inst, ctx)
            if lowered is not None:
                return lowered
            return self._promote_illegal_width(inst, ctx)
        if isinstance(inst, FreezeInst):
            return self._lower_freeze(inst, ctx)
        return None

    # -- intrinsic expansion ------------------------------------------------------

    def _lower_intrinsic(self, inst: CallInst, ctx: OptContext) -> Optional[Value]:
        base = inst.intrinsic_name()
        if base == "llvm.abs":
            return self._expand_abs(inst, ctx)
        if base == "llvm.usub.sat":
            return self._expand_usub_sat(inst, ctx)
        if base == "llvm.uadd.sat":
            return self._expand_uadd_sat(inst, ctx)
        if base in ("llvm.fshl", "llvm.fshr"):
            if ctx.bug_enabled("56377") \
                    and not isinstance(inst.args[2], ConstantInt):
                ctx.crash("56377", "VectorCombine created a shuffle for an "
                                   "extract-extract pattern it cannot legalize")
            return None
        if base in ("llvm.sadd.sat", "llvm.ssub.sat"):
            if ctx.bug_enabled("72034") and inst.args[0] is inst.args[1]:
                ctx.crash("72034", "scalarizeVPIntrinsic emitted wrong code "
                                   "for identical operands")
            return None
        return None

    def _expand_abs(self, inst: CallInst, ctx: OptContext) -> Value:
        """abs(x, f) -> (x ^ s) - s with s = ashr x, w-1.

        Bug 55271 ("missing a freeze" in the ISD::ABS expansion): the
        buggy expansion tags the subtraction nsw even when the
        is-int-min-poison flag is false, so INT_MIN — well-defined in the
        source — becomes poison in the target.
        """
        key = ("abs", id(inst.args[0]), _flag_value(inst.args[1]))
        cached = self._expansion_cse.get(key)
        if cached is not None:
            if ctx.bug_enabled("58423"):
                # Bug 58423: the CSE'd builder hands back an entry without
                # checking it is still live (reuse of a removed
                # instruction); modeled as dying on any cache reuse.
                ctx.crash("58423", "CSEMIRBuilder reused a removed "
                                   "instruction")
            if cached.parent is not None:
                return cached
        width = inst.type.width
        flag_poisons = _flag_value(inst.args[1]) == 1
        builder = IRBuilder()
        builder.set_insert_before(inst)
        sign = builder.ashr(inst.args[0], ConstantInt(inst.type, width - 1))
        flipped = builder.xor(inst.args[0], sign)
        buggy_nsw = ctx.bug_enabled("55271") and not flag_poisons
        if buggy_nsw:
            ctx.note_bug_trigger("55271")
        result = builder.sub(flipped, sign,
                             nsw=flag_poisons or buggy_nsw)
        self._expansion_cse[key] = result
        return result

    def _expand_usub_sat(self, inst: CallInst, ctx: OptContext) -> Value:
        """usub.sat(x, y) -> select (x ugt y), x - y, 0.

        Bug 58109: the buggy expansion compares *signed*.
        """
        builder = IRBuilder()
        builder.set_insert_before(inst)
        predicate = "ugt"
        if ctx.bug_enabled("58109"):
            ctx.note_bug_trigger("58109")
            predicate = "sgt"
        compare = builder.icmp(predicate, inst.args[0], inst.args[1])
        difference = builder.sub(inst.args[0], inst.args[1])
        return builder.select(compare, difference,
                              ConstantInt(inst.type, 0))

    def _expand_uadd_sat(self, inst: CallInst, ctx: OptContext) -> Value:
        """uadd.sat(x, y) -> select (sum ult x), -1, sum (overflow check)."""
        builder = IRBuilder()
        builder.set_insert_before(inst)
        total = builder.add(inst.args[0], inst.args[1])
        overflowed = builder.icmp("ult", total, inst.args[0])
        return builder.select(overflowed,
                              ConstantInt(inst.type, inst.type.mask), total)

    # -- libfunc signatures (bug 59757) ------------------------------------------

    def _check_libfunc(self, inst: CallInst, ctx: OptContext) -> None:
        if not ctx.bug_enabled("59757"):
            return None
        expected = _KNOWN_LIBFUNC_RETURNS.get(inst.callee.name)
        if expected is None:
            return None
        return_type = inst.callee.return_type
        if not (isinstance(return_type, IntType)
                and return_type.width == expected):
            ctx.crash("59757", "TargetLibraryInfo signature for "
                               f"{inst.callee.name} is wrong")
        return None

    # -- i1 materialization (bug 58431) ---------------------------------------------

    def _lower_bool_zext(self, inst: CastInst,
                         ctx: OptContext) -> Optional[Value]:
        """zext i1 x to iN -> select x, 1, 0.

        Bug 58431 ("wrong G_ZEXT selection in GISel"): the buggy lowering
        materializes -1 for true, i.e. sext semantics.

        Lowering is deferred while an lshr user is waiting to fold the
        zero-width bitfield extract (the 55129 path), so the two combines
        compose in either order.
        """
        for user in inst.users():
            if isinstance(user, BinaryOperator) and user.opcode == "lshr" \
                    and user.lhs is inst \
                    and isinstance(user.rhs, ConstantInt) \
                    and 1 <= user.rhs.value < user.type.width:
                return None
        builder = IRBuilder()
        builder.set_insert_before(inst)
        one = inst.type.mask if ctx.bug_enabled("58431") else 1
        if ctx.bug_enabled("58431"):
            ctx.note_bug_trigger("58431")
        return builder.select(inst.value, ConstantInt(inst.type, one),
                              ConstantInt(inst.type, 0))

    # -- machine idiom matching ---------------------------------------------------

    def _match_idioms(self, inst: BinaryOperator,
                      ctx: OptContext) -> Optional[Value]:
        if inst.opcode == "shl":
            return self._combine_shl_shl(inst, ctx)
        if inst.opcode == "lshr":
            return self._combine_lshr(inst, ctx)
        if inst.opcode == "and":
            return self._match_bitfield_extract(inst, ctx)
        if inst.opcode == "or":
            # Byte-swap recognition runs before the generic rotate match,
            # like the DAG combiner's MatchBSwapHWordLow.
            swapped = self._match_bswap_hword(inst, ctx)
            if swapped is not None:
                return swapped
            rotated = self._match_rotate(inst, ctx)
            if rotated is not None:
                return rotated
            return self._match_bitfield_insert(inst, ctx)
        if inst.opcode == "urem":
            return self._expand_urem_pow2(inst, ctx)
        if inst.opcode == "udiv" and ctx.bug_enabled("58425") \
                and inst.type.width not in LEGAL_WIDTHS:
            # Only the unsigned division path missed legalization (issue
            # 58425); sdiv goes through promotion, where the sext/zext
            # selection bugs live.
            ctx.crash("58425", "udiv did not reach the legalizer")
        return None

    def _combine_shl_shl(self, inst: BinaryOperator,
                         ctx: OptContext) -> Optional[Value]:
        """shl (shl x, C1), C2 -> shl x, C1+C2, or 0 when the total shift
        leaves the type.  Bug 55003: the buggy combine emits the combined
        shift even when C1+C2 >= width, turning a well-defined 0 into
        poison (the "shifts of undef" GISel combine family)."""
        inner = inst.lhs
        if not (isinstance(inner, BinaryOperator) and inner.opcode == "shl"
                and isinstance(inner.rhs, ConstantInt)
                and isinstance(inst.rhs, ConstantInt)
                and inner.num_uses() == 1):
            return None
        width = inst.type.width
        c1, c2 = inner.rhs.value, inst.rhs.value
        if c1 >= width or c2 >= width:
            return None
        total = c1 + c2
        builder = IRBuilder()
        builder.set_insert_before(inst)
        if total >= width:
            if ctx.bug_enabled("55003"):
                ctx.note_bug_trigger("55003")
                return builder.shl(inner.lhs, ConstantInt(inst.type, total))
            return ConstantInt(inst.type, 0)
        return None  # in-range combines belong to InstCombine

    def _combine_lshr(self, inst: BinaryOperator,
                      ctx: OptContext) -> Optional[Value]:
        """lshr (zext i1 b), C (C >= 1) -> 0.

        Bug 55129 (the paper's Listing 18): the buggy version treats the
        zero-width bitfield extract as the input and returns ``zext b``.
        """
        if not (isinstance(inst.rhs, ConstantInt)
                and 1 <= inst.rhs.value < inst.type.width):
            return None
        source = inst.lhs
        is_bool = (isinstance(source, CastInst) and source.opcode == "zext"
                   and source.src_type.width == 1)
        if not is_bool:
            # The i1 zext may already have been lowered to select c, 1, 0.
            is_bool = (isinstance(source, SelectInst)
                       and isinstance(source.true_value, ConstantInt)
                       and source.true_value.is_one()
                       and isinstance(source.false_value, ConstantInt)
                       and source.false_value.is_zero())
        if not is_bool:
            return None
        if ctx.bug_enabled("55129"):
            ctx.note_bug_trigger("55129")
            return source
        return ConstantInt(inst.type, 0)

    def _match_bitfield_extract(self, inst: BinaryOperator,
                                ctx: OptContext) -> Optional[Value]:
        """and (lshr x, C), mask -> UBFX-style canonical form.

        When C + popcount(mask) == width the mask is redundant and the
        extract is just the shift.  Bug 55833 (tryBitfieldExtractOp vs
        isDef32): the buggy condition drops the mask one bit too early
        (>= width - 1).
        """
        shift = inst.lhs
        if not (isinstance(shift, BinaryOperator) and shift.opcode == "lshr"
                and isinstance(shift.rhs, ConstantInt)
                and isinstance(inst.rhs, ConstantInt)):
            return None
        mask = inst.rhs.value
        if mask == 0 or (mask & (mask + 1)) != 0:
            return None  # not a low-bit mask
        width = inst.type.width
        bits = mask.bit_length()
        c = shift.rhs.value
        if c >= width:
            return None
        threshold = width - 1 if ctx.bug_enabled("55833") else width
        if c + bits >= threshold:
            if c + bits < width:
                ctx.note_bug_trigger("55833")
            return shift
        return None

    def _match_rotate(self, inst: BinaryOperator,
                      ctx: OptContext) -> Optional[Value]:
        """or (shl x, C), (lshr x, W-C) -> fshl(x, x, C).

        Bug 55201: a "disguised rotate" whose operands carry masks must
        apply LHSMask/RHSMask — the buggy matcher looks through the masks
        and ignores them.
        """
        shl = lshr = None
        for first, second in ((inst.lhs, inst.rhs), (inst.rhs, inst.lhs)):
            if isinstance(first, BinaryOperator) and first.opcode == "shl" \
                    and isinstance(second, BinaryOperator) \
                    and second.opcode == "lshr":
                shl, lshr = first, second
                break
        if shl is None:
            return None

        def strip_mask(value: Value) -> Tuple[Value, bool]:
            if isinstance(value, BinaryOperator) and value.opcode == "and" \
                    and isinstance(value.rhs, ConstantInt):
                return value.lhs, True
            return value, False

        shl_src, shl_masked = shl.lhs, False
        lshr_src, lshr_masked = lshr.lhs, False
        if ctx.bug_enabled("55201"):
            shl_src, shl_masked = strip_mask(shl.lhs)
            lshr_src, lshr_masked = strip_mask(lshr.lhs)
        if shl_src is not lshr_src:
            return None
        if not (isinstance(shl.rhs, ConstantInt)
                and isinstance(lshr.rhs, ConstantInt)):
            return None
        width = inst.type.width
        c = shl.rhs.value
        if c == 0 or c >= width or lshr.rhs.value != width - c:
            return None
        module = self._module(inst)
        if module is None or not supports_width("llvm.fshl", width):
            return None
        if shl_masked or lshr_masked:
            ctx.note_bug_trigger("55201")
        callee = declare_intrinsic(module, "llvm.fshl", width)
        builder = IRBuilder()
        builder.set_insert_before(inst)
        return builder.call(callee, [shl_src, shl_src,
                                     ConstantInt(inst.type, c)])

    def _match_bitfield_insert(self, inst: BinaryOperator,
                               ctx: OptContext) -> Optional[Value]:
        """or (and x, C1), (and y, C2) with complementary masks is a
        bitfield insert (BFI/BFXIL).

        Bug 55284 (GlobalISel or+and miscompile): the buggy selection
        drops the second mask.
        """
        if not ctx.bug_enabled("55284"):
            return None
        lhs, rhs = inst.lhs, inst.rhs
        if not (isinstance(lhs, BinaryOperator) and lhs.opcode == "and"
                and isinstance(rhs, BinaryOperator) and rhs.opcode == "and"
                and isinstance(lhs.rhs, ConstantInt)
                and isinstance(rhs.rhs, ConstantInt)):
            return None
        if (lhs.rhs.value ^ rhs.rhs.value) != inst.type.mask:
            return None
        ctx.note_bug_trigger("55284")
        builder = IRBuilder()
        builder.set_insert_before(inst)
        return builder.or_(lhs, rhs.lhs)

    def _match_bswap_hword(self, inst: BinaryOperator,
                           ctx: OptContext) -> Optional[Value]:
        """or (shl x, 8), (lshr x, 8) on i16 -> llvm.bswap.i16.

        Bug 55484 (MatchBSwapHWordLow): the buggy matcher accepts any pair
        of shift amounts summing to 16.
        """
        if inst.type.width != 16:
            return None
        shl = lshr = None
        for first, second in ((inst.lhs, inst.rhs), (inst.rhs, inst.lhs)):
            if isinstance(first, BinaryOperator) and first.opcode == "shl" \
                    and isinstance(second, BinaryOperator) \
                    and second.opcode == "lshr":
                shl, lshr = first, second
                break
        if shl is None or shl.lhs is not lshr.lhs:
            return None
        if not (isinstance(shl.rhs, ConstantInt)
                and isinstance(lshr.rhs, ConstantInt)):
            return None
        c1, c2 = shl.rhs.value, lshr.rhs.value
        buggy = ctx.bug_enabled("55484")
        if not buggy and not (c1 == 8 and c2 == 8):
            return None
        if buggy and not (0 < c1 < 16 and c1 + c2 == 16):
            return None
        if buggy and c1 != 8:
            ctx.note_bug_trigger("55484")
        module = self._module(inst)
        if module is None:
            return None
        callee = declare_intrinsic(module, "llvm.bswap", 16)
        builder = IRBuilder()
        builder.set_insert_before(inst)
        return builder.call(callee, [shl.lhs])

    def _expand_urem_pow2(self, inst: BinaryOperator,
                          ctx: OptContext) -> Optional[Value]:
        """urem x, 2**k -> and x, 2**k - 1.

        Bug 55287 (urem+udiv GISel miscompile): the buggy expansion masks
        with the modulus itself instead of modulus-1.
        """
        if not isinstance(inst.rhs, ConstantInt):
            return None
        modulus = inst.rhs.value
        if modulus == 0 or modulus & (modulus - 1):
            return None
        builder = IRBuilder()
        builder.set_insert_before(inst)
        if ctx.bug_enabled("55287"):
            ctx.note_bug_trigger("55287")
            return builder.and_(inst.lhs, ConstantInt(inst.type, modulus))
        return builder.and_(inst.lhs, ConstantInt(inst.type, modulus - 1))

    # -- width promotion (bugs 55296, 55342, 55490, 55627) -----------------------------

    _PROMOTE_OPCODES = ("add", "sub", "mul", "udiv", "urem", "sdiv", "srem",
                        "and", "or", "xor")

    def _promote_illegal_width(self, inst: BinaryOperator,
                               ctx: OptContext) -> Optional[Value]:
        """Promote a non-legal-width op (e.g. i26) to the next legal width.

        Unsigned ops extend with zext, signed ops with sext, and the
        result truncates back.  The seeded bugs pick the wrong extension:

        * 55342 — constants of signed ops are zero-extended ("sext and
          zext selection in promoted constant");
        * 55490 — same family, for the non-constant operand of srem;
        * 55627 — same family, for sdiv's left operand;
        * 55296 — urem's left operand is *sign*-extended ("didn't clear
          the promoted bits before urem").
        """
        width = inst.type.width
        if width in LEGAL_WIDTHS or width > 64:
            return None
        if inst.opcode not in self._PROMOTE_OPCODES:
            return None
        wide_width = _next_legal_width(width)
        wide = IntType(wide_width)
        signed = inst.opcode in ("sdiv", "srem")
        builder = IRBuilder()
        builder.set_insert_before(inst)

        def extend(value: Value, use_sext: bool) -> Value:
            if isinstance(value, ConstantInt):
                source = value.signed_value() if use_sext else value.value
                return ConstantInt(wide, source & wide.mask)
            return builder.sext(value, wide) if use_sext \
                else builder.zext(value, wide)

        lhs_sext = signed
        rhs_sext = signed
        if signed and ctx.bug_enabled("55342") \
                and isinstance(inst.rhs, ConstantInt):
            ctx.note_bug_trigger("55342")
            rhs_sext = False
        if inst.opcode == "srem" and ctx.bug_enabled("55490") \
                and not isinstance(inst.rhs, ConstantInt):
            ctx.note_bug_trigger("55490")
            rhs_sext = False
        if inst.opcode == "sdiv" and ctx.bug_enabled("55627"):
            ctx.note_bug_trigger("55627")
            lhs_sext = False
        if inst.opcode == "urem" and ctx.bug_enabled("55296"):
            ctx.note_bug_trigger("55296")
            lhs_sext = True

        # Division needs exact ranges; bit ops and add/sub/mul are width-
        # agnostic in the low bits, so any extension works for them.
        wide_lhs = extend(inst.lhs, lhs_sext)
        wide_rhs = extend(inst.rhs, rhs_sext)
        wide_op = builder.binop(inst.opcode, wide_lhs, wide_rhs)
        return builder.trunc(wide_op, inst.type)

    # -- freeze handling (bug 58321) -------------------------------------------------

    def _lower_freeze(self, inst: FreezeInst,
                      ctx: OptContext) -> Optional[Value]:
        """Bug 58321 ("miscompilation of a frozen poison"): the buggy
        lowering drops a freeze guarding flagged arithmetic or a literal
        poison/undef, re-exposing what the source had neutralized."""
        if not ctx.bug_enabled("58321"):
            return None
        value = inst.value
        if isinstance(value, (PoisonValue, UndefValue)) \
                or (isinstance(value, BinaryOperator)
                    and (value.nuw or value.nsw or value.exact)):
            ctx.note_bug_trigger("58321")
            return value
        return None

    @staticmethod
    def _module(inst: Instruction):
        function = inst.function
        return function.parent if function is not None else None


def _flag_value(value: Value) -> int:
    if isinstance(value, ConstantInt):
        return value.value
    return -1
