"""Constant-folding pass (plus the ConstantFolding seeded crash bugs)."""

from __future__ import annotations

from ...ir.function import Function
from ...ir.instructions import CallInst, SelectInst
from ...ir.values import PoisonValue
from ..context import OptContext
from ..fold import fold_instruction
from ..pass_manager import FunctionPass, register_pass, replace_and_erase


@register_pass("constfold")
class ConstantFolding(FunctionPass):
    """Folds instructions whose operands are all constants.

    Hosts two seeded crash bugs from Table I:

    * 56945 — "the dyn_cast to a ConstantInt would fail with a poison
      input": with the bug enabled, folding an intrinsic whose argument is
      ``poison`` unconditionally treats it as a ConstantInt and dies.
    * 56981 — "assertion is too strong": an over-eager internal assert that
      select conditions seen by the folder are never constant-foldable
      booleans from icmp chains wider than i1 — modeled as asserting the
      folded select condition is 0 or 1 *after* poison substitution.
    """

    supports_worklist = True

    def run_on_function(self, function: Function, ctx: OptContext) -> bool:
        return self._run(function, ctx, None)

    def run_on_worklist(self, function: Function, ctx: OptContext,
                        dirty) -> bool:
        from ..incremental import SweepState

        return self._run(function, ctx, SweepState(dirty))

    def _run(self, function: Function, ctx: OptContext, sweep) -> bool:
        changed = True
        any_change = False
        while changed:
            changed = False
            for block in function.blocks:
                if sweep is not None and not sweep.block_active(block):
                    continue
                for inst in list(block.instructions):
                    if inst.parent is None:
                        continue
                    if sweep is not None and not sweep.should_visit(inst):
                        continue
                    if ctx.bug_enabled("56945") and isinstance(inst, CallInst) \
                            and inst.is_intrinsic() \
                            and any(isinstance(a, PoisonValue) for a in inst.args):
                        ctx.crash("56945",
                                  "dyn_cast<ConstantInt> on poison operand")
                    if ctx.bug_enabled("56981") and isinstance(inst, SelectInst) \
                            and isinstance(inst.condition, PoisonValue):
                        ctx.crash("56981",
                                  "assert(isa<ConstantInt>(Cond)) is too strong")
                    folded = fold_instruction(inst)
                    if folded is not None:
                        if sweep is not None:
                            sweep.note_rewrite(inst)
                        replace_and_erase(inst, folded)
                        ctx.count("constfold.folded")
                        changed = True
                        any_change = True
            if sweep is not None and changed:
                sweep.finish_sweep()
        return any_change
