"""Incremental re-optimization of mutants (layers 2 and 3 of the fast path).

A mutant differs from its already-optimized source in a small *dirty
region*.  This module supplies the machinery that lets the pass pipeline
exploit that:

* :class:`IncrementalState` — a bounded LRU of per-``(function
  fingerprint, pass)`` **skip memos**: "pass P left fingerprint F
  unchanged, counting these stats and firing these bugs" (or "pass P
  crashed on F").  Fingerprints are structural and name-normalized, and
  every pass is deterministic and name-blind, so an entry recorded at one
  pipeline position is valid at any other.  Replaying the recorded stats
  and bug firings on a skip keeps feedback features and seeded-bug
  attribution bit-identical to a full run.
* :class:`IncrementalRun` — the per-function dispatch state threaded
  through :meth:`PassManager.run_function`: the current fingerprint
  (recomputed lazily, only after a pass changed the body), the shared
  dirty set, and the set of passes *proven* to be at fixpoint on the
  dirty set's complement.  A pass that is proven and worklist-capable
  visits only the dirty region; everything else full-runs.
* :class:`SweepState` — exact-sweep bookkeeping for the scan passes
  (constfold / instsimplify / instcombine).  A worklist sweep walks the
  function's blocks in program order, visiting only worklist members, and
  every rewrite grows the worklist with the affected closure (operands,
  pre-rewrite users, freshly built instructions, and their transitive
  users — transitive because known-bits reasoning reaches arbitrarily
  deep cones).  Because the traversal arrives at blocks in the same order
  and with the same per-block snapshots as a full sweep, a worklist run
  fires the same rewrites in the same order as the full pass would.

Soundness of the worklist skip rests on the proven-fixpoint invariant:
an instruction outside the dirty closure has the cone and use counts it
had when the pass was last proven quiescent on it, and every mutation
or rewrite that changes a cone or a use count adds the affected users
(for cone changes) or the operand's users (for use-count changes) to the
dirty set.  Rule matching is a function of cone shape plus use counts,
so unvisited instructions cannot fire — visiting them would only confirm
quiescence, which is exactly what the skip assumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Dict, FrozenSet, Iterable, List, Optional, Sequence, Set,
                    Tuple)

from ..ir.fingerprint import fingerprint_function
from ..ir.function import Function
from ..ir.instructions import Instruction
from ..tv.compile import LRUCache
from .context import OptContext, OptimizerCrash

DEFAULT_MEMO_SIZE = 4096


@dataclass(frozen=True)
class PassMemoEntry:
    """One recorded no-change (or crash) outcome of a pass on a fingerprint.

    ``stats`` is the delta the pass added to ``ctx.stats`` and ``bugs``
    the bug ids it fired — both replayed verbatim on a skip.  A crash
    entry re-raises an equivalent :class:`OptimizerCrash`; changed
    outcomes are never memoized (there is no body to replay).
    """

    stats: Tuple[Tuple[str, int], ...]
    bugs: FrozenSet[str]
    crash_bug: Optional[str] = None
    crash_message: str = ""


def _stat_delta(before: Dict[str, int],
                after: Dict[str, int]) -> Tuple[Tuple[str, int], ...]:
    return tuple(sorted(
        (name, amount - before.get(name, 0))
        for name, amount in after.items()
        if amount != before.get(name, 0)))


class IncrementalState:
    """Driver-lifetime skip-memo store plus ``opt.incremental.*`` counters."""

    def __init__(self, capacity: int = DEFAULT_MEMO_SIZE,
                 metrics=None) -> None:
        self._memo = LRUCache(capacity)
        self.metrics = metrics

    def count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.count(name, amount)

    def lookup(self, fp: str, pass_name: str) -> Optional[PassMemoEntry]:
        return self._memo.get((fp, pass_name))

    def record(self, fp: str, pass_name: str, entry: PassMemoEntry) -> None:
        self._memo.put((fp, pass_name), entry)
        self.count("opt.incremental.recorded")

    def proven_passes(self, fp: Optional[str],
                      pass_names: Iterable[str]) -> Set[str]:
        """Passes recorded as leaving fingerprint ``fp`` unchanged.

        Used to seed a mutant's proven set from its *source's* baseline
        trajectory: the source and the mutant share every instruction
        outside the mutated region, so a pass quiescent on the whole
        source is quiescent on the mutant's clean complement.
        """
        proven: Set[str] = set()
        if fp is None:
            return proven
        for name in set(pass_names):
            entry = self._memo.get((fp, name))
            if entry is not None and entry.crash_bug is None:
                proven.add(name)
        return proven

    def begin(self, fp: Optional[str] = None,
              dirty: Optional[Set[Instruction]] = None,
              proven: Optional[Set[str]] = None,
              refingerprints: Optional[int] = None) -> "IncrementalRun":
        return IncrementalRun(self, fp=fp, dirty=dirty,
                              proven=proven if proven is not None else set(),
                              refingerprints=refingerprints)


@dataclass
class IncrementalRun:
    """Per-function dispatch state for one pipeline run.

    ``fp`` is the fingerprint of the function's *current* body (None =
    stale, recompute before the next memo probe).  ``dirty`` is the
    shared set of instructions whose cones or use counts may differ from
    the proven state (None = tracking degraded, worklist runs disabled).
    ``proven`` holds the names of passes known quiescent on the dirty
    complement.

    ``refingerprints`` bounds how many times a stale fingerprint is
    recomputed mid-pipeline (None = unlimited).  Each recompute is a
    whole-function walk, and on a fresh mutant the probes it enables
    almost never hit — the mutated body's intermediate forms have not
    been seen before — so the driver caps mutants at one recompute (a
    convergence checkpoint after the first changing pass) while leaving
    baseline and untouched-replay runs unlimited, where fingerprints
    repeat by construction.  Once the budget is spent and ``fp`` goes
    stale the run stops probing and recording; passes still run (and
    worklist-run) exactly as before, so only speed is affected.
    """

    state: IncrementalState
    fp: Optional[str] = None
    dirty: Optional[Set[Instruction]] = None
    proven: Set[str] = field(default_factory=set)
    refingerprints: Optional[int] = None

    def dispatch(self, function_pass, function: Function,
                 ctx: OptContext) -> bool:
        """Run (or skip) one pass over ``function``; mirrors a plain
        ``run_on_function`` call bit-for-bit in IR, stats, and bugs."""
        state = self.state
        name = function_pass.name
        if self.fp is None and self.refingerprints != 0:
            if self.refingerprints is not None:
                self.refingerprints -= 1
            self.fp = fingerprint_function(function)
            state.count("opt.incremental.fingerprints")
        fp_before = self.fp
        if fp_before is not None:
            entry = state.lookup(fp_before, name)
            if entry is not None:
                for stat, amount in entry.stats:
                    ctx.stats[stat] += amount
                ctx.triggered_bugs |= entry.bugs
                if entry.crash_bug is not None:
                    state.count("opt.incremental.memo_crash_skips")
                    raise OptimizerCrash(entry.crash_bug,
                                         entry.crash_message)
                state.count("opt.incremental.memo_skips")
                self.proven.add(name)
                return False
            stats_before = dict(ctx.stats)
            bugs_before = set(ctx.triggered_bugs)
        worklist = (self.dirty is not None and name in self.proven
                    and function_pass.supports_worklist)
        state.count("opt.incremental.worklist_runs" if worklist
                    else "opt.incremental.full_runs")
        try:
            if worklist:
                changed = function_pass.run_on_worklist(function, ctx,
                                                        self.dirty)
            else:
                changed = function_pass.run_on_function(function, ctx)
        except OptimizerCrash as crash:
            if fp_before is not None:
                state.record(fp_before, name, PassMemoEntry(
                    stats=_stat_delta(stats_before, ctx.stats),
                    bugs=frozenset(ctx.triggered_bugs - bugs_before),
                    crash_bug=crash.bug_id, crash_message=crash.message))
            raise
        if changed:
            self.fp = None
            if not worklist:
                # The change may have landed anywhere; worklist tracking
                # can no longer bound the affected region.
                if self.dirty is not None:
                    self.dirty = None
                    state.count("opt.incremental.tracking_lost")
            # A worklist run grew the dirty set in place as it rewrote,
            # so previously proven passes stay proven on the complement.
        else:
            self.proven.add(name)
            if fp_before is not None:
                state.record(fp_before, name, PassMemoEntry(
                    stats=_stat_delta(stats_before, ctx.stats),
                    bugs=frozenset(ctx.triggered_bugs - bugs_before)))
        return changed


def expand_users(seeds: Iterable[Instruction],
                 into: Set[Instruction]) -> Set[Instruction]:
    """Add ``seeds`` and their transitive instruction users to ``into``."""
    stack: List[Instruction] = [seed for seed in seeds
                                if isinstance(seed, Instruction)]
    while stack:
        inst = stack.pop()
        if inst in into:
            continue
        into.add(inst)
        for use in inst.uses:
            user = use.user
            if isinstance(user, Instruction) and user not in into:
                stack.append(user)
    return into


def initial_dirty(function: Function,
                  touched_blocks: Iterable[str]
                  ) -> Optional[Set[Instruction]]:
    """The dirty closure of a mutant whose mutations touched the named
    blocks: every instruction of those blocks plus all transitive users.

    Returns None — degrade to whole-function — when a touched block has
    vanished, is unnamed, or shares its name with another block (the
    name can no longer identify the mutated region).
    """
    blocks_by_name: Dict[str, object] = {}
    for block in function.blocks:
        if block.name:
            if block.name in blocks_by_name:
                return None
            blocks_by_name[block.name] = block
    seeds: List[Instruction] = []
    for name in touched_blocks:
        block = blocks_by_name.get(name)
        if block is None:
            return None
        seeds.extend(block.instructions)
    return expand_users(seeds, set())


class SweepState:
    """Worklist bookkeeping for one scan pass's block-ordered sweeps.

    ``visit`` is this sweep's membership set and ``pending`` the next
    sweep's; every affected instruction goes into both (a rewrite may
    affect an instruction later in the current sweep *and* require a
    revisit on the next one, exactly as a full re-sweep would provide).
    Block membership mirrors instruction membership so the sweep loop
    can skip clean blocks in O(1) while still arriving at newly dirtied
    blocks it has not passed yet.
    """

    def __init__(self, dirty: Set[Instruction]) -> None:
        self.dirty = dirty
        self.visit: Set[Instruction] = set()
        self.visit_blocks: Set[int] = set()
        for inst in dirty:
            parent = inst.parent
            if parent is not None:
                self.visit.add(inst)
                self.visit_blocks.add(id(parent))
        self.pending: Set[Instruction] = set()
        self.pending_blocks: Set[int] = set()

    def block_active(self, block) -> bool:
        return id(block) in self.visit_blocks

    def should_visit(self, inst: Instruction) -> bool:
        return inst in self.visit

    def note_affected(self, seeds: Iterable[Instruction]) -> None:
        """Grow the worklists (and the shared dirty set) with ``seeds``
        and their transitive users."""
        stack = [seed for seed in seeds if isinstance(seed, Instruction)]
        while stack:
            inst = stack.pop()
            if inst in self.pending:
                continue
            self.pending.add(inst)
            self.visit.add(inst)
            self.dirty.add(inst)
            parent = inst.parent
            if parent is not None:
                self.pending_blocks.add(id(parent))
                self.visit_blocks.add(id(parent))
            for use in inst.uses:
                user = use.user
                if isinstance(user, Instruction) and user not in self.pending:
                    stack.append(user)

    def note_rewrite(self, inst: Instruction,
                     new_insts: Sequence[Instruction] = ()) -> None:
        """Record the affected closure of rewriting ``inst``.

        Must be called *before* the pass erases ``inst`` so its pre-RAUW
        users are still reachable.  Seeds: the instruction itself (an
        in-place change needs a revisit), its instruction operands (they
        gain or lose uses), its users (their cones change), any freshly
        built instructions, and those instructions' operands.
        """
        seeds: List[Instruction] = [inst]
        seeds.extend(op for op in inst.operands
                     if isinstance(op, Instruction))
        seeds.extend(use.user for use in inst.uses
                     if isinstance(use.user, Instruction))
        for fresh in new_insts:
            seeds.append(fresh)
            seeds.extend(op for op in fresh.operands
                         if isinstance(op, Instruction))
        self.note_affected(seeds)

    def finish_sweep(self) -> bool:
        """Promote next-sweep state; True if another sweep has work."""
        self.visit = self.pending
        self.visit_blocks = self.pending_blocks
        self.pending = set()
        self.pending_blocks = set()
        return bool(self.visit)
