"""The optimizer: pass manager, pipelines, passes, and seeded bugs."""

from . import passes  # noqa: F401  (registers all passes)
from .bugs import (SeededBug, all_bug_ids, all_bugs, bugs_by_id, crash_bugs,
                   get_bug, miscompilation_bugs)
from .context import OptContext, OptimizerCrash
from .incremental import (IncrementalRun, IncrementalState, PassMemoEntry,
                          SweepState, initial_dirty)
from .pass_manager import (FunctionPass, PassManager, available_passes,
                           create_pass, optimize_module, register_pass,
                           replace_and_erase)
from .pipelines import PIPELINES, available_pipelines, expand
from .rewrite import RewriteRule, RuleIndex, rule

__all__ = [
    "SeededBug", "all_bug_ids", "all_bugs", "bugs_by_id", "crash_bugs",
    "get_bug", "miscompilation_bugs",
    "OptContext", "OptimizerCrash",
    "IncrementalRun", "IncrementalState", "PassMemoEntry", "SweepState",
    "initial_dirty",
    "FunctionPass", "PassManager", "available_passes", "create_pass",
    "optimize_module", "register_pass", "replace_and_erase",
    "PIPELINES", "available_pipelines", "expand",
    "RewriteRule", "RuleIndex", "rule",
]
