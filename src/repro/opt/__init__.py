"""The optimizer: pass manager, pipelines, passes, and seeded bugs."""

from . import passes  # noqa: F401  (registers all passes)
from .bugs import (SeededBug, all_bug_ids, all_bugs, bugs_by_id, crash_bugs,
                   get_bug, miscompilation_bugs)
from .context import OptContext, OptimizerCrash
from .pass_manager import (FunctionPass, PassManager, available_passes,
                           create_pass, optimize_module, register_pass,
                           replace_and_erase)
from .pipelines import PIPELINES, available_pipelines, expand

__all__ = [
    "SeededBug", "all_bug_ids", "all_bugs", "bugs_by_id", "crash_bugs",
    "get_bug", "miscompilation_bugs",
    "OptContext", "OptimizerCrash",
    "FunctionPass", "PassManager", "available_passes", "create_pass",
    "optimize_module", "register_pass", "replace_and_erase",
    "PIPELINES", "available_pipelines", "expand",
]
