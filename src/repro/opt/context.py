"""Optimization context: seeded-bug switches and pass statistics.

Every pass receives an :class:`OptContext`.  The context carries the set of
*enabled seeded bugs* — deliberately-wrong rule variants and over-strong
assertions modeled on the real LLVM bugs of the paper's Table I — plus
counters the benchmarks read.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Optional, Set


class OptimizerCrash(Exception):
    """Abnormal optimizer termination (assertion failure / segfault analog).

    Raised by seeded crash bugs; the fuzzing driver records it as a crash
    finding, mirroring how the paper counts "bugs leading to abnormal
    termination of the optimizer".
    """

    def __init__(self, bug_id: str, message: str) -> None:
        super().__init__(f"[bug {bug_id}] {message}")
        self.bug_id = bug_id
        self.message = message


class OptContext:
    """Shared state for one optimization run."""

    def __init__(self, enabled_bugs: Optional[Iterable[str]] = None) -> None:
        self.enabled_bugs: Set[str] = set(enabled_bugs or ())
        self.stats: Counter = Counter()
        # Bug ids whose injected code path actually executed this run.
        self.triggered_bugs: Set[str] = set()

    def bug_enabled(self, bug_id: str) -> bool:
        return bug_id in self.enabled_bugs

    def note_bug_trigger(self, bug_id: str) -> None:
        self.triggered_bugs.add(bug_id)

    def crash(self, bug_id: str, message: str) -> None:
        """Record and raise a seeded crash."""
        self.note_bug_trigger(bug_id)
        raise OptimizerCrash(bug_id, message)

    def count(self, stat: str, amount: int = 1) -> None:
        self.stats[stat] += amount
