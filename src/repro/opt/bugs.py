"""Seeded bug registry: the reproduction's analog of Table I.

Each entry models one of the 33 real LLVM bugs alive-mutate found
(19 miscompilations + 14 crashes).  We cannot fuzz 2022-era LLVM, so each
bug is *seeded*: a deliberately wrong rule variant or an over-strong
assertion inside our passes, guarded by the bug id.  The component/status/
type/description columns are taken from the paper's Table I verbatim; the
``host_pass`` column records where our seeded version lives (backend bugs
are hosted in the ``codegen`` lowering pass, our architecture-independent
backend substitute — a substitution documented in DESIGN.md).

The bug-finding campaign (benchmarks/test_bench_table1_campaign.py)
enables all 33, fuzzes a corpus with the mutation engine, and reports
which bugs were rediscovered — regenerating Table I's shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

MISCOMPILATION = "miscompilation"
CRASH = "crash"


@dataclass(frozen=True)
class SeededBug:
    issue_id: str
    component: str          # Table I component (paper's naming)
    status: str             # fixed / open, per Table I
    kind: str               # miscompilation / crash
    description: str        # Table I description
    host_pass: str          # which of our passes hosts the seeded variant
    trigger: str            # the IR shape that reaches the buggy path


_BUGS: Tuple[SeededBug, ...] = (
    # -- miscompilations (19) ------------------------------------------------
    SeededBug("53252", "InstCombine", "fixed", MISCOMPILATION,
              "didn't update predicate in function 'canonicalizeClampLike'",
              "instcombine",
              "select (icmp ult/ugt x, C) over x and C"),
    SeededBug("50693", "InstCombine", "fixed", MISCOMPILATION,
              "missing a simplification of the opposite shifts of -1",
              "instcombine",
              "lshr (shl -1, x), x"),
    SeededBug("53218", "NewGVN", "fixed", MISCOMPILATION,
              "need to merge IR flags of the removed instruction into the leader",
              "gvn",
              "two identical binops differing only in nsw/nuw flags"),
    SeededBug("55003", "AArch64 backend", "fixed", MISCOMPILATION,
              "need to combine GSIL, GASHR, GSIL of undef shifts to undef",
              "codegen",
              "shl (shl x, C1), C2 with C1+C2 >= width"),
    SeededBug("55201", "AArch64 backend", "fixed", MISCOMPILATION,
              "when matching a disguised rotate by constant should apply "
              "LHSMask/RHSmask",
              "codegen",
              "or (shl (and x, M), C), (lshr x, W-C)"),
    SeededBug("55129", "AArch64 backend", "fixed", MISCOMPILATION,
              "zero-width bitfield extracts to emit 0",
              "codegen",
              "lshr (zext i1 b), C with C >= 1"),
    SeededBug("55271", "multiple backends", "fixed", MISCOMPILATION,
              "missing a freeze to ISD::ABS expansion",
              "codegen",
              "llvm.abs(x, false) expansion at INT_MIN"),
    SeededBug("55284", "AArch64 backend", "fixed", MISCOMPILATION,
              "an or+and miscompile within GlobalISel",
              "codegen",
              "or (and x, C1), (and y, C2) with complementary masks"),
    SeededBug("55287", "AArch64 backend", "fixed", MISCOMPILATION,
              "an urem+udiv miscompilation within GlobalISel",
              "codegen",
              "urem x, 2**k"),
    SeededBug("55296", "multiple backends", "fixed", MISCOMPILATION,
              "didn't clear promoted bits before urem on shift amount",
              "codegen",
              "urem at a non-legal width (e.g. i26)"),
    SeededBug("55342", "AArch64 backend", "fixed", MISCOMPILATION,
              "sext and zext selection in promoted constant",
              "codegen",
              "sdiv/srem by constant at a non-legal width"),
    SeededBug("55484", "multiple backends", "fixed", MISCOMPILATION,
              "wrong match in in MatchBSwapHWordLow",
              "codegen",
              "or (shl x, C), (lshr x, 16-C) on i16 with C != 8"),
    SeededBug("55490", "AArch64 backend", "fixed", MISCOMPILATION,
              "another sext and zext selection in promoted constant",
              "codegen",
              "srem with non-constant divisor at a non-legal width"),
    SeededBug("55627", "AArch64 backend", "fixed", MISCOMPILATION,
              "refine sext and zext selection",
              "codegen",
              "sdiv at a non-legal width"),
    SeededBug("55833", "AArch64 backend", "fixed", MISCOMPILATION,
              "conflict between the selection code in tryBitfieldExtractOp "
              "and isDef32",
              "codegen",
              "and (lshr x, C), low-bit-mask at the width boundary"),
    SeededBug("58109", "AArch64 backend", "fixed", MISCOMPILATION,
              "wrong code generation in usub.sat",
              "codegen",
              "llvm.usub.sat with a high-bit operand"),
    SeededBug("58321", "AArch64 backend", "open", MISCOMPILATION,
              "miscompilation of a frozen poison",
              "codegen",
              "freeze of a nuw/nsw/exact binary operator"),
    SeededBug("58431", "AArch64 backend", "fixed", MISCOMPILATION,
              "wrong GZEXT selection GISel",
              "codegen",
              "zext i1 to iN materialization"),
    SeededBug("59836", "InstCombine", "fixed", MISCOMPILATION,
              "precondition of a peephole optimization is too weak",
              "instcombine",
              "mul of (trunc (zext a)) operands marked nuw"),
    # -- crashes (14) -----------------------------------------------------------
    SeededBug("52884", "InstCombine", "fixed", CRASH,
              'analysis got thwarted by having both "nuw" and "nsw" on the add',
              "instcombine",
              "llvm.smax/smin over add nuw nsw x, C"),
    SeededBug("51618", "newGVN", "open", CRASH,
              "PHI nodes with undef input",
              "gvn",
              "phi with an undef incoming value"),
    SeededBug("56377", "VectorCombine", "fixed", CRASH,
              "created shuffle for extract-extract pattern on scalable vector",
              "codegen",
              "llvm.fshl/fshr with a non-constant shift amount"),
    SeededBug("56463", "InstCombine", "fixed", CRASH,
              "calling a function with a bad signature",
              "instcombine",
              "call passing undef to a noundef parameter"),
    SeededBug("56945", "ConstantFolding", "fixed", CRASH,
              "the dyn_cast to a ConstantInt would fail with a poison input",
              "constfold",
              "intrinsic call with a poison argument"),
    SeededBug("56968", "InstSimplify", "fixed", CRASH,
              "uncovered condition in detecting a poison shift",
              "instsimplify",
              "shift with a constant amount >= bit width"),
    SeededBug("56981", "ConstantFolding", "fixed", CRASH,
              "assertion is too strong",
              "constfold",
              "select with a poison condition"),
    SeededBug("58423", "AArch64 backend", "fixed", CRASH,
              "CSEMIIRBuilder reuse removed instructions",
              "codegen",
              "two identical llvm.abs expansions where the first was erased"),
    SeededBug("58425", "AArch64 backend", "fixed", CRASH,
              "udiv did not reach the legalizer",
              "codegen",
              "udiv/sdiv at a non-legal width (e.g. i26)"),
    SeededBug("59757", "TargetLibraryInfo", "fixed", CRASH,
              "signature for printf is wrong",
              "codegen",
              "call to a printf-family declaration with a wrong signature"),
    SeededBug("64687", "AlignmentFromAssumptions", "fixed", CRASH,
              "missing a corner case",
              "align-from-assumptions",
              'assume with [ "align"(ptr p, i64 N) ] where N is not a power of 2'),
    SeededBug("64661", "MoveAutoInit", "fixed", CRASH,
              "the assertion is too strong",
              "mem2reg",
              "load from an alloca before any store"),
    SeededBug("72035", "SROA", "open", CRASH,
              "wrong code in AllocaSliceRewriter",
              "mem2reg",
              "type-punned load from an alloca"),
    SeededBug("72034", "VectorCombine", "fixed", CRASH,
              "wrong code in scalarizeVPItrinsic",
              "codegen",
              "llvm.sadd.sat/ssub.sat with identical operands"),
)


def all_bugs() -> List[SeededBug]:
    return list(_BUGS)


def all_bug_ids() -> List[str]:
    return [bug.issue_id for bug in _BUGS]


def bugs_by_id() -> Dict[str, SeededBug]:
    return {bug.issue_id: bug for bug in _BUGS}


def get_bug(issue_id: str) -> SeededBug:
    bug = bugs_by_id().get(issue_id)
    if bug is None:
        raise KeyError(f"unknown seeded bug {issue_id}")
    return bug


def miscompilation_bugs() -> List[SeededBug]:
    return [bug for bug in _BUGS if bug.kind == MISCOMPILATION]


def crash_bugs() -> List[SeededBug]:
    return [bug for bug in _BUGS if bug.kind == CRASH]


def summarize() -> str:
    """A Table-I-style summary header."""
    return (f"{len(_BUGS)} seeded bugs: "
            f"{len(miscompilation_bugs())} miscompilations, "
            f"{len(crash_bugs())} crashes")
