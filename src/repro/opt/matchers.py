"""Pattern matchers in the style of LLVM's ``PatternMatch.h``.

Matchers are small callables: ``matcher(value) -> bool``, with capture
slots.  They keep the InstCombine rule library readable::

    lhs = Capture()
    if m_add(m_any(lhs), m_zero())(inst):
        return lhs.value
"""

from __future__ import annotations

from typing import Callable, Optional

from ..ir.instructions import (BinaryOperator, CallInst, CastInst, ICmpInst,
                               SelectInst)
from ..ir.values import ConstantInt, PoisonValue, UndefValue, Value

Matcher = Callable[[Value], bool]


class Capture:
    """Capture slot bound by a successful match."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[Value] = None

    def __call__(self, value: Value) -> bool:
        self.value = value
        return True


class ConstCapture:
    """Captures a ConstantInt and exposes its numeric value."""

    __slots__ = ("constant",)

    def __init__(self) -> None:
        self.constant: Optional[ConstantInt] = None

    def __call__(self, value: Value) -> bool:
        if isinstance(value, ConstantInt):
            self.constant = value
            return True
        return False

    @property
    def value(self) -> int:
        return self.constant.value

    @property
    def signed(self) -> int:
        return self.constant.signed_value()

    @property
    def width(self) -> int:
        return self.constant.type.width


def m_any(capture: Optional[Capture] = None) -> Matcher:
    if capture is None:
        return lambda value: True
    return capture


def m_specific(expected: Value) -> Matcher:
    return lambda value: value is expected


def m_constant_int(capture: Optional[ConstCapture] = None) -> Matcher:
    if capture is None:
        return lambda value: isinstance(value, ConstantInt)
    return capture


def m_specific_int(number: int) -> Matcher:
    def match(value: Value) -> bool:
        return (isinstance(value, ConstantInt)
                and value.value == number & value.type.mask)
    return match


def m_zero() -> Matcher:
    return m_specific_int(0)


def m_one() -> Matcher:
    return m_specific_int(1)


def m_all_ones() -> Matcher:
    def match(value: Value) -> bool:
        return isinstance(value, ConstantInt) and value.is_all_ones()
    return match


def m_power_of_two(capture: Optional[ConstCapture] = None) -> Matcher:
    def match(value: Value) -> bool:
        if not isinstance(value, ConstantInt):
            return False
        if value.value == 0 or value.value & (value.value - 1):
            return False
        if capture is not None:
            capture.constant = value
        return True
    return match


def m_undef() -> Matcher:
    return lambda value: isinstance(value, UndefValue)


def m_poison() -> Matcher:
    return lambda value: isinstance(value, PoisonValue)


def m_binop(opcode: str, lhs: Matcher, rhs: Matcher,
            capture: Optional[Capture] = None) -> Matcher:
    def match(value: Value) -> bool:
        if not isinstance(value, BinaryOperator) or value.opcode != opcode:
            return False
        if lhs(value.lhs) and rhs(value.rhs):
            if capture is not None:
                capture.value = value
            return True
        return False
    return match


def m_c_binop(opcode: str, lhs: Matcher, rhs: Matcher) -> Matcher:
    """Commutative match: tries both operand orders."""
    def match(value: Value) -> bool:
        if not isinstance(value, BinaryOperator) or value.opcode != opcode:
            return False
        if lhs(value.lhs) and rhs(value.rhs):
            return True
        return lhs(value.rhs) and rhs(value.lhs)
    return match


def m_add(lhs: Matcher, rhs: Matcher) -> Matcher:
    return m_binop("add", lhs, rhs)


def m_sub(lhs: Matcher, rhs: Matcher) -> Matcher:
    return m_binop("sub", lhs, rhs)


def m_mul(lhs: Matcher, rhs: Matcher) -> Matcher:
    return m_binop("mul", lhs, rhs)


def m_and(lhs: Matcher, rhs: Matcher) -> Matcher:
    return m_binop("and", lhs, rhs)


def m_or(lhs: Matcher, rhs: Matcher) -> Matcher:
    return m_binop("or", lhs, rhs)


def m_xor(lhs: Matcher, rhs: Matcher) -> Matcher:
    return m_binop("xor", lhs, rhs)


def m_shl(lhs: Matcher, rhs: Matcher) -> Matcher:
    return m_binop("shl", lhs, rhs)


def m_lshr(lhs: Matcher, rhs: Matcher) -> Matcher:
    return m_binop("lshr", lhs, rhs)


def m_ashr(lhs: Matcher, rhs: Matcher) -> Matcher:
    return m_binop("ashr", lhs, rhs)


def m_not(inner: Matcher) -> Matcher:
    """xor X, -1 in either operand order."""
    def match(value: Value) -> bool:
        if not isinstance(value, BinaryOperator) or value.opcode != "xor":
            return False
        if isinstance(value.rhs, ConstantInt) and value.rhs.is_all_ones():
            return inner(value.lhs)
        if isinstance(value.lhs, ConstantInt) and value.lhs.is_all_ones():
            return inner(value.rhs)
        return False
    return match


def m_neg(inner: Matcher) -> Matcher:
    """sub 0, X."""
    def match(value: Value) -> bool:
        return (isinstance(value, BinaryOperator) and value.opcode == "sub"
                and isinstance(value.lhs, ConstantInt)
                and value.lhs.is_zero() and inner(value.rhs))
    return match


def m_icmp(predicate: Optional[str], lhs: Matcher, rhs: Matcher,
           capture: Optional[Capture] = None) -> Matcher:
    def match(value: Value) -> bool:
        if not isinstance(value, ICmpInst):
            return False
        if predicate is not None and value.predicate != predicate:
            return False
        if lhs(value.lhs) and rhs(value.rhs):
            if capture is not None:
                capture.value = value
            return True
        return False
    return match


def m_select(condition: Matcher, true_value: Matcher,
             false_value: Matcher) -> Matcher:
    def match(value: Value) -> bool:
        return (isinstance(value, SelectInst) and condition(value.condition)
                and true_value(value.true_value)
                and false_value(value.false_value))
    return match


def m_zext(inner: Matcher) -> Matcher:
    def match(value: Value) -> bool:
        return (isinstance(value, CastInst) and value.opcode == "zext"
                and inner(value.value))
    return match


def m_sext(inner: Matcher) -> Matcher:
    def match(value: Value) -> bool:
        return (isinstance(value, CastInst) and value.opcode == "sext"
                and inner(value.value))
    return match


def m_trunc(inner: Matcher) -> Matcher:
    def match(value: Value) -> bool:
        return (isinstance(value, CastInst) and value.opcode == "trunc"
                and inner(value.value))
    return match


def m_intrinsic(base_name: str, *arg_matchers: Matcher) -> Matcher:
    def match(value: Value) -> bool:
        if not isinstance(value, CallInst) or not value.is_intrinsic():
            return False
        if value.intrinsic_name() != base_name:
            return False
        args = value.args
        if len(args) < len(arg_matchers):
            return False
        return all(matcher(arg) for matcher, arg
                   in zip(arg_matchers, args))
    return match


def is_one_use(value: Value) -> bool:
    """LLVM's one-use heuristic: only rewrite through values whose sole
    consumer is the pattern being rewritten."""
    return value.num_uses() == 1
