"""The mutation engine: the paper's primary contribution."""

from .engine import (MutantInvalidError, MutantRecord, Mutator,
                     MutatorConfig)
from .mutations import DEFAULT_WEIGHTS, MUTATIONS
from .primitives import (random_constant, random_dominating_value,
                         replace_operand_with_dominating)
from .rng import MutationRNG

__all__ = [
    "MutantInvalidError", "MutantRecord", "Mutator", "MutatorConfig",
    "DEFAULT_WEIGHTS", "MUTATIONS",
    "random_constant", "random_dominating_value",
    "replace_operand_with_dominating",
    "MutationRNG",
]
