"""The mutation engine (paper §III).

:class:`Mutator` owns a parsed module, preprocesses every function once
(dominator tree, constant pool, shufflable ranges — §III-A), and then
produces mutants: each :meth:`create_mutant` call clones the in-memory IR,
applies one or more randomly-selected mutation operators per function
through the two-level analysis overlay (§III-B), and returns the mutated
module together with the seed that reproduces it (§III-E).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import time

from ..analysis.overlay import MutantOverlay, OriginalFunctionInfo
from ..ir.function import Function
from ..ir.module import Module
from ..ir.verifier import collect_function_errors
from ..obs import NULL_TRACER
from .mutations import DEFAULT_WEIGHTS, MUTATIONS
from .rng import MutationRNG


@dataclass
class MutatorConfig:
    """Tuning knobs for the engine."""

    # How many mutations to apply to each function (inclusive range).
    min_mutations: int = 1
    max_mutations: int = 3
    # Which operators are in play (None = all of §IV).
    enabled_mutations: Optional[Sequence[str]] = None
    # Run the IR verifier on every mutant (the 100%-valid property; slow,
    # so campaigns may disable it and rely on the test suite's guarantee).
    verify_mutants: bool = False
    # Restrict mutation to these function names (None = all definitions).
    only_functions: Optional[Sequence[str]] = None
    # Copy-on-write cloning: share declarations and untargeted definitions
    # with the seed module and deep-copy only the functions this engine
    # will mutate.  Off = the classic full deep clone per mutant.
    cow_clone: bool = True
    # Analysis strategy (the paper §III-B ablation): "two-level" reuses the
    # original function's immutable analyses through the overlay;
    # "recompute" forces a fresh dominator tree per mutant.
    overlay_mode: str = "two-level"

    def mutation_names(self) -> List[str]:
        if self.enabled_mutations is None:
            return list(MUTATIONS)
        unknown = set(self.enabled_mutations) - set(MUTATIONS)
        if unknown:
            raise ValueError(f"unknown mutations: {sorted(unknown)}")
        return list(self.enabled_mutations)


@dataclass
class MutantRecord:
    """What happened while creating one mutant (for logging/replay)."""

    seed: int
    applied: List[Tuple[str, str]] = field(default_factory=list)  # (fn, op)
    # How many definitions the clone deep-copied: all of them for full
    # clones, only the mutation targets under copy-on-write.
    functions_copied: int = 0
    # Per mutated function: the names of the blocks its mutations
    # touched, or None when an effect could not be localized — the seed
    # of the incremental optimizer's dirty region (repro.opt.incremental).
    touched: Dict[str, Optional[FrozenSet[str]]] = field(default_factory=dict)

    def dirty_functions(self) -> set:
        """Names of functions at least one operator actually changed."""
        return {fn for fn, _ in self.applied}

    def describe(self) -> str:
        ops = ", ".join(f"{op}@{fn}" for fn, op in self.applied) or "none"
        return f"seed={self.seed} [{ops}]"


class MutantInvalidError(Exception):
    """A mutant failed IR verification (must never happen; see tests)."""

    def __init__(self, record: MutantRecord, errors: List[str]) -> None:
        super().__init__(f"{record.describe()}: {'; '.join(errors)}")
        self.record = record
        self.errors = errors


class Mutator:
    """Produces valid mutants of one module, repeatably."""

    def __init__(self, module: Module,
                 config: Optional[MutatorConfig] = None,
                 tracer=None) -> None:
        self.module = module
        self.config = config or MutatorConfig()
        # Span tracing (repro.obs): per-clone and per-operator spans when
        # enabled; the null tracer costs one attribute check otherwise.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # §III-A preprocessing: per-function analyses, computed once.
        self._infos: Dict[str, OriginalFunctionInfo] = {}
        for function in module.definitions():
            if self._targeted(function):
                self._infos[function.name] = OriginalFunctionInfo(function)
        # Per-iteration invariants hoisted out of create_mutant: operator
        # validation and the weights list never change between seeds.
        self._names = self.config.mutation_names()
        self._weights = [DEFAULT_WEIGHTS.get(name, 1) for name in self._names]

    def _targeted(self, function: Function) -> bool:
        only = self.config.only_functions
        return only is None or function.name in only

    @property
    def target_names(self) -> List[str]:
        return list(self._infos)

    # -- mutant creation ------------------------------------------------------

    def create_mutant(self, seed: int,
                      operators: Optional[Sequence[str]] = None
                      ) -> Tuple[Module, MutantRecord]:
        """Clone + mutate; deterministic in ``(seed, operators)``.

        ``operators`` restricts this call to the given mutation classes
        (a feedback scheduler pins one class per iteration); None keeps
        the engine's weighted draw over its configured classes.
        """
        if operators is None:
            names = self._names
            weights = self._weights
        else:
            unknown = set(operators) - set(MUTATIONS)
            if unknown:
                raise ValueError(f"unknown mutations: {sorted(unknown)}")
            names = list(operators)
            weights = [DEFAULT_WEIGHTS.get(name, 1) for name in names]
        rng = MutationRNG(seed)
        record = MutantRecord(seed=seed)
        tracer = self.tracer
        mutable_only = set(self._infos) if self.config.cow_clone else None
        if tracer.enabled:
            begin = time.perf_counter()
            mutant_module = self.module.clone(mutable_only=mutable_only)
            tracer.record("mutate.clone", begin,
                          time.perf_counter() - begin, seed=seed)
        else:
            mutant_module = self.module.clone(mutable_only=mutable_only)
        record.functions_copied = (
            len(self._infos) if mutable_only is not None
            else len(self.module.definitions()))

        for function_name, info in self._infos.items():
            mutant_function = mutant_module.get_function(function_name)
            if mutant_function is None or mutant_function.is_declaration():
                continue
            overlay = MutantOverlay(mutant_function, info)
            recompute = self.config.overlay_mode == "recompute"
            count = rng.randint(self.config.min_mutations,
                                self.config.max_mutations)
            applied = 0
            attempts = 0
            while applied < count and attempts < count * 6:
                attempts += 1
                if recompute:
                    # Ablation mode: no two-level caching — treat every
                    # analysis as stale before each mutation, like a tool
                    # that conservatively recomputes instead of overlaying.
                    overlay.invalidate_cfg()
                name = _weighted_choice(rng, names, weights)
                notes_before = overlay.touch_notes
                if tracer.enabled:
                    begin = time.perf_counter()
                    changed = MUTATIONS[name](overlay, rng)
                    tracer.record("mutate.op." + name, begin,
                                  time.perf_counter() - begin,
                                  function=function_name, changed=changed)
                else:
                    changed = MUTATIONS[name](overlay, rng)
                if changed:
                    if overlay.touch_notes == notes_before:
                        # The operator changed the function without saying
                        # where: conservatively dirty the whole function.
                        overlay.note_touched_all()
                    record.applied.append((function_name, name))
                    applied += 1
            if applied:
                record.touched[function_name] = overlay.touched_blocks()

        if self.config.verify_mutants:
            errors: List[str] = []
            shared = mutant_module.shared_names()
            for function in mutant_module.definitions():
                if function.name in shared:
                    continue  # immutable views of already-verified originals
                errors.extend(collect_function_errors(function))
            if errors:
                raise MutantInvalidError(record, errors)
        return mutant_module, record

    def recreate_mutant(self, seed: int) -> Module:
        """Replay a logged seed (the paper's save-on-demand workflow)."""
        mutant, _ = self.create_mutant(seed)
        return mutant


def _weighted_choice(rng: MutationRNG, names: Sequence[str],
                     weights: Sequence[int]) -> str:
    total = sum(weights)
    pick = rng.randint(1, total)
    for name, weight in zip(names, weights):
        pick -= weight
        if pick <= 0:
            return name
    return names[-1]
