"""The dominating-value primitive (paper §IV-F).

    "for a given program point, randomly generate a dominating SSA value
     with compatible type"

These conditions are necessary and sufficient for replacing an arbitrary
SSA use without breaking SSA invariants.  The value produced is one of:

* an existing dominating value of the right type (argument or instruction),
* a fresh literal constant (very rarely ``undef``),
* a fresh randomly-generated instruction whose operands are chosen by
  recursively invoking this same primitive, or
* a fresh function parameter (as in the paper's Listing 11).

The program point is an *anchor instruction*: fresh instructions are
inserted immediately before it, and availability is judged at its slot.
Anchoring (rather than passing numeric slots) keeps positions stable while
recursive invocations insert operands.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.overlay import MutantOverlay
from ..ir.builder import IRBuilder
from ..ir.instructions import BINARY_OPCODES, ICMP_PREDICATES, Instruction
from ..ir.intrinsics import (GENERATABLE_BINARY_INTRINSICS, declare_intrinsic,
                             supports_width)
from ..ir.types import IntType, Type
from ..ir.values import (ConstantInt, ConstantPointerNull, PoisonValue,
                         UndefValue, Value)
from .rng import MutationRNG

MAX_RECURSION = 2
UNDEF_PROBABILITY = 0.03


def random_dominating_value(overlay: MutantOverlay, anchor: Instruction,
                            type: Type, rng: MutationRNG,
                            depth: int = 0,
                            allow_undef: bool = True) -> Value:
    """A type-compatible SSA value available just before ``anchor``.

    May insert fresh instructions before ``anchor`` and may append fresh
    function parameters.
    """
    block = anchor.parent
    roll = rng.random()
    existing = overlay.dominating_values_at(block, block.index_of(anchor), type)
    if existing and roll < 0.55:
        return rng.choice(existing)
    if isinstance(type, IntType):
        if roll < 0.75 or depth >= MAX_RECURSION:
            return random_constant(type, overlay, rng, allow_undef)
        fresh = _random_instruction(overlay, anchor, type, rng, depth)
        if fresh is not None:
            return fresh
        return random_constant(type, overlay, rng, allow_undef)
    if type.is_pointer():
        if allow_undef and rng.chance(UNDEF_PROBABILITY):
            return UndefValue(type)
        if roll < 0.8 and not overlay.signature_is_frozen():
            return _fresh_parameter(overlay, type)
        return ConstantPointerNull()
    if not overlay.signature_is_frozen():
        return _fresh_parameter(overlay, type)
    if existing:
        return rng.choice(existing)
    if isinstance(type, IntType):
        return random_constant(type, overlay, rng, allow_undef)
    return ConstantPointerNull()


def random_constant(type: IntType, overlay: MutantOverlay, rng: MutationRNG,
                    allow_undef: bool = True) -> Value:
    if allow_undef and rng.chance(UNDEF_PROBABILITY):
        # LLVM's own test suite uses undef and poison literals; both are
        # valid inputs to the optimizer, so the mutator produces them too.
        if rng.chance(0.4):
            return PoisonValue(type)
        return UndefValue(type)
    pool = overlay.constant_pool.values_for_width(type.width)
    return ConstantInt(type, rng.random_int_value(type.width, pool))


def _fresh_parameter(overlay: MutantOverlay, type: Type) -> Value:
    function = overlay.mutant
    return function.add_argument(type, function.next_temp_name())


def _random_instruction(overlay: MutantOverlay, anchor: Instruction,
                        type: IntType, rng: MutationRNG,
                        depth: int) -> Optional[Value]:
    """Insert a fresh instruction computing ``type`` just before ``anchor``."""

    def operand(of_type: Type = type) -> Value:
        return random_dominating_value(overlay, anchor, of_type, rng,
                                       depth + 1)

    def builder() -> IRBuilder:
        b = IRBuilder()
        b.set_insert_before(anchor)
        return b

    kind = rng.choice(["binop", "binop", "cmp-or-ext", "intrinsic", "select"])
    if kind == "binop":
        opcode = rng.choice(BINARY_OPCODES)
        lhs, rhs = operand(), operand()
        flags = {}
        if opcode in ("add", "sub", "mul", "shl"):
            flags = {"nuw": rng.chance(0.25), "nsw": rng.chance(0.25)}
        elif opcode in ("udiv", "sdiv", "lshr", "ashr"):
            flags = {"exact": rng.chance(0.2)}
        return builder().binop(opcode, lhs, rhs, **flags)
    if kind == "intrinsic":
        eligible = [name for name in GENERATABLE_BINARY_INTRINSICS
                    if supports_width(name, type.width)]
        module = overlay.mutant.parent
        if not eligible or module is None:
            return None
        callee = declare_intrinsic(module, rng.choice(eligible), type.width)
        lhs, rhs = operand(), operand()
        return builder().call(callee, [lhs, rhs])
    if kind == "select" and type.width > 1:
        condition = operand(IntType(1))
        true_value, false_value = operand(), operand()
        return builder().select(condition, true_value, false_value)
    # Fall-through ("cmp-or-ext", or select at i1): an icmp for i1 results,
    # otherwise a zext of a fresh i1.
    if type.width == 1:
        lhs = operand()
        rhs = operand()
        return builder().icmp(rng.choice(ICMP_PREDICATES), lhs, rhs)
    condition = operand(IntType(1))
    return builder().zext(condition, type)


def replace_operand_with_dominating(overlay: MutantOverlay,
                                    inst: Instruction, operand_index: int,
                                    rng: MutationRNG) -> bool:
    """Replace one operand of ``inst`` using the primitive (the §IV-F
    use mutation)."""
    from ..ir.instructions import PhiNode

    if inst.parent is None:
        return False
    operand = inst.operands[operand_index]
    if not operand.type.is_first_class():
        return False
    anchor: Instruction = inst
    if isinstance(inst, PhiNode):
        if operand_index % 2 == 1:
            return False  # the block operand of an incoming edge
        # A phi value must dominate the END of its incoming block, and
        # nothing may be inserted before a phi: anchor at the incoming
        # block's terminator instead.
        incoming_block = inst.operands[operand_index + 1]
        terminator = incoming_block.terminator()
        if terminator is None:
            return False
        anchor = terminator
    replacement = random_dominating_value(overlay, anchor, operand.type, rng)
    inst.set_operand(operand_index, replacement)
    overlay.note_touched_value(inst)
    # The old operand lost a use: one-use rules at its remaining users
    # (possibly in other blocks) may now fire.
    overlay.note_touched_value(operand)
    if anchor is not inst:
        # Fresh instructions were anchored at the incoming block's
        # terminator (the phi case), not at ``inst`` itself.
        overlay.note_touched_value(anchor)
    return True
