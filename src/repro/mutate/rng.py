"""Seeded PRNG wrapper with the repeatability contract of the paper.

Alive-mutate "ensures that its runs are repeatable by logging an
individual PRNG seed that led to the creation of each specific mutant"
(§III-E).  :class:`MutationRNG` carries its seed so the fuzzing driver can
log it per mutant and re-create any mutant exactly.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, TypeVar

T = TypeVar("T")


class MutationRNG:
    """A seeded random source; every draw is reproducible from the seed."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def spawn(self, salt: int) -> "MutationRNG":
        """A child RNG with a derived (and thus loggable) seed."""
        return MutationRNG((self.seed * 1000003 + salt) & 0x7FFFFFFFFFFFFFFF)

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def getrandbits(self, bits: int) -> int:
        if bits <= 0:
            return 0
        return self._random.getrandbits(bits)

    def random(self) -> float:
        return self._random.random()

    def chance(self, probability: float) -> bool:
        return self._random.random() < probability

    def choice(self, options: Sequence[T]) -> T:
        return options[self._random.randrange(len(options))]

    def maybe_choice(self, options: Sequence[T]) -> Optional[T]:
        if not options:
            return None
        return self.choice(options)

    def sample(self, options: Sequence[T], count: int) -> List[T]:
        count = min(count, len(options))
        return self._random.sample(list(options), count)

    def shuffled(self, options: Sequence[T]) -> List[T]:
        items = list(options)
        self._random.shuffle(items)
        return items

    def random_int_value(self, width: int,
                         pool: Optional[Sequence[int]] = None) -> int:
        """A mutation-friendly constant: pool values, corner values, or a
        uniformly random bit pattern."""
        mask = (1 << width) - 1
        roll = self._random.random()
        if pool and roll < 0.4:
            return self.choice(list(pool)) & mask
        if roll < 0.6:
            corners = [0, 1, mask, 1 << (width - 1) if width > 1 else 0,
                       (1 << (width - 1)) - 1 if width > 1 else 1]
            return self.choice(corners) & mask
        return self._random.getrandbits(width)
