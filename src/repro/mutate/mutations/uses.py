"""Use mutation (paper §IV-F, Listings 10 and 11).

Replaces a randomly-chosen SSA use with a value produced by the
dominating-value primitive: an existing in-scope value, a fresh constant,
a fresh random instruction, or a fresh function parameter.
"""

from __future__ import annotations

from typing import List, Tuple

from ...analysis.overlay import MutantOverlay
from ...ir.basicblock import BasicBlock
from ...ir.instructions import BrInst, Instruction, PhiNode, SwitchInst
from ..primitives import replace_operand_with_dominating
from ..rng import MutationRNG


def _use_scan(function) -> List[tuple]:
    sites: List[tuple] = []
    for bi, block in enumerate(function.blocks):
        for ii, inst in enumerate(block.instructions):
            if isinstance(inst, SwitchInst):
                continue  # case constants / labels: structural constraints
            for index, operand in enumerate(inst.operands):
                if isinstance(operand, BasicBlock):
                    continue
                if isinstance(inst, PhiNode) and index % 2 == 1:
                    continue
                if isinstance(inst, BrInst) and index > 0:
                    continue
                if not operand.type.is_first_class():
                    continue
                sites.append((bi, ii, index))
    return sites


def _use_sites(overlay: MutantOverlay) -> List[Tuple[Instruction, int]]:
    return overlay.enumerate_sites("uses", _use_scan)


def apply(overlay: MutantOverlay, rng: MutationRNG) -> bool:
    sites = _use_sites(overlay)
    if not sites:
        return False
    inst, index = rng.choice(sites)
    return replace_operand_with_dominating(overlay, inst, index, rng)
