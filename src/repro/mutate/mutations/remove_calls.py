"""Void-call removal (paper §IV-C, Listing 7).

Dropping a call to a void function changes the program's memory behavior
(the callee may have clobbered memory) but never breaks SSA — the call
has no result to have users.
"""

from __future__ import annotations

from ...analysis.overlay import MutantOverlay
from ...ir.instructions import CallInst
from ..rng import MutationRNG


def apply(overlay: MutantOverlay, rng: MutationRNG) -> bool:
    candidates = [inst for inst in overlay.mutant.instructions()
                  if isinstance(inst, CallInst) and inst.type.is_void()
                  and inst.intrinsic_name() != "llvm.assume"]
    victim = rng.maybe_choice(candidates)
    if victim is None:
        return False
    victim.erase_from_parent()
    return True


def apply_including_assumes(overlay: MutantOverlay, rng: MutationRNG) -> bool:
    """Variant that may also drop llvm.assume calls (strictly weakening)."""
    candidates = [inst for inst in overlay.mutant.instructions()
                  if isinstance(inst, CallInst) and inst.type.is_void()]
    victim = rng.maybe_choice(candidates)
    if victim is None:
        return False
    victim.erase_from_parent()
    return True
