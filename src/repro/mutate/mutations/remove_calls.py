"""Void-call removal (paper §IV-C, Listing 7).

Dropping a call to a void function changes the program's memory behavior
(the callee may have clobbered memory) but never breaks SSA — the call
has no result to have users.
"""

from __future__ import annotations

from typing import List

from ...analysis.overlay import MutantOverlay
from ...ir.instructions import CallInst, Instruction
from ..rng import MutationRNG


def _void_call_scan(function) -> List[tuple]:
    return [(bi, ii)
            for bi, block in enumerate(function.blocks)
            for ii, inst in enumerate(block.instructions)
            if isinstance(inst, CallInst) and inst.type.is_void()
            and inst.intrinsic_name() != "llvm.assume"]


def _any_void_call_scan(function) -> List[tuple]:
    return [(bi, ii)
            for bi, block in enumerate(function.blocks)
            for ii, inst in enumerate(block.instructions)
            if isinstance(inst, CallInst) and inst.type.is_void()]


def _erase(overlay: MutantOverlay, victim: CallInst) -> None:
    overlay.note_touched_value(victim)
    # The arguments each lose a use; note them so one-use rules at their
    # remaining users are re-examined.
    operands = [op for op in victim.operands if isinstance(op, Instruction)]
    victim.erase_from_parent()
    for operand in operands:
        overlay.note_touched_value(operand)


def apply(overlay: MutantOverlay, rng: MutationRNG) -> bool:
    candidates = overlay.enumerate_sites("void-calls", _void_call_scan)
    victim = rng.maybe_choice(candidates)
    if victim is None:
        return False
    _erase(overlay, victim)
    return True


def apply_including_assumes(overlay: MutantOverlay, rng: MutationRNG) -> bool:
    """Variant that may also drop llvm.assume calls (strictly weakening)."""
    candidates = overlay.enumerate_sites("void-calls-all", _any_void_call_scan)
    victim = rng.maybe_choice(candidates)
    if victim is None:
        return False
    _erase(overlay, victim)
    return True
