"""Instruction shuffling (paper §IV-D, Listing 8).

Consecutive instructions with no mutual def-use dependencies can be
permuted without breaking SSA.  The maximal ranges are precomputed on the
*original* function (§III-A) and read through the two-level overlay; each
is re-validated against the mutant (a prior mutation may have rewritten
operands inside the range) before permuting.
"""

from __future__ import annotations

from ...analysis.overlay import MutantOverlay
from ...analysis.shuffle_ranges import range_is_still_valid
from ..rng import MutationRNG


def apply(overlay: MutantOverlay, rng: MutationRNG) -> bool:
    ranges = overlay.shuffle_ranges
    if not ranges:
        return False
    for shuffle_range in rng.shuffled(ranges):
        block = overlay.mutant.block_named(shuffle_range.block_name)
        if block is None:
            continue
        if not range_is_still_valid(block, shuffle_range):
            continue
        start, end = shuffle_range.start, shuffle_range.end
        selected = block.instructions[start:end]
        permuted = rng.shuffled(selected)
        if all(a is b for a, b in zip(selected, permuted)):
            # Identity permutation: rotate instead so something changes.
            permuted = selected[1:] + selected[:1]
        block.instructions[start:end] = permuted
        overlay.note_touched_block(block)
        overlay.invalidate_positions()
        return True
    return False
