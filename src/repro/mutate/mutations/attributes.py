"""Attribute mutation (paper §IV-A).

Randomly toggles function-level and parameter-level attributes, as in the
paper's Listing 5 (``dereferenceable(2)`` on a pointer parameter plus
``nofree`` on the function).  Attributes are assertions the optimizer may
exploit, so inconsistent enforcement of their semantics is a classic bug
source.
"""

from __future__ import annotations

from ...analysis.overlay import MutantOverlay
from ...ir.attributes import Attribute
from ..rng import MutationRNG

# Function attributes safe to toggle: they never contradict the body's
# actual behavior in a way the validator cannot model.
TOGGLEABLE_FUNCTION_ATTRIBUTES = (
    "nofree", "nosync", "nounwind", "willreturn", "mustprogress",
    "norecurse", "cold", "hot", "noinline",
)

# Pointer-parameter attributes (value-semantics ones are enforced by the
# validator's input generation / interpreter).
TOGGLEABLE_POINTER_ATTRIBUTES = ("nocapture", "nonnull", "noalias", "nofree")

# Integer-parameter attributes.
TOGGLEABLE_INT_ATTRIBUTES = ("noundef",)

DEREFERENCEABLE_SIZES = (1, 2, 4, 8, 16, 32)


def apply(overlay: MutantOverlay, rng: MutationRNG) -> bool:
    function = overlay.mutant
    actions = ["function"]
    if function.arguments:
        actions.extend(["param", "param"])
    action = rng.choice(actions)

    # No optimizer pass or analysis reads attributes (they only matter to
    # the validator's input generation and refinement semantics), so an
    # attribute flip leaves the pass pipeline's view of the function
    # untouched — note it as such instead of degrading to whole-function.
    if action == "function":
        name = rng.choice(TOGGLEABLE_FUNCTION_ATTRIBUTES)
        function.attributes.toggle(Attribute(name))
        overlay.note_touched_nothing()
        return True

    argument = rng.choice(function.arguments)
    if argument.type.is_pointer():
        if rng.chance(0.3):
            # Toggle a dereferenceable(N) guarantee.
            if argument.attributes.has("dereferenceable"):
                argument.attributes.remove("dereferenceable")
            else:
                size = rng.choice(DEREFERENCEABLE_SIZES)
                argument.attributes.add(Attribute("dereferenceable", size))
            overlay.note_touched_nothing()
            return True
        name = rng.choice(TOGGLEABLE_POINTER_ATTRIBUTES)
        argument.attributes.toggle(Attribute(name))
        overlay.note_touched_nothing()
        return True
    if argument.type.is_integer():
        name = rng.choice(TOGGLEABLE_INT_ATTRIBUTES)
        argument.attributes.toggle(Attribute(name))
        overlay.note_touched_nothing()
        return True
    return False
