"""The mutation operator catalog (paper §IV)."""

from typing import Callable, Dict

from ...analysis.overlay import MutantOverlay
from ..rng import MutationRNG
from . import (arithmetic, attributes, bitwidth, inlining, move,
               remove_calls, shuffle, uses)

MutationFn = Callable[[MutantOverlay, MutationRNG], bool]

# Name -> operator, in the paper's §IV order.
MUTATIONS: Dict[str, MutationFn] = {
    "attributes": attributes.apply,        # §IV-A
    "inlining": inlining.apply,            # §IV-B
    "remove-call": remove_calls.apply,     # §IV-C
    "shuffle": shuffle.apply,              # §IV-D
    "arithmetic": arithmetic.apply,        # §IV-E
    "uses": uses.apply,                    # §IV-F
    "move": move.apply,                    # §IV-G
    "bitwidth": bitwidth.apply,            # §IV-H
}

# Relative selection weights: arithmetic and use mutations fire most often,
# like the aggressive defaults described in §IV-E/F.
DEFAULT_WEIGHTS: Dict[str, int] = {
    "attributes": 1,
    "inlining": 1,
    "remove-call": 1,
    "shuffle": 2,
    "arithmetic": 4,
    "uses": 3,
    "move": 2,
    "bitwidth": 2,
}

__all__ = ["MUTATIONS", "DEFAULT_WEIGHTS", "MutationFn"]
