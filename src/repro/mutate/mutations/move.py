"""Instruction motion (paper §IV-G, Listing 12).

Moving an instruction breaks two kinds of SSA edges, both repaired with
the dominating-value primitive:

* moving UP past a definition it uses — the use is replaced with a fresh
  dominating value;
* moving DOWN past one of its users — that user's use of the moved
  instruction is replaced.
"""

from __future__ import annotations

from typing import List

from ...analysis.overlay import MutantOverlay
from ...ir.instructions import Instruction, PhiNode
from ..primitives import replace_operand_with_dominating
from ..rng import MutationRNG


def _movable_scan(function) -> List[tuple]:
    movable: List[tuple] = []
    for bi, block in enumerate(function.blocks):
        lo = block.first_non_phi_index()
        hi = len(block.instructions)
        if block.terminator() is not None:
            hi -= 1
        if hi - lo >= 2:
            movable.extend((bi, ii) for ii in range(lo, hi))
    return movable


def _movable(overlay: MutantOverlay) -> List[Instruction]:
    return overlay.enumerate_sites("movable", _movable_scan)


def apply(overlay: MutantOverlay, rng: MutationRNG) -> bool:
    victim = rng.maybe_choice(_movable(overlay))
    if victim is None:
        return False
    block = victim.parent
    lo = block.first_non_phi_index()
    hi = len(block.instructions)
    if block.terminator() is not None:
        hi -= 1
    old_index = block.index_of(victim)
    choices = [i for i in range(lo, hi) if i != old_index]
    if not choices:
        return False
    new_index = rng.choice(choices)

    block.remove(victim)
    block.insert(new_index, victim)

    if new_index < old_index:
        # Moved up: operands now defined after the new position must be
        # replaced (the Listing 12 case: %c moves above %a and %b).
        crossed = {id(inst) for inst in block.instructions
                   if inst is not victim
                   and new_index < block.index_of(inst) <= old_index}
        for index, operand in enumerate(list(victim.operands)):
            if isinstance(operand, Instruction) and id(operand) in crossed:
                replace_operand_with_dominating(overlay, victim, index, rng)
    else:
        # Moved down: users between the old and new position lose their
        # dominating definition.
        for use in victim.uses:
            user = use.user
            if isinstance(user, PhiNode) or user.parent is not block:
                continue
            user_index = block.index_of(user)
            if old_index <= user_index < block.index_of(victim):
                replace_operand_with_dominating(overlay, user, use.index, rng)
    overlay.note_touched_value(victim)
    overlay.invalidate_positions()
    return True
