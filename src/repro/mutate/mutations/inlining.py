"""Abusive inlining (paper §IV-B, Listing 6).

The inliner is pointed at a function *other than* the intended callee —
any defined function with a compatible signature — on the hypothesis that
splicing a different body into the call site creates interesting IR.  The
intended callee itself is also a valid (boring) choice when nothing else
is compatible.

Only single-block callees are inlined (no block splitting needed); that is
the common shape of the helper functions in the corpus.
"""

from __future__ import annotations

from typing import Dict, Optional

from ...analysis.overlay import MutantOverlay
from ...ir.function import Function
from ...ir.instructions import CallInst, RetInst
from ...ir.module import _clone_instruction
from ...ir.values import Value
from ..primitives import random_dominating_value
from ..rng import MutationRNG


def _inlinable(function: Function) -> bool:
    if function.is_declaration() or len(function.blocks) != 1:
        return False
    terminator = function.blocks[0].terminator()
    return isinstance(terminator, RetInst)


def _signature_compatible(call: CallInst, candidate: Function) -> bool:
    if len(candidate.arguments) != len(call.args):
        return False
    return all(arg.type is param.type
               for arg, param in zip(call.args, candidate.arguments))


def apply(overlay: MutantOverlay, rng: MutationRNG) -> bool:
    function = overlay.mutant
    module = function.parent
    if module is None:
        return False
    calls = [inst for inst in function.instructions()
             if isinstance(inst, CallInst) and not inst.is_intrinsic()]
    call = rng.maybe_choice(calls)
    if call is None:
        return False
    candidates = [f for f in module.definitions()
                  if f is not function and _inlinable(f)
                  and _signature_compatible(call, f)]
    # Prefer a function other than the intended callee (that is the abuse).
    others = [f for f in candidates if f is not call.callee]
    chosen = rng.maybe_choice(others) or rng.maybe_choice(candidates)
    if chosen is None:
        return False
    _inline_body(call, chosen, overlay, rng)
    # Inlining rewires uses of the call's result and may splice arbitrary
    # instructions; treat the whole function as touched.
    overlay.note_touched_all()
    overlay.invalidate_positions()
    return True


def _inline_body(call: CallInst, callee: Function, overlay: MutantOverlay,
                 rng: MutationRNG) -> None:
    block = call.parent
    value_map: Dict[int, Value] = {}
    for argument, actual in zip(callee.arguments, call.args):
        value_map[id(argument)] = actual

    def remap(value: Value) -> Value:
        return value_map.get(id(value), value)

    insert_at = block.index_of(call)
    return_value: Optional[Value] = None
    for inst in callee.blocks[0].instructions:
        if isinstance(inst, RetInst):
            if inst.return_value is not None:
                return_value = remap(inst.return_value)
            break
        cloned = _clone_instruction(inst, remap)
        cloned.name = call.parent.parent.next_temp_name() \
            if cloned.type.is_first_class() else ""
        block.insert(insert_at, cloned)
        insert_at += 1
        value_map[id(inst)] = cloned

    if call.type.is_void():
        call.erase_from_parent()
        return
    if return_value is not None and return_value.type is call.type:
        call.replace_all_uses_with(return_value)
        call.erase_from_parent()
        return
    # Return type mismatch (the chosen body returns a different type than
    # the call produced): substitute a dominating value for the call's
    # users, then drop the call.
    anchor = block.instructions[insert_at]
    substitute = random_dominating_value(overlay, anchor, call.type, rng)
    call.replace_all_uses_with(substitute)
    call.erase_from_parent()
