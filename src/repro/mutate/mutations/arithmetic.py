"""Arithmetic mutations (paper §IV-E).

Randomly: changes the operation (e.g. add -> shl), swaps the two operands
of binary instructions, toggles poison flags (nuw/nsw/exact), and replaces
literal constants with values drawn from the function's constant pool or
fresh random values.  GEP is treated as arithmetic (its indices mutate like
constants); icmp predicates also rotate here.
"""

from __future__ import annotations

from typing import List, Tuple

from ...analysis.overlay import MutantOverlay
from ...ir.instructions import (BINARY_OPCODES, BinaryOperator,
                                EXACT_FLAG_OPCODES, ICMP_PREDICATES,
                                ICmpInst, Instruction, SwitchInst,
                                WRAPPING_FLAG_OPCODES)
from ...ir.values import ConstantInt
from ..primitives import random_constant
from ..rng import MutationRNG


def apply(overlay: MutantOverlay, rng: MutationRNG) -> bool:
    action = rng.choice(["opcode", "swap", "flags", "constant", "constant",
                         "predicate"])
    if action == "opcode":
        return change_opcode(overlay, rng)
    if action == "swap":
        return swap_operands(overlay, rng)
    if action == "flags":
        return toggle_flags(overlay, rng)
    if action == "predicate":
        return change_predicate(overlay, rng)
    return replace_constant(overlay, rng)


def _binop_scan(function) -> List[tuple]:
    return [(bi, ii)
            for bi, block in enumerate(function.blocks)
            for ii, inst in enumerate(block.instructions)
            if isinstance(inst, BinaryOperator)]


def _icmp_scan(function) -> List[tuple]:
    return [(bi, ii)
            for bi, block in enumerate(function.blocks)
            for ii, inst in enumerate(block.instructions)
            if isinstance(inst, ICmpInst)]


def _binops(overlay: MutantOverlay) -> List[BinaryOperator]:
    return overlay.enumerate_sites("binops", _binop_scan)


def change_opcode(overlay: MutantOverlay, rng: MutationRNG) -> bool:
    """Turn one binary operation into a random different one."""
    victim = rng.maybe_choice(_binops(overlay))
    if victim is None:
        return False
    others = [op for op in BINARY_OPCODES if op != victim.opcode]
    victim.opcode = rng.choice(others)
    # Drop flags the new opcode cannot carry.
    if victim.opcode not in WRAPPING_FLAG_OPCODES:
        victim.nuw = victim.nsw = False
    if victim.opcode not in EXACT_FLAG_OPCODES:
        victim.exact = False
    overlay.note_touched_value(victim)
    return True


def swap_operands(overlay: MutantOverlay, rng: MutationRNG) -> bool:
    candidates: List[Instruction] = list(_binops(overlay))
    candidates.extend(overlay.enumerate_sites("icmps", _icmp_scan))
    victim = rng.maybe_choice(candidates)
    if victim is None:
        return False
    lhs, rhs = victim.operands[0], victim.operands[1]
    victim.set_operand(0, rhs)
    victim.set_operand(1, lhs)
    overlay.note_touched_value(victim)
    return True


def toggle_flags(overlay: MutantOverlay, rng: MutationRNG) -> bool:
    candidates = [inst for inst in _binops(overlay)
                  if inst.supports_wrapping_flags()
                  or inst.supports_exact_flag()]
    victim = rng.maybe_choice(candidates)
    if victim is None:
        return False
    if victim.supports_wrapping_flags():
        which = rng.choice(["nuw", "nsw", "both"])
        if which in ("nuw", "both"):
            victim.nuw = not victim.nuw
        if which in ("nsw", "both"):
            victim.nsw = not victim.nsw
    else:
        victim.exact = not victim.exact
    overlay.note_touched_value(victim)
    return True


def change_predicate(overlay: MutantOverlay, rng: MutationRNG) -> bool:
    candidates = overlay.enumerate_sites("icmps", _icmp_scan)
    victim = rng.maybe_choice(candidates)
    if victim is None:
        return False
    others = [p for p in ICMP_PREDICATES if p != victim.predicate]
    victim.predicate = rng.choice(others)
    overlay.note_touched_value(victim)
    return True


def _constant_scan(function) -> List[tuple]:
    """(block, instruction, operand) descriptors holding a mutable literal.

    Switch case values are excluded (uniqueness constraint); everything
    else — including intrinsic flag arguments and assume-bundle operands,
    which is how the campaign reaches the alignment bug — is fair game.
    """
    sites: List[tuple] = []
    for bi, block in enumerate(function.blocks):
        for ii, inst in enumerate(block.instructions):
            if isinstance(inst, SwitchInst):
                continue
            for index, operand in enumerate(inst.operands):
                if isinstance(operand, ConstantInt):
                    sites.append((bi, ii, index))
    return sites


def _constant_sites(overlay: MutantOverlay) -> List[Tuple[Instruction, int]]:
    return overlay.enumerate_sites("constants", _constant_scan)


def replace_constant(overlay: MutantOverlay, rng: MutationRNG) -> bool:
    site = rng.maybe_choice(_constant_sites(overlay))
    if site is None:
        return False
    inst, index = site
    old = inst.operands[index]
    replacement = random_constant(old.type, overlay, rng,
                                  allow_undef=rng.chance(0.5))
    inst.set_operand(index, replacement)
    overlay.note_touched_value(inst)
    return True
