"""Bitwidth-change mutation (paper §IV-H, Figures 4-5, Listing 13).

Changing the width of one SSA value is contagious: every user would need
resizing.  To bound the blast radius, the mutation picks a *path* from a
root instruction to a leaf through the use tree and re-creates only the
instructions on that path at the new width:

* the root's operands are truncated / extended to the new width,
* each path instruction is re-created at the new width, consuming the new
  version of its path predecessor (other operands are resized),
* after the leaf, the new value is resized back to the original width and
  replaces the old leaf everywhere.

Old path instructions stay behind for their other (off-path) users —
exactly Figure 5's picture — and die in DCE if unused.

Only fully bitwidth-polymorphic instructions (plain binary arithmetic)
are eligible, mirroring the paper's ``bswap``/``icmp`` discussion.
"""

from __future__ import annotations

from typing import List

from ...analysis.overlay import MutantOverlay
from ...analysis.use_tree import use_path_from, width_change_roots
from ...ir.builder import IRBuilder
from ...ir.types import IntType, MAX_INT_BITS
from ...ir.values import ConstantInt, Value
from ..rng import MutationRNG

# Widths the mutation may retarget to; a blend of standard and odd widths
# (the paper's Listing 13 retargets i32 to i26).
CANDIDATE_WIDTHS = (3, 7, 8, 13, 16, 17, 24, 26, 31, 32, 33, 48, 64)


def _resize(builder: IRBuilder, value: Value, new_type: IntType,
            rng: MutationRNG) -> Value:
    old_width = value.type.width
    if old_width == new_type.width:
        return value
    if isinstance(value, ConstantInt):
        # Fold constant resizes directly so the retargeted instruction
        # keeps a literal operand (as in the paper's Listing 13).
        if old_width > new_type.width or not rng.chance(0.5):
            return ConstantInt(new_type, value.value)
        return ConstantInt(new_type, value.signed_value())
    if old_width > new_type.width:
        return builder.trunc(value, new_type)
    opcode = "sext" if rng.chance(0.5) else "zext"
    return builder.cast(opcode, value, new_type)


def apply(overlay: MutantOverlay, rng: MutationRNG) -> bool:
    roots = [inst for inst in width_change_roots(overlay.mutant)
             if inst.type.width > 1]
    root = rng.maybe_choice(roots)
    if root is None:
        return False
    path = use_path_from(root, rng.choice)
    if not path:
        return False
    # Sometimes only take a prefix of the full path.
    if len(path) > 1 and rng.chance(0.5):
        path = path[:rng.randint(1, len(path))]

    old_width = root.type.width
    new_width = rng.choice([w for w in CANDIDATE_WIDTHS
                            if w != old_width and w <= MAX_INT_BITS])
    new_type = IntType(new_width)

    new_values = {}
    for node in path:
        builder = IRBuilder()
        builder.set_insert_after(node)
        operands: List[Value] = []
        for operand in node.operands:
            replacement = new_values.get(id(operand))
            if replacement is None:
                replacement = _resize(builder, operand, new_type, rng)
            operands.append(replacement)
        new_node = builder.binop(node.opcode, operands[0], operands[1],
                                 nuw=node.nuw, nsw=node.nsw,
                                 exact=node.exact)
        new_values[id(node)] = new_node
        # The retargeted copy (and any resize casts) landed next to the
        # old node; the old node's operands gained uses from the copies.
        overlay.note_touched_value(node)
        for operand in node.operands:
            overlay.note_touched_value(operand)

    leaf = path[-1]
    new_leaf = new_values[id(leaf)]
    builder = IRBuilder()
    builder.set_insert_after(new_leaf)
    back = _resize(builder, new_leaf, leaf.type, rng)
    overlay.note_touched_value(leaf)  # before RAUW: users still visible
    leaf.replace_all_uses_with(back)
    return True
