"""Compile-once execution plans for the TV interpreter (paper §III-B).

The refinement checker executes the same two functions across
``max_inputs × max_nondet_runs`` runs, and the campaign re-executes the
fixed source function for every mutant.  Tree-walking the IR pays
per-instruction ``isinstance`` dispatch, ``Dict[id(inst)]`` frame
lookups, and re-derivation of static facts (widths, flags, branch
targets, phi schedules) on every single step of every run.  This module
lowers a :class:`~repro.ir.function.Function` *once* into an
:class:`ExecutionPlan` — the paper's "pay analysis cost once, reuse
across mutants" principle applied to execution itself:

* every instruction becomes a specialized closure with its static
  operands (widths, masks, poison flags, predicates, sizes, constants)
  captured at compile time — no dispatch chain at runtime;
* operands resolve through dense frame-slot indices into a flat list
  frame instead of an id-keyed dict;
* CFG edges precompute their target and the phi parallel-copy schedule,
  and constant pointer addresses (:func:`pointer_address` of functions
  and null) are folded into the plan;
* everything dynamic — oracle choices, memory, step budget, UB — calls
  the exact helpers the tree-walking evaluator uses, so the observable
  semantics (poison/undef propagation, oracle choice order and domain
  sizes, UB classification, step-limit timing) are identical by
  construction.  The differential suite in ``tests/test_compile.py``
  locks that equivalence.

Plans are cached process-wide in a bounded :class:`LRUCache` keyed by
structural fingerprint plus everything the fingerprint deliberately
normalizes away but execution can observe: local value names (they
appear in UB detail strings) and the attribute environment of reachable
declarations (external-call semantics).  Compilation failures fall back
to the tree-walking evaluator, never to an error.
"""

from __future__ import annotations

import operator
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from ..ir.basicblock import BasicBlock
from ..ir.fingerprint import _referenced_functions, fingerprint_closure
from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    BinaryOperator,
    BrInst,
    CallInst,
    CastInst,
    FreezeInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    RetInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from ..ir.types import IntType
from ..ir.values import (
    ConstantInt,
    ConstantPointerNull,
    PoisonValue,
    UndefValue,
    Value,
)
from .domain import (
    NULL_POINTER,
    POISON,
    Pointer,
    RuntimeValue,
    fits_signed,
    to_signed,
    to_unsigned,
    trunc_div,
)
from .interp import (
    StepLimitExceeded,
    UBError,
    byte_size_of_type,
    evaluate_intrinsic,
    pointer_address,
)
from .memory import UNDEF_BYTE, int_to_bytes, bytes_to_int

__all__ = [
    "ExecutionPlan",
    "LRUCache",
    "PlanCache",
    "compile_function",
    "global_plan_cache",
    "plan_key",
    "reset_global_plan_cache",
]

# A frame slot that was never written.  Distinct from None: void call
# results are never stored, and a returned None must not read as "set".
_UNSET = object()

_RETURN_VOID = ("return", None)

_UNDEF_BYTE_CHOICES = (0, 0xFF, 0x5A)

# Resolver/step signature: (interpreter, frame) -> value / control.
Resolver = Callable[[Any, List[Any]], Any]


class LRUCache:
    """A bounded mapping evicting the least-recently-used entry.

    (Moved here from ``repro.fuzz.memo`` so the TV layer can use it
    without importing the fuzzing layer; ``repro.fuzz.memo`` re-exports
    it for its existing users.)
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()

    def get(self, key: Hashable) -> Optional[Any]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: Hashable, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries


class _Block:
    """A compiled basic block: just the ordered non-phi step closures."""

    __slots__ = ("steps",)

    def __init__(self) -> None:
        self.steps: List[Resolver] = []


class _Edge:
    """A precompiled CFG edge: target block + phi parallel-copy schedule."""

    __slots__ = ("target", "slots", "resolvers")

    def __init__(
        self, target: _Block, slots: Tuple[int, ...], resolvers: Tuple[Resolver, ...]
    ) -> None:
        self.target = target
        self.slots = slots
        self.resolvers = resolvers


class ExecutionPlan:
    """One function lowered to slot-indexed specialized closures."""

    __slots__ = (
        "function",
        "frame_size",
        "num_args",
        "depth_slot",
        "entry_edge",
        "batch_program",
    )

    def __init__(
        self,
        function: Function,
        frame_size: int,
        num_args: int,
        depth_slot: int,
        entry_edge: _Edge,
    ) -> None:
        self.function = function
        self.frame_size = frame_size
        self.num_args = num_args
        self.depth_slot = depth_slot
        self.entry_edge = entry_edge
        # Lazily-compiled struct-of-arrays twin (repro.tv.batch); cached
        # here so the plan cache shares batch programs across mutants.
        self.batch_program = None

    def execute(self, interp, args: List[RuntimeValue], depth: int) -> RuntimeValue:
        """Replay the plan.  Mirrors ``Interpreter._tree_call`` exactly:
        same step accounting, same phi-copy atomicity, same UB points."""
        frame: List[Any] = [_UNSET] * self.frame_size
        count = self.num_args
        if len(args) < count:
            count = len(args)
        frame[:count] = args[:count]
        frame[self.depth_slot] = depth
        edge = self.entry_edge
        max_steps = interp.limits.max_steps
        while True:
            slots = edge.slots
            if slots:
                # Phis read their inputs atomically w.r.t. the edge taken.
                values = [resolve(interp, frame) for resolve in edge.resolvers]
                for index, slot in enumerate(slots):
                    frame[slot] = values[index]
            control = None
            for step in edge.target.steps:
                interp._steps += 1
                if interp._steps > max_steps:
                    raise StepLimitExceeded("step limit exceeded")
                control = step(interp, frame)
                if control is not None:
                    break
            else:
                raise UBError("fell off the end of a block")
            if control.__class__ is _Edge:
                edge = control
                continue
            return control[1]


# -- operand resolvers -------------------------------------------------------


def _poison_resolver(interp, frame):
    return POISON


def _null_resolver(interp, frame):
    return NULL_POINTER


def _ub_raiser(reason: str) -> Resolver:
    def raise_ub(interp, frame):
        raise UBError(reason)
    return raise_ub


def _value_error_raiser(message: str) -> Resolver:
    def raise_value_error(interp, frame):
        raise ValueError(message)
    return raise_value_error


def _constant_pointer_address(value: Value) -> Optional[int]:
    """Fold ``pointer_address`` of a constant-pointer operand (satellite:
    hoist pointer addresses into the plan's constant table)."""
    if isinstance(value, ConstantPointerNull):
        return pointer_address(NULL_POINTER)
    if isinstance(value, Function):
        return pointer_address(Pointer(f"func:{value.name}", 0))
    return None


_ICMP_COMPARATORS = {
    "eq": operator.eq,
    "ne": operator.ne,
    "ugt": operator.gt,
    "uge": operator.ge,
    "ult": operator.lt,
    "ule": operator.le,
    "sgt": operator.gt,
    "sge": operator.ge,
    "slt": operator.lt,
    "sle": operator.le,
}

_SIGNED_ICMP = ("sgt", "sge", "slt", "sle")


def _safe_size(type) -> Tuple[Optional[int], Optional[str]]:
    """byte_size_of_type with the error deferred to execution time."""
    try:
        return byte_size_of_type(type), None
    except ValueError as exc:
        return None, str(exc)


# -- binary operator specialization ------------------------------------------


def _binary_fn(opcode: str, width: int, nuw: bool, nsw: bool, exact: bool):
    """A closure computing one binary op on resolved values.  Each branch
    mirrors the corresponding case of ``Interpreter._eval_binary``."""
    mask = (1 << width) - 1
    int_min = -(1 << (width - 1))

    if opcode == "add":
        def fn(lhs, rhs):
            if lhs is POISON or rhs is POISON:
                return POISON
            total = lhs + rhs
            result = total & mask
            if nuw and total > mask:
                return POISON
            if nsw and not fits_signed(
                to_signed(lhs, width) + to_signed(rhs, width), width
            ):
                return POISON
            return result
        return fn
    if opcode == "sub":
        def fn(lhs, rhs):
            if lhs is POISON or rhs is POISON:
                return POISON
            difference = lhs - rhs
            result = difference & mask
            if nuw and difference < 0:
                return POISON
            if nsw and not fits_signed(
                to_signed(lhs, width) - to_signed(rhs, width), width
            ):
                return POISON
            return result
        return fn
    if opcode == "mul":
        def fn(lhs, rhs):
            if lhs is POISON or rhs is POISON:
                return POISON
            product = lhs * rhs
            result = product & mask
            if nuw and product > mask:
                return POISON
            if nsw and not fits_signed(
                to_signed(lhs, width) * to_signed(rhs, width), width
            ):
                return POISON
            return result
        return fn
    if opcode == "udiv":
        def fn(lhs, rhs):
            # Division by zero is immediate UB even with poison on the
            # other side, so check the divisor first.
            if rhs is POISON:
                raise UBError("udiv by poison divisor")
            if rhs == 0:
                raise UBError("udiv by zero")
            if lhs is POISON:
                return POISON
            result = lhs // rhs
            if exact and lhs % rhs != 0:
                return POISON
            return result
        return fn
    if opcode == "sdiv":
        def fn(lhs, rhs):
            if rhs is POISON:
                raise UBError("sdiv by poison divisor")
            if rhs == 0:
                raise UBError("sdiv by zero")
            if lhs is POISON:
                return POISON
            signed_lhs = to_signed(lhs, width)
            signed_rhs = to_signed(rhs, width)
            if signed_lhs == int_min and signed_rhs == -1:
                raise UBError("sdiv overflow")
            quotient = trunc_div(signed_lhs, signed_rhs)
            if exact and signed_lhs - quotient * signed_rhs != 0:
                return POISON
            return to_unsigned(quotient, width)
        return fn
    if opcode == "urem":
        def fn(lhs, rhs):
            if rhs is POISON:
                raise UBError("urem by poison divisor")
            if rhs == 0:
                raise UBError("urem by zero")
            if lhs is POISON:
                return POISON
            return lhs % rhs
        return fn
    if opcode == "srem":
        def fn(lhs, rhs):
            if rhs is POISON:
                raise UBError("srem by poison divisor")
            if rhs == 0:
                raise UBError("srem by zero")
            if lhs is POISON:
                return POISON
            signed_lhs = to_signed(lhs, width)
            signed_rhs = to_signed(rhs, width)
            if signed_lhs == int_min and signed_rhs == -1:
                raise UBError("srem overflow")
            remainder = signed_lhs - trunc_div(signed_lhs, signed_rhs) * signed_rhs
            return to_unsigned(remainder, width)
        return fn
    if opcode == "shl":
        def fn(lhs, rhs):
            if lhs is POISON or rhs is POISON:
                return POISON
            if rhs >= width:
                return POISON
            full = lhs << rhs
            result = full & mask
            if nuw and full > mask:
                return POISON
            if nsw and to_signed(result, width) != to_signed(lhs, width) * (1 << rhs):
                return POISON
            return result
        return fn
    if opcode == "lshr":
        def fn(lhs, rhs):
            if lhs is POISON or rhs is POISON:
                return POISON
            if rhs >= width:
                return POISON
            if exact and lhs & ((1 << rhs) - 1):
                return POISON
            return lhs >> rhs
        return fn
    if opcode == "ashr":
        def fn(lhs, rhs):
            if lhs is POISON or rhs is POISON:
                return POISON
            if rhs >= width:
                return POISON
            if exact and lhs & ((1 << rhs) - 1):
                return POISON
            return to_unsigned(to_signed(lhs, width) >> rhs, width)
        return fn
    if opcode == "and":
        def fn(lhs, rhs):
            if lhs is POISON or rhs is POISON:
                return POISON
            return lhs & rhs
        return fn
    if opcode == "or":
        def fn(lhs, rhs):
            if lhs is POISON or rhs is POISON:
                return POISON
            return lhs | rhs
        return fn
    if opcode == "xor":
        def fn(lhs, rhs):
            if lhs is POISON or rhs is POISON:
                return POISON
            return lhs ^ rhs
        return fn

    def fn(lhs, rhs):  # constructor-validated; defensively mirrored
        if lhs is POISON or rhs is POISON:
            return POISON
        raise UBError(f"unsupported binary opcode {opcode}")
    return fn


# -- the compiler ------------------------------------------------------------


class _Compiler:
    def __init__(self, function: Function) -> None:
        self.function = function
        self.slots: Dict[int, int] = {}
        for index, argument in enumerate(function.arguments):
            self.slots[id(argument)] = index
        position = len(function.arguments)
        for block in function.blocks:
            for inst in block.instructions:
                self.slots[id(inst)] = position
                position += 1
        self.depth_slot = position
        self.frame_size = position + 1
        self.blocks: Dict[int, _Block] = {
            id(block): _Block() for block in function.blocks
        }

    def build(self) -> ExecutionPlan:
        for block in self.function.blocks:
            compiled = self.blocks[id(block)]
            start = block.first_non_phi_index()
            compiled.steps = [
                self.compile_instruction(block, inst)
                for inst in block.instructions[start:]
            ]
        entry = self.function.entry_block()
        return ExecutionPlan(
            self.function,
            self.frame_size,
            len(self.function.arguments),
            self.depth_slot,
            self.edge(None, entry),
        )

    # -- operands --------------------------------------------------------

    def operand(self, value: Value) -> Resolver:
        if isinstance(value, ConstantInt):
            constant = value.value

            def read_constant(interp, frame):
                return constant
            return read_constant
        if isinstance(value, PoisonValue):
            return _poison_resolver
        if isinstance(value, UndefValue):
            value_type = value.type
            label = f"undef:{id(value)}"

            def choose_undef(interp, frame):
                # Each use of undef is an independent choice.
                return interp._choose_value(value_type, label)
            return choose_undef
        if isinstance(value, ConstantPointerNull):
            return _null_resolver
        if isinstance(value, Function):
            pointer = Pointer(f"func:{value.name}", 0)

            def read_function_pointer(interp, frame):
                return pointer
            return read_function_pointer
        slot = self.slots.get(id(value))
        if slot is None:
            # Foreign value (another function's local, a block, ...):
            # the tree-walk frame never holds it either.
            return _ub_raiser(f"use of unevaluated value %{value.name or '?'}")
        reason = f"use of unevaluated value %{value.name or '?'}"

        def read_slot(interp, frame):
            stored = frame[slot]
            if stored is _UNSET:
                raise UBError(reason)
            return stored
        return read_slot

    def edge(self, pred: Optional[BasicBlock], succ: BasicBlock) -> _Edge:
        """Compile one CFG edge: phi copy schedule resolved at compile
        time (``pred=None`` is function entry, where phis are UB)."""
        slots: List[int] = []
        resolvers: List[Resolver] = []
        for phi in succ.phis():
            incoming = phi.incoming_value_for(pred)
            if incoming is None:
                resolvers.append(_ub_raiser("phi has no incoming value for edge"))
            else:
                resolvers.append(self.operand(incoming))
            slots.append(self.slots[id(phi)])
        return _Edge(self.blocks[id(succ)], tuple(slots), tuple(resolvers))

    # -- instructions ----------------------------------------------------

    def compile_instruction(self, block: BasicBlock, inst: Instruction) -> Resolver:
        if isinstance(inst, BinaryOperator):
            return self.compile_binary(inst)
        if isinstance(inst, ICmpInst):
            return self.compile_icmp(inst)
        if isinstance(inst, SelectInst):
            return self.compile_select(inst)
        if isinstance(inst, CastInst):
            return self.compile_cast(inst)
        if isinstance(inst, FreezeInst):
            return self.compile_freeze(inst)
        if isinstance(inst, AllocaInst):
            return self.compile_alloca(inst)
        if isinstance(inst, LoadInst):
            return self.compile_load(inst)
        if isinstance(inst, StoreInst):
            return self.compile_store(inst)
        if isinstance(inst, GEPInst):
            return self.compile_gep(inst)
        if isinstance(inst, CallInst):
            return self.compile_call(inst)
        if isinstance(inst, RetInst):
            return self.compile_ret(inst)
        if isinstance(inst, BrInst):
            return self.compile_br(block, inst)
        if isinstance(inst, SwitchInst):
            return self.compile_switch(block, inst)
        if isinstance(inst, UnreachableInst):
            return _ub_raiser("reached unreachable")
        # Includes mid-block phis, exactly like the tree-walk fallthrough.
        return _ub_raiser(f"unsupported instruction {inst.opcode}")

    def compile_binary(self, inst: BinaryOperator) -> Resolver:
        lhs = self.operand(inst.lhs)
        rhs = self.operand(inst.rhs)
        fn = _binary_fn(inst.opcode, inst.type.width, inst.nuw, inst.nsw, inst.exact)
        slot = self.slots[id(inst)]

        def step(interp, frame):
            frame[slot] = fn(lhs(interp, frame), rhs(interp, frame))
        return step

    def compile_icmp(self, inst: ICmpInst) -> Resolver:
        lhs = self.operand(inst.lhs)
        rhs = self.operand(inst.rhs)
        compare = _ICMP_COMPARATORS[inst.predicate]
        signed = inst.predicate in _SIGNED_ICMP
        width = inst.lhs.type.width if isinstance(inst.lhs.type, IntType) else 64
        # Constant-pointer operands: their address is part of the plan's
        # constant table instead of a per-comparison crc32.
        lhs_address = _constant_pointer_address(inst.lhs)
        rhs_address = _constant_pointer_address(inst.rhs)
        slot = self.slots[id(inst)]

        def step(interp, frame):
            lhs_value = lhs(interp, frame)
            rhs_value = rhs(interp, frame)
            if lhs_value is POISON or rhs_value is POISON:
                frame[slot] = POISON
                return
            if isinstance(lhs_value, Pointer) or isinstance(rhs_value, Pointer):
                if lhs_address is not None:
                    lhs_num = lhs_address
                elif isinstance(lhs_value, Pointer):
                    lhs_num = pointer_address(lhs_value)
                else:
                    lhs_num = lhs_value
                if rhs_address is not None:
                    rhs_num = rhs_address
                elif isinstance(rhs_value, Pointer):
                    rhs_num = pointer_address(rhs_value)
                else:
                    rhs_num = rhs_value
                effective_width = 64
            else:
                lhs_num, rhs_num = lhs_value, rhs_value
                effective_width = width
            if signed:
                lhs_num = to_signed(lhs_num, effective_width)
                rhs_num = to_signed(rhs_num, effective_width)
            frame[slot] = int(compare(lhs_num, rhs_num))
        return step

    def compile_select(self, inst: SelectInst) -> Resolver:
        condition = self.operand(inst.condition)
        true_value = self.operand(inst.true_value)
        false_value = self.operand(inst.false_value)
        slot = self.slots[id(inst)]

        def step(interp, frame):
            chosen = condition(interp, frame)
            if chosen is POISON:
                frame[slot] = POISON
            elif chosen == 1:
                # Only the taken arm is evaluated (undef/oracle order).
                frame[slot] = true_value(interp, frame)
            else:
                frame[slot] = false_value(interp, frame)
        return step

    def compile_cast(self, inst: CastInst) -> Resolver:
        value = self.operand(inst.value)
        slot = self.slots[id(inst)]
        opcode = inst.opcode
        if opcode == "trunc":
            mask = (1 << inst.type.width) - 1

            def step(interp, frame):
                resolved = value(interp, frame)
                frame[slot] = POISON if resolved is POISON else resolved & mask
            return step
        if opcode == "zext":
            def step(interp, frame):
                frame[slot] = value(interp, frame)
            return step
        if opcode == "sext":
            src_width = inst.src_type.width
            dst_width = inst.type.width

            def step(interp, frame):
                resolved = value(interp, frame)
                if resolved is POISON:
                    frame[slot] = POISON
                else:
                    frame[slot] = to_unsigned(
                        to_signed(resolved, src_width), dst_width
                    )
            return step

        def step(interp, frame):  # constructor-validated; defensive
            value(interp, frame)
            raise UBError(f"unsupported cast {opcode}")
        return step

    def compile_freeze(self, inst: FreezeInst) -> Resolver:
        value = self.operand(inst.value)
        slot = self.slots[id(inst)]
        frozen_type = inst.type
        label = f"freeze:{id(inst)}"

        def step(interp, frame):
            resolved = value(interp, frame)
            if resolved is POISON:
                # freeze of poison picks an arbitrary-but-fixed value,
                # resolved through the nondeterminism oracle like undef.
                resolved = interp._choose_value(frozen_type, label)
            frame[slot] = resolved
        return step

    def compile_alloca(self, inst: AllocaInst) -> Resolver:
        size, error = _safe_size(inst.allocated_type)
        slot = self.slots[id(inst)]

        def step(interp, frame):
            interp._alloca_counter += 1
            if error is not None:
                raise ValueError(error)
            frame[slot] = interp.memory.add_block(
                f"alloca:{interp._alloca_counter}", size
            )
        return step

    def compile_load(self, inst: LoadInst) -> Resolver:
        pointer = self.operand(inst.pointer)
        size, error = _safe_size(inst.type)
        slot = self.slots[id(inst)]
        if error is not None:
            def step(interp, frame):
                resolved = pointer(interp, frame)
                if resolved is POISON:
                    raise UBError("load from poison pointer")
                if not isinstance(resolved, Pointer):
                    raise UBError("load from non-pointer value")
                raise ValueError(error)
            return step
        if inst.type.is_pointer():
            label = f"load:{id(inst)}"

            def step(interp, frame):
                resolved = pointer(interp, frame)
                if resolved is POISON:
                    raise UBError("load from poison pointer")
                if not isinstance(resolved, Pointer):
                    raise UBError("load from non-pointer value")
                data = interp.memory.load_bytes(resolved, size)
                frame[slot] = interp._bytes_to_pointer(data, label)
            return step
        mask = (1 << inst.type.width) - 1
        undef_label = f"loadundef:{id(inst)}"

        def step(interp, frame):
            resolved = pointer(interp, frame)
            if resolved is POISON:
                raise UBError("load from poison pointer")
            if not isinstance(resolved, Pointer):
                raise UBError("load from non-pointer value")
            data = interp.memory.load_bytes(resolved, size)
            for byte in data:
                if byte is POISON:
                    frame[slot] = POISON
                    return
            concrete: List[int] = []
            for index, byte in enumerate(data):
                if byte is UNDEF_BYTE:
                    interp._note_truncated_domain()
                    concrete.append(
                        interp.oracle.choose(
                            f"{undef_label}:{index}", _UNDEF_BYTE_CHOICES
                        )
                    )
                elif isinstance(byte, tuple):  # pointer byte as integer
                    concrete.append(interp._pointer_byte_as_int(byte))
                else:
                    concrete.append(byte)
            frame[slot] = bytes_to_int(concrete) & mask
        return step

    def compile_store(self, inst: StoreInst) -> Resolver:
        pointer = self.operand(inst.pointer)
        value = self.operand(inst.value)
        size, error = _safe_size(inst.value.type)

        def step(interp, frame):
            resolved = pointer(interp, frame)
            if resolved is POISON:
                raise UBError("store to poison pointer")
            if not isinstance(resolved, Pointer):
                raise UBError("store to non-pointer value")
            stored = value(interp, frame)
            if error is not None:
                raise ValueError(error)
            if stored is POISON:
                data: List[Any] = [POISON] * size
            elif isinstance(stored, Pointer):
                data = [
                    ("ptr", stored.block, stored.offset, index)
                    for index in range(size)
                ]
            else:
                data = int_to_bytes(stored, size)
            interp.memory.store_bytes(resolved, data)
        return step

    def compile_gep(self, inst: GEPInst) -> Resolver:
        pointer = self.operand(inst.pointer)
        element_size, error = _safe_size(inst.source_type)
        index_parts = tuple(
            (self.operand(index), index.type.width) for index in inst.indices
        )
        inbounds = inst.inbounds
        slot = self.slots[id(inst)]

        def step(interp, frame):
            resolved = pointer(interp, frame)
            if resolved is POISON:
                frame[slot] = POISON
                return
            if not isinstance(resolved, Pointer):
                raise UBError("gep on non-pointer value")
            if error is not None:
                raise ValueError(error)
            offset = resolved.offset
            for resolve_index, width in index_parts:
                index_value = resolve_index(interp, frame)
                if index_value is POISON:
                    frame[slot] = POISON
                    return
                offset += to_signed(index_value, width) * element_size
            result = Pointer(resolved.block, offset)
            if inbounds and not resolved.is_null():
                memory = interp.memory
                if memory.has_block(resolved.block):
                    if offset < 0 or offset > memory.block_size(resolved.block):
                        result = POISON
            frame[slot] = result
        return step

    def compile_call(self, inst: CallInst) -> Resolver:
        callee = inst.callee
        resolvers = tuple(self.operand(argument) for argument in inst.args)
        if callee.name.startswith("llvm."):
            return self.compile_intrinsic(inst, resolvers)
        # nonnull on the callee's parameters: violating it yields poison
        # (or UB when combined with noundef).  The attribute scan is
        # hoisted to compile time.
        nonnull_checks = tuple(
            (index, argument.attributes.has("noundef"))
            for index, argument in enumerate(callee.arguments)
            if index < len(inst.args) and argument.attributes.has("nonnull")
        )
        has_result = not inst.type.is_void()
        slot = self.slots[id(inst)] if has_result else None
        depth_slot = self.depth_slot

        def step(interp, frame):
            args = [resolve(interp, frame) for resolve in resolvers]
            for index, noundef in nonnull_checks:
                value = args[index]
                if isinstance(value, Pointer) and value.is_null():
                    if noundef:
                        raise UBError("null passed to nonnull noundef argument")
                    args[index] = POISON
            result = interp._call(callee, args, frame[depth_slot] + 1)
            if has_result:
                frame[slot] = result
        return step

    def compile_intrinsic(
        self, inst: CallInst, resolvers: Tuple[Resolver, ...]
    ) -> Resolver:
        base = inst.intrinsic_name()
        name = inst.callee.name
        if base == "llvm.assume":
            bundle_checks = tuple(
                (
                    bundle.tag,
                    tuple(
                        self.operand(value)
                        for value in inst.bundle_operands(bundle)
                    ),
                )
                for bundle in inst.bundles
            )

            def step(interp, frame):
                args = [resolve(interp, frame) for resolve in resolvers]
                condition = args[0]
                if condition is POISON:
                    raise UBError("assume of poison")
                if condition != 1:
                    raise UBError("assume of false")
                for tag, operand_resolvers in bundle_checks:
                    operands = [
                        resolve(interp, frame) for resolve in operand_resolvers
                    ]
                    if tag == "align" and len(operands) == 2:
                        pointer, align = operands
                        if pointer is POISON or align is POISON:
                            raise UBError("assume align on poison")
                        if isinstance(pointer, Pointer) and align:
                            if pointer_address(pointer) % align != 0:
                                raise UBError("assume align violated")
                    elif tag == "nonnull" and operands:
                        pointer = operands[0]
                        if isinstance(pointer, Pointer) and pointer.is_null():
                            raise UBError("assume nonnull violated")
            return step
        width = inst.type.width if isinstance(inst.type, IntType) else 0
        mask = (1 << width) - 1 if width else 0
        has_result = not inst.type.is_void()
        slot = self.slots[id(inst)] if has_result else None

        def step(interp, frame):
            args = [resolve(interp, frame) for resolve in resolvers]
            for value in args:
                if value is POISON:
                    result = POISON
                    break
            else:
                result = evaluate_intrinsic(base, name, width, mask, args)
            if has_result:
                frame[slot] = result
        return step

    def compile_ret(self, inst: RetInst) -> Resolver:
        if inst.return_value is None:
            def step(interp, frame):
                return _RETURN_VOID
            return step
        value = self.operand(inst.return_value)

        def step(interp, frame):
            return ("return", value(interp, frame))
        return step

    def compile_br(self, block: BasicBlock, inst: BrInst) -> Resolver:
        if not inst.is_conditional():
            edge = self.edge(block, inst.operands[0])

            def step(interp, frame):
                return edge
            return step
        condition = self.operand(inst.condition)
        true_edge = self.edge(block, inst.operands[1])
        false_edge = self.edge(block, inst.operands[2])

        def step(interp, frame):
            chosen = condition(interp, frame)
            if chosen is POISON:
                raise UBError("branch on poison")
            return true_edge if chosen == 1 else false_edge
        return step

    def compile_switch(self, block: BasicBlock, inst: SwitchInst) -> Resolver:
        value = self.operand(inst.value)
        table: Dict[int, _Edge] = {}
        for case_value, case_block in inst.cases():
            # First matching case wins, exactly like the tree-walk scan.
            table.setdefault(case_value.value, self.edge(block, case_block))
        default_edge = self.edge(block, inst.default)

        def step(interp, frame):
            resolved = value(interp, frame)
            if resolved is POISON:
                raise UBError("switch on poison")
            try:
                edge = table.get(resolved)
            except TypeError:  # unhashable runtime value: no case matches
                edge = None
            return edge if edge is not None else default_edge
        return step


def compile_function(function: Function) -> ExecutionPlan:
    """Lower one defined function into an :class:`ExecutionPlan`.

    Raises on IR shapes the compiler does not handle (e.g. declarations
    or branches into foreign functions); callers are expected to fall
    back to the tree-walking evaluator via :class:`PlanCache`.
    """
    if function.is_declaration():
        raise ValueError(f"cannot compile declaration @{function.name}")
    return _Compiler(function).build()


# -- plan cache --------------------------------------------------------------


def _local_names(function: Function) -> Tuple[str, ...]:
    """Argument and instruction names, in program order.

    Fingerprints normalize names away on purpose, but execution can
    observe them (UB detail strings such as ``use of unevaluated value
    %x`` participate in ``Outcome`` equality), so plans are only shared
    between functions whose local names also match.
    """
    names = [argument.name or "" for argument in function.arguments]
    for block in function.blocks:
        for inst in block.instructions:
            names.append(inst.name or "")
    return tuple(names)


def plan_key(
    function: Function, fp_cache: Optional[Dict[int, str]] = None
) -> Hashable:
    """Cache key under which ``function``'s plan may be shared.

    Covers the structural closure fingerprint, local value names of the
    root and every reachable defined callee (UB details), and the
    attribute environment of reachable declarations — declaration
    attributes drive ``_call_external`` semantics but are not part of
    the fingerprint.
    """
    closure = fingerprint_closure(function, fp_cache)
    names = [_local_names(function)]
    declarations: Dict[str, Tuple] = {}
    visited = {id(function)}
    stack = [function]
    while stack:
        current = stack.pop()
        for callee in _referenced_functions(current):
            if id(callee) in visited:
                continue
            visited.add(id(callee))
            if callee.is_declaration():
                declarations[callee.name] = (
                    str(callee.attributes),
                    tuple(
                        (argument.name, str(argument.attributes))
                        for argument in callee.arguments
                    ),
                    str(callee.return_type),
                )
            else:
                names.append(_local_names(callee))
                stack.append(callee)
    return (closure, tuple(names), tuple(sorted(declarations.items())))


_COMPILE_FAILED = object()

DEFAULT_PLAN_CACHE_CAPACITY = 512


class PlanCache:
    """Bounded, fingerprint-keyed store of execution plans.

    ``hits``/``misses``/``fallbacks`` feed the ``exec.plan_cache.*``
    metrics.  Compilation failures are cached too (as a tree-walk
    fallback marker) so a pathological function is not re-compiled on
    every call.
    """

    def __init__(self, capacity: int = DEFAULT_PLAN_CACHE_CAPACITY) -> None:
        self._plans = LRUCache(capacity)
        self.hits = 0
        self.misses = 0
        self.fallbacks = 0

    def plan_for(
        self, function: Function, fp_cache: Optional[Dict[int, str]] = None
    ) -> Optional[ExecutionPlan]:
        """The cached plan for ``function`` (compiling on first sight),
        or None when the function must be tree-walked."""
        key = plan_key(function, fp_cache)
        plan = self._plans.get(key)
        if plan is not None:
            self.hits += 1
            return None if plan is _COMPILE_FAILED else plan
        self.misses += 1
        try:
            plan = compile_function(function)
        except Exception:
            self.fallbacks += 1
            self._plans.put(key, _COMPILE_FAILED)
            return None
        self._plans.put(key, plan)
        return plan

    def stats(self) -> Tuple[int, int, int]:
        return (self.hits, self.misses, self.fallbacks)

    def __len__(self) -> int:
        return len(self._plans)


_GLOBAL_PLAN_CACHE: Optional[PlanCache] = None


def global_plan_cache() -> PlanCache:
    """The process-wide plan cache every compiled Interpreter shares by
    default, so the campaign's fixed source function compiles once."""
    global _GLOBAL_PLAN_CACHE
    if _GLOBAL_PLAN_CACHE is None:
        _GLOBAL_PLAN_CACHE = PlanCache()
    return _GLOBAL_PLAN_CACHE


def reset_global_plan_cache(capacity: int = DEFAULT_PLAN_CACHE_CAPACITY) -> PlanCache:
    """Replace the process-wide cache (tests and long-lived sessions)."""
    global _GLOBAL_PLAN_CACHE
    _GLOBAL_PLAN_CACHE = PlanCache(capacity)
    return _GLOBAL_PLAN_CACHE
