"""Nondeterminism oracles.

LLVM IR has genuinely nondeterministic constructs: every *use* of ``undef``
may see a different value, and ``freeze`` of poison picks an arbitrary one.
The interpreter routes every such decision through an oracle.

:class:`EnumerationOracle` explores the resulting decision tree
breadth-first up to a budget, so the refinement checker can enumerate the
behavior *sets* of both functions (bounded, like Alive2's bounded TV).
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class Oracle:
    """Base oracle: resolves one nondeterministic choice."""

    def choose(self, label: str, options: Sequence) -> object:
        raise NotImplementedError


class DeterministicOracle(Oracle):
    """Always picks the first option (fast path for deterministic code)."""

    def __init__(self) -> None:
        self.choices_seen = 0

    def choose(self, label: str, options: Sequence) -> object:
        self.choices_seen += 1
        return options[0]


class PathOracle(Oracle):
    """Replays a fixed path of option indices, recording domain sizes.

    Used by :func:`enumerate_paths` to walk the decision tree: a run with a
    partial path extends it with zeros; the recorded sizes tell the
    enumerator how to advance to the lexicographically-next path.
    """

    def __init__(self, path: Sequence[int]) -> None:
        self._path = list(path)
        self.taken: List[int] = []
        self.domain_sizes: List[int] = []
        # True when some choice offered only a *sample* of its true domain
        # (e.g. undef at a wide type).  Enumerating the tree then still
        # under-approximates the behavior set.
        self.domain_truncated = False

    def choose(self, label: str, options: Sequence) -> object:
        position = len(self.taken)
        index = self._path[position] if position < len(self._path) else 0
        index = min(index, len(options) - 1)
        self.taken.append(index)
        self.domain_sizes.append(len(options))
        return options[index]

    @property
    def choices_seen(self) -> int:
        """Number of nondeterministic choices this run resolved.

        Mirrors :attr:`DeterministicOracle.choices_seen` so callers can
        account for oracle work uniformly across oracle kinds.
        """
        return len(self.taken)

    def note_truncated_domain(self) -> None:
        self.domain_truncated = True


def advance_path(taken: List[int], domain_sizes: List[int]) -> Optional[List[int]]:
    """The next path in lexicographic order, or None when exhausted."""
    path = list(taken)
    for position in range(len(path) - 1, -1, -1):
        if path[position] + 1 < domain_sizes[position]:
            path[position] += 1
            return path[:position + 1]
        # This position wraps; carry into the previous one.
    return None


def enumerate_paths(run, max_runs: int):
    """Enumerate executions of ``run(oracle)`` over the choice tree.

    ``run`` is called with a :class:`PathOracle`; its return value is
    yielded per execution.  Yields ``(result, exhausted_flag_so_far)``
    tuples; after the generator finishes, the caller can tell whether the
    tree was fully explored by checking the last flag.
    """
    path: Optional[List[int]] = []
    runs = 0
    while path is not None and runs < max_runs:
        oracle = PathOracle(path)
        result = run(oracle)
        runs += 1
        path = advance_path(oracle.taken, oracle.domain_sizes)
        yield result, path is None
